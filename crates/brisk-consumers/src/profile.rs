//! Profile reconstruction from the sorted event stream.
//!
//! Consumes records produced by `brisk_lis::profiling` (scope enter/exit
//! pairs and counter snapshots) and rebuilds the classic profiling views:
//! per-scope call counts and duration statistics, and per-counter time
//! series. Together with the emission side this is the paper's promised
//! "hybrid monitoring approach for tracing or profiling" emulated on the
//! event-based kernel (§2).

use crate::analysis::SummaryStats;
use brisk_core::{EventRecord, UtcMicros, Value};
use std::collections::HashMap;

/// Discriminator values (must match `brisk_lis::profiling::kind`; the
/// constants are duplicated rather than imported to keep the consumer
/// crate independent of the sensor crate, as a real deployment's analysis
/// tools would be).
mod kind {
    pub const ENTER: u8 = 1;
    pub const EXIT: u8 = 2;
    pub const COUNTER: u8 = 3;
}

/// Aggregated statistics for one scope (event type).
#[derive(Clone, Debug, Default)]
pub struct ScopeProfile {
    /// Completed activations (matched enter/exit pairs).
    pub calls: u64,
    /// Activations whose ENTER was never seen (exit-only).
    pub unmatched_exits: u64,
    /// Activations whose EXIT was never seen (still open at the end).
    pub open: u64,
    /// Duration samples in microseconds (from the EXIT record's elapsed
    /// field, which is immune to cross-node timestamp adjustment).
    durations_us: Vec<i64>,
}

impl ScopeProfile {
    /// Duration summary statistics (µs).
    pub fn durations(&self) -> SummaryStats {
        SummaryStats::of(self.durations_us.iter().map(|&v| v as f64))
    }

    /// Total time spent in the scope (µs).
    pub fn total_us(&self) -> i64 {
        self.durations_us.iter().sum()
    }
}

/// One sample of a counter's time series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterSample {
    /// Snapshot timestamp.
    pub ts: UtcMicros,
    /// Running value at the snapshot.
    pub value: u64,
    /// Increment since the previous snapshot.
    pub delta: u64,
}

/// Builds profiles from a delivered record stream.
#[derive(Default)]
pub struct ProfileBuilder {
    scopes: HashMap<u32, ScopeProfile>,
    open: HashMap<(u32, u32, u32, u64), UtcMicros>,
    counters: HashMap<(u32, u32), Vec<CounterSample>>,
    ignored: u64,
}

impl ProfileBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that carried no recognizable profiling discriminator.
    pub fn ignored(&self) -> u64 {
        self.ignored
    }

    /// Feed one delivered record.
    pub fn observe(&mut self, rec: &EventRecord) {
        let Some(Value::U8(kind_byte)) = rec.fields.first() else {
            self.ignored += 1;
            return;
        };
        match *kind_byte {
            kind::ENTER => {
                let Some(scope_id) = rec.fields.get(1).and_then(Value::as_i64) else {
                    self.ignored += 1;
                    return;
                };
                self.open.insert(
                    (
                        rec.node.raw(),
                        rec.sensor.raw(),
                        rec.event_type.raw(),
                        scope_id as u64,
                    ),
                    rec.ts,
                );
            }
            kind::EXIT => {
                let (Some(scope_id), Some(elapsed)) = (
                    rec.fields.get(1).and_then(Value::as_i64),
                    rec.fields.get(2).and_then(Value::as_i64),
                ) else {
                    self.ignored += 1;
                    return;
                };
                let profile = self.scopes.entry(rec.event_type.raw()).or_default();
                let key = (
                    rec.node.raw(),
                    rec.sensor.raw(),
                    rec.event_type.raw(),
                    scope_id as u64,
                );
                if self.open.remove(&key).is_some() {
                    profile.calls += 1;
                } else {
                    profile.unmatched_exits += 1;
                    profile.calls += 1; // elapsed is still valid
                }
                profile.durations_us.push(elapsed);
            }
            kind::COUNTER => {
                let (Some(value), Some(delta)) = (
                    rec.fields.get(1).and_then(Value::as_i64),
                    rec.fields.get(2).and_then(Value::as_i64),
                ) else {
                    self.ignored += 1;
                    return;
                };
                self.counters
                    .entry((rec.node.raw(), rec.event_type.raw()))
                    .or_default()
                    .push(CounterSample {
                        ts: rec.ts,
                        value: value as u64,
                        delta: delta as u64,
                    });
            }
            _ => self.ignored += 1,
        }
    }

    /// Finalize: mark still-open scopes and return the per-scope profiles
    /// keyed by event type.
    pub fn finish(mut self) -> Profiles {
        for (_, _, event_type, _) in self.open.keys() {
            self.scopes.entry(*event_type).or_default().open += 1;
        }
        Profiles {
            scopes: self.scopes,
            counters: self.counters,
        }
    }
}

/// Finished profiles.
#[derive(Default)]
pub struct Profiles {
    scopes: HashMap<u32, ScopeProfile>,
    counters: HashMap<(u32, u32), Vec<CounterSample>>,
}

impl Profiles {
    /// Profile for one scope event type.
    pub fn scope(&self, event_type: u32) -> Option<&ScopeProfile> {
        self.scopes.get(&event_type)
    }

    /// All scope event types observed, sorted.
    pub fn scope_types(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.scopes.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Counter time series for `(node, event_type)`.
    pub fn counter(&self, node: u32, event_type: u32) -> Option<&[CounterSample]> {
        self.counters.get(&(node, event_type)).map(Vec::as_slice)
    }

    /// All counter keys observed, sorted.
    pub fn counter_keys(&self) -> Vec<(u32, u32)> {
        let mut v: Vec<(u32, u32)> = self.counters.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_core::{EventTypeId, NodeId, SensorId};

    fn rec(node: u32, ety: u32, seq: u64, ts: i64, fields: Vec<Value>) -> EventRecord {
        EventRecord::new(
            NodeId(node),
            SensorId(0),
            EventTypeId(ety),
            seq,
            UtcMicros::from_micros(ts),
            fields,
        )
        .unwrap()
    }

    fn enter(node: u32, ety: u32, seq: u64, ts: i64, id: u64) -> EventRecord {
        rec(node, ety, seq, ts, vec![Value::U8(1), Value::U64(id)])
    }

    fn exit(node: u32, ety: u32, seq: u64, ts: i64, id: u64, elapsed: i64) -> EventRecord {
        rec(
            node,
            ety,
            seq,
            ts,
            vec![Value::U8(2), Value::U64(id), Value::I64(elapsed)],
        )
    }

    #[test]
    fn matched_pairs_build_durations() {
        let mut b = ProfileBuilder::new();
        for i in 0..10u64 {
            b.observe(&enter(0, 5, 2 * i, i as i64 * 100, i));
            b.observe(&exit(0, 5, 2 * i + 1, i as i64 * 100 + 30, i, 30));
        }
        let p = b.finish();
        let scope = p.scope(5).unwrap();
        assert_eq!(scope.calls, 10);
        assert_eq!(scope.open, 0);
        assert_eq!(scope.unmatched_exits, 0);
        assert_eq!(scope.total_us(), 300);
        let s = scope.durations();
        assert_eq!(s.count, 10);
        assert_eq!(s.min, 30.0);
        assert_eq!(s.max, 30.0);
    }

    #[test]
    fn open_scopes_and_orphan_exits_are_counted() {
        let mut b = ProfileBuilder::new();
        b.observe(&enter(0, 1, 0, 0, 7)); // never exits
        b.observe(&exit(0, 1, 1, 50, 8, 50)); // never entered
        let p = b.finish();
        let scope = p.scope(1).unwrap();
        assert_eq!(scope.open, 1);
        assert_eq!(scope.unmatched_exits, 1);
        assert_eq!(scope.calls, 1);
    }

    #[test]
    fn scopes_keyed_by_origin_do_not_collide() {
        let mut b = ProfileBuilder::new();
        // Same scope id, different nodes: independent activations.
        b.observe(&enter(0, 2, 0, 0, 1));
        b.observe(&enter(1, 2, 0, 10, 1));
        b.observe(&exit(0, 2, 1, 100, 1, 100));
        b.observe(&exit(1, 2, 1, 60, 1, 50));
        let p = b.finish();
        let scope = p.scope(2).unwrap();
        assert_eq!(scope.calls, 2);
        assert_eq!(scope.open, 0);
        assert_eq!(scope.unmatched_exits, 0);
        assert_eq!(scope.total_us(), 150);
    }

    #[test]
    fn counter_series_reconstructed() {
        let mut b = ProfileBuilder::new();
        for (i, (v, d)) in [(5u64, 5u64), (12, 7), (20, 8)].iter().enumerate() {
            b.observe(&rec(
                3,
                9,
                i as u64,
                i as i64 * 1_000,
                vec![Value::U8(3), Value::U64(*v), Value::U64(*d)],
            ));
        }
        let p = b.finish();
        let series = p.counter(3, 9).unwrap();
        assert_eq!(series.len(), 3);
        assert_eq!(series[2].value, 20);
        assert_eq!(series.iter().map(|s| s.delta).sum::<u64>(), 20);
        assert_eq!(p.counter_keys(), vec![(3, 9)]);
    }

    #[test]
    fn unrecognized_records_are_ignored_not_fatal() {
        let mut b = ProfileBuilder::new();
        b.observe(&rec(0, 1, 0, 0, vec![Value::I32(42)]));
        b.observe(&rec(0, 1, 1, 0, vec![]));
        b.observe(&rec(0, 1, 2, 0, vec![Value::U8(99)]));
        b.observe(&rec(0, 1, 3, 0, vec![Value::U8(1)])); // ENTER missing id
        assert_eq!(b.ignored(), 4);
        let p = b.finish();
        assert!(p.scope_types().is_empty());
    }
}
