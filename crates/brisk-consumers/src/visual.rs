//! The visual-object framework (CORBA-free stand-in for §3.5's
//! "CORBA-enabled visual objects").
//!
//! "Through an optionally linked, portable implementation of CORBA 2.0
//! called MICO, the ISM can call remote visual objects' methods and pass
//! instrumentation data records to be processed as PICL strings." The
//! remote-method-call boundary is preserved as the [`VisualObject`] trait:
//! each object receives the record *as a PICL string*, so any object
//! written against this trait would port directly onto an RPC transport.

use brisk_core::{EventRecord, Result};
use brisk_ism::EventSink;
use brisk_picl::{PiclRecord, TsMode};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A visualization endpoint. `update` is the remote method of the original
/// framework; it receives one PICL-formatted record.
pub trait VisualObject: Send {
    /// A short name for diagnostics.
    fn name(&self) -> &str;

    /// Process one record, delivered as a PICL string.
    fn update(&mut self, picl_line: &str) -> Result<()>;
}

/// An ordered list of visual objects sharing one record stream.
#[derive(Default)]
pub struct VisualObjectRegistry {
    objects: Vec<Box<dyn VisualObject>>,
}

impl VisualObjectRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach an object.
    pub fn register(&mut self, obj: Box<dyn VisualObject>) {
        self.objects.push(obj);
    }

    /// Number of attached objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if no objects are attached.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Dispatch one PICL line to every object.
    pub fn dispatch(&mut self, picl_line: &str) -> Result<()> {
        for obj in &mut self.objects {
            obj.update(picl_line)?;
        }
        Ok(())
    }
}

/// [`EventSink`] adapter: converts each sorted record to a PICL string and
/// dispatches it to a registry. This is what the ISM links when the
/// visual-object output is enabled.
pub struct VisualObjectSink {
    registry: Arc<Mutex<VisualObjectRegistry>>,
    mode: TsMode,
}

impl VisualObjectSink {
    /// New sink over a shared registry, rendering timestamps per `mode`.
    pub fn new(registry: Arc<Mutex<VisualObjectRegistry>>, mode: TsMode) -> Self {
        VisualObjectSink { registry, mode }
    }
}

impl EventSink for VisualObjectSink {
    fn on_record(&mut self, rec: &EventRecord) -> Result<()> {
        let line = PiclRecord::from_event(rec, self.mode).to_line();
        self.registry.lock().dispatch(&line)
    }
}

/// Visual object: counts events per node (a minimal "activity bar chart").
#[derive(Default)]
pub struct EventCounter {
    counts: Arc<Mutex<HashMap<u32, u64>>>,
}

impl EventCounter {
    /// New counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared view of the per-node counts.
    pub fn counts(&self) -> Arc<Mutex<HashMap<u32, u64>>> {
        Arc::clone(&self.counts)
    }
}

impl VisualObject for EventCounter {
    fn name(&self) -> &str {
        "event-counter"
    }

    fn update(&mut self, picl_line: &str) -> Result<()> {
        let rec = PiclRecord::parse_line(picl_line)?;
        *self.counts.lock().entry(rec.node).or_insert(0) += 1;
        Ok(())
    }
}

/// Visual object: sliding-window event-rate meter (events/second over the
/// last `window_us` of trace time).
pub struct RateMeter {
    window_us: i64,
    timestamps: std::collections::VecDeque<i64>,
    rate: Arc<Mutex<f64>>,
}

impl RateMeter {
    /// New meter with the given window (µs of trace time).
    pub fn new(window_us: i64) -> Self {
        RateMeter {
            window_us: window_us.max(1),
            timestamps: std::collections::VecDeque::new(),
            rate: Arc::new(Mutex::new(0.0)),
        }
    }

    /// Shared view of the current rate (events/second).
    pub fn rate(&self) -> Arc<Mutex<f64>> {
        Arc::clone(&self.rate)
    }
}

impl VisualObject for RateMeter {
    fn name(&self) -> &str {
        "rate-meter"
    }

    fn update(&mut self, picl_line: &str) -> Result<()> {
        let rec = PiclRecord::parse_line(picl_line)?;
        let ts = match rec.clock {
            brisk_picl::record::ClockField::UtcMicros(us) => us,
            brisk_picl::record::ClockField::Seconds(s) => (s * 1e6) as i64,
        };
        self.timestamps.push_back(ts);
        let horizon = ts - self.window_us;
        while self.timestamps.front().is_some_and(|&t| t < horizon) {
            self.timestamps.pop_front();
        }
        *self.rate.lock() = self.timestamps.len() as f64 / (self.window_us as f64 / 1e6);
        Ok(())
    }
}

/// Visual object: retains the most recent `max_lines` PICL lines, like a
/// scrolling text console.
pub struct TextPane {
    max_lines: usize,
    lines: Arc<Mutex<std::collections::VecDeque<String>>>,
}

impl TextPane {
    /// New pane holding at most `max_lines`.
    pub fn new(max_lines: usize) -> Self {
        TextPane {
            max_lines: max_lines.max(1),
            lines: Arc::new(Mutex::new(std::collections::VecDeque::new())),
        }
    }

    /// Shared view of the retained lines.
    pub fn lines(&self) -> Arc<Mutex<std::collections::VecDeque<String>>> {
        Arc::clone(&self.lines)
    }
}

impl VisualObject for TextPane {
    fn name(&self) -> &str {
        "text-pane"
    }

    fn update(&mut self, picl_line: &str) -> Result<()> {
        let mut lines = self.lines.lock();
        lines.push_back(picl_line.to_owned());
        while lines.len() > self.max_lines {
            lines.pop_front();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_core::{EventTypeId, NodeId, SensorId, UtcMicros, Value};

    fn rec(node: u32, seq: u64, ts: i64) -> EventRecord {
        EventRecord::new(
            NodeId(node),
            SensorId(0),
            EventTypeId(1),
            seq,
            UtcMicros::from_micros(ts),
            vec![Value::I32(seq as i32)],
        )
        .unwrap()
    }

    #[test]
    fn sink_feeds_all_registered_objects() {
        let counter = EventCounter::new();
        let counts = counter.counts();
        let pane = TextPane::new(10);
        let lines = pane.lines();
        let registry = Arc::new(Mutex::new(VisualObjectRegistry::new()));
        registry.lock().register(Box::new(counter));
        registry.lock().register(Box::new(pane));
        assert_eq!(registry.lock().len(), 2);

        let mut sink = VisualObjectSink::new(Arc::clone(&registry), TsMode::Utc);
        for i in 0..4 {
            sink.on_record(&rec(i % 2, i as u64, i as i64)).unwrap();
        }
        assert_eq!(counts.lock()[&0], 2);
        assert_eq!(counts.lock()[&1], 2);
        assert_eq!(lines.lock().len(), 4);
    }

    #[test]
    fn rate_meter_windows_correctly() {
        let meter = RateMeter::new(1_000_000); // 1 s window
        let rate = meter.rate();
        let registry = Arc::new(Mutex::new(VisualObjectRegistry::new()));
        registry.lock().register(Box::new(meter));
        let mut sink = VisualObjectSink::new(registry, TsMode::Utc);
        // 10 events spread over 1 s → 10 ev/s.
        for i in 0..10 {
            sink.on_record(&rec(0, i, i as i64 * 100_000)).unwrap();
        }
        assert!((*rate.lock() - 10.0).abs() < 1e-9);
        // A burst 10 s later: old events fall out of the window.
        sink.on_record(&rec(0, 10, 10_000_000)).unwrap();
        assert!((*rate.lock() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn text_pane_caps_lines() {
        let pane = TextPane::new(3);
        let lines = pane.lines();
        let registry = Arc::new(Mutex::new(VisualObjectRegistry::new()));
        registry.lock().register(Box::new(pane));
        let mut sink = VisualObjectSink::new(registry, TsMode::Utc);
        for i in 0..10 {
            sink.on_record(&rec(0, i, i as i64)).unwrap();
        }
        let lines = lines.lock();
        assert_eq!(lines.len(), 3);
        assert!(lines.back().unwrap().contains(" 9 "), "newest retained");
    }

    #[test]
    fn objects_receive_parseable_picl() {
        struct Checker;
        impl VisualObject for Checker {
            fn name(&self) -> &str {
                "checker"
            }
            fn update(&mut self, line: &str) -> Result<()> {
                PiclRecord::parse_line(line).map(|_| ())
            }
        }
        let registry = Arc::new(Mutex::new(VisualObjectRegistry::new()));
        registry.lock().register(Box::new(Checker));
        let mut sink = VisualObjectSink::new(registry, TsMode::SecondsSince(UtcMicros::ZERO));
        sink.on_record(&rec(3, 1, 2_500_000)).unwrap();
    }
}
