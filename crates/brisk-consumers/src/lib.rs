//! # brisk-consumers — instrumentation data consumer tools
//!
//! Consumers sit at the right edge of Fig. 1: they read the ISM's output
//! memory buffer, or receive records pushed through sinks.
//!
//! * [`visual`] — the stand-in for the paper's "object-oriented framework
//!   for the development of on-line performance visualization" (§3.5): a
//!   [`visual::VisualObject`] trait whose `update` method receives records
//!   "as PICL strings", exactly like the CORBA-called remote methods of the
//!   original (the CORBA/MICO RPC layer is replaced by the trait boundary —
//!   see DESIGN.md), plus a registry/sink and a few ready-made objects.
//! * [`analysis`] — order checking, latency tracking and summary
//!   statistics used by tests and by the experiment harness.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod analysis;
pub mod profile;
pub mod visual;

pub use analysis::{LatencyTracker, OrderChecker, SummaryStats};
pub use profile::{CounterSample, ProfileBuilder, Profiles, ScopeProfile};
pub use visual::{
    EventCounter, RateMeter, TextPane, VisualObject, VisualObjectRegistry, VisualObjectSink,
};
