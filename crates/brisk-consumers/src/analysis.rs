//! Analysis utilities for consumers, tests and the experiment harness.

use brisk_core::{EventRecord, UtcMicros};
use std::collections::HashMap;

/// Checks a delivered stream for timestamp order — the metric the on-line
/// sorting experiments (E7) optimize.
#[derive(Debug, Default)]
pub struct OrderChecker {
    last_ts: Option<UtcMicros>,
    total: u64,
    inversions: u64,
    max_inversion_us: i64,
    per_seq: HashMap<(u32, u32), u64>,
    seq_gaps: u64,
}

impl OrderChecker {
    /// New checker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe one delivered record.
    pub fn observe(&mut self, rec: &EventRecord) {
        self.total += 1;
        if let Some(last) = self.last_ts {
            if rec.ts < last {
                self.inversions += 1;
                self.max_inversion_us = self.max_inversion_us.max(last.micros_since(rec.ts));
            }
        }
        self.last_ts = Some(rec.ts);
        // Per-sensor sequence continuity (detects drops).
        let key = (rec.node.raw(), rec.sensor.raw());
        if let Some(&prev) = self.per_seq.get(&key) {
            if rec.seq > prev + 1 {
                self.seq_gaps += rec.seq - prev - 1;
            }
        }
        self.per_seq.insert(key, rec.seq);
    }

    /// Records observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Timestamp inversions observed (adjacent pairs out of order).
    pub fn inversions(&self) -> u64 {
        self.inversions
    }

    /// Largest single inversion in microseconds.
    pub fn max_inversion_us(&self) -> i64 {
        self.max_inversion_us
    }

    /// Fraction of adjacent pairs out of order.
    pub fn inversion_rate(&self) -> f64 {
        if self.total <= 1 {
            0.0
        } else {
            self.inversions as f64 / (self.total - 1) as f64
        }
    }

    /// Records lost according to per-sensor sequence gaps.
    pub fn seq_gaps(&self) -> u64 {
        self.seq_gaps
    }
}

/// Tracks delivery latency: time between a record's (synchronized)
/// creation timestamp and the moment the consumer sees it.
#[derive(Debug, Default)]
pub struct LatencyTracker {
    samples_us: Vec<i64>,
}

impl LatencyTracker {
    /// New tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe a record delivered at `now`.
    pub fn observe(&mut self, rec: &EventRecord, now: UtcMicros) {
        self.samples_us.push(now.micros_since(rec.ts));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// True if no samples were taken.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Summary over all samples (µs).
    pub fn summary(&self) -> SummaryStats {
        SummaryStats::of(self.samples_us.iter().map(|&v| v as f64))
    }
}

/// Order statistics over a set of samples.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SummaryStats {
    /// Sample count.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl SummaryStats {
    /// Compute summary statistics of `samples`. Empty input yields zeros.
    pub fn of(samples: impl IntoIterator<Item = f64>) -> Self {
        let mut v: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        if v.is_empty() {
            return SummaryStats::default();
        }
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let count = v.len();
        let sum: f64 = v.iter().sum();
        let mean = sum / count as f64;
        let var = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        let pct = |p: f64| -> f64 {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            v[idx.min(count - 1)]
        };
        SummaryStats {
            count,
            min: v[0],
            max: v[count - 1],
            mean,
            p50: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            stddev: var.sqrt(),
        }
    }
}

impl std::fmt::Display for SummaryStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} min={:.1} p50={:.1} mean={:.1} p95={:.1} p99={:.1} max={:.1} sd={:.1}",
            self.count, self.min, self.p50, self.mean, self.p95, self.p99, self.max, self.stddev
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_core::{EventTypeId, NodeId, SensorId};

    fn rec(node: u32, seq: u64, ts: i64) -> EventRecord {
        EventRecord::new(
            NodeId(node),
            SensorId(0),
            EventTypeId(1),
            seq,
            UtcMicros::from_micros(ts),
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn order_checker_counts_inversions() {
        let mut c = OrderChecker::new();
        for (node, seq, ts) in [(0, 0, 10), (1, 0, 20), (0, 1, 15), (1, 1, 30)] {
            c.observe(&rec(node, seq, ts));
        }
        assert_eq!(c.total(), 4);
        assert_eq!(c.inversions(), 1);
        assert_eq!(c.max_inversion_us(), 5);
        assert!((c.inversion_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn order_checker_clean_stream() {
        let mut c = OrderChecker::new();
        for i in 0..10 {
            c.observe(&rec(0, i, i as i64));
        }
        assert_eq!(c.inversions(), 0);
        assert_eq!(c.inversion_rate(), 0.0);
        assert_eq!(c.seq_gaps(), 0);
    }

    #[test]
    fn order_checker_detects_seq_gaps() {
        let mut c = OrderChecker::new();
        c.observe(&rec(0, 0, 0));
        c.observe(&rec(0, 3, 1)); // dropped 1 and 2
        c.observe(&rec(1, 5, 2)); // first from this sensor: no gap counted
        assert_eq!(c.seq_gaps(), 2);
    }

    #[test]
    fn latency_tracker_summary() {
        let mut t = LatencyTracker::new();
        for i in 1..=100 {
            t.observe(&rec(0, i, 0), UtcMicros::from_micros(i as i64));
        }
        let s = t.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p50 - 50.0).abs() <= 1.0);
        assert!((s.p95 - 95.0).abs() <= 1.0);
    }

    #[test]
    fn summary_stats_edge_cases() {
        assert_eq!(SummaryStats::of(std::iter::empty()).count, 0);
        let one = SummaryStats::of([42.0]);
        assert_eq!(one.count, 1);
        assert_eq!(one.min, 42.0);
        assert_eq!(one.max, 42.0);
        assert_eq!(one.p99, 42.0);
        assert_eq!(one.stddev, 0.0);
        // NaN/inf are filtered, not propagated.
        let s = SummaryStats::of([1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn summary_display_is_compact() {
        let s = SummaryStats::of([1.0, 2.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("n=3"));
        assert!(text.contains("mean=2.0"));
    }
}
