//! # brisk-clock — clocks and distributed clock synchronization
//!
//! "Processes that make up a parallel/distributed system run on processors
//! that may have non-synchronized clocks" (§2). BRISK synchronizes the
//! external-sensor (EXS) clocks "using a modification of Cristian's
//! centralized clock synchronization algorithm" in which "the master (ISM)
//! time is used only as a common reference point for computing relative
//! skews of the slave (EXS) clocks" (§3.3).
//!
//! This crate provides:
//!
//! * [`clock::Clock`] — the read-a-timestamp abstraction, with
//!   [`clock::SystemClock`] (real `gettimeofday` equivalent) and
//!   [`clock::SimClock`] (a simulated clock with configurable constant
//!   offset, drift in parts-per-million and read granularity, driven by a
//!   shared [`clock::SimTimeSource`]);
//! * [`correction::CorrectedClock`] — a clock plus the EXS-maintained
//!   *correction value* added to every raw reading (§3.2), with backward
//!   corrections applied as a bounded-rate slew so per-node corrected
//!   time never reverses;
//! * [`hlc::Hlc`] — a hybrid logical clock generator whose stamps give a
//!   total order consistent with happened-before even when physical
//!   clocks disagree (the `X_HLC` system field);
//! * [`fault::FaultClock`] — a fault-injection wrapper (constant skew,
//!   proportional drift, runtime steps) over any clock, the chaos plane
//!   for live clock-fault experiments;
//! * [`sync`] — the synchronization algorithm itself, written as pure
//!   functions over skew samples so the same code runs on the real TCP
//!   transport and inside the deterministic simulator, plus the
//!   [`sync::SyncMaster`] / [`sync::SyncSlave`] state machines.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod clock;
pub mod correction;
pub mod fault;
pub mod hlc;
pub mod sync;

pub use clock::{Clock, SimClock, SimTimeSource, SystemClock};
pub use correction::CorrectedClock;
pub use fault::FaultClock;
pub use hlc::Hlc;
pub use sync::{Correction, SkewEstimate, SkewSample, SyncMaster, SyncOutcome, SyncSlave};
