//! Clock abstractions: real and simulated time sources.

use brisk_core::UtcMicros;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Something that can be asked for the current time.
///
/// Implementations must be cheap and callable from any thread; BRISK
/// sensors read the clock on every `NOTICE`.
pub trait Clock: Send + Sync {
    /// Current time according to this clock.
    fn now(&self) -> UtcMicros;
}

/// The real system clock — the `gettimeofday` of the paper.
#[derive(Clone, Copy, Debug, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> UtcMicros {
        UtcMicros::now()
    }
}

/// Shared *true time* driving a set of [`SimClock`]s.
///
/// In the simulator there is one authoritative virtual time line; each
/// node's `SimClock` derives its (skewed, drifting) local reading from it.
/// The discrete-event engine advances this source.
#[derive(Clone, Debug)]
pub struct SimTimeSource {
    now_us: Arc<AtomicI64>,
}

impl Default for SimTimeSource {
    fn default() -> Self {
        Self::new()
    }
}

impl SimTimeSource {
    /// New source starting at t = 0.
    pub fn new() -> Self {
        SimTimeSource {
            now_us: Arc::new(AtomicI64::new(0)),
        }
    }

    /// New source starting at the given time.
    pub fn starting_at(t: UtcMicros) -> Self {
        SimTimeSource {
            now_us: Arc::new(AtomicI64::new(t.as_micros())),
        }
    }

    /// Current true time.
    pub fn now(&self) -> UtcMicros {
        UtcMicros::from_micros(self.now_us.load(Ordering::Acquire))
    }

    /// Jump true time to `t`. Panics (in debug builds) on time reversal —
    /// the simulator only ever moves forward.
    pub fn advance_to(&self, t: UtcMicros) {
        let prev = self.now_us.swap(t.as_micros(), Ordering::AcqRel);
        debug_assert!(prev <= t.as_micros(), "simulated time went backwards");
    }

    /// Advance true time by `delta_us`.
    pub fn advance_by(&self, delta_us: i64) {
        debug_assert!(delta_us >= 0);
        self.now_us.fetch_add(delta_us, Ordering::AcqRel);
    }
}

/// A simulated local clock: a skewed, drifting, quantized view of a
/// [`SimTimeSource`].
///
/// `local(t) = (t - epoch) * (1 + drift_ppm/1e6) + epoch + offset`
/// rounded down to `granularity_us`. Drift is applied relative to the
/// source's value when the clock was created, so two clocks created
/// together diverge linearly — the behaviour the paper's synchronization
/// algorithm has to fight.
pub struct SimClock {
    source: SimTimeSource,
    epoch_us: i64,
    drift_ppm: f64,
    offset_us: AtomicI64,
    granularity_us: i64,
}

impl SimClock {
    /// Create a simulated clock.
    ///
    /// * `offset_us` — initial skew from true time,
    /// * `drift_ppm` — rate error in parts per million (+50 ppm gains 50 µs
    ///   per true second),
    /// * `granularity_us` — reading quantum (1 = microsecond clock).
    pub fn new(source: SimTimeSource, offset_us: i64, drift_ppm: f64, granularity_us: i64) -> Self {
        assert!(granularity_us >= 1, "granularity must be at least 1 µs");
        let epoch_us = source.now().as_micros();
        SimClock {
            source,
            epoch_us,
            drift_ppm,
            offset_us: AtomicI64::new(offset_us),
            granularity_us,
        }
    }

    /// The underlying true-time source.
    pub fn source(&self) -> &SimTimeSource {
        &self.source
    }

    /// Current offset (initial skew plus all corrections applied so far).
    pub fn offset_us(&self) -> i64 {
        self.offset_us.load(Ordering::Acquire)
    }

    /// Apply a correction: shift this clock by `delta_us` (positive
    /// advances it). This models the EXS adjusting its clock at the end of
    /// a sync round.
    pub fn adjust(&self, delta_us: i64) {
        self.offset_us.fetch_add(delta_us, Ordering::AcqRel);
    }

    /// The clock's error relative to true time right now (reading minus
    /// true time); what experiments measure but real systems cannot see.
    pub fn error_us(&self) -> i64 {
        self.now().as_micros() - self.source.now().as_micros()
    }
}

impl Clock for SimClock {
    fn now(&self) -> UtcMicros {
        let t = self.source.now().as_micros();
        let elapsed = (t - self.epoch_us) as f64;
        let drifted = self.epoch_us as f64 + elapsed * (1.0 + self.drift_ppm / 1e6);
        let raw = drifted as i64 + self.offset_us.load(Ordering::Acquire);
        let quantized = raw.div_euclid(self.granularity_us) * self.granularity_us;
        UtcMicros::from_micros(quantized)
    }
}

impl<C: Clock + ?Sized> Clock for Arc<C> {
    fn now(&self) -> UtcMicros {
        (**self).now()
    }
}

impl<C: Clock + ?Sized> Clock for &C {
    fn now(&self) -> UtcMicros {
        (**self).now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_ticks() {
        let c = SystemClock;
        let a = c.now();
        assert!(a.as_micros() > 0);
    }

    #[test]
    fn sim_source_advances() {
        let src = SimTimeSource::new();
        assert_eq!(src.now(), UtcMicros::ZERO);
        src.advance_by(1_000);
        assert_eq!(src.now(), UtcMicros::from_millis(1));
        src.advance_to(UtcMicros::from_secs(2));
        assert_eq!(src.now(), UtcMicros::from_secs(2));
    }

    #[test]
    fn sim_clock_offset_applies() {
        let src = SimTimeSource::new();
        let c = SimClock::new(src.clone(), 500, 0.0, 1);
        assert_eq!(c.now(), UtcMicros::from_micros(500));
        src.advance_by(100);
        assert_eq!(c.now(), UtcMicros::from_micros(600));
        assert_eq!(c.error_us(), 500);
    }

    #[test]
    fn sim_clock_drifts_linearly() {
        let src = SimTimeSource::new();
        let c = SimClock::new(src.clone(), 0, 50.0, 1); // +50 ppm
        src.advance_by(1_000_000); // one true second
        assert_eq!(c.now().as_micros(), 1_000_050);
        src.advance_by(1_000_000);
        assert_eq!(c.now().as_micros(), 2_000_100);
    }

    #[test]
    fn negative_drift_lags() {
        let src = SimTimeSource::new();
        let c = SimClock::new(src.clone(), 0, -100.0, 1);
        src.advance_by(10_000_000); // 10 s
        assert_eq!(c.now().as_micros(), 10_000_000 - 1_000);
    }

    #[test]
    fn drift_is_relative_to_creation_epoch() {
        let src = SimTimeSource::new();
        src.advance_by(5_000_000);
        let c = SimClock::new(src.clone(), 0, 100.0, 1);
        // No elapsed time since creation: no drift error yet.
        assert_eq!(c.now(), src.now());
        src.advance_by(1_000_000);
        assert_eq!(c.error_us(), 100);
    }

    #[test]
    fn adjust_shifts_reading() {
        let src = SimTimeSource::new();
        let c = SimClock::new(src.clone(), 0, 0.0, 1);
        c.adjust(250);
        assert_eq!(c.now().as_micros(), 250);
        c.adjust(-100);
        assert_eq!(c.now().as_micros(), 150);
        assert_eq!(c.offset_us(), 150);
    }

    #[test]
    fn granularity_quantizes_readings() {
        let src = SimTimeSource::new();
        let c = SimClock::new(src.clone(), 0, 0.0, 10);
        src.advance_by(27);
        assert_eq!(c.now().as_micros(), 20);
        src.advance_by(3);
        assert_eq!(c.now().as_micros(), 30);
    }

    #[test]
    fn clock_trait_objects_work() {
        let src = SimTimeSource::new();
        let sim: Arc<dyn Clock> = Arc::new(SimClock::new(src.clone(), 7, 0.0, 1));
        assert_eq!(sim.now().as_micros(), 7);
        let r: &dyn Clock = &SystemClock;
        assert!(r.now().as_micros() > 0);
    }

    #[test]
    fn two_clocks_diverge_then_converge_after_adjust() {
        let src = SimTimeSource::new();
        let fast = SimClock::new(src.clone(), 0, 40.0, 1);
        let slow = SimClock::new(src.clone(), 0, -40.0, 1);
        src.advance_by(10_000_000);
        let gap = fast.now().as_micros() - slow.now().as_micros();
        assert_eq!(gap, 800);
        slow.adjust(gap);
        assert_eq!(fast.now(), slow.now());
    }
}
