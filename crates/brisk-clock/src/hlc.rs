//! Hybrid logical clock generator.
//!
//! An HLC stamp ([`HlcStamp`]) pairs a physical timestamp with a logical
//! counter; the generator keeps the physical component close to the local
//! (corrected) wall clock while guaranteeing that every stamp it hands
//! out — and every stamp merged in from a remote batch — is strictly
//! greater than everything it has seen before. Comparing two stamps then
//! gives a total order *consistent with happened-before*: if record A
//! causally precedes record B (same node, or A's stamp travelled to B's
//! node before B was stamped), then `A.hlc < B.hlc`, regardless of how
//! badly the nodes' physical clocks disagree.
//!
//! This is the Kulkarni et al. HLC algorithm: `tick` for local events,
//! `merge` for receive events. The logical counter absorbs whatever the
//! physical clocks get wrong; its high-water mark is exported as
//! telemetry (`brisk_hlc_logical_high_water`) because a large value means
//! physical clocks have diverged badly enough that HLC is doing all the
//! ordering work.

use brisk_core::{HlcStamp, UtcMicros};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, AtomicU32, Ordering};
use std::sync::Arc;

/// A hybrid logical clock: monotonically increasing stamps coupled to a
/// physical clock. Cheap to share (`Arc`) and safe to call from many
/// threads; each stamp is unique and strictly greater than all prior
/// stamps issued or observed by this instance.
#[derive(Debug, Default)]
pub struct Hlc {
    last: Mutex<HlcStamp>,
    /// Largest logical counter ever issued — telemetry only.
    logical_high_water: AtomicU32,
    /// Largest |physical − wall| seen at tick/merge time, µs — telemetry.
    divergence_high_water_us: AtomicI64,
}

impl Hlc {
    /// New generator starting at zero.
    pub fn new() -> Arc<Self> {
        Arc::new(Hlc::default())
    }

    /// Stamp a local event at wall time `now`. The physical component is
    /// `max(now, last.physical)`; the logical counter increments only
    /// when the wall clock has not advanced past the last stamp.
    pub fn tick(&self, now: UtcMicros) -> HlcStamp {
        let mut last = self.last.lock();
        let stamp = if now > last.physical {
            HlcStamp::new(now, 0)
        } else {
            HlcStamp::new(last.physical, last.logical.saturating_add(1))
        };
        *last = stamp;
        drop(last);
        self.note(stamp, now);
        stamp
    }

    /// Observe a stamp from a remote node at local wall time `now`,
    /// returning a fresh stamp strictly greater than both the remote
    /// stamp and everything issued locally. This is the receive rule:
    /// the ISM calls it for each batch record so that downstream stamps
    /// dominate upstream ones.
    pub fn merge(&self, remote: HlcStamp, now: UtcMicros) -> HlcStamp {
        let mut last = self.last.lock();
        let physical = now.max(last.physical).max(remote.physical);
        let logical = if physical == last.physical && physical == remote.physical {
            last.logical.max(remote.logical).saturating_add(1)
        } else if physical == last.physical {
            last.logical.saturating_add(1)
        } else if physical == remote.physical {
            remote.logical.saturating_add(1)
        } else {
            0
        };
        let stamp = HlcStamp::new(physical, logical);
        *last = stamp;
        drop(last);
        self.note(stamp, now);
        stamp
    }

    /// Observe a remote stamp *without* issuing a new one — advances the
    /// internal state so later `tick`s dominate it. Used when a record
    /// already carries a stamp that must be preserved (relay pass-through).
    pub fn observe(&self, remote: HlcStamp) {
        let mut last = self.last.lock();
        if remote > *last {
            *last = remote;
        }
        drop(last);
        let hw = self.logical_high_water.load(Ordering::Relaxed);
        if remote.logical > hw {
            self.logical_high_water
                .fetch_max(remote.logical, Ordering::Relaxed);
        }
    }

    /// Fold a logical counter into the high-water telemetry without
    /// touching the clock state. Lets a batch observer `observe` only the
    /// max stamp (set-max is associative) while keeping the gauge exact:
    /// the batch's largest logical counter may sit on a stamp that is not
    /// the batch maximum.
    pub fn note_logical(&self, logical: u32) {
        self.logical_high_water
            .fetch_max(logical, Ordering::Relaxed);
    }

    /// The most recent stamp issued or observed.
    pub fn last(&self) -> HlcStamp {
        *self.last.lock()
    }

    /// Largest logical counter this instance has issued or observed.
    pub fn logical_high_water(&self) -> u32 {
        self.logical_high_water.load(Ordering::Relaxed)
    }

    /// Largest |physical − wall| divergence seen, in microseconds.
    pub fn divergence_high_water_us(&self) -> i64 {
        self.divergence_high_water_us.load(Ordering::Relaxed)
    }

    fn note(&self, stamp: HlcStamp, now: UtcMicros) {
        self.logical_high_water
            .fetch_max(stamp.logical, Ordering::Relaxed);
        self.divergence_high_water_us
            .fetch_max(stamp.divergence_us(now).abs(), Ordering::Relaxed);
    }

    /// Register this generator's gauges on a telemetry registry, labelled
    /// by `node`: `brisk_hlc_logical_high_water` and
    /// `brisk_hlc_divergence_high_water_us`.
    pub fn bind_telemetry(self: &Arc<Self>, registry: &brisk_telemetry::Registry, node: &str) {
        let labels = [("node", node)];
        let h = Arc::clone(self);
        registry.gauge_fn(
            "brisk_hlc_logical_high_water",
            "Largest HLC logical counter issued or observed",
            &labels,
            move || h.logical_high_water() as i64,
        );
        let h = Arc::clone(self);
        registry.gauge_fn(
            "brisk_hlc_divergence_high_water_us",
            "Largest |HLC physical - wall clock| divergence seen (us)",
            &labels,
            move || h.divergence_high_water_us(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: i64) -> UtcMicros {
        UtcMicros::from_micros(v)
    }

    #[test]
    fn tick_follows_advancing_wall_clock() {
        let h = Hlc::new();
        let a = h.tick(us(100));
        let b = h.tick(us(200));
        assert_eq!(a, HlcStamp::new(us(100), 0));
        assert_eq!(b, HlcStamp::new(us(200), 0));
        assert!(b > a);
        assert_eq!(h.logical_high_water(), 0);
    }

    #[test]
    fn tick_on_stalled_clock_increments_logical() {
        let h = Hlc::new();
        let a = h.tick(us(100));
        let b = h.tick(us(100));
        let c = h.tick(us(50)); // clock even went backwards
        assert!(a < b && b < c);
        assert_eq!(b, HlcStamp::new(us(100), 1));
        assert_eq!(c, HlcStamp::new(us(100), 2));
        assert_eq!(h.logical_high_water(), 2);
    }

    #[test]
    fn merge_dominates_remote_and_local() {
        let h = Hlc::new();
        h.tick(us(100));
        // Remote node is 5 s ahead.
        let remote = HlcStamp::new(us(5_000_100), 7);
        let m = h.merge(remote, us(101));
        assert!(m > remote);
        assert_eq!(m, HlcStamp::new(us(5_000_100), 8));
        // Local ticks after the merge still dominate it even though the
        // local wall clock lags far behind.
        let t = h.tick(us(102));
        assert!(t > m);
        assert_eq!(t.physical, us(5_000_100));
    }

    #[test]
    fn merge_with_fresh_wall_clock_resets_logical() {
        let h = Hlc::new();
        h.tick(us(100));
        let m = h.merge(HlcStamp::new(us(90), 3), us(200));
        assert_eq!(m, HlcStamp::new(us(200), 0));
    }

    #[test]
    fn merge_three_way_tie_takes_max_logical() {
        let h = Hlc::new();
        h.tick(us(100)); // last = (100, 0)
        let m = h.merge(HlcStamp::new(us(100), 9), us(100));
        assert_eq!(m, HlcStamp::new(us(100), 10));
    }

    #[test]
    fn observe_advances_without_issuing() {
        let h = Hlc::new();
        h.tick(us(100));
        h.observe(HlcStamp::new(us(900), 4));
        assert_eq!(h.last(), HlcStamp::new(us(900), 4));
        let t = h.tick(us(101));
        assert!(t > HlcStamp::new(us(900), 4));
        // Observe of an older stamp is a no-op.
        h.observe(HlcStamp::new(us(10), 0));
        assert_eq!(h.last(), t);
        assert_eq!(h.logical_high_water(), 5);
    }

    #[test]
    fn stamps_are_strictly_monotonic_under_interleaving() {
        let h = Hlc::new();
        let mut prev = HlcStamp::ZERO;
        let wall = [10, 10, 9, 50, 50, 3, 51];
        let remote = [
            HlcStamp::new(us(40), 2),
            HlcStamp::new(us(5), 0),
            HlcStamp::new(us(60), 0),
        ];
        let mut r = remote.iter().cycle();
        for (i, &w) in wall.iter().enumerate() {
            let s = if i % 2 == 0 {
                h.tick(us(w))
            } else {
                h.merge(*r.next().unwrap(), us(w))
            };
            assert!(s > prev, "stamp {s} not above {prev}");
            prev = s;
        }
    }

    #[test]
    fn divergence_high_water_tracks_offset() {
        let h = Hlc::new();
        h.tick(us(100));
        h.merge(HlcStamp::new(us(2_000_000), 0), us(100));
        assert!(h.divergence_high_water_us() >= 1_999_900);
    }

    #[test]
    fn telemetry_binding_exposes_gauges() {
        let h = Hlc::new();
        let reg = brisk_telemetry::Registry::new();
        h.bind_telemetry(&reg, "n1");
        h.tick(us(100));
        h.tick(us(100));
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("brisk_hlc_logical_high_water"), Some(1));
    }
}
