//! Clock-fault injection for real deployments.
//!
//! [`SimClock`](crate::SimClock) models skew and drift for the in-process
//! simulator, but it only runs over a [`SimTimeSource`](crate::SimTimeSource). [`FaultClock`]
//! wraps *any* clock — typically [`SystemClock`](crate::SystemClock) in a
//! live `brisk-load`/`brisk-exs` process — and distorts its readings with
//! a constant skew, a proportional drift, and an adjustable step, so a
//! chaos run can hand one node a clock that is seconds wrong without
//! touching the OS clock. The wrapped reading is what the EXS treats as
//! its raw local time; everything downstream (corrections, HLC stamps,
//! sync) sees the faulted view.

use crate::clock::Clock;
use brisk_core::UtcMicros;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A clock whose readings are distorted by configurable faults:
///
/// * `skew_us` — constant offset added to every reading;
/// * `drift_ppm` — proportional error accumulated per elapsed second
///   since construction (1 ppm = 1 µs/s);
/// * a runtime-adjustable *step* ([`FaultClock::step_by`]) modelling a
///   sudden jump, e.g. a misfired NTP correction.
pub struct FaultClock<C: Clock> {
    inner: C,
    epoch_us: i64,
    skew_us: i64,
    drift_ppm: f64,
    step_us: AtomicI64,
}

impl<C: Clock> FaultClock<C> {
    /// Wrap `inner`, distorting readings by `skew_us` and `drift_ppm`.
    /// Drift accumulates from the moment of construction.
    pub fn new(inner: C, skew_us: i64, drift_ppm: f64) -> Arc<Self> {
        let epoch_us = inner.now().as_micros();
        Arc::new(FaultClock {
            inner,
            epoch_us,
            skew_us,
            drift_ppm,
            step_us: AtomicI64::new(0),
        })
    }

    /// Inject a sudden step of `delta_us` (positive jumps the clock
    /// forward, negative backwards) on top of skew and drift.
    pub fn step_by(&self, delta_us: i64) {
        self.step_us.fetch_add(delta_us, Ordering::AcqRel);
    }

    /// Total injected step so far.
    pub fn step_us(&self) -> i64 {
        self.step_us.load(Ordering::Acquire)
    }

    /// The fault-free inner clock.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// This clock's current error versus the inner clock, in µs.
    pub fn error_us(&self) -> i64 {
        self.now().as_micros() - self.inner.now().as_micros()
    }
}

impl<C: Clock> Clock for FaultClock<C> {
    fn now(&self) -> UtcMicros {
        let t = self.inner.now().as_micros();
        let elapsed = (t - self.epoch_us) as f64;
        let drifted = self.epoch_us as f64 + elapsed * (1.0 + self.drift_ppm / 1e6);
        UtcMicros::from_micros(
            drifted.round() as i64 + self.skew_us + self.step_us.load(Ordering::Acquire),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SimClock, SimTimeSource};

    fn base(src: &SimTimeSource) -> SimClock {
        SimClock::new(src.clone(), 0, 0.0, 1)
    }

    #[test]
    fn no_faults_is_transparent() {
        let src = SimTimeSource::new();
        src.advance_by(500);
        let fc = FaultClock::new(base(&src), 0, 0.0);
        assert_eq!(fc.now(), UtcMicros::from_micros(500));
        src.advance_by(100);
        assert_eq!(fc.now(), UtcMicros::from_micros(600));
        assert_eq!(fc.error_us(), 0);
    }

    #[test]
    fn skew_offsets_every_reading() {
        let src = SimTimeSource::new();
        let fc = FaultClock::new(base(&src), -2_000_000, 0.0);
        src.advance_by(1_000);
        assert_eq!(fc.now(), UtcMicros::from_micros(1_000 - 2_000_000));
        assert_eq!(fc.error_us(), -2_000_000);
    }

    #[test]
    fn drift_accumulates_with_elapsed_time() {
        let src = SimTimeSource::new();
        let fc = FaultClock::new(base(&src), 0, 1_000.0); // 1000 ppm = 1 ms/s
        src.advance_by(1_000_000); // 1 s
        assert_eq!(fc.now(), UtcMicros::from_micros(1_001_000));
    }

    #[test]
    fn step_jumps_and_accumulates() {
        let src = SimTimeSource::new();
        let fc = FaultClock::new(base(&src), 0, 0.0);
        src.advance_by(10);
        fc.step_by(3_000_000);
        assert_eq!(fc.now(), UtcMicros::from_micros(3_000_010));
        fc.step_by(-1_000_000);
        assert_eq!(fc.step_us(), 2_000_000);
        assert_eq!(fc.now(), UtcMicros::from_micros(2_000_010));
    }

    #[test]
    fn faults_compose() {
        let src = SimTimeSource::new();
        let fc = FaultClock::new(base(&src), 500, 1_000.0);
        src.advance_by(1_000_000);
        fc.step_by(-100);
        // drift 1 ms + skew 500 µs − step 100 µs over 1 s elapsed.
        assert_eq!(
            fc.now(),
            UtcMicros::from_micros(1_000_000 + 1_000 + 500 - 100)
        );
    }
}
