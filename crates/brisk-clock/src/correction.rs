//! The EXS-maintained correction value.
//!
//! "The raw local time is obtained by a call to `gettimeofday` … which is
//! added to a correction value maintained by the EXS, before sending the
//! record to the ISM" (§3.2). [`CorrectedClock`] packages a raw clock with
//! that correction value; the sync slave adjusts the correction, never the
//! underlying clock (stepping the OS clock would perturb the application).

use crate::clock::Clock;
use brisk_core::UtcMicros;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// A clock plus an atomically-updatable correction value (microseconds).
pub struct CorrectedClock<C: Clock> {
    raw: C,
    correction_us: AtomicI64,
}

impl<C: Clock> CorrectedClock<C> {
    /// Wrap a raw clock with zero initial correction.
    pub fn new(raw: C) -> Arc<Self> {
        Arc::new(CorrectedClock {
            raw,
            correction_us: AtomicI64::new(0),
        })
    }

    /// Raw, uncorrected reading.
    pub fn raw_now(&self) -> UtcMicros {
        self.raw.now()
    }

    /// Current correction value in microseconds.
    pub fn correction_us(&self) -> i64 {
        self.correction_us.load(Ordering::Acquire)
    }

    /// Add `delta_us` to the correction value (a sync-round adjustment).
    pub fn adjust(&self, delta_us: i64) {
        self.correction_us.fetch_add(delta_us, Ordering::AcqRel);
    }

    /// Overwrite the correction value.
    pub fn set_correction(&self, value_us: i64) {
        self.correction_us.store(value_us, Ordering::Release);
    }

    /// Access the wrapped raw clock.
    pub fn raw_clock(&self) -> &C {
        &self.raw
    }
}

impl<C: Clock> Clock for CorrectedClock<C> {
    /// Corrected reading: raw time plus the correction value.
    fn now(&self) -> UtcMicros {
        self.raw
            .now()
            .offset(self.correction_us.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SimClock, SimTimeSource};

    #[test]
    fn zero_correction_is_transparent() {
        let src = SimTimeSource::new();
        src.advance_by(123);
        let cc = CorrectedClock::new(SimClock::new(src.clone(), 0, 0.0, 1));
        assert_eq!(cc.now(), cc.raw_now());
        assert_eq!(cc.correction_us(), 0);
    }

    #[test]
    fn adjust_accumulates() {
        let src = SimTimeSource::new();
        let cc = CorrectedClock::new(SimClock::new(src.clone(), 0, 0.0, 1));
        cc.adjust(100);
        cc.adjust(-30);
        assert_eq!(cc.correction_us(), 70);
        assert_eq!(cc.now().as_micros(), 70);
        assert_eq!(cc.raw_now().as_micros(), 0);
    }

    #[test]
    fn set_correction_overwrites() {
        let src = SimTimeSource::new();
        let cc = CorrectedClock::new(SimClock::new(src.clone(), 0, 0.0, 1));
        cc.adjust(500);
        cc.set_correction(-5);
        assert_eq!(cc.correction_us(), -5);
        src.advance_by(10);
        assert_eq!(cc.now().as_micros(), 5);
    }

    #[test]
    fn correction_composes_with_skewed_raw_clock() {
        let src = SimTimeSource::new();
        // Raw clock is 1 ms ahead of true time; correction cancels it.
        let cc = CorrectedClock::new(SimClock::new(src.clone(), 1_000, 0.0, 1));
        cc.adjust(-1_000);
        src.advance_by(42);
        assert_eq!(cc.now().as_micros(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let src = SimTimeSource::new();
        let cc = CorrectedClock::new(SimClock::new(src.clone(), 0, 0.0, 1));
        let cc2 = Arc::clone(&cc);
        let h = std::thread::spawn(move || {
            cc2.adjust(11);
        });
        h.join().unwrap();
        assert_eq!(cc.correction_us(), 11);
    }
}
