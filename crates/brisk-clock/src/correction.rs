//! The EXS-maintained correction value.
//!
//! "The raw local time is obtained by a call to `gettimeofday` … which is
//! added to a correction value maintained by the EXS, before sending the
//! record to the ISM" (§3.2). [`CorrectedClock`] packages a raw clock with
//! that correction value; the sync slave adjusts the correction, never the
//! underlying clock (stepping the OS clock would perturb the application).
//!
//! ## Slewing
//!
//! Applying a correction as an instant step is fine when it moves the
//! clock *forward* — corrected time jumps ahead, but never reverses. A
//! *backward* step (a negative adjustment, as Cristian-mode sync or a
//! recovering master can issue) would make corrected timestamps go
//! backwards mid-stream, handing the ISM sorter a self-inflicted tachyon
//! storm. So [`CorrectedClock::adjust`] applies backward corrections as a
//! bounded-rate *slew*: the effective correction glides from its current
//! value to the new target at [`SLEW_RATE_PPM`] (0.5 µs of correction per
//! raw µs), which keeps corrected time strictly advancing at ≥ half wall
//! speed until the target is reached. The slew window is therefore
//! `2 × |backward gap|` of raw time. Forward corrections stay instant.

use crate::clock::Clock;
use brisk_core::UtcMicros;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Slew rate in parts-per-million of raw time: the effective correction
/// moves 0.5 µs per raw µs, so corrected time advances at no less than
/// half wall speed while a backward correction drains.
pub const SLEW_RATE_PPM: i64 = 500_000;

/// An in-flight backward correction, interpolated on the raw timeline.
#[derive(Clone, Copy, Debug)]
struct Slew {
    /// Effective correction when the slew started.
    from_us: i64,
    /// Target correction (always < `from_us`; forward moves are instant).
    target_us: i64,
    /// Raw-clock reading when the slew started.
    start_raw_us: i64,
}

impl Slew {
    /// Effective correction at raw time `raw_us`, and whether the slew
    /// has fully drained.
    fn at(&self, raw_us: i64) -> (i64, bool) {
        let elapsed = (raw_us - self.start_raw_us).max(0);
        let moved = elapsed.saturating_mul(SLEW_RATE_PPM) / 1_000_000;
        let gap = self.from_us - self.target_us;
        if moved >= gap {
            (self.target_us, true)
        } else {
            (self.from_us - moved, false)
        }
    }
}

/// A clock plus an atomically-updatable correction value (microseconds).
pub struct CorrectedClock<C: Clock> {
    raw: C,
    /// The *target* correction; during a slew the effective value lags it.
    correction_us: AtomicI64,
    /// Fast-path flag: `now()` skips the slew lock when no slew runs.
    slewing: AtomicBool,
    slew: Mutex<Option<Slew>>,
    slews_started: AtomicU64,
}

impl<C: Clock> CorrectedClock<C> {
    /// Wrap a raw clock with zero initial correction.
    pub fn new(raw: C) -> Arc<Self> {
        Arc::new(CorrectedClock {
            raw,
            correction_us: AtomicI64::new(0),
            slewing: AtomicBool::new(false),
            slew: Mutex::new(None),
            slews_started: AtomicU64::new(0),
        })
    }

    /// Raw, uncorrected reading.
    pub fn raw_now(&self) -> UtcMicros {
        self.raw.now()
    }

    /// Target correction value in microseconds. During a slew the
    /// *effective* correction ([`Self::effective_correction_us`]) lags
    /// this; the target is what reconnects carry over.
    pub fn correction_us(&self) -> i64 {
        self.correction_us.load(Ordering::Acquire)
    }

    /// The correction actually applied to readings right now — equal to
    /// the target except while a backward correction is slewing in.
    pub fn effective_correction_us(&self) -> i64 {
        if !self.slewing.load(Ordering::Acquire) {
            return self.correction_us.load(Ordering::Acquire);
        }
        self.effective_locked(self.raw.now().as_micros())
    }

    fn effective_locked(&self, raw_us: i64) -> i64 {
        let mut guard = self.slew.lock();
        match *guard {
            Some(s) => {
                let (eff, done) = s.at(raw_us);
                if done {
                    *guard = None;
                    self.slewing.store(false, Ordering::Release);
                }
                eff
            }
            None => self.correction_us.load(Ordering::Acquire),
        }
    }

    /// Add `delta_us` to the correction value (a sync-round adjustment).
    /// Forward moves apply instantly; backward moves slew (see module
    /// docs), so per-node corrected time never goes backwards.
    pub fn adjust(&self, delta_us: i64) {
        let raw_us = self.raw.now().as_micros();
        let mut guard = self.slew.lock();
        let current = match *guard {
            Some(s) => s.at(raw_us).0,
            None => self.correction_us.load(Ordering::Acquire),
        };
        let target = self
            .correction_us
            .load(Ordering::Acquire)
            .saturating_add(delta_us);
        self.correction_us.store(target, Ordering::Release);
        if target >= current {
            *guard = None;
            self.slewing.store(false, Ordering::Release);
        } else {
            *guard = Some(Slew {
                from_us: current,
                target_us: target,
                start_raw_us: raw_us,
            });
            self.slewing.store(true, Ordering::Release);
            self.slews_started.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Overwrite the correction value as an instant step, cancelling any
    /// active slew. This is the *startup* path — a supervisor restoring a
    /// carried correction before the stream restarts — where no record
    /// can observe the step.
    pub fn set_correction(&self, value_us: i64) {
        let mut guard = self.slew.lock();
        self.correction_us.store(value_us, Ordering::Release);
        *guard = None;
        self.slewing.store(false, Ordering::Release);
    }

    /// True while a backward correction is still slewing in.
    pub fn slew_active(&self) -> bool {
        if !self.slewing.load(Ordering::Acquire) {
            return false;
        }
        // Resolve: the slew may have drained since the last read.
        self.effective_locked(self.raw.now().as_micros());
        self.slewing.load(Ordering::Acquire)
    }

    /// Number of backward corrections that entered a slew, monotonic.
    pub fn slews_started_total(&self) -> u64 {
        self.slews_started.load(Ordering::Relaxed)
    }

    /// Access the wrapped raw clock.
    pub fn raw_clock(&self) -> &C {
        &self.raw
    }
}

impl<C: Clock + 'static> CorrectedClock<C> {
    /// Register this clock's gauges on a telemetry registry:
    /// `brisk_clock_slew_active`, `brisk_clock_slews_total` and
    /// `brisk_clock_correction_us`, labelled by `node`.
    pub fn bind_telemetry(self: &Arc<Self>, registry: &brisk_telemetry::Registry, node: &str) {
        let labels = [("node", node)];
        let c = Arc::clone(self);
        registry.gauge_fn(
            "brisk_clock_slew_active",
            "1 while a backward clock correction is slewing in, else 0",
            &labels,
            move || c.slew_active() as i64,
        );
        let c = Arc::clone(self);
        registry.counter_fn(
            "brisk_clock_slews_total",
            "Backward clock corrections applied as a bounded slew",
            &labels,
            move || c.slews_started_total(),
        );
        let c = Arc::clone(self);
        registry.gauge_fn(
            "brisk_clock_correction_us",
            "Target clock correction value in microseconds",
            &labels,
            move || c.correction_us(),
        );
    }
}

impl<C: Clock> Clock for CorrectedClock<C> {
    /// Corrected reading: raw time plus the (effective) correction value.
    fn now(&self) -> UtcMicros {
        let raw = self.raw.now();
        if !self.slewing.load(Ordering::Acquire) {
            return raw.offset(self.correction_us.load(Ordering::Acquire));
        }
        raw.offset(self.effective_locked(raw.as_micros()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SimClock, SimTimeSource};

    fn clock(src: &SimTimeSource) -> Arc<CorrectedClock<SimClock>> {
        CorrectedClock::new(SimClock::new(src.clone(), 0, 0.0, 1))
    }

    #[test]
    fn zero_correction_is_transparent() {
        let src = SimTimeSource::new();
        src.advance_by(123);
        let cc = clock(&src);
        assert_eq!(cc.now(), cc.raw_now());
        assert_eq!(cc.correction_us(), 0);
        assert!(!cc.slew_active());
    }

    #[test]
    fn forward_adjust_is_instant() {
        let src = SimTimeSource::new();
        let cc = clock(&src);
        cc.adjust(100);
        assert_eq!(cc.correction_us(), 100);
        assert_eq!(cc.now().as_micros(), 100);
        assert!(!cc.slew_active());
        assert_eq!(cc.slews_started_total(), 0);
    }

    #[test]
    fn backward_adjust_slews_at_half_rate() {
        let src = SimTimeSource::new();
        let cc = clock(&src);
        cc.adjust(1_000);
        // Pull 400 µs back: the effective correction drains at 0.5 µs/µs,
        // reaching the target after 800 µs of raw time.
        cc.adjust(-400);
        assert_eq!(cc.correction_us(), 600, "target moves immediately");
        assert_eq!(cc.effective_correction_us(), 1_000);
        assert!(cc.slew_active());
        assert_eq!(cc.slews_started_total(), 1);
        src.advance_by(400);
        assert_eq!(cc.effective_correction_us(), 800);
        assert_eq!(cc.now().as_micros(), 1_200);
        src.advance_by(400);
        assert_eq!(cc.effective_correction_us(), 600);
        assert!(!cc.slew_active());
        assert_eq!(cc.now().as_micros(), 1_400);
    }

    #[test]
    fn corrected_time_is_monotonic_through_a_backward_step() {
        let src = SimTimeSource::new();
        let cc = clock(&src);
        let mut last = cc.now();
        cc.adjust(-5_000); // big backward step: would reverse time if instant
        for _ in 0..200 {
            src.advance_by(100);
            let t = cc.now();
            assert!(t > last, "corrected time went backwards: {t:?} <= {last:?}");
            last = t;
        }
        // Slew complete (20 ms elapsed ≫ 10 ms window); fully applied.
        assert_eq!(cc.effective_correction_us(), -5_000);
        assert!(!cc.slew_active());
    }

    #[test]
    fn backward_adjust_during_slew_restarts_from_current_effective() {
        let src = SimTimeSource::new();
        let cc = clock(&src);
        cc.adjust(-1_000);
        src.advance_by(1_000); // halfway: effective = -500
        assert_eq!(cc.effective_correction_us(), -500);
        cc.adjust(-1_000); // target now -2000, slews on from -500
        assert_eq!(cc.correction_us(), -2_000);
        assert_eq!(cc.effective_correction_us(), -500);
        assert_eq!(cc.slews_started_total(), 2);
        src.advance_by(3_000);
        assert_eq!(cc.effective_correction_us(), -2_000);
    }

    #[test]
    fn forward_adjust_cancels_slew_when_it_overtakes() {
        let src = SimTimeSource::new();
        let cc = clock(&src);
        cc.adjust(-1_000);
        assert!(cc.slew_active());
        // A forward correction past the current effective value lands
        // instantly and ends the slew.
        cc.adjust(2_000);
        assert_eq!(cc.correction_us(), 1_000);
        assert_eq!(cc.effective_correction_us(), 1_000);
        assert!(!cc.slew_active());
    }

    #[test]
    fn set_correction_overwrites_instantly() {
        let src = SimTimeSource::new();
        let cc = clock(&src);
        cc.adjust(500);
        cc.set_correction(-5);
        assert_eq!(cc.correction_us(), -5);
        assert!(!cc.slew_active());
        src.advance_by(10);
        assert_eq!(cc.now().as_micros(), 5);
    }

    #[test]
    fn correction_composes_with_skewed_raw_clock() {
        let src = SimTimeSource::new();
        // Raw clock is 1 ms ahead of true time; correction cancels it
        // once the (backward) slew has drained.
        let cc = CorrectedClock::new(SimClock::new(src.clone(), 1_000, 0.0, 1));
        cc.adjust(-1_000);
        src.advance_by(2_500);
        assert_eq!(cc.effective_correction_us(), -1_000);
        src.advance_by(42);
        assert_eq!(cc.now().as_micros(), 2_500 + 42);
    }

    #[test]
    fn shared_across_threads() {
        let src = SimTimeSource::new();
        let cc = clock(&src);
        let cc2 = Arc::clone(&cc);
        let h = std::thread::spawn(move || {
            cc2.adjust(11);
        });
        h.join().unwrap();
        assert_eq!(cc.correction_us(), 11);
    }

    #[test]
    fn telemetry_binding_exposes_slew_state() {
        let src = SimTimeSource::new();
        let cc = clock(&src);
        let reg = brisk_telemetry::Registry::new();
        cc.bind_telemetry(&reg, "n1");
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("brisk_clock_slew_active"), Some(0));
        cc.adjust(-1_000);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("brisk_clock_slew_active"), Some(1));
        assert_eq!(snap.counter_total("brisk_clock_slews_total"), 1);
        src.advance_by(5_000);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("brisk_clock_slew_active"), Some(0));
        assert_eq!(snap.gauge("brisk_clock_correction_us"), Some(-1_000));
    }
}
