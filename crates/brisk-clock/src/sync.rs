//! The modified Cristian clock-synchronization algorithm (§3.3).
//!
//! Cristian's algorithm: a master polls slaves in rounds, measures the
//! difference between its clock and each slave's, and tells the slaves to
//! adjust. BRISK's modification: "the master (ISM) time is used only as a
//! common reference point for computing relative skews of the slave (EXS)
//! clocks … it is important that the EXS clocks be as close to each other
//! as possible, while it is not necessary for them to be close to the ISM
//! clock."
//!
//! Per round:
//!
//! 1. Each slave's skew relative to the master is estimated from
//!    poll/reply samples ([`estimate_skew`]).
//! 2. The slave with the **maximum** skew — the most-ahead clock — is
//!    selected as the reference.
//! 3. The other slaves' skews *relative to the reference* (all
//!    non-negative) and their average are computed.
//! 4. **Only slaves whose relative skew exceeds the average are advanced**;
//!    this conservatively accounts for network noise and avoids promoting
//!    another clock to "fastest" erroneously.
//! 5. The correction is the full relative skew if the average is above a
//!    small threshold, otherwise a fixed portion of it (0.7) — again
//!    conservative, "because the EXS clocks cannot be perfectly
//!    synchronized in practice".
//!
//! All corrections are therefore *advances* (non-negative), "at the cost of
//! small positive drifts of the EXS clocks". Setting
//! [`brisk_core::SyncConfig::original_cristian`] switches to the textbook
//! algorithm (every slave fully corrected toward the master) for the A1
//! ablation experiment.

use crate::clock::Clock;
use crate::correction::CorrectedClock;
use brisk_core::{BriskError, NodeId, Result, SyncConfig, UtcMicros};
use brisk_telemetry::{Counter, Histogram, Registry};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// One poll/reply observation of a slave clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SkewSample {
    /// Master clock when the poll was sent.
    pub t_master_send: UtcMicros,
    /// Slave clock embedded in the reply.
    pub t_slave: UtcMicros,
    /// Master clock when the reply arrived.
    pub t_master_recv: UtcMicros,
}

impl SkewSample {
    /// Round-trip time seen by the master.
    pub fn rtt_us(&self) -> i64 {
        self.t_master_recv - self.t_master_send
    }

    /// Estimated slave−master skew: the slave's reading minus the master's
    /// midpoint estimate of when the slave read its clock (Cristian's
    /// interpolation).
    pub fn skew_us(&self) -> i64 {
        let midpoint = self.t_master_send.as_micros() + self.rtt_us() / 2;
        self.t_slave.as_micros() - midpoint
    }
}

/// Aggregated per-slave skew estimate for one round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SkewEstimate {
    /// The slave node.
    pub node: NodeId,
    /// Estimated slave−master skew in microseconds.
    pub skew_us: i64,
    /// Smallest RTT among the samples used.
    pub min_rtt_us: i64,
    /// How many samples survived noise filtering.
    pub samples_used: usize,
}

/// Combine a slave's samples into one estimate.
///
/// Samples whose RTT exceeds twice the round's minimum are discarded as
/// network noise (a queued packet inflates the interpolation error bound by
/// its extra delay); the rest are averaged, following the paper's "repeated
/// a number of times for each slave to average the results".
pub fn estimate_skew(node: NodeId, samples: &[SkewSample]) -> Result<SkewEstimate> {
    if samples.is_empty() {
        return Err(BriskError::Sync(format!("no samples for node {node}")));
    }
    if samples.iter().any(|s| s.rtt_us() < 0) {
        return Err(BriskError::Sync(format!(
            "negative RTT in samples for node {node}"
        )));
    }
    let min_rtt = samples.iter().map(SkewSample::rtt_us).min().unwrap();
    let cutoff = (min_rtt * 2).max(min_rtt + 1);
    let used: Vec<i64> = samples
        .iter()
        .filter(|s| s.rtt_us() <= cutoff)
        .map(SkewSample::skew_us)
        .collect();
    let sum: i64 = used.iter().sum();
    let skew = sum / used.len() as i64;
    Ok(SkewEstimate {
        node,
        skew_us: skew,
        min_rtt_us: min_rtt,
        samples_used: used.len(),
    })
}

/// An adjustment to send to one slave.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Correction {
    /// The slave to adjust.
    pub node: NodeId,
    /// Microseconds to add to the slave's correction value. Non-negative
    /// under the BRISK algorithm; may be negative under original Cristian.
    pub advance_us: i64,
}

/// Result of planning one round.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SyncOutcome {
    /// The reference (most-ahead) slave, if the BRISK variant ran.
    pub reference: Option<NodeId>,
    /// Average relative skew of the non-reference slaves (µs).
    pub avg_rel_skew_us: f64,
    /// Largest relative skew observed this round (µs).
    pub max_rel_skew_us: i64,
    /// The corrections to apply.
    pub corrections: Vec<Correction>,
}

/// Plan the corrections for one round from the slaves' skew estimates.
pub fn plan_corrections(cfg: &SyncConfig, estimates: &[SkewEstimate]) -> SyncOutcome {
    if cfg.original_cristian {
        return plan_original(estimates);
    }
    plan_brisk(cfg, estimates)
}

fn plan_original(estimates: &[SkewEstimate]) -> SyncOutcome {
    // Textbook Cristian: drive every slave to the master clock.
    let corrections: Vec<Correction> = estimates
        .iter()
        .map(|e| Correction {
            node: e.node,
            advance_us: -e.skew_us,
        })
        .collect();
    let max_abs = estimates.iter().map(|e| e.skew_us.abs()).max().unwrap_or(0);
    let avg = if estimates.is_empty() {
        0.0
    } else {
        estimates
            .iter()
            .map(|e| e.skew_us.abs() as f64)
            .sum::<f64>()
            / estimates.len() as f64
    };
    SyncOutcome {
        reference: None,
        avg_rel_skew_us: avg,
        max_rel_skew_us: max_abs,
        corrections,
    }
}

fn plan_brisk(cfg: &SyncConfig, estimates: &[SkewEstimate]) -> SyncOutcome {
    let Some(reference) = estimates.iter().max_by_key(|e| (e.skew_us, e.node.raw())) else {
        return SyncOutcome::default();
    };
    let others: Vec<&SkewEstimate> = estimates
        .iter()
        .filter(|e| e.node != reference.node)
        .collect();
    if others.is_empty() {
        // A single slave is trivially "synchronized with itself".
        return SyncOutcome {
            reference: Some(reference.node),
            ..SyncOutcome::default()
        };
    }
    // Relative skews are measured against the most-ahead clock, hence all
    // non-negative ("as absolute values").
    let rel: Vec<(NodeId, i64)> = others
        .iter()
        .map(|e| (e.node, reference.skew_us - e.skew_us))
        .collect();
    let avg = rel.iter().map(|&(_, r)| r as f64).sum::<f64>() / rel.len() as f64;
    let max_rel = rel.iter().map(|&(_, r)| r).max().unwrap_or(0);
    let full = avg > cfg.skew_threshold_us as f64;
    // "Only the EXS clocks whose relative skews are above the average are
    // advanced." With a single non-reference slave its skew *is* the
    // average, which would deadlock a two-node system; in that degenerate
    // case any positive skew counts as above-average.
    let single = rel.len() == 1;
    let corrections = rel
        .iter()
        .filter(|&&(_, r)| if single { r > 0 } else { (r as f64) > avg })
        .map(|&(node, r)| Correction {
            node,
            advance_us: if full {
                r
            } else {
                (cfg.damping * r as f64) as i64
            },
        })
        .collect();
    SyncOutcome {
        reference: Some(reference.node),
        avg_rel_skew_us: avg,
        max_rel_skew_us: max_rel,
        corrections,
    }
}

/// Master-side state machine: accumulates samples for the current round and
/// plans corrections when the round closes. Transport-agnostic — the ISM's
/// sync loop feeds it samples gathered over whatever channel is in use.
///
/// ```
/// use brisk_clock::{SkewSample, SyncMaster};
/// use brisk_core::{NodeId, SyncConfig, UtcMicros};
///
/// let mut master = SyncMaster::new(SyncConfig::default()).unwrap();
/// master.begin_round();
/// // One slave answers 100 µs ahead of the master midpoint, one 900 µs.
/// for (node, slave_us) in [(0, 150), (1, 950)] {
///     master.add_sample(NodeId(node), SkewSample {
///         t_master_send: UtcMicros::from_micros(0),
///         t_slave: UtcMicros::from_micros(slave_us),
///         t_master_recv: UtcMicros::from_micros(100),
///     });
/// }
/// let outcome = master.finish_round().unwrap();
/// // The most-ahead slave is the reference; the laggard is advanced to it.
/// assert_eq!(outcome.reference, Some(NodeId(1)));
/// assert_eq!(outcome.corrections[0].node, NodeId(0));
/// assert_eq!(outcome.corrections[0].advance_us, 800);
/// ```
#[derive(Debug)]
pub struct SyncMaster {
    cfg: SyncConfig,
    round: u64,
    samples: BTreeMap<NodeId, Vec<SkewSample>>,
    /// Accepted RTTs per node, kept across rounds (bounded ring). The
    /// intra-round min-RTT filter in [`estimate_skew`] cannot catch a round
    /// where *every* sample is delayed — a congestion spike inflates the
    /// minimum itself — so incoming samples are also checked against the
    /// rolling median of this history.
    rtt_history: BTreeMap<NodeId, VecDeque<i64>>,
    rtt_outliers: u64,
    last_outcome: Option<SyncOutcome>,
    rounds_completed: u64,
    telemetry: Option<SyncTelemetry>,
}

/// How many accepted RTTs to remember per node.
const RTT_HISTORY_LEN: usize = 64;
/// Outlier rejection stays off until the history holds at least this many
/// entries, so a cold start cannot misclassify the first real samples.
const RTT_HISTORY_MIN: usize = 8;

fn rolling_median(history: &VecDeque<i64>) -> i64 {
    let mut sorted: Vec<i64> = history.iter().copied().collect();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

/// Telemetry series the master feeds once bound to a registry.
#[derive(Debug)]
struct SyncTelemetry {
    /// Per-slave |skew| estimate each round, in µs.
    skew_us: Arc<Histogram>,
    /// Per-slave minimum RTT each round, in µs.
    rtt_us: Arc<Histogram>,
    rounds: Arc<Counter>,
    corrections: Arc<Counter>,
    rtt_outliers: Arc<Counter>,
}

impl SyncMaster {
    /// New master with the given knobs.
    pub fn new(cfg: SyncConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(SyncMaster {
            cfg,
            round: 0,
            samples: BTreeMap::new(),
            rtt_history: BTreeMap::new(),
            rtt_outliers: 0,
            last_outcome: None,
            rounds_completed: 0,
            telemetry: None,
        })
    }

    /// Register the master's sync-quality series with a telemetry
    /// registry: `brisk_sync_skew_us` and `brisk_sync_rtt_us` histograms
    /// (one observation per slave per round) plus
    /// `brisk_sync_rounds_total` and `brisk_sync_corrections_total`.
    pub fn bind_telemetry(&mut self, registry: &Registry) {
        let skew_us = Arc::new(Histogram::new());
        let rtt_us = Arc::new(Histogram::new());
        registry.register_histogram(
            "brisk_sync_skew_us",
            "Per-slave absolute skew estimate per sync round",
            &[],
            &skew_us,
        );
        registry.register_histogram(
            "brisk_sync_rtt_us",
            "Per-slave minimum poll round-trip time per sync round",
            &[],
            &rtt_us,
        );
        self.telemetry = Some(SyncTelemetry {
            skew_us,
            rtt_us,
            rounds: registry.counter("brisk_sync_rounds_total", "Sync rounds completed"),
            corrections: registry
                .counter("brisk_sync_corrections_total", "Slave corrections issued"),
            rtt_outliers: registry.counter(
                "brisk_sync_rtt_outliers_total",
                "Poll samples rejected against the rolling per-node RTT median",
            ),
        });
    }

    /// The configured knobs.
    pub fn config(&self) -> &SyncConfig {
        &self.cfg
    }

    /// Start a new round, discarding any samples from an unfinished one.
    /// Returns the round number.
    pub fn begin_round(&mut self) -> u64 {
        self.round += 1;
        self.samples.clear();
        self.round
    }

    /// How many times the master should poll each slave per round.
    pub fn samples_per_slave(&self) -> usize {
        self.cfg.samples_per_slave
    }

    /// Record one poll/reply observation for `node`.
    ///
    /// Samples whose RTT exceeds [`brisk_core::SyncConfig::rtt_outlier_multiple`]
    /// times the node's rolling RTT median (built from previously accepted
    /// samples) are dropped before they can bias the round; rejected RTTs do
    /// not enter the history, so a sustained congestion spike cannot drag
    /// the median up and launder itself into acceptance.
    pub fn add_sample(&mut self, node: NodeId, sample: SkewSample) {
        let rtt = sample.rtt_us();
        if rtt >= 0 {
            if self.is_rtt_outlier(node, rtt) {
                self.rtt_outliers += 1;
                if let Some(t) = &self.telemetry {
                    t.rtt_outliers.inc();
                }
                return;
            }
            let history = self.rtt_history.entry(node).or_default();
            if history.len() == RTT_HISTORY_LEN {
                history.pop_front();
            }
            history.push_back(rtt);
        }
        self.samples.entry(node).or_default().push(sample);
    }

    fn is_rtt_outlier(&self, node: NodeId, rtt: i64) -> bool {
        let multiple = self.cfg.rtt_outlier_multiple;
        if multiple == 0.0 {
            return false;
        }
        let Some(history) = self.rtt_history.get(&node) else {
            return false;
        };
        if history.len() < RTT_HISTORY_MIN {
            return false;
        }
        rtt as f64 > multiple * rolling_median(history) as f64
    }

    /// Samples rejected so far against the rolling RTT median.
    pub fn rtt_outliers_rejected(&self) -> u64 {
        self.rtt_outliers
    }

    /// Close the round: estimate skews and plan corrections. Slaves that
    /// produced no usable samples this round are skipped (they keep their
    /// previous correction).
    pub fn finish_round(&mut self) -> Result<SyncOutcome> {
        let mut estimates = Vec::with_capacity(self.samples.len());
        for (&node, samples) in &self.samples {
            match estimate_skew(node, samples) {
                Ok(e) => estimates.push(e),
                Err(_) if samples.is_empty() => {}
                Err(e) => return Err(e),
            }
        }
        let outcome = plan_corrections(&self.cfg, &estimates);
        self.rounds_completed += 1;
        if let Some(t) = &self.telemetry {
            for e in &estimates {
                t.skew_us.record(e.skew_us.unsigned_abs());
                t.rtt_us.record(e.min_rtt_us.max(0) as u64);
            }
            t.rounds.inc();
            t.corrections.add(outcome.corrections.len() as u64);
        }
        self.last_outcome = Some(outcome.clone());
        self.samples.clear();
        Ok(outcome)
    }

    /// The most recent round's outcome.
    pub fn last_outcome(&self) -> Option<&SyncOutcome> {
        self.last_outcome.as_ref()
    }

    /// Rounds completed so far.
    pub fn rounds_completed(&self) -> u64 {
        self.rounds_completed
    }
}

/// Slave-side handler: answers polls with the corrected local time and
/// applies adjustments to the correction value.
pub struct SyncSlave<C: Clock> {
    clock: Arc<CorrectedClock<C>>,
    adjustments_applied: u64,
}

impl<C: Clock> SyncSlave<C> {
    /// New slave serving the given corrected clock.
    pub fn new(clock: Arc<CorrectedClock<C>>) -> Self {
        SyncSlave {
            clock,
            adjustments_applied: 0,
        }
    }

    /// Answer a poll: the slave's current (corrected) time.
    pub fn on_poll(&self) -> UtcMicros {
        self.clock.now()
    }

    /// Apply a correction received from the master.
    pub fn on_adjust(&mut self, advance_us: i64) {
        self.clock.adjust(advance_us);
        self.adjustments_applied += 1;
    }

    /// The clock this slave manages.
    pub fn clock(&self) -> &Arc<CorrectedClock<C>> {
        &self.clock
    }

    /// Number of adjustments applied so far.
    pub fn adjustments_applied(&self) -> u64 {
        self.adjustments_applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{SimClock, SimTimeSource};

    fn est(node: u32, skew: i64) -> SkewEstimate {
        SkewEstimate {
            node: NodeId(node),
            skew_us: skew,
            min_rtt_us: 100,
            samples_used: 4,
        }
    }

    #[test]
    fn skew_sample_interpolates_midpoint() {
        let s = SkewSample {
            t_master_send: UtcMicros::from_micros(1_000),
            t_slave: UtcMicros::from_micros(1_300),
            t_master_recv: UtcMicros::from_micros(1_200),
        };
        assert_eq!(s.rtt_us(), 200);
        // Midpoint 1100, slave says 1300 → +200 skew.
        assert_eq!(s.skew_us(), 200);
    }

    #[test]
    fn estimate_averages_and_filters_noise() {
        let clean = |skew: i64| SkewSample {
            t_master_send: UtcMicros::from_micros(0),
            t_slave: UtcMicros::from_micros(50 + skew),
            t_master_recv: UtcMicros::from_micros(100),
        };
        // One wildly delayed sample (RTT 10x) with a bogus skew.
        let noisy = SkewSample {
            t_master_send: UtcMicros::from_micros(0),
            t_slave: UtcMicros::from_micros(9_000),
            t_master_recv: UtcMicros::from_micros(1_000),
        };
        let e = estimate_skew(NodeId(1), &[clean(10), clean(20), noisy]).unwrap();
        assert_eq!(e.samples_used, 2);
        assert_eq!(e.skew_us, 15);
        assert_eq!(e.min_rtt_us, 100);
    }

    #[test]
    fn estimate_rejects_empty_and_negative_rtt() {
        assert!(estimate_skew(NodeId(1), &[]).is_err());
        let bad = SkewSample {
            t_master_send: UtcMicros::from_micros(10),
            t_slave: UtcMicros::from_micros(0),
            t_master_recv: UtcMicros::from_micros(5),
        };
        assert!(estimate_skew(NodeId(1), &[bad]).is_err());
    }

    #[test]
    fn brisk_selects_most_ahead_as_reference() {
        let cfg = SyncConfig::default();
        let out = plan_corrections(&cfg, &[est(1, -100), est(2, 300), est(3, 0)]);
        assert_eq!(out.reference, Some(NodeId(2)));
        // Reference never corrected.
        assert!(out.corrections.iter().all(|c| c.node != NodeId(2)));
    }

    #[test]
    fn brisk_corrects_only_above_average() {
        let cfg = SyncConfig::default();
        // Rel skews vs node 4 (skew 1000): node1=1000, node2=600, node3=200.
        // avg = 600. Only node1 (>600) corrected.
        let out = plan_corrections(&cfg, &[est(1, 0), est(2, 400), est(3, 800), est(4, 1000)]);
        assert_eq!(out.reference, Some(NodeId(4)));
        assert!((out.avg_rel_skew_us - 600.0).abs() < 1e-9);
        assert_eq!(out.max_rel_skew_us, 1000);
        assert_eq!(out.corrections.len(), 1);
        assert_eq!(out.corrections[0].node, NodeId(1));
        // avg (600) above threshold (50) → full correction.
        assert_eq!(out.corrections[0].advance_us, 1000);
    }

    #[test]
    fn brisk_damps_below_threshold() {
        let cfg = SyncConfig::default(); // threshold 50, damping 0.7
                                         // Rel skews vs node 3 (skew 60): node1=60, node2=20; avg=40 <= 50.
        let out = plan_corrections(&cfg, &[est(1, 0), est(2, 40), est(3, 60)]);
        assert_eq!(out.corrections.len(), 1);
        assert_eq!(out.corrections[0].node, NodeId(1));
        assert_eq!(out.corrections[0].advance_us, 42); // 0.7 * 60
    }

    #[test]
    fn brisk_corrections_are_always_advances() {
        let cfg = SyncConfig::default();
        for skews in [
            vec![est(1, -5000), est(2, -100), est(3, 7000)],
            vec![est(1, 0), est(2, 0)],
            vec![est(1, -10), est(2, -20), est(3, -30), est(4, -40)],
        ] {
            let out = plan_corrections(&cfg, &skews);
            assert!(
                out.corrections.iter().all(|c| c.advance_us >= 0),
                "corrections must be non-negative: {:?}",
                out.corrections
            );
        }
    }

    #[test]
    fn brisk_equal_clocks_need_no_correction() {
        let cfg = SyncConfig::default();
        let out = plan_corrections(&cfg, &[est(1, 77), est(2, 77), est(3, 77)]);
        // rel skews all 0, avg 0, none strictly above avg.
        assert!(out.corrections.is_empty());
    }

    #[test]
    fn brisk_single_slave_is_noop() {
        let cfg = SyncConfig::default();
        let out = plan_corrections(&cfg, &[est(9, 1234)]);
        assert_eq!(out.reference, Some(NodeId(9)));
        assert!(out.corrections.is_empty());
    }

    #[test]
    fn empty_estimates_yield_empty_outcome() {
        let cfg = SyncConfig::default();
        let out = plan_corrections(&cfg, &[]);
        assert_eq!(out, SyncOutcome::default());
    }

    #[test]
    fn original_cristian_targets_master() {
        let cfg = SyncConfig {
            original_cristian: true,
            ..SyncConfig::default()
        };
        let out = plan_corrections(&cfg, &[est(1, -100), est(2, 300)]);
        assert_eq!(out.reference, None);
        assert_eq!(out.corrections.len(), 2);
        assert!(out
            .corrections
            .iter()
            .any(|c| c.node == NodeId(1) && c.advance_us == 100));
        assert!(out
            .corrections
            .iter()
            .any(|c| c.node == NodeId(2) && c.advance_us == -300));
    }

    #[test]
    fn master_round_lifecycle() {
        let mut m = SyncMaster::new(SyncConfig::default()).unwrap();
        assert_eq!(m.begin_round(), 1);
        let mk = |slave_us: i64| SkewSample {
            t_master_send: UtcMicros::from_micros(0),
            t_slave: UtcMicros::from_micros(slave_us),
            t_master_recv: UtcMicros::from_micros(100),
        };
        for _ in 0..m.samples_per_slave() {
            m.add_sample(NodeId(1), mk(50)); // skew 0
            m.add_sample(NodeId(2), mk(850)); // skew +800
        }
        let out = m.finish_round().unwrap();
        assert_eq!(out.reference, Some(NodeId(2)));
        assert_eq!(out.corrections.len(), 1);
        assert_eq!(out.corrections[0].node, NodeId(1));
        assert_eq!(out.corrections[0].advance_us, 800);
        assert_eq!(m.rounds_completed(), 1);
        assert_eq!(m.last_outcome().unwrap(), &out);
        assert_eq!(m.begin_round(), 2);
    }

    #[test]
    fn bound_master_exports_round_telemetry() {
        let registry = Registry::new();
        let mut m = SyncMaster::new(SyncConfig::default()).unwrap();
        m.bind_telemetry(&registry);
        m.begin_round();
        let mk = |slave_us: i64| SkewSample {
            t_master_send: UtcMicros::from_micros(0),
            t_slave: UtcMicros::from_micros(slave_us),
            t_master_recv: UtcMicros::from_micros(100),
        };
        m.add_sample(NodeId(1), mk(50)); // skew 0
        m.add_sample(NodeId(2), mk(850)); // skew +800
        let out = m.finish_round().unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("brisk_sync_rounds_total"), 1);
        assert_eq!(
            snap.counter_total("brisk_sync_corrections_total"),
            out.corrections.len() as u64
        );
        let skews = snap.histogram("brisk_sync_skew_us").unwrap();
        assert_eq!(skews.count(), 2);
        assert_eq!(skews.max, 800);
        let rtts = snap.histogram("brisk_sync_rtt_us").unwrap();
        assert_eq!(rtts.count(), 2);
        assert_eq!(rtts.max, 100);
    }

    #[test]
    fn congestion_round_is_rejected_by_rolling_rtt_median() {
        // The intra-round min-RTT filter is blind to a round where *every*
        // sample for a node is delayed (a congestion spike): the minimum
        // itself is inflated, so nothing gets discarded and the garbage
        // skew would elect the node as reference. The rolling per-node RTT
        // median built up over earlier rounds must catch it.
        let mut m = SyncMaster::new(SyncConfig::default()).unwrap();
        let mk = |rtt: i64, skew: i64| SkewSample {
            t_master_send: UtcMicros::from_micros(0),
            t_slave: UtcMicros::from_micros(rtt / 2 + skew),
            t_master_recv: UtcMicros::from_micros(rtt),
        };
        // Build RTT history: several clean rounds at ~100 µs for both nodes.
        for _ in 0..3 {
            m.begin_round();
            for _ in 0..4 {
                m.add_sample(NodeId(1), mk(100, 0));
                m.add_sample(NodeId(2), mk(100, 0));
            }
            m.finish_round().unwrap();
        }
        assert_eq!(m.rtt_outliers_rejected(), 0);
        // Congestion round: all of node 1's samples arrive 100× delayed,
        // carrying a wildly wrong skew estimate.
        m.begin_round();
        for _ in 0..4 {
            m.add_sample(NodeId(1), mk(10_000, 50_000));
            m.add_sample(NodeId(2), mk(100, 0));
        }
        let out = m.finish_round().unwrap();
        assert_eq!(m.rtt_outliers_rejected(), 4);
        // Node 1 contributed no usable samples → skipped this round; node 2
        // alone is a trivially-synchronized single slave.
        assert_eq!(out.reference, Some(NodeId(2)));
        assert!(
            out.corrections.is_empty(),
            "congested node must not drag others: {:?}",
            out.corrections
        );
    }

    #[test]
    fn rtt_outlier_rejection_can_be_disabled() {
        let mut m = SyncMaster::new(SyncConfig {
            rtt_outlier_multiple: 0.0,
            ..SyncConfig::default()
        })
        .unwrap();
        let mk = |rtt: i64| SkewSample {
            t_master_send: UtcMicros::from_micros(0),
            t_slave: UtcMicros::from_micros(rtt / 2),
            t_master_recv: UtcMicros::from_micros(rtt),
        };
        for _ in 0..3 {
            m.begin_round();
            for _ in 0..4 {
                m.add_sample(NodeId(1), mk(100));
            }
            m.finish_round().unwrap();
        }
        m.begin_round();
        m.add_sample(NodeId(1), mk(10_000));
        m.finish_round().unwrap();
        assert_eq!(m.rtt_outliers_rejected(), 0);
    }

    #[test]
    fn slave_answers_polls_and_applies_adjustments() {
        let src = SimTimeSource::new();
        src.advance_by(1_000);
        let cc = CorrectedClock::new(SimClock::new(src.clone(), -200, 0.0, 1));
        let mut slave = SyncSlave::new(Arc::clone(&cc));
        assert_eq!(slave.on_poll().as_micros(), 800);
        slave.on_adjust(200);
        assert_eq!(slave.on_poll().as_micros(), 1_000);
        assert_eq!(slave.adjustments_applied(), 1);
    }

    /// End-to-end convergence on simulated clocks with drift: after a few
    /// rounds the pairwise spread must collapse to near zero, and it must
    /// stay bounded as drift keeps pulling the clocks apart.
    #[test]
    fn brisk_converges_on_drifting_sim_clocks() {
        let src = SimTimeSource::new();
        let offsets = [0i64, 900, -700, 350, -150, 500, -900, 120];
        let drifts = [10.0, -25.0, 40.0, -5.0, 30.0, -45.0, 15.0, 0.0];
        let clocks: Vec<Arc<CorrectedClock<SimClock>>> = offsets
            .iter()
            .zip(&drifts)
            .map(|(&o, &d)| CorrectedClock::new(SimClock::new(src.clone(), o, d, 1)))
            .collect();
        let mut slaves: Vec<SyncSlave<SimClock>> = clocks
            .iter()
            .map(|c| SyncSlave::new(Arc::clone(c)))
            .collect();
        let master_clock = SimClock::new(src.clone(), 0, 0.0, 1);
        let mut master = SyncMaster::new(SyncConfig::default()).unwrap();

        let spread = |clocks: &[Arc<CorrectedClock<SimClock>>]| {
            let readings: Vec<i64> = clocks.iter().map(|c| c.now().as_micros()).collect();
            readings.iter().max().unwrap() - readings.iter().min().unwrap()
        };
        let initial_spread = spread(&clocks);
        assert!(initial_spread >= 1_800, "test setup should start dispersed");

        for _round in 0..20 {
            master.begin_round();
            for (i, slave) in slaves.iter().enumerate() {
                for _ in 0..master.samples_per_slave() {
                    let t0 = master_clock.now();
                    src.advance_by(50); // poll flight time
                    let ts = slave.on_poll();
                    src.advance_by(50); // reply flight time
                    let t1 = master_clock.now();
                    master.add_sample(
                        NodeId(i as u32),
                        SkewSample {
                            t_master_send: t0,
                            t_slave: ts,
                            t_master_recv: t1,
                        },
                    );
                }
            }
            let out = master.finish_round().unwrap();
            for c in out.corrections {
                assert!(c.advance_us >= 0, "BRISK only advances clocks");
                slaves[c.node.raw() as usize].on_adjust(c.advance_us);
            }
            src.advance_by(5_000_000); // 5 s polling period
        }
        let final_spread = spread(&clocks);
        assert!(
            final_spread < 600,
            "spread should collapse: initial {initial_spread} final {final_spread}"
        );
    }
}
