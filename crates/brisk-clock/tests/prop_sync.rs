//! Property-based tests for the clock-synchronization algorithm.

use brisk_clock::sync::{estimate_skew, plan_corrections, SkewEstimate, SkewSample};
use brisk_clock::{Clock, CorrectedClock, SimClock, SimTimeSource, SyncMaster, SyncSlave};
use brisk_core::{NodeId, SyncConfig, UtcMicros};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_estimates() -> impl Strategy<Value = Vec<SkewEstimate>> {
    proptest::collection::vec(-1_000_000i64..1_000_000, 1..32).prop_map(|skews| {
        skews
            .into_iter()
            .enumerate()
            .map(|(i, skew_us)| SkewEstimate {
                node: NodeId(i as u32),
                skew_us,
                min_rtt_us: 100,
                samples_used: 4,
            })
            .collect()
    })
}

proptest! {
    /// BRISK corrections are always non-negative advances, and the
    /// reference (most-ahead) slave is never corrected.
    #[test]
    fn brisk_only_advances_and_spares_reference(estimates in arb_estimates()) {
        let out = plan_corrections(&SyncConfig::default(), &estimates);
        for c in &out.corrections {
            prop_assert!(c.advance_us >= 0, "negative advance {:?}", c);
            prop_assert_ne!(Some(c.node), out.reference);
        }
        // Reference is the max-skew estimate.
        if let Some(reference) = out.reference {
            let max_skew = estimates.iter().map(|e| e.skew_us).max().unwrap();
            let ref_est = estimates.iter().find(|e| e.node == reference).unwrap();
            prop_assert_eq!(ref_est.skew_us, max_skew);
        }
    }

    /// Applying the planned corrections never overshoots the reference:
    /// every corrected slave's new skew is at most the reference skew
    /// (so the most-ahead clock stays most-ahead — the erroneous-promotion
    /// guard of §3.3).
    #[test]
    fn corrections_never_promote_a_new_fastest(estimates in arb_estimates()) {
        let out = plan_corrections(&SyncConfig::default(), &estimates);
        let Some(reference) = out.reference else { return Ok(()); };
        let ref_skew = estimates.iter().find(|e| e.node == reference).unwrap().skew_us;
        for c in &out.corrections {
            let old = estimates.iter().find(|e| e.node == c.node).unwrap().skew_us;
            prop_assert!(
                old + c.advance_us <= ref_skew,
                "node {} corrected past the reference: {} + {} > {}",
                c.node, old, c.advance_us, ref_skew
            );
        }
    }

    /// Original Cristian drives every slave exactly onto the master.
    #[test]
    fn original_cristian_zeroes_skews(estimates in arb_estimates()) {
        let cfg = SyncConfig { original_cristian: true, ..SyncConfig::default() };
        let out = plan_corrections(&cfg, &estimates);
        prop_assert_eq!(out.corrections.len(), estimates.len());
        for c in &out.corrections {
            let old = estimates.iter().find(|e| e.node == c.node).unwrap().skew_us;
            prop_assert_eq!(old + c.advance_us, 0);
        }
    }

    /// Identical skews are a fixed point: no corrections planned.
    #[test]
    fn equal_clocks_are_fixed_point(skew in -1_000_000i64..1_000_000, n in 2usize..16) {
        let estimates: Vec<SkewEstimate> = (0..n)
            .map(|i| SkewEstimate {
                node: NodeId(i as u32),
                skew_us: skew,
                min_rtt_us: 100,
                samples_used: 4,
            })
            .collect();
        let out = plan_corrections(&SyncConfig::default(), &estimates);
        prop_assert!(out.corrections.is_empty());
    }

    /// The skew estimator is exact under symmetric delays: if poll and
    /// reply take the same time, the estimate equals the true offset.
    #[test]
    fn estimator_exact_under_symmetric_delay(
        offset in -500_000i64..500_000,
        delay in 0i64..10_000,
        base in 0i64..1_000_000,
    ) {
        let sample = SkewSample {
            t_master_send: UtcMicros::from_micros(base),
            t_slave: UtcMicros::from_micros(base + delay + offset),
            t_master_recv: UtcMicros::from_micros(base + 2 * delay),
        };
        let est = estimate_skew(NodeId(0), &[sample]).unwrap();
        prop_assert_eq!(est.skew_us, offset);
    }

    /// The estimator's error is bounded by half the RTT under asymmetric
    /// delays (Cristian's classic bound).
    #[test]
    fn estimator_error_bounded_by_half_rtt(
        offset in -100_000i64..100_000,
        d1 in 0i64..10_000,
        d2 in 0i64..10_000,
    ) {
        let sample = SkewSample {
            t_master_send: UtcMicros::from_micros(0),
            t_slave: UtcMicros::from_micros(d1 + offset),
            t_master_recv: UtcMicros::from_micros(d1 + d2),
        };
        let est = estimate_skew(NodeId(0), &[sample]).unwrap();
        let err = (est.skew_us - offset).abs();
        prop_assert!(err <= (d1 + d2) / 2 + 1, "err {} rtt {}", err, d1 + d2);
    }

    /// End-to-end: for any initial offsets, repeated rounds with perfect
    /// (zero-delay) sampling drive the spread monotonically to zero-ish.
    #[test]
    fn rounds_shrink_spread(offsets in proptest::collection::vec(-100_000i64..100_000, 2..10)) {
        let src = SimTimeSource::new();
        let clocks: Vec<Arc<CorrectedClock<SimClock>>> = offsets
            .iter()
            .map(|&o| CorrectedClock::new(SimClock::new(src.clone(), o, 0.0, 1)))
            .collect();
        let mut slaves: Vec<SyncSlave<SimClock>> =
            clocks.iter().map(|c| SyncSlave::new(Arc::clone(c))).collect();
        let master_clock = SimClock::new(src.clone(), 0, 0.0, 1);
        let mut master = SyncMaster::new(SyncConfig::default()).unwrap();
        let spread = |clocks: &[Arc<CorrectedClock<SimClock>>]| {
            let r: Vec<i64> = clocks.iter().map(|c| c.now().as_micros()).collect();
            r.iter().max().unwrap() - r.iter().min().unwrap()
        };
        let initial = spread(&clocks);
        for _ in 0..30 {
            master.begin_round();
            for (i, s) in slaves.iter().enumerate() {
                let t0 = master_clock.now();
                let ts = s.on_poll();
                let t1 = master_clock.now();
                master.add_sample(NodeId(i as u32), SkewSample {
                    t_master_send: t0,
                    t_slave: ts,
                    t_master_recv: t1,
                });
            }
            let out = master.finish_round().unwrap();
            for c in out.corrections {
                slaves[c.node.raw() as usize].on_adjust(c.advance_us);
            }
            src.advance_by(1_000_000);
        }
        let final_spread = spread(&clocks);
        prop_assert!(
            final_spread <= initial && final_spread <= 10,
            "spread {} -> {}",
            initial,
            final_spread
        );
    }
}
