//! Property-based tests for the hybrid logical clock: under *arbitrary*
//! per-node skew, drift, and step-fault schedules, HLC comparison must
//! stay a total order consistent with happened-before.
//!
//! The model: three nodes, each with its own [`Hlc`] and a lying local
//! clock (constant skew + proportional drift + accumulated step faults
//! applied to a shared true time). A generated schedule interleaves
//! local events (`tick`) and message deliveries (`merge` of the sender's
//! stamp). Happened-before is the transitive closure of
//!
//! * session order — consecutive events on one node, and
//! * message order — a send before its receive,
//!
//! so it suffices to check strict stamp growth along exactly those
//! edges: transitivity of the derived `Ord` does the rest.

use brisk_clock::Hlc;
use brisk_core::{HlcStamp, UtcMicros};
use proptest::prelude::*;
use std::sync::Arc;

const NODES: usize = 3;

/// One schedule entry: advance true time, optionally step the actor's
/// clock, have the actor stamp a local event, and (if `to` differs)
/// deliver that stamp to `to`, which merges it.
#[derive(Clone, Debug)]
struct Op {
    from: usize,
    to: usize,
    advance_us: i64,
    step_us: i64,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0..NODES, 0..NODES, 0i64..20_000, -2_000_000i64..2_000_000),
        1..120,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(from, to, advance_us, step_us)| Op {
                from,
                to,
                advance_us,
                step_us,
            })
            .collect()
    })
}

fn arb_skews() -> impl Strategy<Value = [i64; NODES]> {
    let r = || -5_000_000i64..5_000_000;
    (r(), r(), r()).prop_map(|(a, b, c)| [a, b, c])
}

fn arb_drifts() -> impl Strategy<Value = [i64; NODES]> {
    // ±200_000 ppm: clocks up to 20% fast or slow.
    let r = || -200_000i64..200_000;
    (r(), r(), r()).prop_map(|(a, b, c)| [a, b, c])
}

/// The faulted local reading of node `i` at true time `true_us`.
fn local_now(true_us: i64, skew: &[i64; NODES], drift: &[i64; NODES], i: usize) -> UtcMicros {
    let drifted = true_us + (true_us as f64 * drift[i] as f64 / 1e6).round() as i64;
    UtcMicros::from_micros(drifted + skew[i])
}

proptest! {
    /// Along every happened-before edge — same-node succession and
    /// send→receive — stamps strictly increase, no matter how wrong the
    /// physical clocks are. By transitivity the HLC total order is then
    /// consistent with the whole happened-before relation.
    #[test]
    fn hlc_order_is_consistent_with_happened_before(
        ops in arb_ops(),
        skew in arb_skews(),
        drift in arb_drifts(),
    ) {
        let mut skew = skew;
        let clocks: Vec<Arc<Hlc>> = (0..NODES).map(|_| Hlc::new()).collect();
        let mut last_stamp: [Option<HlcStamp>; NODES] = [None; NODES];
        let mut true_us = 0i64;
        for op in &ops {
            true_us += op.advance_us;
            skew[op.from] += op.step_us; // step fault: clock jumps
            let sent = clocks[op.from].tick(local_now(true_us, &skew, &drift, op.from));
            if let Some(prev) = last_stamp[op.from] {
                prop_assert!(
                    sent > prev,
                    "session order violated on node {}: {sent} after {prev}",
                    op.from
                );
            }
            last_stamp[op.from] = Some(sent);
            if op.to != op.from {
                let recv = clocks[op.to].merge(sent, local_now(true_us, &skew, &drift, op.to));
                prop_assert!(
                    recv > sent,
                    "message order violated {}→{}: recv {recv} not above send {sent}",
                    op.from, op.to
                );
                if let Some(prev) = last_stamp[op.to] {
                    prop_assert!(
                        recv > prev,
                        "session order violated on receiver {}: {recv} after {prev}",
                        op.to
                    );
                }
                last_stamp[op.to] = Some(recv);
            }
        }
    }

    /// `tick` alone is strictly monotone over any reading sequence —
    /// including stalls and backward jumps — because the physical
    /// component freezes and the logical counter absorbs the fault.
    #[test]
    fn ticks_are_strictly_monotone_under_arbitrary_readings(
        readings in proptest::collection::vec(-10_000_000i64..10_000_000, 1..200),
    ) {
        let h = Hlc::new();
        let mut prev: Option<HlcStamp> = None;
        for r in readings {
            let s = h.tick(UtcMicros::from_micros(r));
            if let Some(p) = prev {
                prop_assert!(s > p, "tick produced {s} after {p} (reading {r})");
            }
            prop_assert!(
                s.physical >= UtcMicros::from_micros(r),
                "physical component may never trail the reading that produced it"
            );
            prev = Some(s);
        }
    }

    /// A merged stamp dominates both inputs, and observing a stamp makes
    /// every later local stamp dominate it — the relay pass-through
    /// contract.
    #[test]
    fn merge_and_observe_dominate_their_inputs(
        remote_phys in -5_000_000i64..5_000_000,
        remote_logical in 0u32..1_000,
        local_reading in -5_000_000i64..5_000_000,
    ) {
        let remote = HlcStamp::new(UtcMicros::from_micros(remote_phys), remote_logical);
        let h = Hlc::new();
        let m = h.merge(remote, UtcMicros::from_micros(local_reading));
        prop_assert!(m > remote);
        let h2 = Hlc::new();
        h2.observe(remote);
        let t = h2.tick(UtcMicros::from_micros(local_reading));
        prop_assert!(t > remote, "post-observe tick {t} must dominate {remote}");
    }
}
