//! Property-based tests for the on-line sorter's invariants.

use brisk_core::config::FrameGrowth;
use brisk_core::{EventRecord, EventTypeId, NodeId, SensorId, SorterConfig, UtcMicros};
use brisk_ism::OnlineSorter;
use proptest::prelude::*;
use std::time::Duration;

/// A batch of per-source monotone streams plus an interleaved arrival
/// schedule: `(source, creation_ts)` pairs in arrival order.
fn arb_workload() -> impl Strategy<Value = Vec<(u32, i64)>> {
    // Per-arrival: source id 0..4, creation-time increment 0..100, and a
    // per-record lateness 0..2000 (how long after creation it arrives).
    proptest::collection::vec((0u32..4, 0i64..100), 1..200).prop_map(|steps| {
        let mut per_source_ts = [0i64; 4];
        let mut out = Vec::with_capacity(steps.len());
        for (src, inc) in steps {
            per_source_ts[src as usize] += inc;
            out.push((src, per_source_ts[src as usize]));
        }
        out
    })
}

fn rec(source: u32, seq: u64, ts: i64) -> EventRecord {
    EventRecord::new(
        NodeId(source),
        SensorId(0),
        EventTypeId(1),
        seq,
        UtcMicros::from_micros(ts),
        vec![],
    )
    .unwrap()
}

fn sorter(initial: i64, max: i64, decay: f64) -> OnlineSorter {
    OnlineSorter::new(
        SorterConfig {
            initial_frame_us: initial,
            min_frame_us: 0,
            max_frame_us: max,
            growth: FrameGrowth::ToObservedLateness,
            decay_factor: decay,
            decay_interval: Duration::from_millis(10),
        },
        0,
    )
    .unwrap()
}

fn arb_growth() -> impl Strategy<Value = FrameGrowth> {
    prop_oneof![
        (0u8..1).prop_map(|_| FrameGrowth::ToObservedLateness),
        (1.0f64..4.0).prop_map(FrameGrowth::Multiplicative),
        (0i64..500).prop_map(FrameGrowth::Additive),
    ]
}

proptest! {
    /// An observed inversion strictly grows the frame from ANY starting
    /// point — including 0, where multiplicative growth used to stall
    /// (`0 * f == 0`) — under every growth policy, until the configured
    /// maximum clamps it.
    #[test]
    fn inversion_strictly_grows_frame(
        growth in arb_growth(),
        start in 0i64..3_000,
        inversions in 1usize..6,
    ) {
        let max = 1_000_000i64;
        let mut s = OnlineSorter::new(
            SorterConfig {
                initial_frame_us: start,
                min_frame_us: 0,
                max_frame_us: max,
                growth,
                decay_factor: 1.0,
                decay_interval: Duration::from_secs(3_600),
            },
            0,
        )
        .unwrap();
        let mut now = 10_000i64;
        let mut seq = 0u64;
        for _ in 0..inversions {
            let before = s.frame_us();
            // Release a src-0 record, then push a src-1 record created
            // earlier: two successive releases from different sources,
            // out of timestamp order — the paper's inversion trigger.
            s.push(rec(0, seq, now));
            seq += 1;
            prop_assert_eq!(s.poll(UtcMicros::from_micros(now + before)).len(), 1);
            s.push(rec(1, seq, now - 100));
            seq += 1;
            prop_assert_eq!(s.poll(UtcMicros::from_micros(now + max)).len(), 1);
            let after = s.frame_us();
            if before < max {
                prop_assert!(
                    after > before,
                    "frame stuck at {} after inversion under {:?}",
                    before,
                    growth
                );
            } else {
                prop_assert_eq!(after, max);
            }
            now += max + 10_000;
        }
    }

    /// Regression for the stuck-at-zero bug: multiplicative growth must
    /// escape a frame that has decayed all the way to 0.
    #[test]
    fn multiplicative_growth_escapes_zero_frame(factor in 1.0f64..8.0) {
        let mut s = OnlineSorter::new(
            SorterConfig {
                initial_frame_us: 0,
                min_frame_us: 0,
                max_frame_us: 1_000_000,
                growth: FrameGrowth::Multiplicative(factor),
                decay_factor: 1.0,
                decay_interval: Duration::from_secs(3_600),
            },
            0,
        )
        .unwrap();
        s.push(rec(0, 0, 1_000));
        prop_assert_eq!(s.poll(UtcMicros::from_micros(1_000)).len(), 1);
        s.push(rec(1, 1, 900));
        prop_assert_eq!(s.poll(UtcMicros::from_micros(1_000_000)).len(), 1);
        prop_assert!(s.frame_us() >= 1, "frame still 0 after inversion");
    }

    /// Conservation: every pushed record is released exactly once, no
    /// matter how pushes and polls interleave.
    #[test]
    fn conservation(workload in arb_workload(), frame in 0i64..5_000) {
        let mut s = sorter(frame, 1_000_000, 0.9);
        let mut seqs = std::collections::HashSet::new();
        let mut released = Vec::new();
        let mut seq_per_source = [0u64; 4];
        for (i, &(src, ts)) in workload.iter().enumerate() {
            let seq = seq_per_source[src as usize];
            seq_per_source[src as usize] += 1;
            prop_assert!(seqs.insert((src, seq)));
            s.push(rec(src, seq, ts));
            if i % 7 == 0 {
                released.extend(s.poll(UtcMicros::from_micros(ts)));
            }
        }
        released.extend(s.drain_all());
        prop_assert_eq!(released.len(), workload.len());
        let mut seen = std::collections::HashSet::new();
        for r in &released {
            prop_assert!(seen.insert((r.node.raw(), r.seq)), "duplicate release");
        }
        prop_assert_eq!(s.buffered(), 0);
    }

    /// With a frame at least as large as any possible lateness and arrival
    /// polls that never outrun creation time, the output is perfectly
    /// sorted.
    #[test]
    fn sufficient_frame_gives_total_order(workload in arb_workload()) {
        // Max lateness: each record arrives when pushed; we poll at the
        // max creation time seen so far. Worst-case disorder is bounded by
        // the largest per-source ts difference at any poll = bounded by
        // total span. Use a frame covering the whole span.
        let span = workload.iter().map(|&(_, ts)| ts).max().unwrap_or(0) + 1;
        let mut s = sorter(span, span.max(1), 1.0);
        let mut max_seen = 0;
        let mut out = Vec::new();
        let mut seq_per_source = [0u64; 4];
        for &(src, ts) in &workload {
            let seq = seq_per_source[src as usize];
            seq_per_source[src as usize] += 1;
            s.push(rec(src, seq, ts));
            max_seen = max_seen.max(ts);
            out.extend(s.poll(UtcMicros::from_micros(max_seen)));
        }
        out.extend(s.drain_all());
        for w in out.windows(2) {
            prop_assert!(w[0].ts <= w[1].ts, "out of order: {:?} then {:?}", w[0].ts, w[1].ts);
        }
    }

    /// Per-source FIFO: the sorter never reorders two records of the same
    /// (node, sensor) stream.
    #[test]
    fn per_source_fifo(workload in arb_workload(), frame in 0i64..2_000) {
        let mut s = sorter(frame, 100_000, 0.8);
        let mut out = Vec::new();
        let mut seq_per_source = [0u64; 4];
        for &(src, ts) in &workload {
            let seq = seq_per_source[src as usize];
            seq_per_source[src as usize] += 1;
            s.push(rec(src, seq, ts));
            out.extend(s.poll(UtcMicros::from_micros(ts)));
        }
        out.extend(s.drain_all());
        for src in 0..4u32 {
            let seqs: Vec<u64> = out
                .iter()
                .filter(|r| r.node == NodeId(src))
                .map(|r| r.seq)
                .collect();
            prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// The frame always stays within its configured bounds, whatever the
    /// traffic does.
    #[test]
    fn frame_respects_bounds(workload in arb_workload(), max_frame in 1i64..3_000) {
        let mut s = sorter(0, max_frame, 0.5);
        for (i, &(src, ts)) in workload.iter().enumerate() {
            s.push(rec(src, i as u64, ts));
            s.poll(UtcMicros::from_micros(ts));
            prop_assert!(s.frame_us() >= 0);
            prop_assert!(s.frame_us() <= max_frame, "frame {} > max {}", s.frame_us(), max_frame);
        }
    }

    /// A record is never released before its creation time plus the frame
    /// active at release (unless forced by the buffer bound, which these
    /// runs never hit).
    #[test]
    fn no_premature_release(ts in 0i64..10_000, frame in 1i64..5_000) {
        let mut s = sorter(frame, frame, 1.0);
        s.push(rec(0, 0, ts));
        // One microsecond before the deadline: nothing.
        let early = s.poll(UtcMicros::from_micros(ts + frame - 1));
        prop_assert!(early.is_empty());
        let on_time = s.poll(UtcMicros::from_micros(ts + frame));
        prop_assert_eq!(on_time.len(), 1);
    }

    /// Buffer-bound pressure releases early but still in merged order and
    /// without loss.
    #[test]
    fn memory_pressure_keeps_order_and_conservation(
        workload in arb_workload(),
        bound in 1usize..20,
    ) {
        let mut s = OnlineSorter::new(
            SorterConfig {
                initial_frame_us: 1_000_000, // effectively infinite
                min_frame_us: 0,
                max_frame_us: 1_000_000,
                decay_factor: 1.0,
                ..SorterConfig::default()
            },
            bound,
        )
        .unwrap();
        let mut out = Vec::new();
        for (i, &(src, ts)) in workload.iter().enumerate() {
            s.push(rec(src, i as u64, ts));
            out.extend(s.poll(UtcMicros::from_micros(ts)));
            prop_assert!(s.buffered() <= bound.max(1));
        }
        out.extend(s.drain_all());
        prop_assert_eq!(out.len(), workload.len());
    }
}
