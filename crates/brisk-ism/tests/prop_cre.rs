//! Property-based tests for the causally-related-event matcher.

use brisk_core::{
    CorrelationId, CreConfig, EventRecord, EventTypeId, NodeId, SensorId, UtcMicros, Value,
};
use brisk_ism::CreMatcher;
use proptest::prelude::*;
use std::time::Duration;

#[derive(Clone, Debug)]
enum Op {
    Reason { id: u64, ts: i64 },
    Conseq { id: u64, ts: i64 },
    Plain { ts: i64 },
    Expire { advance_ms: u64 },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..8, 0i64..10_000).prop_map(|(id, ts)| Op::Reason { id, ts }),
            (0u64..8, 0i64..10_000).prop_map(|(id, ts)| Op::Conseq { id, ts }),
            (0i64..10_000).prop_map(|ts| Op::Plain { ts }),
            (1u64..300).prop_map(|advance_ms| Op::Expire { advance_ms }),
        ],
        1..120,
    )
}

fn reason(id: u64, seq: u64, ts: i64) -> EventRecord {
    EventRecord::new(
        NodeId(0),
        SensorId(0),
        EventTypeId(1),
        seq,
        UtcMicros::from_micros(ts),
        vec![Value::Reason(CorrelationId(id))],
    )
    .unwrap()
}

fn conseq(id: u64, seq: u64, ts: i64) -> EventRecord {
    EventRecord::new(
        NodeId(1),
        SensorId(0),
        EventTypeId(2),
        seq,
        UtcMicros::from_micros(ts),
        vec![Value::Conseq(CorrelationId(id))],
    )
    .unwrap()
}

fn plain(seq: u64, ts: i64) -> EventRecord {
    EventRecord::new(
        NodeId(2),
        SensorId(0),
        EventTypeId(3),
        seq,
        UtcMicros::from_micros(ts),
        vec![],
    )
    .unwrap()
}

proptest! {
    /// Conservation: every record fed in comes out exactly once (possibly
    /// via the expiry path), identified by its unique sequence number.
    #[test]
    fn conservation(ops in arb_ops()) {
        let mut m = CreMatcher::new(CreConfig {
            hold_timeout: Duration::from_millis(100),
            ..CreConfig::default()
        })
        .unwrap();
        let mut now = UtcMicros::ZERO;
        let mut fed = 0u64;
        let mut out = Vec::new();
        for (seq, op) in ops.iter().enumerate() {
            let seq = seq as u64;
            match *op {
                Op::Reason { id, ts } => {
                    fed += 1;
                    out.extend(m.process(reason(id, seq, ts), now).pass);
                }
                Op::Conseq { id, ts } => {
                    fed += 1;
                    out.extend(m.process(conseq(id, seq, ts), now).pass);
                }
                Op::Plain { ts } => {
                    fed += 1;
                    out.extend(m.process(plain(seq, ts), now).pass);
                }
                Op::Expire { advance_ms } => {
                    now += Duration::from_millis(advance_ms);
                    out.extend(m.expire(now));
                }
            }
        }
        // Flush stragglers.
        out.extend(m.expire(now + Duration::from_secs(10)));
        prop_assert_eq!(out.len() as u64, fed);
        let mut seen = std::collections::HashSet::new();
        for r in &out {
            prop_assert!(seen.insert((r.node.raw(), r.seq)), "duplicate record");
        }
        prop_assert_eq!(m.held_count(), 0);
    }

    /// Causality invariant: whenever a consequence is released while its
    /// reason is known to the matcher, its timestamp is strictly after the
    /// reason's.
    #[test]
    fn released_conseq_follows_known_reason(ops in arb_ops()) {
        let mut m = CreMatcher::new(CreConfig::default()).unwrap();
        let now = UtcMicros::ZERO;
        let mut reason_ts: std::collections::HashMap<u64, UtcMicros> =
            std::collections::HashMap::new();
        for (seq, op) in ops.iter().enumerate() {
            let seq = seq as u64;
            let outs = match *op {
                Op::Reason { id, ts } => {
                    reason_ts.insert(id, UtcMicros::from_micros(ts));
                    m.process(reason(id, seq, ts), now).pass
                }
                Op::Conseq { id, ts } => m.process(conseq(id, seq, ts), now).pass,
                Op::Plain { ts } => m.process(plain(seq, ts), now).pass,
                Op::Expire { .. } => continue, // no time movement here
            };
            for r in outs {
                if let Some(id) = r.conseq_id() {
                    if let Some(&rts) = reason_ts.get(&id.raw()) {
                        prop_assert!(
                            r.ts > rts,
                            "conseq {:?} not after reason {:?}",
                            r.ts,
                            rts
                        );
                    }
                }
            }
        }
    }

    /// Unmarked records are never held, reordered or modified.
    #[test]
    fn plain_records_pass_untouched(ts in proptest::collection::vec(0i64..1_000_000, 1..50)) {
        let mut m = CreMatcher::new(CreConfig::default()).unwrap();
        for (seq, &t) in ts.iter().enumerate() {
            let input = plain(seq as u64, t);
            let out = m.process(input.clone(), UtcMicros::ZERO);
            prop_assert_eq!(out.pass.len(), 1);
            prop_assert_eq!(&out.pass[0], &input);
            prop_assert!(!out.request_extra_sync);
        }
        prop_assert_eq!(m.held_count(), 0);
    }

    /// Extra-sync requests imply a repair happened, and repairs only
    /// happen on marked records.
    #[test]
    fn extra_sync_implies_repair(ops in arb_ops()) {
        let mut m = CreMatcher::new(CreConfig::default()).unwrap();
        let now = UtcMicros::ZERO;
        let mut requests = 0u64;
        for (seq, op) in ops.iter().enumerate() {
            let seq = seq as u64;
            let out = match *op {
                Op::Reason { id, ts } => m.process(reason(id, seq, ts), now),
                Op::Conseq { id, ts } => m.process(conseq(id, seq, ts), now),
                Op::Plain { ts } => m.process(plain(seq, ts), now),
                Op::Expire { .. } => continue,
            };
            if out.request_extra_sync {
                requests += 1;
            }
        }
        prop_assert!(m.stats().tachyons_repaired >= requests.min(1));
        prop_assert_eq!(m.stats().extra_syncs_requested >= requests, true);
    }
}
