//! Poll-based connection reactor.
//!
//! The server's accept loop used to spawn one pump thread per EXS
//! connection; a thousand mostly-idle sensors meant a thousand sleeping
//! threads. The reactor replaces that with a small bounded pool: each
//! *shard* thread owns a set of connections and multiplexes all of their
//! sockets through one [`Poller`] (`poll(2)` — see `brisk_net::poll`),
//! driving handshakes, batch ingest, heartbeats, credit acks, clock-sync
//! exchanges and fault-injected transports alike.
//!
//! Per-connection protocol behavior is not reimplemented here: every
//! frame goes through the same [`PumpIo`] the threaded [`run_pump`] path
//! uses, so the reactor accepts and rejects exactly the traffic a
//! dedicated pump thread would. What the reactor adds is scheduling:
//!
//! * Connections with a kernel fd are read only when `poll` reports them
//!   readable. Fd-less connections (the in-memory transports used by
//!   tests and the simulator) cannot be polled, so while any are present
//!   the shard falls back to a short tick and zero-timeout `recv` probes.
//! * Manager commands (acks, credit grants, sync rounds, shutdown) are
//!   queued per connection; [`PumpHandle::command`] fires the shard's
//!   [`Waker`] so a sleeping `poll` services them immediately.
//! * The clock-sync poll exchange, which the threaded pump runs as a
//!   blocking request/reply loop, becomes an explicit state machine
//!   ([`SyncState`]) so one slow slave cannot stall its shard.
//! * EXS→ISM flow control keeps its semantics: while the shared manager
//!   queue is over its bound, running connections are excluded from the
//!   poll set (deferred), while greetings, teardown drains and manager
//!   commands still make progress.

use crate::pump::{
    pump_channel, FlowState, FrameOutcome, ProtocolGuard, PumpCommand, PumpEvent, PumpHandle,
    PumpIo, QuarantineLog,
};
use brisk_clock::{Clock, SkewSample};
use brisk_core::{BriskError, NodeId, Result, UtcMicros};
use brisk_net::{poll_in, Connection, PollFd, Poller, Waker, POLLERR, POLLHUP, POLLIN};
use brisk_proto::Message;
use brisk_telemetry::Counter;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a fresh connection may sit without completing its `Hello`.
const GREETING_TIMEOUT: Duration = Duration::from_secs(5);
/// How long a shut-down connection keeps draining late batches.
const CLOSING_DRAIN: Duration = Duration::from_secs(2);
/// How long one `SyncPoll` waits for its reply before the sample is lost.
const SAMPLE_TIMEOUT: Duration = Duration::from_secs(1);
/// Shard tick while fd-less connections need recv probes.
const FDLESS_TICK: Duration = Duration::from_millis(1);
/// Shard tick while flow control is deferring socket reads (the manager
/// draining its queue does not fire a waker, so the shard re-checks).
const DEFER_TICK: Duration = Duration::from_millis(5);
/// Shard tick when every event source can interrupt `poll` on its own.
const IDLE_TICK: Duration = Duration::from_millis(100);
/// Frames read from one connection per pass before yielding to the rest
/// of the shard — bounds how long one firehose sensor can monopolize it.
const MAX_FRAMES_PER_PASS: usize = 32;

/// Which node ids are currently served by a live connection, and by
/// which pump. Shared across every shard of a server so a second `Hello`
/// claiming an already-active node is rejected at the greeting instead of
/// racing the first connection's session state (two pumps stamping the
/// same node id would interleave batches, corrupt per-node sequence
/// tracking, and let a misconfigured sensor silently hijack another's
/// stream).
#[derive(Default)]
pub(crate) struct ActiveNodes {
    map: Mutex<HashMap<NodeId, u64>>,
}

impl ActiveNodes {
    /// Claim `node` for pump `id`. `false` when another live connection
    /// already holds it.
    fn try_claim(&self, node: NodeId, id: u64) -> bool {
        let mut map = self.map.lock();
        match map.get(&node) {
            Some(_) => false,
            None => {
                map.insert(node, id);
                true
            }
        }
    }

    /// Release `node` if (and only if) pump `id` still holds it — a
    /// later claimant must not be evicted by a stale release.
    fn release(&self, node: NodeId, id: u64) {
        let mut map = self.map.lock();
        if map.get(&node) == Some(&id) {
            map.remove(&node);
        }
    }
}

/// Everything a shard needs to turn an anonymous socket into a pump.
#[derive(Clone)]
pub(crate) struct ReactorConfig {
    /// Master clock for receive stamps and sync exchanges.
    pub clock: Arc<dyn Clock>,
    /// Event stream into the manager.
    pub events: Sender<PumpEvent>,
    /// Where freshly-greeted connections' handles are announced.
    pub pumps: Sender<PumpHandle>,
    /// Counts events enqueued toward the manager (queue-depth telemetry).
    pub enqueued: Option<Arc<Counter>>,
    /// Shared EXS→ISM flow-control state, if flow control is on.
    pub flow: Option<Arc<FlowState>>,
    /// Undecodable frames tolerated per connection before disconnect.
    pub error_budget: u32,
    /// Shared malformed-frame quarantine log.
    pub quarantine: Option<Arc<QuarantineLog>>,
    /// Live node-id claims, shared across the server's shards.
    pub active: Arc<ActiveNodes>,
}

/// A bounded pool of reactor shards; the server registers every accepted
/// connection here instead of spawning a thread for it.
pub(crate) struct ReactorPool {
    shards: Vec<Shard>,
    next: AtomicUsize,
    stop: Arc<AtomicBool>,
}

struct Shard {
    conn_tx: Sender<Box<dyn Connection>>,
    waker: Waker,
    join: std::sync::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ReactorPool {
    /// Spawn `threads` shard threads (at least one).
    pub(crate) fn spawn(threads: usize, cfg: ReactorConfig) -> Result<ReactorPool> {
        let threads = threads.max(1);
        let stop = Arc::new(AtomicBool::new(false));
        let mut shards = Vec::with_capacity(threads);
        for i in 0..threads {
            let poller = Poller::new().map_err(BriskError::Io)?;
            let waker = poller.waker();
            let (conn_tx, conn_rx) = unbounded();
            let ctx = cfg.clone();
            let stop = Arc::clone(&stop);
            let join = std::thread::Builder::new()
                .name(format!("brisk-reactor-{i}"))
                .spawn(move || run_shard(ctx, conn_rx, poller, stop))
                .map_err(BriskError::Io)?;
            shards.push(Shard {
                conn_tx,
                waker,
                join: std::sync::Mutex::new(Some(join)),
            });
        }
        Ok(ReactorPool {
            shards,
            next: AtomicUsize::new(0),
            stop,
        })
    }

    /// Hand a fresh (pre-handshake) connection to a shard, round-robin.
    pub(crate) fn register(&self, conn: Box<dyn Connection>) {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let shard = &self.shards[i];
        if shard.conn_tx.send(conn).is_ok() {
            shard.waker.wake();
        }
    }

    /// Stop every shard and join its thread. Call only after the manager
    /// has finished its shutdown drain: live connections are dropped
    /// without further events.
    pub(crate) fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        for shard in &self.shards {
            shard.waker.wake();
        }
        for shard in &self.shards {
            let join = shard.join.lock().ok().and_then(|mut j| j.take());
            if let Some(join) = join {
                let _ = join.join();
            }
        }
    }
}

/// One in-flight clock-sync exchange, unrolled from the threaded pump's
/// blocking loop into poll-driven state.
struct SyncState {
    round: u64,
    total: u32,
    next_sample: u32,
    outstanding: Option<Outstanding>,
    collected: Vec<SkewSample>,
}

struct Outstanding {
    sample: u32,
    t0: UtcMicros,
    deadline: Instant,
}

impl SyncState {
    fn new(round: u64, samples: u32) -> SyncState {
        SyncState {
            round,
            total: samples,
            next_sample: 0,
            outstanding: None,
            collected: Vec::with_capacity(samples as usize),
        }
    }

    /// Record a reply if it matches the outstanding poll; stale or
    /// mismatched replies are dropped, like the threaded pump does.
    fn on_reply(&mut self, round: u64, sample: u32, slave_time: UtcMicros, io: &PumpIo) {
        match &self.outstanding {
            Some(out) if self.round == round && out.sample == sample => {
                let t0 = out.t0;
                self.outstanding = None;
                self.collected.push(SkewSample {
                    t_master_send: t0,
                    t_slave: slave_time,
                    t_master_recv: io.clock.now(),
                });
            }
            _ => {}
        }
    }
}

/// A connection that completed its greeting and serves a node.
struct Running {
    io: PumpIo,
    cmd_rx: Receiver<PumpCommand>,
    sync: Option<SyncState>,
}

enum State {
    /// Accepted but not yet identified: waiting for `Hello`.
    Greeting { deadline: Instant },
    /// Greeted; batches, heartbeats, commands and sync exchanges flow.
    Running(Running),
    /// `Shutdown` sent; draining the EXS's final flush so no records are
    /// lost at teardown, then reporting `Disconnected`.
    Closing { io: PumpIo, deadline: Instant },
}

struct Driver {
    conn: Box<dyn Connection>,
    state: State,
    dead: bool,
}

/// How the read pass treats one driver this iteration.
enum ReadMode {
    /// Has a kernel fd at this slot in the poll set; read on readiness.
    Polled(usize),
    /// Fd-less: probe with a zero-timeout recv every pass.
    Always,
    /// Deferred (flow control) or dead: do not read.
    Skip,
}

impl Driver {
    fn new(conn: Box<dyn Connection>) -> Driver {
        Driver {
            conn,
            state: State::Greeting {
                deadline: Instant::now() + GREETING_TIMEOUT,
            },
            dead: false,
        }
    }

    fn is_running(&self) -> bool {
        matches!(self.state, State::Running(_))
    }

    /// The next instant this driver needs the shard awake regardless of
    /// socket readiness.
    fn next_deadline(&self) -> Option<Instant> {
        match &self.state {
            State::Greeting { deadline } => Some(*deadline),
            State::Closing { deadline, .. } => Some(*deadline),
            State::Running(run) => run
                .sync
                .as_ref()
                .and_then(|s| s.outstanding.as_ref())
                .map(|o| o.deadline),
        }
    }

    /// Drain queued manager commands. Returns `false` when the
    /// connection is done.
    fn service_commands(&mut self) -> bool {
        loop {
            let cmd = match &mut self.state {
                State::Running(run) => run.cmd_rx.try_recv(),
                _ => return true,
            };
            match cmd {
                Ok(PumpCommand::SyncRound { round, samples }) => {
                    if let State::Running(run) = &mut self.state {
                        run.sync = Some(SyncState::new(round, samples));
                    }
                }
                Ok(PumpCommand::Adjust { round, advance_us }) => {
                    if self
                        .conn
                        .send(&Message::SyncAdjust { round, advance_us }.encode())
                        .is_err()
                    {
                        return false;
                    }
                }
                Ok(PumpCommand::Ack { seq, credit }) => {
                    if self
                        .conn
                        .send(&Message::BatchAck { seq, credit }.encode())
                        .is_err()
                    {
                        return false;
                    }
                }
                Ok(PumpCommand::Shutdown) => {
                    let _ = self.conn.send(&Message::Shutdown.encode());
                    // Keep draining the EXS's final flush for a bounded
                    // window, exactly like the threaded pump's teardown.
                    let placeholder = State::Greeting {
                        deadline: Instant::now(),
                    };
                    if let State::Running(mut run) = std::mem::replace(&mut self.state, placeholder)
                    {
                        // A sync round interrupted by shutdown reports
                        // what it collected — to the manager, samples
                        // lost to teardown look like samples lost to
                        // timeouts, and the round can still close.
                        if let Some(sync) = run.sync.take() {
                            run.io.send_event(PumpEvent::SyncSamples {
                                node: run.io.node,
                                round: sync.round,
                                samples: sync.collected,
                            });
                        }
                        self.state = State::Closing {
                            io: run.io,
                            deadline: Instant::now() + CLOSING_DRAIN,
                        };
                    }
                    return true;
                }
                Err(TryRecvError::Empty) => return true,
                Err(TryRecvError::Disconnected) => return false,
            }
        }
    }

    /// Advance the sync state machine: time out lost samples, send the
    /// next poll, emit `SyncSamples` when the round completes. Returns
    /// `false` when the connection is done.
    fn advance_sync(&mut self) -> bool {
        let run = match &mut self.state {
            State::Running(run) => run,
            _ => return true,
        };
        let Some(sync) = &mut run.sync else {
            return true;
        };
        let now = Instant::now();
        if let Some(out) = &sync.outstanding {
            if now >= out.deadline {
                sync.outstanding = None; // sample lost; move on
            }
        }
        if sync.outstanding.is_none() && sync.next_sample < sync.total {
            let sample = sync.next_sample;
            let t0 = run.io.clock.now();
            if self
                .conn
                .send(
                    &Message::SyncPoll {
                        round: sync.round,
                        sample,
                        master_send: t0,
                    }
                    .encode(),
                )
                .is_err()
            {
                return false;
            }
            sync.next_sample += 1;
            sync.outstanding = Some(Outstanding {
                sample,
                t0,
                deadline: now + SAMPLE_TIMEOUT,
            });
        }
        if sync.outstanding.is_none() && sync.next_sample >= sync.total {
            if let Some(done) = run.sync.take() {
                run.io.send_event(PumpEvent::SyncSamples {
                    node: run.io.node,
                    round: done.round,
                    samples: done.collected,
                });
            }
        }
        true
    }

    /// Handle one inbound frame. Returns `false` when the connection is
    /// done.
    fn on_frame(&mut self, frame: Vec<u8>, ctx: &ReactorConfig, waker: &Waker) -> bool {
        match &mut self.state {
            State::Greeting { .. } => self.greet(frame, ctx, waker),
            State::Running(run) => match run.io.on_frame(frame) {
                Ok(FrameOutcome::Consumed) => true,
                Ok(FrameOutcome::SyncReply {
                    round,
                    sample,
                    slave_time,
                }) => {
                    // A reply outside a round is stale; inside one, the
                    // state machine decides whether it matches.
                    if let Some(sync) = &mut run.sync {
                        sync.on_reply(round, sample, slave_time, &run.io);
                    }
                    true
                }
                Err(_) => false,
            },
            State::Closing { io, .. } => io.on_frame(frame).is_ok(),
        }
    }

    /// Server-side handshake, reactor style: the first frame must be a
    /// `Hello`. Anything else — or a decode failure — drops the
    /// connection silently; it never had an identity to report. A `Hello`
    /// claiming a node id another live connection already serves is a
    /// protocol error: it is quarantined and answered with `Shutdown`
    /// rather than allowed to clobber the first connection's session.
    fn greet(&mut self, frame: Vec<u8>, ctx: &ReactorConfig, waker: &Waker) -> bool {
        let (node, version) = match Message::decode(&frame) {
            Ok(Message::Hello { node, version }) => (node, brisk_proto::negotiate(version)),
            _ => return false,
        };
        let (mut handle, cmd_rx) = pump_channel(node, version);
        let id = handle.id();
        if !ctx.active.try_claim(node, id) {
            if let Some(log) = &ctx.quarantine {
                log.note_rejected_hello();
                log.record(node, &frame, "duplicate Hello: node already active");
            }
            brisk_telemetry::flight_log!(
                Warn,
                "ism.reactor",
                "duplicate_hello",
                "rejected Hello for node {node}: already served by a live connection"
            );
            let _ = self.conn.send(&Message::Shutdown.encode());
            return false;
        }
        if version >= 2 {
            let credit = if version >= 3 {
                ctx.flow.as_ref().and_then(|f| f.credit())
            } else {
                None
            };
            if self
                .conn
                .send(&Message::HelloAck { version, credit }.encode())
                .is_err()
            {
                ctx.active.release(node, id);
                return false;
            }
        }
        let wake = waker.clone();
        handle.attach_wake(Arc::new(move || wake.wake()));
        if ctx.pumps.send(handle).is_err() {
            ctx.active.release(node, id);
            return false; // server is shutting down
        }
        let io = PumpIo::new(
            node,
            id,
            Arc::clone(&ctx.clock),
            ctx.events.clone(),
            ctx.enqueued.clone(),
            ctx.flow.clone(),
            ProtocolGuard {
                budget: ctx.error_budget,
                log: ctx.quarantine.clone(),
            },
        );
        self.state = State::Running(Running {
            io,
            cmd_rx,
            sync: None,
        });
        true
    }

    /// Report the death of an identified connection and release its
    /// node-id claim; a connection still in its greeting never had an
    /// identity, so nothing is emitted.
    fn emit_disconnect(&self, ctx: &ReactorConfig) {
        let io = match &self.state {
            State::Running(run) => &run.io,
            State::Closing { io, .. } => io,
            State::Greeting { .. } => return,
        };
        ctx.active.release(io.node, io.id);
        io.send_event(PumpEvent::Disconnected {
            node: io.node,
            id: io.id,
        });
    }
}

/// One shard thread: adopt connections, service commands, poll sockets,
/// route frames, sweep the dead.
fn run_shard(
    ctx: ReactorConfig,
    conn_rx: Receiver<Box<dyn Connection>>,
    poller: Poller,
    stop: Arc<AtomicBool>,
) {
    let waker = poller.waker();
    let mut drivers: Vec<Driver> = Vec::new();
    let mut fds: Vec<PollFd> = Vec::new();
    let mut modes: Vec<ReadMode> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        // Adopt newly registered connections.
        while let Ok(conn) = conn_rx.try_recv() {
            drivers.push(Driver::new(conn));
        }
        // Commands and sync exchanges first: acks, credit grants and
        // sync traffic must not starve behind inbound batches.
        for d in drivers.iter_mut() {
            if !d.dead && (!d.service_commands() || !d.advance_sync()) {
                d.dead = true;
            }
        }
        // Deadlines: greetings that never said Hello, drains that ran out.
        let now = Instant::now();
        for d in drivers.iter_mut() {
            match &d.state {
                State::Greeting { deadline } if now >= *deadline => d.dead = true,
                State::Closing { deadline, .. } if now >= *deadline => d.dead = true,
                _ => {}
            }
        }
        // Backpressure: while the manager queue is over its bound,
        // running connections leave the poll set so their bytes pile up
        // in the transport. Greetings and closing drains still read, and
        // commands above still ran — sync and shutdown cannot deadlock.
        let over = ctx.flow.as_ref().is_some_and(|f| f.over_limit());
        fds.clear();
        modes.clear();
        let mut fdless_active = false;
        let mut buffered_ready = false;
        for d in drivers.iter() {
            if d.dead {
                modes.push(ReadMode::Skip);
                continue;
            }
            if over && d.is_running() {
                if let Some(flow) = &ctx.flow {
                    flow.note_deferral();
                }
                modes.push(ReadMode::Skip);
                continue;
            }
            // Framed transports drain the kernel socket eagerly, so a
            // frame-cap or backpressure break can leave whole frames in
            // the userspace buffer with POLLIN clear — such a connection
            // is readable now, whatever poll says.
            if d.conn.has_buffered() {
                buffered_ready = true;
                modes.push(ReadMode::Always);
                continue;
            }
            match d.conn.poll_fd() {
                Some(fd) => {
                    modes.push(ReadMode::Polled(fds.len()));
                    fds.push(poll_in(fd));
                }
                None => {
                    fdless_active = true;
                    modes.push(ReadMode::Always);
                }
            }
        }
        // Sleep until a socket is readable, a waker fires (new
        // connection, queued command, shutdown) or the nearest deadline.
        let mut timeout = if buffered_ready {
            // Complete frames are already in userspace; don't sleep at
            // all, just collect any concurrently-readable sockets.
            Duration::ZERO
        } else if fdless_active {
            FDLESS_TICK
        } else if over {
            DEFER_TICK
        } else {
            IDLE_TICK
        };
        let now = Instant::now();
        for d in drivers.iter() {
            if d.dead {
                continue;
            }
            if let Some(deadline) = d.next_deadline() {
                timeout = timeout.min(deadline.saturating_duration_since(now));
            }
        }
        if poller.wait(&mut fds, Some(timeout)).is_err() {
            // poll(2) failing is unrecoverable for this shard; dropping
            // the drivers closes every connection it owned.
            break;
        }
        if stop.load(Ordering::Acquire) {
            break;
        }
        // Read pass: drain readable connections, a bounded number of
        // frames each so one firehose cannot monopolize the shard.
        for (d, mode) in drivers.iter_mut().zip(modes.iter()) {
            let readable = match mode {
                ReadMode::Polled(slot) => fds[*slot].revents & (POLLIN | POLLERR | POLLHUP) != 0,
                ReadMode::Always => true,
                ReadMode::Skip => false,
            };
            if !readable || d.dead {
                continue;
            }
            for _ in 0..MAX_FRAMES_PER_PASS {
                // Re-check the queue bound between frames, not just when
                // the poll set was built: one drain of a deep socket
                // buffer could otherwise overshoot the bound by a whole
                // pass (the threaded pump checked before every read, and
                // the bound the tests pin is queue + one batch per pump).
                if matches!(d.state, State::Running(_))
                    && ctx.flow.as_ref().is_some_and(|f| f.over_limit())
                {
                    break;
                }
                match d.conn.recv(Some(Duration::ZERO)) {
                    Ok(Some(frame)) => {
                        if !d.on_frame(frame, &ctx, &waker) {
                            d.dead = true;
                            break;
                        }
                    }
                    Ok(None) => break,
                    Err(_) => {
                        d.dead = true;
                        break;
                    }
                }
            }
        }
        // Sweep: report identified deaths, drop the rest silently.
        drivers.retain_mut(|d| {
            if !d.dead {
                return true;
            }
            d.emit_disconnect(&ctx);
            false
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_clock::SystemClock;
    use brisk_core::{EventRecord, EventTypeId, NodeId, SensorId};
    use brisk_net::{MemTransport, Transport};
    use brisk_proto::BatchView;

    fn test_pool() -> (
        ReactorPool,
        Receiver<PumpHandle>,
        Receiver<PumpEvent>,
        Arc<QuarantineLog>,
    ) {
        let (pump_tx, pump_rx) = unbounded();
        let (event_tx, event_rx) = unbounded();
        let quarantine = QuarantineLog::new();
        let pool = ReactorPool::spawn(
            2,
            ReactorConfig {
                clock: Arc::new(SystemClock),
                events: event_tx,
                pumps: pump_tx,
                enqueued: None,
                flow: Some(FlowState::new(brisk_core::FlowConfig {
                    credit_records: 64,
                    max_queued_records: 0,
                    shed_unmarked: false,
                })),
                error_budget: 2,
                quarantine: Some(Arc::clone(&quarantine)),
                active: Arc::new(ActiveNodes::default()),
            },
        )
        .unwrap();
        (pool, pump_rx, event_rx, quarantine)
    }

    fn mem_client(pool: &ReactorPool) -> Box<dyn Connection> {
        let t = MemTransport::new();
        let mut l = t.listen("r").unwrap();
        let c = t.connect("r").unwrap();
        let server = l.accept(Some(Duration::from_secs(1))).unwrap().unwrap();
        pool.register(server);
        c
    }

    #[test]
    fn greets_pumps_batches_and_reports_disconnect() {
        let (pool, pump_rx, event_rx, _q) = test_pool();
        let mut client = mem_client(&pool);
        client
            .send(
                &Message::Hello {
                    node: NodeId(7),
                    version: brisk_proto::VERSION,
                }
                .encode(),
            )
            .unwrap();
        // HelloAck carries the negotiated version and the credit grant.
        let frame = client.recv(Some(Duration::from_secs(2))).unwrap().unwrap();
        assert_eq!(
            Message::decode(&frame).unwrap(),
            Message::HelloAck {
                version: brisk_proto::VERSION,
                credit: Some(64)
            }
        );
        let handle = pump_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(handle.node, NodeId(7));
        assert_eq!(handle.version(), brisk_proto::VERSION);
        // A batch flows through untouched and still parses as a view.
        let rec = EventRecord::new(
            NodeId(7),
            SensorId(0),
            EventTypeId(1),
            0,
            UtcMicros::from_micros(9),
            vec![],
        )
        .unwrap();
        client
            .send(
                &Message::EventBatch {
                    node: NodeId(7),
                    seq: Some(1),
                    records: vec![rec.clone()],
                }
                .encode(),
            )
            .unwrap();
        match event_rx.recv_timeout(Duration::from_secs(2)).unwrap() {
            PumpEvent::Batch {
                node,
                id,
                seq,
                frame,
                count,
                ..
            } => {
                assert_eq!(node, NodeId(7));
                assert_eq!(id, handle.id());
                assert_eq!(seq, Some(1));
                assert_eq!(count, 1);
                let view = BatchView::parse(&frame).unwrap();
                assert_eq!(view.materialize().unwrap(), vec![rec]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Commands flow back out through the handle (waker-driven).
        assert!(handle.command(PumpCommand::Ack {
            seq: 1,
            credit: Some(64)
        }));
        let frame = client.recv(Some(Duration::from_secs(2))).unwrap().unwrap();
        assert_eq!(
            Message::decode(&frame).unwrap(),
            Message::BatchAck {
                seq: 1,
                credit: Some(64)
            }
        );
        // Dropping the client surfaces as a Disconnected event.
        drop(client);
        match event_rx.recv_timeout(Duration::from_secs(2)).unwrap() {
            PumpEvent::Disconnected { node, id } => {
                assert_eq!(node, NodeId(7));
                assert_eq!(id, handle.id());
            }
            other => panic!("unexpected {other:?}"),
        }
        pool.stop();
    }

    #[test]
    fn non_hello_greeting_is_dropped_without_a_pump() {
        let (pool, pump_rx, event_rx, _q) = test_pool();
        let mut client = mem_client(&pool);
        client.send(&Message::Heartbeat.encode()).unwrap();
        assert!(pump_rx.recv_timeout(Duration::from_millis(200)).is_err());
        assert!(event_rx.recv_timeout(Duration::from_millis(50)).is_err());
        pool.stop();
    }

    #[test]
    fn sync_round_runs_as_state_machine_while_batches_flow() {
        let (pool, pump_rx, event_rx, _q) = test_pool();
        let mut client = mem_client(&pool);
        client
            .send(
                &Message::Hello {
                    node: NodeId(2),
                    version: brisk_proto::VERSION,
                }
                .encode(),
            )
            .unwrap();
        let _ack = client.recv(Some(Duration::from_secs(2))).unwrap().unwrap();
        let handle = pump_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(handle.command(PumpCommand::SyncRound {
            round: 9,
            samples: 3
        }));
        // Slave side: answer 3 polls, interleaving a batch.
        let mut answered = 0;
        while answered < 3 {
            let frame = client.recv(Some(Duration::from_secs(2))).unwrap();
            let Some(frame) = frame else { continue };
            match Message::decode(&frame).unwrap() {
                Message::SyncPoll {
                    round,
                    sample,
                    master_send,
                } => {
                    if answered == 1 {
                        client
                            .send(
                                &Message::EventBatch {
                                    node: NodeId(2),
                                    seq: Some(1),
                                    records: vec![],
                                }
                                .encode(),
                            )
                            .unwrap();
                    }
                    client
                        .send(
                            &Message::SyncReply {
                                round,
                                sample,
                                master_send,
                                slave_time: UtcMicros::now(),
                            }
                            .encode(),
                        )
                        .unwrap();
                    answered += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let mut batches = 0;
        let mut samples = None;
        for _ in 0..2 {
            match event_rx.recv_timeout(Duration::from_secs(2)).unwrap() {
                PumpEvent::Batch { .. } => batches += 1,
                PumpEvent::SyncSamples {
                    node,
                    round,
                    samples: s,
                } => {
                    assert_eq!(node, NodeId(2));
                    assert_eq!(round, 9);
                    samples = Some(s);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(batches, 1);
        let samples = samples.expect("sync samples event");
        assert_eq!(samples.len(), 3);
        for s in samples {
            assert!(s.rtt_us() >= 0);
        }
        pool.stop();
    }

    #[test]
    fn spoofed_batch_ends_the_connection() {
        let (pool, pump_rx, event_rx, _q) = test_pool();
        let mut client = mem_client(&pool);
        client
            .send(
                &Message::Hello {
                    node: NodeId(5),
                    version: brisk_proto::VERSION,
                }
                .encode(),
            )
            .unwrap();
        let _ack = client.recv(Some(Duration::from_secs(2))).unwrap().unwrap();
        let handle = pump_rx.recv_timeout(Duration::from_secs(2)).unwrap();
        client
            .send(
                &Message::EventBatch {
                    node: NodeId(6),
                    seq: Some(1),
                    records: vec![],
                }
                .encode(),
            )
            .unwrap();
        match event_rx.recv_timeout(Duration::from_secs(2)).unwrap() {
            PumpEvent::Disconnected { node, id } => {
                assert_eq!(node, NodeId(5));
                assert_eq!(id, handle.id());
            }
            other => panic!("spoofed batch must not be forwarded, got {other:?}"),
        }
        pool.stop();
    }
}
