//! ISM output stage (§3.5, Fig. 1 right side).
//!
//! "Each instrumentation data record, after being extracted from the ISM's
//! heap, is written to a memory buffer using the same binary structure used
//! by the NOTICE macros. Optionally, a PICL trace record can be generated
//! … or it may pass instrumentation data to a list of CORBA-enabled visual
//! objects." The visual-object path is the [`EventSink`] trait; its
//! concrete implementations (and the memory-buffer consumer utilities)
//! live in `brisk-consumers`.

use brisk_core::{binenc, BriskError, EventRecord, Result};
use brisk_picl::{PiclWriter, TsMode};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::Arc;

/// A consumer of the ISM's sorted output stream.
pub trait EventSink: Send {
    /// Deliver one sorted record.
    fn on_record(&mut self, rec: &EventRecord) -> Result<()>;

    /// Flush any buffering (called at shutdown and checkpoints).
    fn flush(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Blanket sink over a closure, handy in tests and small tools.
impl<F: FnMut(&EventRecord) -> Result<()> + Send> EventSink for F {
    fn on_record(&mut self, rec: &EventRecord) -> Result<()> {
        self(rec)
    }
}

struct MemoryBufferInner {
    /// Encoded records, oldest first.
    records: VecDeque<Vec<u8>>,
    /// Total encoded bytes currently held.
    bytes: usize,
    /// Global index of `records.front()` (grows monotonically as old
    /// records are evicted).
    first_index: u64,
    evicted: u64,
    written: u64,
}

/// The ISM's default output: a bounded in-memory log of encoded records
/// that any number of consumer tools read at their own pace.
///
/// Records are stored in the *native* binary encoding ("the same binary
/// structure used by the NOTICE macros"). When the byte bound is exceeded
/// the oldest records are evicted; a slow reader observes the eviction as
/// an explicit `missed` count rather than silently corrupted data.
pub struct MemoryBuffer {
    capacity_bytes: usize,
    inner: Mutex<MemoryBufferInner>,
}

impl MemoryBuffer {
    /// New buffer bounded to roughly `capacity_bytes` of encoded records.
    pub fn new(capacity_bytes: usize) -> Arc<Self> {
        Arc::new(MemoryBuffer {
            capacity_bytes: capacity_bytes.max(1024),
            inner: Mutex::new(MemoryBufferInner {
                records: VecDeque::new(),
                bytes: 0,
                first_index: 0,
                evicted: 0,
                written: 0,
            }),
        })
    }

    /// Append one record.
    pub fn write(&self, rec: &EventRecord) {
        let mut encoded = Vec::with_capacity(rec.native_size());
        binenc::encode_record(rec, &mut encoded);
        let mut inner = self.inner.lock();
        inner.bytes += encoded.len();
        inner.records.push_back(encoded);
        inner.written += 1;
        while inner.bytes > self.capacity_bytes && inner.records.len() > 1 {
            let old = inner.records.pop_front().expect("non-empty");
            inner.bytes -= old.len();
            inner.first_index += 1;
            inner.evicted += 1;
        }
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// True if no record is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records ever written.
    pub fn written(&self) -> u64 {
        self.inner.lock().written
    }

    /// Records evicted to stay within the byte bound.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().evicted
    }

    /// Create a reader starting at the oldest available record.
    pub fn reader(self: &Arc<Self>) -> MemoryBufferReader {
        MemoryBufferReader {
            buffer: Arc::clone(self),
            next_index: self.inner.lock().first_index,
        }
    }

    /// Create a reader that only sees records written from now on.
    pub fn reader_from_now(self: &Arc<Self>) -> MemoryBufferReader {
        let inner = self.inner.lock();
        MemoryBufferReader {
            buffer: Arc::clone(self),
            next_index: inner.first_index + inner.records.len() as u64,
        }
    }
}

/// A cursor over a [`MemoryBuffer`]; many can coexist.
pub struct MemoryBufferReader {
    buffer: Arc<MemoryBuffer>,
    next_index: u64,
}

impl MemoryBufferReader {
    /// Read all records available since the last poll. Returns the decoded
    /// records and the number missed due to eviction (0 for a reader that
    /// keeps up).
    pub fn poll(&mut self) -> Result<(Vec<EventRecord>, u64)> {
        let inner = self.buffer.inner.lock();
        let mut missed = 0;
        if self.next_index < inner.first_index {
            missed = inner.first_index - self.next_index;
            self.next_index = inner.first_index;
        }
        let skip = (self.next_index - inner.first_index) as usize;
        let mut out = Vec::with_capacity(inner.records.len().saturating_sub(skip));
        for encoded in inner.records.iter().skip(skip) {
            let (rec, used) = binenc::decode_record(encoded)?;
            if used != encoded.len() {
                return Err(BriskError::Codec("trailing bytes in memory buffer".into()));
            }
            out.push(rec);
        }
        self.next_index += out.len() as u64;
        Ok((out, missed))
    }
}

/// Sink adapter writing into a [`MemoryBuffer`].
pub struct MemoryBufferSink(pub Arc<MemoryBuffer>);

impl EventSink for MemoryBufferSink {
    fn on_record(&mut self, rec: &EventRecord) -> Result<()> {
        self.0.write(rec);
        Ok(())
    }
}

/// Sink writing PICL ASCII trace records to any `Write` target ("it may
/// log instrumentation data to trace files in the PICL ASCII format").
pub struct PiclFileSink {
    writer: PiclWriter<Box<dyn Write + Send>>,
}

impl PiclFileSink {
    /// New sink over `target` (typically a `File`) with the given timestamp
    /// mode.
    pub fn new(target: Box<dyn Write + Send>, mode: TsMode) -> Result<Self> {
        Ok(PiclFileSink {
            writer: PiclWriter::new(target, mode)?,
        })
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.writer.records_written()
    }
}

impl EventSink for PiclFileSink {
    fn on_record(&mut self, rec: &EventRecord) -> Result<()> {
        self.writer.write_event(rec)
    }

    fn flush(&mut self) -> Result<()> {
        self.writer.flush()
    }
}

/// Test/diagnostic sink collecting records into a shared vector.
#[derive(Clone, Default)]
pub struct VecSink(pub Arc<Mutex<Vec<EventRecord>>>);

impl VecSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of everything collected.
    pub fn snapshot(&self) -> Vec<EventRecord> {
        self.0.lock().clone()
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.0.lock().len()
    }

    /// True if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for VecSink {
    fn on_record(&mut self, rec: &EventRecord) -> Result<()> {
        self.0.lock().push(rec.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_core::{EventTypeId, NodeId, SensorId, UtcMicros, Value};

    fn rec(seq: u64) -> EventRecord {
        EventRecord::new(
            NodeId(1),
            SensorId(0),
            EventTypeId(1),
            seq,
            UtcMicros::from_micros(seq as i64),
            vec![Value::U64(seq)],
        )
        .unwrap()
    }

    #[test]
    fn reader_sees_records_in_order() {
        let buf = MemoryBuffer::new(1 << 20);
        let mut reader = buf.reader();
        for i in 0..10 {
            buf.write(&rec(i));
        }
        let (got, missed) = reader.poll().unwrap();
        assert_eq!(missed, 0);
        assert_eq!(got.len(), 10);
        assert_eq!(got[4].seq, 4);
        // Second poll: nothing new.
        let (got, missed) = reader.poll().unwrap();
        assert!(got.is_empty());
        assert_eq!(missed, 0);
    }

    #[test]
    fn incremental_reads() {
        let buf = MemoryBuffer::new(1 << 20);
        let mut reader = buf.reader();
        buf.write(&rec(0));
        assert_eq!(reader.poll().unwrap().0.len(), 1);
        buf.write(&rec(1));
        buf.write(&rec(2));
        let (got, _) = reader.poll().unwrap();
        assert_eq!(got.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn eviction_reports_missed() {
        // Tiny buffer: each encoded record is ~38 bytes, cap floor is 1024.
        let buf = MemoryBuffer::new(1024);
        let mut reader = buf.reader();
        for i in 0..100 {
            buf.write(&rec(i));
        }
        assert!(buf.evicted() > 0);
        let (got, missed) = reader.poll().unwrap();
        assert_eq!(missed, buf.evicted());
        assert_eq!(got.len() as u64 + missed, 100);
        // The survivors are the newest, contiguous.
        assert_eq!(got.last().unwrap().seq, 99);
        let seqs: Vec<u64> = got.iter().map(|r| r.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn multiple_independent_readers() {
        let buf = MemoryBuffer::new(1 << 20);
        let mut r1 = buf.reader();
        buf.write(&rec(0));
        let mut r2 = buf.reader();
        buf.write(&rec(1));
        assert_eq!(r1.poll().unwrap().0.len(), 2);
        assert_eq!(
            r2.poll().unwrap().0.len(),
            2,
            "r2 starts at oldest available"
        );
        let mut r3 = buf.reader_from_now();
        buf.write(&rec(2));
        assert_eq!(r3.poll().unwrap().0.len(), 1, "r3 sees only new records");
    }

    #[test]
    fn memory_buffer_sink_writes_through() {
        let buf = MemoryBuffer::new(1 << 20);
        let mut sink = MemoryBufferSink(Arc::clone(&buf));
        sink.on_record(&rec(7)).unwrap();
        assert_eq!(buf.written(), 1);
        assert_eq!(buf.reader().poll().unwrap().0[0].seq, 7);
    }

    #[test]
    fn picl_sink_produces_parseable_trace() {
        use brisk_picl::read_trace;
        let shared: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct SharedWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink =
            PiclFileSink::new(Box::new(SharedWriter(Arc::clone(&shared))), TsMode::Utc).unwrap();
        for i in 0..5 {
            sink.on_record(&rec(i)).unwrap();
        }
        sink.flush().unwrap();
        assert_eq!(sink.records_written(), 5);
        let text = String::from_utf8(shared.lock().clone()).unwrap();
        let parsed = read_trace(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 5);
    }

    #[test]
    fn closure_sink_works() {
        let mut count = 0;
        {
            let mut sink = |_rec: &EventRecord| -> Result<()> {
                count += 1;
                Ok(())
            };
            sink.on_record(&rec(0)).unwrap();
            sink.on_record(&rec(1)).unwrap();
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn vec_sink_collects() {
        let sink = VecSink::new();
        let mut s2 = sink.clone();
        s2.on_record(&rec(3)).unwrap();
        assert_eq!(sink.snapshot()[0].seq, 3);
        assert_eq!(sink.len(), 1);
    }
}
