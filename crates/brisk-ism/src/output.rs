//! ISM output stage (§3.5, Fig. 1 right side).
//!
//! "Each instrumentation data record, after being extracted from the ISM's
//! heap, is written to a memory buffer using the same binary structure used
//! by the NOTICE macros. Optionally, a PICL trace record can be generated
//! … or it may pass instrumentation data to a list of CORBA-enabled visual
//! objects." The visual-object path is the [`EventSink`] trait; its
//! concrete implementations (and the memory-buffer consumer utilities)
//! live in `brisk-consumers`.

use brisk_core::{binenc, BriskError, EventRecord, Result};
use brisk_picl::{PiclWriter, TsMode};
use brisk_telemetry::{Counter, Registry};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::Arc;

pub use brisk_core::sink::EventSink;

struct MemoryBufferInner {
    /// Encoded records, oldest first.
    records: VecDeque<Vec<u8>>,
    /// Total encoded bytes currently held.
    bytes: usize,
    /// Global index of `records.front()` (grows monotonically as old
    /// records are evicted).
    first_index: u64,
    evicted: u64,
    written: u64,
}

/// The ISM's default output: a bounded in-memory log of encoded records
/// that any number of consumer tools read at their own pace.
///
/// Records are stored in the *native* binary encoding ("the same binary
/// structure used by the NOTICE macros"). When the byte bound is exceeded
/// the oldest records are evicted; a slow reader observes the eviction as
/// an explicit `missed` count rather than silently corrupted data.
pub struct MemoryBuffer {
    capacity_bytes: usize,
    inner: Mutex<MemoryBufferInner>,
}

impl MemoryBuffer {
    /// New buffer bounded to roughly `capacity_bytes` of encoded records.
    pub fn new(capacity_bytes: usize) -> Arc<Self> {
        Arc::new(MemoryBuffer {
            capacity_bytes: capacity_bytes.max(1024),
            inner: Mutex::new(MemoryBufferInner {
                records: VecDeque::new(),
                bytes: 0,
                first_index: 0,
                evicted: 0,
                written: 0,
            }),
        })
    }

    /// Append one record.
    pub fn write(&self, rec: &EventRecord) {
        let mut encoded = Vec::with_capacity(rec.native_size());
        binenc::encode_record(rec, &mut encoded);
        self.write_encoded(encoded);
    }

    /// Append one record the caller already `binenc`-encoded. The delivery
    /// path encodes each record exactly once and shares the bytes between
    /// this buffer and the durable store.
    pub fn write_encoded(&self, encoded: Vec<u8>) {
        let mut inner = self.inner.lock();
        inner.bytes += encoded.len();
        inner.records.push_back(encoded);
        inner.written += 1;
        while inner.bytes > self.capacity_bytes && inner.records.len() > 1 {
            let old = inner.records.pop_front().expect("non-empty");
            inner.bytes -= old.len();
            inner.first_index += 1;
            inner.evicted += 1;
        }
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// True if no record is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total records ever written.
    pub fn written(&self) -> u64 {
        self.inner.lock().written
    }

    /// Records evicted to stay within the byte bound.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().evicted
    }

    /// Create a reader starting at the oldest available record.
    pub fn reader(self: &Arc<Self>) -> MemoryBufferReader {
        MemoryBufferReader {
            buffer: Arc::clone(self),
            next_index: self.inner.lock().first_index,
            missed_counter: None,
        }
    }

    /// Create a reader that only sees records written from now on.
    pub fn reader_from_now(self: &Arc<Self>) -> MemoryBufferReader {
        let inner = self.inner.lock();
        MemoryBufferReader {
            buffer: Arc::clone(self),
            next_index: inner.first_index + inner.records.len() as u64,
            missed_counter: None,
        }
    }
}

/// A cursor over a [`MemoryBuffer`]; many can coexist.
pub struct MemoryBufferReader {
    buffer: Arc<MemoryBuffer>,
    next_index: u64,
    missed_counter: Option<Arc<Counter>>,
}

impl MemoryBufferReader {
    /// Export this reader's cumulative eviction loss as the labeled series
    /// `brisk_ism_reader_missed_total{reader="<label>"}`, so a lagging
    /// consumer's silent in-memory loss shows up on `--stats-addr`.
    pub fn bind_telemetry(&mut self, registry: &Registry, label: &str) {
        self.missed_counter = Some(registry.counter_with(
            "brisk_ism_reader_missed_total",
            "Records this memory-buffer reader missed due to eviction",
            &[("reader", label)],
        ));
    }

    /// Read all records available since the last poll. Returns the decoded
    /// records and the number missed due to eviction (0 for a reader that
    /// keeps up).
    pub fn poll(&mut self) -> Result<(Vec<EventRecord>, u64)> {
        let inner = self.buffer.inner.lock();
        let mut missed = 0;
        if self.next_index < inner.first_index {
            missed = inner.first_index - self.next_index;
            self.next_index = inner.first_index;
            if let Some(c) = &self.missed_counter {
                c.add(missed);
            }
        }
        let skip = (self.next_index - inner.first_index) as usize;
        let mut out = Vec::with_capacity(inner.records.len().saturating_sub(skip));
        for encoded in inner.records.iter().skip(skip) {
            let (rec, used) = binenc::decode_record(encoded)?;
            if used != encoded.len() {
                return Err(BriskError::Codec("trailing bytes in memory buffer".into()));
            }
            out.push(rec);
        }
        self.next_index += out.len() as u64;
        Ok((out, missed))
    }
}

/// Sink adapter writing into a [`MemoryBuffer`].
pub struct MemoryBufferSink(pub Arc<MemoryBuffer>);

impl EventSink for MemoryBufferSink {
    fn on_record(&mut self, rec: &EventRecord) -> Result<()> {
        self.0.write(rec);
        Ok(())
    }
}

/// Sink writing PICL ASCII trace records to any `Write` target ("it may
/// log instrumentation data to trace files in the PICL ASCII format").
///
/// Dropping the sink flushes buffered records, so a trace file opened via
/// [`PiclFileSink::from_path`] is complete even when the ISM exits without
/// an explicit [`EventSink::flush`] call.
pub struct PiclFileSink {
    writer: PiclWriter<Box<dyn Write + Send>>,
    /// Duplicate handle to the backing file (when there is one), kept so
    /// `flush()` can `sync_all` the written bytes to stable storage.
    sync_handle: Option<std::fs::File>,
}

impl PiclFileSink {
    /// New sink over `target` (typically a `File`) with the given timestamp
    /// mode.
    pub fn new(target: Box<dyn Write + Send>, mode: TsMode) -> Result<Self> {
        Ok(PiclFileSink {
            writer: PiclWriter::new(target, mode)?,
            sync_handle: None,
        })
    }

    /// New sink writing to the file at `path` (created/truncated). Unlike
    /// [`PiclFileSink::new`], this keeps a handle to the file so `flush()`
    /// also forces the trace to stable storage with `sync_all`.
    pub fn from_path(path: impl AsRef<Path>, mode: TsMode) -> Result<Self> {
        let file = std::fs::File::create(path)?;
        let sync_handle = file.try_clone().ok();
        let target: Box<dyn Write + Send> = Box::new(file);
        Ok(PiclFileSink {
            writer: PiclWriter::new(target, mode)?,
            sync_handle,
        })
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.writer.records_written()
    }
}

impl EventSink for PiclFileSink {
    fn on_record(&mut self, rec: &EventRecord) -> Result<()> {
        self.writer.write_event(rec)
    }

    fn flush(&mut self) -> Result<()> {
        self.writer.flush()?;
        if let Some(f) = &self.sync_handle {
            f.sync_all()?;
        }
        Ok(())
    }
}

impl Drop for PiclFileSink {
    fn drop(&mut self) {
        // Best effort: never panic in drop, but do not leave buffered
        // records behind when a sink is dropped without an explicit flush.
        let _ = self.flush();
    }
}

/// Test/diagnostic sink collecting records into a shared vector.
#[derive(Clone, Default)]
pub struct VecSink(pub Arc<Mutex<Vec<EventRecord>>>);

impl VecSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of everything collected.
    pub fn snapshot(&self) -> Vec<EventRecord> {
        self.0.lock().clone()
    }

    /// Number of records collected.
    pub fn len(&self) -> usize {
        self.0.lock().len()
    }

    /// True if nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl EventSink for VecSink {
    fn on_record(&mut self, rec: &EventRecord) -> Result<()> {
        self.0.lock().push(rec.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_core::{EventTypeId, NodeId, SensorId, UtcMicros, Value};

    fn rec(seq: u64) -> EventRecord {
        EventRecord::new(
            NodeId(1),
            SensorId(0),
            EventTypeId(1),
            seq,
            UtcMicros::from_micros(seq as i64),
            vec![Value::U64(seq)],
        )
        .unwrap()
    }

    #[test]
    fn reader_sees_records_in_order() {
        let buf = MemoryBuffer::new(1 << 20);
        let mut reader = buf.reader();
        for i in 0..10 {
            buf.write(&rec(i));
        }
        let (got, missed) = reader.poll().unwrap();
        assert_eq!(missed, 0);
        assert_eq!(got.len(), 10);
        assert_eq!(got[4].seq, 4);
        // Second poll: nothing new.
        let (got, missed) = reader.poll().unwrap();
        assert!(got.is_empty());
        assert_eq!(missed, 0);
    }

    #[test]
    fn incremental_reads() {
        let buf = MemoryBuffer::new(1 << 20);
        let mut reader = buf.reader();
        buf.write(&rec(0));
        assert_eq!(reader.poll().unwrap().0.len(), 1);
        buf.write(&rec(1));
        buf.write(&rec(2));
        let (got, _) = reader.poll().unwrap();
        assert_eq!(got.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn eviction_reports_missed() {
        // Tiny buffer: each encoded record is ~38 bytes, cap floor is 1024.
        let buf = MemoryBuffer::new(1024);
        let mut reader = buf.reader();
        for i in 0..100 {
            buf.write(&rec(i));
        }
        assert!(buf.evicted() > 0);
        let (got, missed) = reader.poll().unwrap();
        assert_eq!(missed, buf.evicted());
        assert_eq!(got.len() as u64 + missed, 100);
        // The survivors are the newest, contiguous.
        assert_eq!(got.last().unwrap().seq, 99);
        let seqs: Vec<u64> = got.iter().map(|r| r.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn multiple_independent_readers() {
        let buf = MemoryBuffer::new(1 << 20);
        let mut r1 = buf.reader();
        buf.write(&rec(0));
        let mut r2 = buf.reader();
        buf.write(&rec(1));
        assert_eq!(r1.poll().unwrap().0.len(), 2);
        assert_eq!(
            r2.poll().unwrap().0.len(),
            2,
            "r2 starts at oldest available"
        );
        let mut r3 = buf.reader_from_now();
        buf.write(&rec(2));
        assert_eq!(r3.poll().unwrap().0.len(), 1, "r3 sees only new records");
    }

    #[test]
    fn memory_buffer_sink_writes_through() {
        let buf = MemoryBuffer::new(1 << 20);
        let mut sink = MemoryBufferSink(Arc::clone(&buf));
        sink.on_record(&rec(7)).unwrap();
        assert_eq!(buf.written(), 1);
        assert_eq!(buf.reader().poll().unwrap().0[0].seq, 7);
    }

    #[test]
    fn picl_sink_produces_parseable_trace() {
        use brisk_picl::read_trace;
        let shared: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct SharedWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink =
            PiclFileSink::new(Box::new(SharedWriter(Arc::clone(&shared))), TsMode::Utc).unwrap();
        for i in 0..5 {
            sink.on_record(&rec(i)).unwrap();
        }
        sink.flush().unwrap();
        assert_eq!(sink.records_written(), 5);
        let text = String::from_utf8(shared.lock().clone()).unwrap();
        let parsed = read_trace(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 5);
    }

    #[test]
    fn picl_sink_drop_flushes_file() {
        use brisk_picl::read_trace;
        let path = std::env::temp_dir().join(format!("brisk-picl-drop-{}.trc", std::process::id()));
        {
            let mut sink = PiclFileSink::from_path(&path, TsMode::Utc).unwrap();
            for i in 0..7 {
                sink.on_record(&rec(i)).unwrap();
            }
            // No explicit flush: Drop must do it.
        }
        let bytes = std::fs::read(&path).unwrap();
        let parsed = read_trace(&bytes[..]).unwrap();
        assert_eq!(parsed.len(), 7);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn reader_missed_counter_is_exported() {
        let registry = Registry::new();
        let buf = MemoryBuffer::new(1024);
        let mut reader = buf.reader();
        reader.bind_telemetry(&registry, "test");
        for i in 0..100 {
            buf.write(&rec(i));
        }
        let (_, missed) = reader.poll().unwrap();
        assert!(missed > 0);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_labeled("brisk_ism_reader_missed_total", &[("reader", "test")]),
            Some(missed)
        );
    }

    #[test]
    fn closure_sink_works() {
        let mut count = 0;
        {
            let mut sink = |_rec: &EventRecord| -> Result<()> {
                count += 1;
                Ok(())
            };
            sink.on_record(&rec(0)).unwrap();
            sink.on_record(&rec(1)).unwrap();
        }
        assert_eq!(count, 2);
    }

    #[test]
    fn vec_sink_collects() {
        let sink = VecSink::new();
        let mut s2 = sink.clone();
        s2.on_record(&rec(3)).unwrap();
        assert_eq!(sink.snapshot()[0].seq, 3);
        assert_eq!(sink.len(), 1);
    }
}
