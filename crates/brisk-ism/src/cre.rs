//! Causally-related event (CRE) handling (§3.2, §3.6).
//!
//! Users mark causally-related events with `X_REASON` / `X_CONSEQ` fields
//! carrying the same identifier: "determining which consequence events must
//! follow respective reason events". If clock synchronization fails to
//! prevent *tachyons* — "a consequence event that appears to happen before
//! its reason event" — the ISM post-processes them:
//!
//! * reasons are remembered in a hash table keyed by correlation id;
//! * a consequence whose reason is known and whose timestamp is not after
//!   the reason's gets its timestamp **overridden** to just after the
//!   reason ("the time-stamps must reflect the causality") and an **extra
//!   synchronization round** is requested;
//! * a consequence arriving before its reason is **held** until the reason
//!   shows up ("it is kept in memory until the corresponding reason event
//!   record is processed");
//! * "a causally-marked event of either type is kept in memory no longer
//!   than a specified timeout, because its peer may have been dropped."

use brisk_core::{
    CorrelationId, CreConfig, EventRecord, HlcStamp, OrderMode, Result, TraceStage, UtcMicros,
};
use std::collections::HashMap;

/// Counters describing CRE behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CreStats {
    /// Records that passed through unmarked.
    pub unmarked: u64,
    /// Reason records processed.
    pub reasons: u64,
    /// Consequence records processed.
    pub conseqs: u64,
    /// Tachyons repaired by timestamp override.
    pub tachyons_repaired: u64,
    /// Consequences held waiting for their reason.
    pub held: u64,
    /// Held consequences released because the timeout expired.
    pub expired: u64,
    /// Extra synchronization rounds requested.
    pub extra_syncs_requested: u64,
    /// Extra sync requests suppressed by the token-bucket rate limit
    /// (the tachyon was still repaired; only the sync round was skipped).
    pub extra_syncs_suppressed: u64,
}

/// What the matcher did with one input record.
#[derive(Debug, PartialEq)]
pub struct CreOutput {
    /// Records ready to continue down the pipeline (the input and possibly
    /// previously-held consequences it unblocked), in the order they should
    /// be pushed to the sorter.
    pub pass: Vec<EventRecord>,
    /// True if a tachyon was repaired and an extra sync round should run
    /// (§3.6; honoured when [`CreConfig::extra_sync_on_tachyon`] is set).
    pub request_extra_sync: bool,
}

struct ReasonEntry {
    ts: UtcMicros,
    hlc: Option<HlcStamp>,
    seen_at: UtcMicros,
}

struct HeldConseq {
    rec: EventRecord,
    held_at: UtcMicros,
}

/// The CRE hash-table matcher.
///
/// ```
/// use brisk_core::{CorrelationId, CreConfig, EventRecord, EventTypeId,
///                  NodeId, SensorId, UtcMicros, Value};
/// use brisk_ism::CreMatcher;
///
/// let mut cre = CreMatcher::new(CreConfig::default()).unwrap();
/// let reason = EventRecord::new(
///     NodeId(0), SensorId(0), EventTypeId(1), 0, UtcMicros::from_micros(100),
///     vec![Value::Reason(CorrelationId(7))],
/// ).unwrap();
/// // The "effect" carries an EARLIER timestamp — a tachyon.
/// let conseq = EventRecord::new(
///     NodeId(1), SensorId(0), EventTypeId(2), 0, UtcMicros::from_micros(90),
///     vec![Value::Conseq(CorrelationId(7))],
/// ).unwrap();
///
/// cre.process(reason, UtcMicros::ZERO);
/// let out = cre.process(conseq, UtcMicros::ZERO);
/// // Repaired: the consequence now sits just after its reason, and an
/// // extra clock-sync round is requested.
/// assert!(out.pass[0].ts.as_micros() > 100);
/// assert!(out.request_extra_sync);
/// ```
pub struct CreMatcher {
    cfg: CreConfig,
    order: OrderMode,
    reasons: HashMap<CorrelationId, ReasonEntry>,
    waiting: HashMap<CorrelationId, Vec<HeldConseq>>,
    stats: CreStats,
    /// Extra-sync token bucket: available tokens and last refill time.
    sync_tokens: u32,
    sync_last_refill: Option<UtcMicros>,
}

impl CreMatcher {
    /// New matcher with the given knobs.
    pub fn new(cfg: CreConfig) -> Result<Self> {
        cfg.validate()?;
        Ok(CreMatcher {
            sync_tokens: cfg.extra_sync_burst,
            cfg,
            order: OrderMode::default(),
            reasons: HashMap::new(),
            waiting: HashMap::new(),
            stats: CreStats::default(),
            sync_last_refill: None,
        })
    }

    /// Select the ordering discipline: in [`OrderMode::Causal`] the
    /// tachyon test compares `X_HLC` stamps (provable happened-before)
    /// when both sides carry one, falling back to the timestamp heuristic
    /// otherwise.
    pub fn set_order_mode(&mut self, order: OrderMode) {
        self.order = order;
    }

    /// Counters so far.
    pub fn stats(&self) -> CreStats {
        self.stats
    }

    /// Consequences currently held.
    pub fn held_count(&self) -> usize {
        self.waiting.values().map(Vec::len).sum()
    }

    /// Remembered reasons.
    pub fn reason_count(&self) -> usize {
        self.reasons.len()
    }

    /// Process one record. `now` is the ISM's current time (used for the
    /// hold timeout).
    pub fn process(&mut self, mut rec: EventRecord, now: UtcMicros) -> CreOutput {
        let mut out = CreOutput {
            pass: Vec::with_capacity(1),
            request_extra_sync: false,
        };
        // A record can be a reason, a consequence, or (rarely) both — e.g.
        // a relay hop that is caused by one event and causes another.
        let reason_id = rec.reason_id();
        let conseq_id = rec.conseq_id();

        if let Some(id) = conseq_id {
            self.stats.conseqs += 1;
            match self.reasons.get(&id) {
                Some(entry) => {
                    if Self::is_tachyon(self.order, &rec, entry) {
                        let (ts, hlc) = (entry.ts, entry.hlc);
                        self.repair(&mut rec, ts, hlc, now, &mut out);
                    }
                }
                None => {
                    // Reason not seen yet: hold. A relay hop (conseq of one
                    // id, reason for another) still registers the reason id
                    // it carries, so consequences of the hop don't stall
                    // until the hold timeout; waiters already held for that
                    // id release when the hop itself does.
                    if let Some(rid) = reason_id {
                        self.stats.reasons += 1;
                        self.reasons.insert(
                            rid,
                            ReasonEntry {
                                ts: rec.ts,
                                hlc: rec.hlc(),
                                seen_at: now,
                            },
                        );
                    }
                    self.stats.held += 1;
                    rec.stamp_trace(TraceStage::CreHold, now);
                    self.waiting
                        .entry(id)
                        .or_default()
                        .push(HeldConseq { rec, held_at: now });
                    return out;
                }
            }
        }

        if let Some(id) = reason_id {
            self.stats.reasons += 1;
            let reason_ts = rec.ts;
            let reason_hlc = rec.hlc();
            self.reasons.insert(
                id,
                ReasonEntry {
                    ts: reason_ts,
                    hlc: reason_hlc,
                    seen_at: now,
                },
            );
            // Release any consequences that were waiting for this reason.
            if let Some(held) = self.waiting.remove(&id) {
                // The reason itself goes first so consumers see causality.
                out.pass.push(rec);
                self.release_cascade(reason_ts, reason_hlc, held, now, &mut out);
                return out;
            }
        } else if conseq_id.is_none() {
            self.stats.unmarked += 1;
        }

        out.pass.push(rec);
        out
    }

    /// The causality test: did this consequence provably NOT happen after
    /// its reason? In causal mode an `X_HLC` comparison decides when both
    /// sides carry a stamp — provable happened-before, immune to clock
    /// skew; otherwise (and always in physical mode) the timestamp
    /// heuristic of §3.6 applies.
    fn is_tachyon(order: OrderMode, conseq: &EventRecord, reason: &ReasonEntry) -> bool {
        match (order, conseq.hlc(), reason.hlc) {
            (OrderMode::Causal, Some(c), Some(r)) => c <= r,
            _ => conseq.ts <= reason.ts,
        }
    }

    /// Repair one tachyonic consequence against its reason's stamps:
    /// raise its `X_HLC` strictly above the reason's (causal mode) and
    /// reconcile its physical timestamp toward the HLC bound — the
    /// repaired record must sort after its reason under BOTH disciplines,
    /// so causal repairs survive a physically-ordered downstream tier.
    fn repair(
        &mut self,
        rec: &mut EventRecord,
        reason_ts: UtcMicros,
        reason_hlc: Option<HlcStamp>,
        now: UtcMicros,
        out: &mut CreOutput,
    ) {
        let mut ts_floor = reason_ts;
        if self.order == OrderMode::Causal {
            if let Some(r) = reason_hlc {
                let bound = HlcStamp::new(r.physical, r.logical.saturating_add(1));
                match rec.hlc() {
                    Some(c) if c > bound => {}
                    _ => {
                        rec.set_hlc(bound);
                    }
                }
                ts_floor = ts_floor.max(r.physical);
            }
        }
        if rec.ts <= ts_floor {
            rec.override_ts(ts_floor.offset(self.cfg.tachyon_bump_us));
        }
        rec.stamp_trace(TraceStage::CreRepair, now);
        self.stats.tachyons_repaired += 1;
        if self.cfg.extra_sync_on_tachyon {
            if self.take_sync_token(now) {
                self.stats.extra_syncs_requested += 1;
                out.request_extra_sync = true;
            } else {
                self.stats.extra_syncs_suppressed += 1;
            }
        }
    }

    /// Token-bucket gate for extra sync rounds: `extra_sync_burst` tokens,
    /// one restored per `extra_sync_refill` of ISM time.
    fn take_sync_token(&mut self, now: UtcMicros) -> bool {
        let refill_us = self.cfg.extra_sync_refill.as_micros() as i64;
        let last = *self.sync_last_refill.get_or_insert(now);
        let steps = now.micros_since(last).max(0) / refill_us;
        if steps > 0 {
            let add = u32::try_from(steps).unwrap_or(u32::MAX);
            self.sync_tokens = self
                .sync_tokens
                .saturating_add(add)
                .min(self.cfg.extra_sync_burst);
            self.sync_last_refill = Some(last.offset(steps.saturating_mul(refill_us)));
        }
        if self.sync_tokens > 0 {
            self.sync_tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Release `held` (the waiters of a reason stamped `reason_ts`),
    /// repairing tachyons, and transitively release the waiters of any
    /// released record that is itself a reason (a relay hop). The hop's
    /// reason entry is refreshed with its final — possibly bumped —
    /// stamps so its consequences land causally after it.
    fn release_cascade(
        &mut self,
        reason_ts: UtcMicros,
        reason_hlc: Option<HlcStamp>,
        held: Vec<HeldConseq>,
        now: UtcMicros,
        out: &mut CreOutput,
    ) {
        let mut work = std::collections::VecDeque::new();
        work.push_back((reason_ts, reason_hlc, held));
        while let Some((reason_ts, reason_hlc, held)) = work.pop_front() {
            let entry = ReasonEntry {
                ts: reason_ts,
                hlc: reason_hlc,
                seen_at: now,
            };
            for mut h in held {
                if Self::is_tachyon(self.order, &h.rec, &entry) {
                    self.repair(&mut h.rec, reason_ts, reason_hlc, now, out);
                }
                // `stats.reasons` already counted when the hop registered
                // its id at hold time — only the entry is refreshed here.
                if let Some(rid) = h.rec.reason_id() {
                    if let Some(entry) = self.reasons.get_mut(&rid) {
                        entry.ts = h.rec.ts;
                        entry.hlc = h.rec.hlc();
                        entry.seen_at = now;
                    }
                    if let Some(waiters) = self.waiting.remove(&rid) {
                        work.push_back((h.rec.ts, h.rec.hlc(), waiters));
                    }
                }
                out.pass.push(h.rec);
            }
        }
    }

    /// Expire held consequences and stale reasons per the hold timeout.
    /// Returns timed-out consequences (released unmodified — "its peer may
    /// have been dropped").
    pub fn expire(&mut self, now: UtcMicros) -> Vec<EventRecord> {
        let timeout_us = self.cfg.hold_timeout.as_micros() as i64;
        let mut released = Vec::new();
        self.waiting.retain(|_, held| {
            held.retain_mut(|h| {
                if now.micros_since(h.held_at) >= timeout_us {
                    released.push(std::mem::replace(
                        &mut h.rec,
                        EventRecord::new(0.into(), 0.into(), 0.into(), 0, UtcMicros::ZERO, vec![])
                            .expect("empty record"),
                    ));
                    false
                } else {
                    true
                }
            });
            !held.is_empty()
        });
        self.stats.expired += released.len() as u64;
        self.reasons
            .retain(|_, entry| now.micros_since(entry.seen_at) < timeout_us);
        // Held consequences are released in arrival order best-effort; sort
        // by origin sequence for determinism.
        released.sort_by_key(|r| r.sort_key());
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_core::{EventTypeId, NodeId, SensorId, Value};
    use std::time::Duration;

    fn reason(id: u64, ts: i64) -> EventRecord {
        EventRecord::new(
            NodeId(0),
            SensorId(0),
            EventTypeId(1),
            0,
            UtcMicros::from_micros(ts),
            vec![Value::Reason(CorrelationId(id))],
        )
        .unwrap()
    }

    fn conseq(id: u64, ts: i64) -> EventRecord {
        EventRecord::new(
            NodeId(1),
            SensorId(0),
            EventTypeId(2),
            0,
            UtcMicros::from_micros(ts),
            vec![Value::Conseq(CorrelationId(id))],
        )
        .unwrap()
    }

    fn plain(ts: i64) -> EventRecord {
        EventRecord::new(
            NodeId(2),
            SensorId(0),
            EventTypeId(3),
            0,
            UtcMicros::from_micros(ts),
            vec![Value::I32(1)],
        )
        .unwrap()
    }

    fn matcher() -> CreMatcher {
        CreMatcher::new(CreConfig {
            hold_timeout: Duration::from_millis(100),
            tachyon_bump_us: 1,
            extra_sync_on_tachyon: true,
            ..CreConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn unmarked_records_pass_through() {
        let mut m = matcher();
        let out = m.process(plain(10), UtcMicros::ZERO);
        assert_eq!(out.pass.len(), 1);
        assert!(!out.request_extra_sync);
        assert_eq!(m.stats().unmarked, 1);
    }

    #[test]
    fn ordered_pair_passes_untouched() {
        let mut m = matcher();
        let now = UtcMicros::ZERO;
        let out = m.process(reason(7, 100), now);
        assert_eq!(out.pass.len(), 1);
        let out = m.process(conseq(7, 150), now);
        assert_eq!(out.pass[0].ts.as_micros(), 150);
        assert!(!out.request_extra_sync);
        assert_eq!(m.stats().tachyons_repaired, 0);
    }

    #[test]
    fn tachyon_after_reason_is_bumped() {
        let mut m = matcher();
        let now = UtcMicros::ZERO;
        m.process(reason(7, 100), now);
        let out = m.process(conseq(7, 90), now);
        assert_eq!(out.pass[0].ts.as_micros(), 101, "reason ts + bump");
        assert!(out.request_extra_sync);
        assert_eq!(m.stats().tachyons_repaired, 1);
        assert_eq!(m.stats().extra_syncs_requested, 1);
    }

    #[test]
    fn equal_timestamps_also_count_as_tachyon() {
        let mut m = matcher();
        m.process(reason(7, 100), UtcMicros::ZERO);
        let out = m.process(conseq(7, 100), UtcMicros::ZERO);
        assert_eq!(out.pass[0].ts.as_micros(), 101);
    }

    #[test]
    fn conseq_before_reason_is_held_then_released() {
        let mut m = matcher();
        let now = UtcMicros::ZERO;
        let out = m.process(conseq(9, 50), now);
        assert!(out.pass.is_empty());
        assert_eq!(m.held_count(), 1);
        // Reason arrives with a LATER ts: held conseq was a tachyon.
        let out = m.process(reason(9, 80), now);
        assert_eq!(out.pass.len(), 2);
        assert_eq!(out.pass[0].ts.as_micros(), 80, "reason first");
        assert_eq!(out.pass[1].ts.as_micros(), 81, "conseq bumped past reason");
        assert!(out.request_extra_sync);
        assert_eq!(m.held_count(), 0);
    }

    #[test]
    fn held_conseq_with_good_ts_released_unmodified() {
        let mut m = matcher();
        let now = UtcMicros::ZERO;
        m.process(conseq(9, 500), now);
        let out = m.process(reason(9, 80), now);
        assert_eq!(out.pass.len(), 2);
        assert_eq!(out.pass[1].ts.as_micros(), 500);
        assert!(!out.request_extra_sync);
    }

    #[test]
    fn multiple_held_conseqs_released_together() {
        let mut m = matcher();
        let now = UtcMicros::ZERO;
        m.process(conseq(9, 50), now);
        m.process(conseq(9, 60), now);
        let out = m.process(reason(9, 100), now);
        assert_eq!(out.pass.len(), 3);
        assert_eq!(m.stats().tachyons_repaired, 2);
    }

    #[test]
    fn hold_timeout_releases_unmatched_conseq() {
        let mut m = matcher();
        let t0 = UtcMicros::ZERO;
        m.process(conseq(11, 50), t0);
        assert!(m.expire(t0 + Duration::from_millis(50)).is_empty());
        let released = m.expire(t0 + Duration::from_millis(100));
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].ts.as_micros(), 50, "released unmodified");
        assert_eq!(m.stats().expired, 1);
        assert_eq!(m.held_count(), 0);
    }

    #[test]
    fn reasons_expire_too() {
        let mut m = matcher();
        let t0 = UtcMicros::ZERO;
        m.process(reason(12, 100), t0);
        assert_eq!(m.reason_count(), 1);
        m.expire(t0 + Duration::from_millis(100));
        assert_eq!(m.reason_count(), 0);
        // A conseq arriving after its reason expired is held (peer gone).
        let out = m.process(conseq(12, 90), t0 + Duration::from_millis(100));
        assert!(out.pass.is_empty());
        assert_eq!(m.held_count(), 1);
    }

    #[test]
    fn extra_sync_can_be_disabled() {
        let mut m = CreMatcher::new(CreConfig {
            extra_sync_on_tachyon: false,
            ..CreConfig::default()
        })
        .unwrap();
        m.process(reason(1, 100), UtcMicros::ZERO);
        let out = m.process(conseq(1, 50), UtcMicros::ZERO);
        assert!(!out.request_extra_sync);
        assert_eq!(m.stats().tachyons_repaired, 1);
        assert_eq!(m.stats().extra_syncs_requested, 0);
    }

    fn with_hlc(mut rec: EventRecord, phys: i64, logical: u32) -> EventRecord {
        rec.set_hlc(HlcStamp::new(UtcMicros::from_micros(phys), logical));
        rec
    }

    fn causal_matcher() -> CreMatcher {
        let mut m = matcher();
        m.set_order_mode(OrderMode::Causal);
        m
    }

    #[test]
    fn causal_mode_detects_tachyon_by_hlc_despite_plausible_ts() {
        // The conseq's physical ts LOOKS fine (150 > 100) because its
        // node's clock is fast — but its HLC proves it cannot have
        // happened after the reason. Physical mode would pass it
        // untouched; causal mode repairs it.
        let mut m = causal_matcher();
        let now = UtcMicros::ZERO;
        m.process(with_hlc(reason(7, 100), 100, 4), now);
        let out = m.process(with_hlc(conseq(7, 150), 100, 2), now);
        assert_eq!(m.stats().tachyons_repaired, 1);
        let repaired = &out.pass[0];
        let h = repaired.hlc().unwrap();
        assert!(
            h > HlcStamp::new(UtcMicros::from_micros(100), 4),
            "repaired stamp must dominate the reason's"
        );
        assert_eq!(h, HlcStamp::new(UtcMicros::from_micros(100), 5));
        assert_eq!(repaired.ts.as_micros(), 150, "plausible ts left alone");
    }

    #[test]
    fn causal_mode_accepts_hlc_ordered_pair_with_skewed_ts() {
        // The conseq's ts is EARLIER (its node's clock is 2 s slow) but
        // its HLC dominates the reason's: provably ordered, no repair.
        // The physical heuristic would have flagged this as a tachyon.
        let mut m = causal_matcher();
        let now = UtcMicros::ZERO;
        m.process(with_hlc(reason(7, 2_000_100), 2_000_100, 0), now);
        let out = m.process(with_hlc(conseq(7, 200), 2_000_100, 3), now);
        assert_eq!(m.stats().tachyons_repaired, 0, "provably ordered");
        assert_eq!(out.pass[0].ts.as_micros(), 200, "not touched");
        assert!(!out.request_extra_sync);
    }

    #[test]
    fn causal_repair_reconciles_ts_toward_hlc_bound() {
        // Reason stamped at HLC physical 2_000_000 (its clock is right);
        // the conseq comes from a node 2 s behind: ts 90, HLC (90, 0).
        // The repair must raise BOTH the stamp and the physical ts past
        // the reason's, so the pair survives a physically-ordered tier.
        let mut m = causal_matcher();
        let now = UtcMicros::ZERO;
        m.process(with_hlc(reason(9, 2_000_000), 2_000_000, 0), now);
        let out = m.process(with_hlc(conseq(9, 90), 90, 0), now);
        assert_eq!(m.stats().tachyons_repaired, 1);
        let repaired = &out.pass[0];
        assert_eq!(
            repaired.hlc().unwrap(),
            HlcStamp::new(UtcMicros::from_micros(2_000_000), 1)
        );
        assert_eq!(
            repaired.ts.as_micros(),
            2_000_001,
            "ts reconciled to the HLC bound + bump"
        );
    }

    #[test]
    fn causal_mode_falls_back_to_ts_without_stamps() {
        let mut m = causal_matcher();
        let now = UtcMicros::ZERO;
        m.process(reason(7, 100), now);
        let out = m.process(conseq(7, 90), now);
        assert_eq!(out.pass[0].ts.as_micros(), 101, "ts heuristic still works");
        assert_eq!(m.stats().tachyons_repaired, 1);
    }

    #[test]
    fn causal_held_conseq_repaired_by_hlc_on_release() {
        let mut m = causal_matcher();
        let now = UtcMicros::ZERO;
        // Conseq first (held), stamped causally before the reason.
        assert!(m
            .process(with_hlc(conseq(9, 500), 100, 1), now)
            .pass
            .is_empty());
        let out = m.process(with_hlc(reason(9, 80), 100, 7), now);
        assert_eq!(out.pass.len(), 2);
        let h = out.pass[1].hlc().unwrap();
        assert_eq!(h, HlcStamp::new(UtcMicros::from_micros(100), 8));
        assert_eq!(m.stats().tachyons_repaired, 1);
    }

    #[test]
    fn extra_sync_requests_are_rate_limited() {
        // A tachyon storm (one skewed node mis-stamping many pairs) must
        // not turn into a sync-round storm: the token bucket allows a
        // burst, suppresses the rest, and refills with time.
        let mut m = CreMatcher::new(CreConfig {
            hold_timeout: Duration::from_millis(100),
            tachyon_bump_us: 1,
            extra_sync_on_tachyon: true,
            extra_sync_burst: 2,
            extra_sync_refill: Duration::from_secs(1),
        })
        .unwrap();
        let t0 = UtcMicros::ZERO;
        for id in 0..4u64 {
            m.process(reason(id, 100), t0);
        }
        assert!(m.process(conseq(0, 50), t0).request_extra_sync);
        assert!(m.process(conseq(1, 50), t0).request_extra_sync);
        // Burst exhausted: tachyons are still repaired, syncs suppressed.
        let out = m.process(conseq(2, 50), t0);
        assert!(!out.request_extra_sync, "third request must be suppressed");
        assert_eq!(out.pass[0].ts.as_micros(), 101, "repair still happens");
        assert_eq!(m.stats().extra_syncs_requested, 2);
        assert_eq!(m.stats().extra_syncs_suppressed, 1);
        // One refill period later a token is back.
        let t1 = t0 + Duration::from_secs(1);
        assert!(m.process(conseq(3, 50), t1).request_extra_sync);
        assert_eq!(m.stats().extra_syncs_requested, 3);
        assert_eq!(m.stats().extra_syncs_suppressed, 1);
    }

    #[test]
    fn record_that_is_both_reason_and_conseq() {
        // A relay hop: conseq of id 1, reason for id 2.
        let mut m = matcher();
        let now = UtcMicros::ZERO;
        m.process(reason(1, 100), now);
        let hop = EventRecord::new(
            NodeId(3),
            SensorId(0),
            EventTypeId(4),
            0,
            UtcMicros::from_micros(90),
            vec![
                Value::Conseq(CorrelationId(1)),
                Value::Reason(CorrelationId(2)),
            ],
        )
        .unwrap();
        let out = m.process(hop, now);
        // Tachyon vs reason 1 repaired; registered as reason 2 with the
        // corrected timestamp.
        assert_eq!(out.pass[0].ts.as_micros(), 101);
        let out = m.process(conseq(2, 95), now);
        assert_eq!(out.pass[0].ts.as_micros(), 102, "chained repair");
    }

    fn relay_hop(conseq_of: u64, reason_for: u64, ts: i64) -> EventRecord {
        EventRecord::new(
            NodeId(3),
            SensorId(0),
            EventTypeId(4),
            0,
            UtcMicros::from_micros(ts),
            vec![
                Value::Conseq(CorrelationId(conseq_of)),
                Value::Reason(CorrelationId(reason_for)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn held_relay_hop_registers_its_reason_id() {
        // A relay hop held for its own reason must still register the
        // reason id it carries, so consequences of the hop don't stall
        // until the hold timeout.
        let mut m = matcher();
        let now = UtcMicros::ZERO;
        assert!(
            m.process(relay_hop(1, 2, 90), now).pass.is_empty(),
            "hop held: reason 1 unseen"
        );
        let out = m.process(conseq(2, 95), now);
        assert_eq!(out.pass.len(), 1, "conseq of the held hop must not stall");
        assert_eq!(out.pass[0].ts.as_micros(), 95, "95 > 90: no repair needed");
    }

    #[test]
    fn relay_chain_released_in_causal_order_without_timeouts() {
        // Worst-case arrival order for the chain 1 → hop → 2:
        // conseq(2) first, then the hop (conseq of 1, reason for 2),
        // then reason(1). Everything must come out on the reason's
        // arrival, causally stamped, with zero timeout expiries.
        let mut m = matcher();
        let now = UtcMicros::ZERO;
        assert!(m.process(conseq(2, 80), now).pass.is_empty());
        assert!(m.process(relay_hop(1, 2, 90), now).pass.is_empty());
        let out = m.process(reason(1, 100), now);
        let ts: Vec<i64> = out.pass.iter().map(|r| r.ts.as_micros()).collect();
        assert_eq!(ts, vec![100, 101, 102], "reason → hop → conseq, causal");
        assert_eq!(m.held_count(), 0);
        assert_eq!(m.stats().expired, 0, "no timeout-expiry releases");
    }

    #[test]
    fn different_ids_do_not_interact() {
        let mut m = matcher();
        m.process(reason(1, 100), UtcMicros::ZERO);
        let out = m.process(conseq(2, 50), UtcMicros::ZERO);
        assert!(out.pass.is_empty(), "conseq 2 must wait for reason 2");
        assert_eq!(m.stats().tachyons_repaired, 0);
    }
}
