//! The transport-free ISM composition: CRE switch → on-line sorter →
//! output stage (Fig. 1).
//!
//! [`IsmCore`] is deliberately free of threads, sockets and wall clocks:
//! the caller feeds it batches and drives `tick` with the current
//! (synchronized) time. The threaded [`crate::server::IsmServer`] drives it
//! in real deployments; the deterministic simulator in `brisk-sim` drives
//! it in experiments E5–E7.
//!
//! Since PR 8 the core is a thin composition of two planes: the
//! [`MergePlane`] (CRE + sorter + dedup, see [`crate::merge`]) and an
//! output implementing [`MergeOutput`] — either the [`LocalOutputs`]
//! stage below (memory buffer, durable store, sinks; leaf/root mode) or
//! an [`UpstreamExporter`] (relay mode, see [`crate::relay`]).

use crate::cre::CreStats;
use crate::merge::{MergeOutput, MergePlane, MergeStats};
use crate::output::{EventSink, MemoryBuffer};
use crate::relay::UpstreamExporter;
use crate::sorter::SorterStats;
use brisk_core::{binenc, EventRecord, IsmConfig, NodeId, Result, TraceStage, UtcMicros};
use brisk_store::StoreWriter;
use brisk_telemetry::{Histogram, Registry, StageLatencies};
use std::sync::Arc;

/// Aggregate counters of one core (an alias of the merge plane's stats,
/// kept under the historical name for existing callers).
pub type IsmCoreStats = MergeStats;

/// Default capacity of the output memory buffer (bytes).
pub const DEFAULT_MEMORY_BYTES: usize = 8 << 20;

/// The local output stage: one encode feeding the durable store, the
/// shared memory buffer, and any attached sinks; delivery-side trace
/// stamping and latency histograms live here too.
pub struct LocalOutputs {
    memory: Arc<MemoryBuffer>,
    sinks: Vec<Box<dyn EventSink>>,
    /// The durable trace store, opened when `IsmConfig.store.dir` is set.
    /// Kept separate from `sinks` so the server can expose its stats and
    /// bind its telemetry after construction.
    store: Option<StoreWriter>,
    /// Per-stage span histograms with exemplar trace ids, fed by traced
    /// records at delivery time. Present once telemetry is bound.
    stages: Option<Arc<StageLatencies>>,
    /// Record creation → delivery latency on synchronized time.
    e2e_latency_us: Option<Arc<Histogram>>,
    /// Memory-buffer eviction total already reported to the flight
    /// recorder.
    flight_last_evicted: u64,
}

impl MergeOutput for LocalOutputs {
    /// `now == UtcMicros::MAX` marks the shutdown drain, where "now" is
    /// meaningless and latency samples would be garbage.
    fn on_record(&mut self, mut rec: EventRecord, now: UtcMicros) -> Result<()> {
        if now != UtcMicros::MAX {
            rec.stamp_trace(TraceStage::Deliver, now);
            if let (Some(stages), Some(ctx)) = (&self.stages, rec.trace()) {
                for pair in ctx.stamps().windows(2) {
                    let (from, t0) = pair[0];
                    let (to, t1) = pair[1];
                    stages.observe(
                        (from.code(), from.name()),
                        (to.code(), to.name()),
                        t1.micros_since(t0).max(0) as u64,
                        ctx.trace_id,
                    );
                }
            }
            if let Some(h) = &self.e2e_latency_us {
                h.record(now.micros_since(rec.ts).max(0) as u64);
            }
        }
        // One encode serves both byte-oriented consumers.
        let mut encoded = Vec::with_capacity(rec.native_size());
        binenc::encode_record(&rec, &mut encoded);
        if let Some(store) = &mut self.store {
            store.append_encoded(&rec, &encoded)?;
        }
        self.memory.write_encoded(encoded);
        for sink in &mut self.sinks {
            sink.on_record(&rec)?;
        }
        Ok(())
    }

    fn pump(&mut self, _now: UtcMicros) -> Result<()> {
        let evicted_total = self.memory.evicted();
        if evicted_total > self.flight_last_evicted {
            brisk_telemetry::flight_log!(
                Info,
                "ism.memory",
                "evict",
                "{} records evicted from the output memory buffer ({evicted_total} total)",
                evicted_total - self.flight_last_evicted
            );
            self.flight_last_evicted = evicted_total;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        for sink in &mut self.sinks {
            sink.flush()?;
        }
        if let Some(store) = &mut self.store {
            store.flush()?;
        }
        Ok(())
    }
}

/// The ISM pipeline core.
pub struct IsmCore {
    plane: MergePlane,
    local: LocalOutputs,
    /// Relay mode: when set, merged records go upstream instead of to the
    /// local outputs.
    upstream: Option<UpstreamExporter>,
    /// Remembered so an exporter attached after [`Self::bind_telemetry`]
    /// still gets its series registered.
    registry: Option<Arc<Registry>>,
}

impl IsmCore {
    /// New core with the default-sized memory buffer.
    pub fn new(cfg: IsmConfig) -> Result<Self> {
        Self::with_memory(cfg, DEFAULT_MEMORY_BYTES)
    }

    /// New core with an explicit memory-buffer capacity.
    pub fn with_memory(cfg: IsmConfig, memory_bytes: usize) -> Result<Self> {
        cfg.validate()?;
        let store = match cfg.store.dir {
            Some(_) => Some(StoreWriter::open(&cfg.store)?),
            None => None,
        };
        Ok(IsmCore {
            plane: MergePlane::new(&cfg)?,
            local: LocalOutputs {
                memory: MemoryBuffer::new(memory_bytes),
                sinks: Vec::new(),
                store,
                stages: None,
                e2e_latency_us: None,
                flight_last_evicted: 0,
            },
            upstream: None,
            registry: None,
        })
    }

    /// Switch the core into relay mode: merged, repaired records are
    /// re-exported upstream instead of delivered to the local outputs.
    /// May be called before or after [`Self::bind_telemetry`].
    pub fn set_upstream(&mut self, exporter: UpstreamExporter) {
        if let Some(registry) = &self.registry {
            exporter.bind_telemetry(registry);
        }
        self.upstream = Some(exporter);
    }

    /// The upstream exporter, when the core runs in relay mode.
    pub fn upstream(&self) -> Option<&UpstreamExporter> {
        self.upstream.as_ref()
    }

    /// Bind this core's counters, gauges and the end-to-end latency
    /// histogram to `registry`. Gauges for the sorter window and CRE hold
    /// queue refresh on every `tick`; the memory buffer is exported
    /// through computed sources so no extra bookkeeping runs per record.
    pub fn bind_telemetry(&mut self, registry: &Arc<Registry>) {
        self.plane.bind_telemetry(registry);
        self.local.stages = Some(Arc::new(StageLatencies::new(Arc::clone(registry))));
        let e2e_latency_us = Arc::new(Histogram::default());
        registry.register_histogram(
            "brisk_ism_e2e_latency_us",
            "Record creation to output delivery latency (synchronized time)",
            &[],
            &e2e_latency_us,
        );
        self.local.e2e_latency_us = Some(e2e_latency_us);
        let mem = Arc::clone(&self.local.memory);
        registry.gauge_fn(
            "brisk_ism_memory_records",
            "Records currently resident in the output memory buffer",
            &[],
            move || mem.len() as i64,
        );
        let mem = Arc::clone(&self.local.memory);
        registry.counter_fn(
            "brisk_ism_memory_written_total",
            "Records ever written to the output memory buffer",
            &[],
            move || mem.written(),
        );
        let mem = Arc::clone(&self.local.memory);
        registry.counter_fn(
            "brisk_ism_memory_evicted_total",
            "Records evicted from the output memory buffer",
            &[],
            move || mem.evicted(),
        );
        if let Some(store) = &mut self.local.store {
            store.bind_telemetry(registry);
        }
        registry.counter_fn(
            "brisk_trace_stamps_dropped_total",
            "Trace stamps discarded because a record's context was full",
            &[],
            brisk_core::trace_stamps_dropped_total,
        );
        if let Some(up) = &mut self.upstream {
            up.bind_telemetry(registry);
        }
        self.registry = Some(Arc::clone(registry));
    }

    /// The default output: the shared memory buffer consumers read.
    pub fn memory(&self) -> &Arc<MemoryBuffer> {
        &self.local.memory
    }

    /// Per-stage trace latency histograms (present once telemetry is
    /// bound); clone the `Arc` to serve exemplars from another thread.
    pub fn stage_latencies(&self) -> Option<&Arc<StageLatencies>> {
        self.local.stages.as_ref()
    }

    /// Attach an additional output sink (PICL file, visual object, …).
    pub fn add_sink(&mut self, sink: Box<dyn EventSink>) {
        self.local.sinks.push(sink);
    }

    /// The durable trace store, when one is configured.
    pub fn store(&self) -> Option<&StoreWriter> {
        self.local.store.as_ref()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> IsmCoreStats {
        self.plane.stats()
    }

    /// Sorter counters (time frame, inversions, …).
    pub fn sorter_stats(&self) -> SorterStats {
        self.plane.sorter_stats()
    }

    /// Current adaptive time frame `T` (µs).
    pub fn frame_us(&self) -> i64 {
        self.plane.frame_us()
    }

    /// CRE counters (tachyons repaired, held, …).
    pub fn cre_stats(&self) -> CreStats {
        self.plane.cre_stats()
    }

    /// Accept one *sequenced* batch (protocol v2); see
    /// [`MergePlane::push_batch_seq`].
    pub fn push_batch_seq(
        &mut self,
        node: NodeId,
        seq: Option<u64>,
        records: Vec<EventRecord>,
        now: UtcMicros,
    ) -> Result<bool> {
        self.plane.push_batch_seq(node, seq, records, now)
    }

    /// Accept one batch of records (already correction-adjusted by the
    /// EXS). `now` is the ISM's current time.
    pub fn push_batch(
        &mut self,
        records: impl IntoIterator<Item = EventRecord>,
        now: UtcMicros,
    ) -> Result<()> {
        self.plane.push_batch(records, now)
    }

    /// Advance the pipeline: expire held CRE records, release everything
    /// whose delay elapsed, and deliver it to the active output (local
    /// sinks, or the upstream exporter in relay mode). Returns the number
    /// of records delivered.
    pub fn tick(&mut self, now: UtcMicros) -> Result<usize> {
        match &mut self.upstream {
            Some(up) => self.plane.tick(now, up),
            None => self.plane.tick(now, &mut self.local),
        }
    }

    /// True exactly once after a tachyon repair requested an extra clock
    /// synchronization round (§3.6); the caller (server or simulator)
    /// translates this into an immediate round.
    pub fn take_extra_sync_request(&mut self) -> bool {
        self.plane.take_extra_sync_request()
    }

    /// Shutdown path: flush every held and delayed record to the active
    /// output in merged order, then flush that output (sinks/store — or
    /// the final upstream batch plus an orderly goodbye in relay mode).
    pub fn drain_all(&mut self) -> Result<usize> {
        match &mut self.upstream {
            Some(up) => self.plane.drain_all(up),
            None => self.plane.drain_all(&mut self.local),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::VecSink;
    use brisk_core::{CorrelationId, EventTypeId, NodeId, SensorId, SorterConfig, Value};

    fn rec(node: u32, seq: u64, ts: i64, fields: Vec<Value>) -> EventRecord {
        EventRecord::new(
            NodeId(node),
            SensorId(0),
            EventTypeId(1),
            seq,
            UtcMicros::from_micros(ts),
            fields,
        )
        .unwrap()
    }

    fn core_with_frame(frame_us: i64) -> IsmCore {
        let cfg = IsmConfig {
            sorter: SorterConfig {
                initial_frame_us: frame_us,
                min_frame_us: 0,
                ..SorterConfig::default()
            },
            ..IsmConfig::default()
        };
        IsmCore::new(cfg).unwrap()
    }

    #[test]
    fn end_to_end_sorted_delivery() {
        let mut core = core_with_frame(100);
        let sink = VecSink::new();
        core.add_sink(Box::new(sink.clone()));
        core.push_batch(
            vec![rec(0, 0, 300, vec![]), rec(0, 1, 500, vec![])],
            UtcMicros::from_micros(500),
        )
        .unwrap();
        core.push_batch(vec![rec(1, 0, 400, vec![])], UtcMicros::from_micros(500))
            .unwrap();
        let n = core.tick(UtcMicros::from_micros(1_000)).unwrap();
        assert_eq!(n, 3);
        let ts: Vec<i64> = sink.snapshot().iter().map(|r| r.ts.as_micros()).collect();
        assert_eq!(ts, vec![300, 400, 500]);
        assert_eq!(core.stats().records_in, 3);
        assert_eq!(core.stats().records_out, 3);
        assert_eq!(core.stats().batches_in, 2);
    }

    #[test]
    fn memory_buffer_receives_everything() {
        let mut core = core_with_frame(0);
        let mut reader = core.memory().reader();
        core.push_batch(
            (0..20).map(|i| rec(0, i, i as i64, vec![Value::U64(i)])),
            UtcMicros::ZERO,
        )
        .unwrap();
        core.tick(UtcMicros::from_micros(100)).unwrap();
        let (got, missed) = reader.poll().unwrap();
        assert_eq!(missed, 0);
        assert_eq!(got.len(), 20);
    }

    #[test]
    fn tachyon_repair_flows_through_and_requests_sync() {
        let mut core = core_with_frame(0);
        let sink = VecSink::new();
        core.add_sink(Box::new(sink.clone()));
        let reason = rec(0, 0, 1_000, vec![Value::Reason(CorrelationId(5))]);
        let conseq = rec(1, 0, 900, vec![Value::Conseq(CorrelationId(5))]);
        core.push_batch(vec![reason], UtcMicros::from_micros(1_000))
            .unwrap();
        core.push_batch(vec![conseq], UtcMicros::from_micros(1_000))
            .unwrap();
        assert!(core.take_extra_sync_request());
        assert!(!core.take_extra_sync_request(), "request is one-shot");
        core.tick(UtcMicros::from_micros(10_000)).unwrap();
        let got = sink.snapshot();
        assert_eq!(got.len(), 2);
        assert!(got[0].ts < got[1].ts, "causality restored in output order");
        assert_eq!(core.cre_stats().tachyons_repaired, 1);
    }

    #[test]
    fn held_conseq_expires_through_tick() {
        let mut core = core_with_frame(0);
        let conseq = rec(1, 0, 900, vec![Value::Conseq(CorrelationId(9))]);
        core.push_batch(vec![conseq], UtcMicros::ZERO).unwrap();
        // Before the hold timeout: nothing comes out.
        assert_eq!(core.tick(UtcMicros::from_millis(100)).unwrap(), 0);
        // After (default hold timeout 2 s): the orphan is released.
        let n = core.tick(UtcMicros::from_secs(3)).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn drain_all_flushes_held_and_delayed() {
        let mut core = core_with_frame(1_000_000);
        let sink = VecSink::new();
        core.add_sink(Box::new(sink.clone()));
        core.push_batch(
            vec![
                rec(0, 0, 100, vec![]),
                rec(1, 0, 50, vec![Value::Conseq(CorrelationId(1))]),
            ],
            UtcMicros::from_micros(100),
        )
        .unwrap();
        assert_eq!(core.tick(UtcMicros::from_micros(200)).unwrap(), 0);
        let n = core.drain_all().unwrap();
        assert_eq!(n, 2);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn bind_telemetry_tracks_core_flow() {
        let mut core = core_with_frame(100);
        let registry = brisk_telemetry::Registry::new();
        core.bind_telemetry(&registry);
        core.push_batch(
            vec![rec(0, 0, 300, vec![]), rec(0, 1, 500, vec![])],
            UtcMicros::from_micros(500),
        )
        .unwrap();
        core.tick(UtcMicros::from_micros(1_000)).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("brisk_ism_records_in_total"), 2);
        assert_eq!(snap.counter_total("brisk_ism_batches_in_total"), 1);
        assert_eq!(snap.counter_total("brisk_ism_records_out_total"), 2);
        assert_eq!(snap.counter_total("brisk_ism_memory_written_total"), 2);
        assert_eq!(snap.gauge("brisk_ism_memory_records"), Some(2));
        let hist = snap
            .histogram("brisk_ism_e2e_latency_us")
            .expect("latency histogram exported");
        assert_eq!(hist.count(), 2);
        // Delivered at now=1000 for ts 300/500 → latencies 700 and 500.
        assert_eq!(hist.max, 700);
        assert!(hist.p50() <= hist.p99());
        // Shutdown drain must not pollute the latency histogram.
        core.push_batch(
            vec![rec(0, 2, 2_000, vec![])],
            UtcMicros::from_micros(2_000),
        )
        .unwrap();
        core.drain_all().unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("brisk_ism_records_out_total"), 3);
        let hist = snap.histogram("brisk_ism_e2e_latency_us").unwrap();
        assert_eq!(hist.count(), 2, "drain_all records no latency samples");
        // The trace-stamp drop counter is exported and tracks the
        // process-wide total (other tests may bump it concurrently, so
        // compare against the source rather than an absolute value).
        let ctx = brisk_core::TraceContext::origin(7, UtcMicros::from_micros(1));
        let mut full = rec(0, 3, 3_000, vec![brisk_core::Value::Trace(ctx)]);
        for _ in 0..=brisk_core::MAX_TRACE_STAMPS {
            full.stamp_trace(brisk_core::TraceStage::PumpRecv, UtcMicros::from_micros(1));
        }
        let snap = registry.snapshot();
        let exported = snap.counter_total("brisk_trace_stamps_dropped_total");
        assert!(exported >= 1, "overflow stamp must surface in the metric");
        assert!(exported <= brisk_core::trace_stamps_dropped_total());
    }

    #[test]
    fn sequenced_replay_is_dropped_per_node() {
        let mut core = core_with_frame(0);
        let registry = brisk_telemetry::Registry::new();
        core.bind_telemetry(&registry);
        let now = UtcMicros::from_micros(100);
        assert!(core
            .push_batch_seq(NodeId(1), Some(1), vec![rec(1, 0, 10, vec![])], now)
            .unwrap());
        assert!(core
            .push_batch_seq(NodeId(1), Some(2), vec![rec(1, 1, 11, vec![])], now)
            .unwrap());
        // Replay of seq 2 from node 1: dropped.
        assert!(!core
            .push_batch_seq(NodeId(1), Some(2), vec![rec(1, 1, 11, vec![])], now)
            .unwrap());
        // Same seq from a *different* node: accepted (per-node streams).
        assert!(core
            .push_batch_seq(NodeId(2), Some(2), vec![rec(2, 0, 12, vec![])], now)
            .unwrap());
        // Unsequenced (v1) batches are never deduplicated.
        assert!(core
            .push_batch_seq(NodeId(1), None, vec![rec(1, 2, 13, vec![])], now)
            .unwrap());
        let stats = core.stats();
        assert_eq!(stats.batches_in, 4);
        assert_eq!(stats.records_in, 4);
        assert_eq!(stats.duplicate_batches, 1);
        assert_eq!(stats.duplicate_records, 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("brisk_ism_duplicate_batches_total"), 1);
        assert_eq!(snap.counter_total("brisk_ism_duplicate_records_total"), 1);
    }

    #[test]
    fn store_receives_delivered_records() {
        use brisk_core::StoreConfig;
        use brisk_store::StoreReader;
        let dir = std::env::temp_dir().join(format!("brisk-core-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = IsmConfig {
            store: StoreConfig::at(dir.clone()),
            ..IsmConfig::default()
        };
        let registry = brisk_telemetry::Registry::new();
        {
            let mut core = IsmCore::new(cfg).unwrap();
            core.bind_telemetry(&registry);
            assert!(core.store().is_some());
            core.push_batch(
                (0..50).map(|i| rec(0, i, i as i64 * 10, vec![Value::U64(i)])),
                UtcMicros::ZERO,
            )
            .unwrap();
            core.tick(UtcMicros::from_secs(1)).unwrap();
            core.drain_all().unwrap();
        } // core drop seals the store
        let (recs, report) = StoreReader::open(&dir).unwrap().read_all().unwrap();
        assert_eq!(recs.len(), 50);
        assert_eq!(report.corrupt_frames, 0);
        let ts: Vec<i64> = recs.iter().map(|r| r.ts.as_micros()).collect();
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "stored in sorted order"
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("brisk_store_records_total"), 50);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_stamps_accumulate_through_the_core() {
        use brisk_core::{TraceContext, TraceStage};
        let mut core = core_with_frame(0);
        let registry = brisk_telemetry::Registry::new();
        core.bind_telemetry(&registry);
        let sink = VecSink::new();
        core.add_sink(Box::new(sink.clone()));
        // A record as the wire would deliver it: Notice→ExsScoop→
        // BatchSend→PumpRecv already stamped upstream.
        let mut ctx = TraceContext::origin(42, UtcMicros::from_micros(100));
        ctx.stamp(TraceStage::ExsScoop, UtcMicros::from_micros(110));
        ctx.stamp(TraceStage::BatchSend, UtcMicros::from_micros(120));
        ctx.stamp(TraceStage::PumpRecv, UtcMicros::from_micros(140));
        let traced = rec(0, 0, 100, vec![Value::Trace(ctx)]);
        core.push_batch(vec![traced], UtcMicros::from_micros(150))
            .unwrap();
        assert_eq!(core.tick(UtcMicros::from_micros(200)).unwrap(), 1);
        let got = sink.snapshot();
        let ctx = got[0].trace().expect("trace survives the core");
        let stages: Vec<TraceStage> = ctx.stamps().iter().map(|&(s, _)| s).collect();
        assert_eq!(
            stages,
            vec![
                TraceStage::Notice,
                TraceStage::ExsScoop,
                TraceStage::BatchSend,
                TraceStage::PumpRecv,
                TraceStage::SorterAdmit,
                TraceStage::SorterRelease,
                TraceStage::Deliver,
            ]
        );
        assert!(
            ctx.stamps().windows(2).all(|w| w[0].1 <= w[1].1),
            "stamps must be monotonic: {ctx}"
        );
        // Every consecutive pair fed the stage histograms with this
        // record's id as the exemplar.
        let (_, exemplar) = core
            .stage_latencies()
            .expect("bound core exposes stage latencies")
            .slowest_exemplar()
            .expect("spans observed");
        assert_eq!(exemplar, 42);
    }

    #[test]
    fn cre_repair_and_hold_are_stamped() {
        use brisk_core::{TraceContext, TraceStage};
        let mut core = core_with_frame(0);
        let sink = VecSink::new();
        core.add_sink(Box::new(sink.clone()));
        let now = UtcMicros::from_micros(1_000);
        // Consequence first (held), its trace sampled at origin.
        let conseq = EventRecord::new(
            NodeId(1),
            SensorId(0),
            EventTypeId(2),
            0,
            UtcMicros::from_micros(900),
            vec![
                Value::Conseq(CorrelationId(5)),
                Value::Trace(TraceContext::origin(7, UtcMicros::from_micros(900))),
            ],
        )
        .unwrap();
        core.push_batch(vec![conseq], now).unwrap();
        // Reason arrives later with a later ts: the held conseq is a
        // tachyon — released, repaired, and both hops stamped.
        let reason = rec(0, 0, 950, vec![Value::Reason(CorrelationId(5))]);
        core.push_batch(vec![reason], now).unwrap();
        core.tick(UtcMicros::from_micros(10_000)).unwrap();
        let got = sink.snapshot();
        assert_eq!(got.len(), 2);
        let ctx = got
            .iter()
            .find_map(|r| r.trace())
            .expect("traced conseq delivered");
        assert_eq!(ctx.stamp_at(TraceStage::CreHold), Some(now));
        assert_eq!(ctx.stamp_at(TraceStage::CreRepair), Some(now));
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = IsmConfig::default();
        cfg.sorter.decay_factor = 7.0;
        assert!(IsmCore::new(cfg).is_err());
    }
}
