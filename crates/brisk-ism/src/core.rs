//! The transport-free ISM composition: CRE switch → on-line sorter →
//! output stage (Fig. 1).
//!
//! [`IsmCore`] is deliberately free of threads, sockets and wall clocks:
//! the caller feeds it batches and drives `tick` with the current
//! (synchronized) time. The threaded [`crate::server::IsmServer`] drives it
//! in real deployments; the deterministic simulator in `brisk-sim` drives
//! it in experiments E5–E7.

use crate::cre::{CreMatcher, CreStats};
use crate::output::{EventSink, MemoryBuffer};
use crate::sorter::{OnlineSorter, SorterStats};
use brisk_core::{EventRecord, IsmConfig, Result, UtcMicros};
use std::sync::Arc;

/// Aggregate counters of one core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IsmCoreStats {
    /// Records received in batches.
    pub records_in: u64,
    /// Records delivered to the output stage.
    pub records_out: u64,
    /// Batches received.
    pub batches_in: u64,
}

/// Default capacity of the output memory buffer (bytes).
pub const DEFAULT_MEMORY_BYTES: usize = 8 << 20;

/// The ISM pipeline core.
pub struct IsmCore {
    cre: CreMatcher,
    sorter: OnlineSorter,
    memory: Arc<MemoryBuffer>,
    sinks: Vec<Box<dyn EventSink>>,
    stats: IsmCoreStats,
    extra_sync_pending: bool,
}

impl IsmCore {
    /// New core with the default-sized memory buffer.
    pub fn new(cfg: IsmConfig) -> Result<Self> {
        Self::with_memory(cfg, DEFAULT_MEMORY_BYTES)
    }

    /// New core with an explicit memory-buffer capacity.
    pub fn with_memory(cfg: IsmConfig, memory_bytes: usize) -> Result<Self> {
        cfg.validate()?;
        Ok(IsmCore {
            cre: CreMatcher::new(cfg.cre.clone())?,
            sorter: OnlineSorter::new(cfg.sorter.clone(), cfg.max_buffered_records)?,
            memory: MemoryBuffer::new(memory_bytes),
            sinks: Vec::new(),
            stats: IsmCoreStats::default(),
            extra_sync_pending: false,
        })
    }

    /// The default output: the shared memory buffer consumers read.
    pub fn memory(&self) -> &Arc<MemoryBuffer> {
        &self.memory
    }

    /// Attach an additional output sink (PICL file, visual object, …).
    pub fn add_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// Aggregate counters.
    pub fn stats(&self) -> IsmCoreStats {
        self.stats
    }

    /// Sorter counters (time frame, inversions, …).
    pub fn sorter_stats(&self) -> SorterStats {
        self.sorter.stats()
    }

    /// Current adaptive time frame `T` (µs).
    pub fn frame_us(&self) -> i64 {
        self.sorter.frame_us()
    }

    /// CRE counters (tachyons repaired, held, …).
    pub fn cre_stats(&self) -> CreStats {
        self.cre.stats()
    }

    /// Accept one batch of records (already correction-adjusted by the
    /// EXS). `now` is the ISM's current time.
    pub fn push_batch(
        &mut self,
        records: impl IntoIterator<Item = EventRecord>,
        now: UtcMicros,
    ) -> Result<()> {
        self.stats.batches_in += 1;
        for rec in records {
            self.stats.records_in += 1;
            let out = self.cre.process(rec, now);
            if out.request_extra_sync {
                self.extra_sync_pending = true;
            }
            for passed in out.pass {
                self.sorter.push(passed);
            }
        }
        Ok(())
    }

    /// Advance the pipeline: expire held CRE records, release everything
    /// whose delay elapsed, and deliver it to the outputs. Returns the
    /// number of records delivered.
    pub fn tick(&mut self, now: UtcMicros) -> Result<usize> {
        for expired in self.cre.expire(now) {
            self.sorter.push(expired);
        }
        let released = self.sorter.poll(now);
        self.deliver(released)
    }

    /// True exactly once after a tachyon repair requested an extra clock
    /// synchronization round (§3.6); the caller (server or simulator)
    /// translates this into an immediate round.
    pub fn take_extra_sync_request(&mut self) -> bool {
        std::mem::take(&mut self.extra_sync_pending)
    }

    /// Shutdown path: flush every held and delayed record to the outputs
    /// in merged order, then flush the sinks.
    pub fn drain_all(&mut self) -> Result<usize> {
        for expired in self.cre.expire(UtcMicros::MAX) {
            self.sorter.push(expired);
        }
        let released = self.sorter.drain_all();
        let n = self.deliver(released)?;
        for sink in &mut self.sinks {
            sink.flush()?;
        }
        Ok(n)
    }

    fn deliver(&mut self, records: Vec<EventRecord>) -> Result<usize> {
        let n = records.len();
        for rec in records {
            self.memory.write(&rec);
            for sink in &mut self.sinks {
                sink.on_record(&rec)?;
            }
            self.stats.records_out += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::VecSink;
    use brisk_core::{
        CorrelationId, EventTypeId, NodeId, SensorId, SorterConfig, Value,
    };

    fn rec(node: u32, seq: u64, ts: i64, fields: Vec<Value>) -> EventRecord {
        EventRecord::new(
            NodeId(node),
            SensorId(0),
            EventTypeId(1),
            seq,
            UtcMicros::from_micros(ts),
            fields,
        )
        .unwrap()
    }

    fn core_with_frame(frame_us: i64) -> IsmCore {
        let cfg = IsmConfig {
            sorter: SorterConfig {
                initial_frame_us: frame_us,
                min_frame_us: 0,
                ..SorterConfig::default()
            },
            ..IsmConfig::default()
        };
        IsmCore::new(cfg).unwrap()
    }

    #[test]
    fn end_to_end_sorted_delivery() {
        let mut core = core_with_frame(100);
        let sink = VecSink::new();
        core.add_sink(Box::new(sink.clone()));
        core.push_batch(
            vec![rec(0, 0, 300, vec![]), rec(0, 1, 500, vec![])],
            UtcMicros::from_micros(500),
        )
        .unwrap();
        core.push_batch(vec![rec(1, 0, 400, vec![])], UtcMicros::from_micros(500))
            .unwrap();
        let n = core.tick(UtcMicros::from_micros(1_000)).unwrap();
        assert_eq!(n, 3);
        let ts: Vec<i64> = sink.snapshot().iter().map(|r| r.ts.as_micros()).collect();
        assert_eq!(ts, vec![300, 400, 500]);
        assert_eq!(core.stats().records_in, 3);
        assert_eq!(core.stats().records_out, 3);
        assert_eq!(core.stats().batches_in, 2);
    }

    #[test]
    fn memory_buffer_receives_everything() {
        let mut core = core_with_frame(0);
        let mut reader = core.memory().reader();
        core.push_batch(
            (0..20).map(|i| rec(0, i, i as i64, vec![Value::U64(i)])),
            UtcMicros::ZERO,
        )
        .unwrap();
        core.tick(UtcMicros::from_micros(100)).unwrap();
        let (got, missed) = reader.poll().unwrap();
        assert_eq!(missed, 0);
        assert_eq!(got.len(), 20);
    }

    #[test]
    fn tachyon_repair_flows_through_and_requests_sync() {
        let mut core = core_with_frame(0);
        let sink = VecSink::new();
        core.add_sink(Box::new(sink.clone()));
        let reason = rec(0, 0, 1_000, vec![Value::Reason(CorrelationId(5))]);
        let conseq = rec(1, 0, 900, vec![Value::Conseq(CorrelationId(5))]);
        core.push_batch(vec![reason], UtcMicros::from_micros(1_000))
            .unwrap();
        core.push_batch(vec![conseq], UtcMicros::from_micros(1_000))
            .unwrap();
        assert!(core.take_extra_sync_request());
        assert!(!core.take_extra_sync_request(), "request is one-shot");
        core.tick(UtcMicros::from_micros(10_000)).unwrap();
        let got = sink.snapshot();
        assert_eq!(got.len(), 2);
        assert!(got[0].ts < got[1].ts, "causality restored in output order");
        assert_eq!(core.cre_stats().tachyons_repaired, 1);
    }

    #[test]
    fn held_conseq_expires_through_tick() {
        let mut core = core_with_frame(0);
        let conseq = rec(1, 0, 900, vec![Value::Conseq(CorrelationId(9))]);
        core.push_batch(vec![conseq], UtcMicros::ZERO).unwrap();
        // Before the hold timeout: nothing comes out.
        assert_eq!(core.tick(UtcMicros::from_millis(100)).unwrap(), 0);
        // After (default hold timeout 2 s): the orphan is released.
        let n = core.tick(UtcMicros::from_secs(3)).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn drain_all_flushes_held_and_delayed() {
        let mut core = core_with_frame(1_000_000);
        let sink = VecSink::new();
        core.add_sink(Box::new(sink.clone()));
        core.push_batch(
            vec![
                rec(0, 0, 100, vec![]),
                rec(1, 0, 50, vec![Value::Conseq(CorrelationId(1))]),
            ],
            UtcMicros::from_micros(100),
        )
        .unwrap();
        assert_eq!(core.tick(UtcMicros::from_micros(200)).unwrap(), 0);
        let n = core.drain_all().unwrap();
        assert_eq!(n, 2);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = IsmConfig::default();
        cfg.sorter.decay_factor = 7.0;
        assert!(IsmCore::new(cfg).is_err());
    }
}
