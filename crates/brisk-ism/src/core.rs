//! The transport-free ISM composition: CRE switch → on-line sorter →
//! output stage (Fig. 1).
//!
//! [`IsmCore`] is deliberately free of threads, sockets and wall clocks:
//! the caller feeds it batches and drives `tick` with the current
//! (synchronized) time. The threaded [`crate::server::IsmServer`] drives it
//! in real deployments; the deterministic simulator in `brisk-sim` drives
//! it in experiments E5–E7.

use crate::cre::{CreMatcher, CreStats};
use crate::output::{EventSink, MemoryBuffer};
use crate::sorter::{OnlineSorter, OverloadPolicy, SorterStats};
use brisk_core::{binenc, EventRecord, IsmConfig, NodeId, Result, TraceStage, UtcMicros};
use brisk_store::StoreWriter;
use brisk_telemetry::{Counter, Gauge, Histogram, Registry, StageLatencies};
use std::collections::HashMap;
use std::sync::Arc;

/// Aggregate counters of one core.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IsmCoreStats {
    /// Records received in batches.
    pub records_in: u64,
    /// Records delivered to the output stage.
    pub records_out: u64,
    /// Batches received.
    pub batches_in: u64,
    /// Sequenced batches dropped as replays (seq ≤ last seen for the node).
    pub duplicate_batches: u64,
    /// Records inside those dropped replay batches.
    pub duplicate_records: u64,
}

/// Default capacity of the output memory buffer (bytes).
pub const DEFAULT_MEMORY_BYTES: usize = 8 << 20;

/// The ISM pipeline core.
pub struct IsmCore {
    cre: CreMatcher,
    sorter: OnlineSorter,
    memory: Arc<MemoryBuffer>,
    sinks: Vec<Box<dyn EventSink>>,
    /// The durable trace store, opened when `IsmConfig.store.dir` is set.
    /// Kept separate from `sinks` so the server can expose its stats and
    /// bind its telemetry after construction.
    store: Option<StoreWriter>,
    stats: IsmCoreStats,
    extra_sync_pending: bool,
    /// Highest batch sequence number accepted per node (protocol v2).
    /// Replayed batches (seq ≤ the entry) are dropped here, which is what
    /// turns the wire's at-least-once delivery into exactly-once at the
    /// sinks. Lives in the core — not the pump — so the memory survives
    /// the connection teardown/reconnect that triggers replays.
    last_seq: HashMap<NodeId, u64>,
    telemetry: Option<CoreTelemetry>,
    /// Per-stage span histograms with exemplar trace ids, fed by traced
    /// records at delivery time. Present once telemetry is bound.
    stages: Option<Arc<StageLatencies>>,
    /// Sorter shed total already reported to the flight recorder.
    flight_last_shed: u64,
    /// Memory-buffer eviction total already reported to the flight
    /// recorder.
    flight_last_evicted: u64,
}

/// Registry handles the core feeds when bound. The core runs on one
/// thread (the manager), so plain counters updated in `push_batch` /
/// `tick` suffice; sorter and CRE internals are exported by publishing
/// their own stats as gauges / counter deltas each tick rather than by
/// threading atomics through those components.
struct CoreTelemetry {
    records_in: Arc<Counter>,
    records_out: Arc<Counter>,
    batches_in: Arc<Counter>,
    duplicate_batches: Arc<Counter>,
    duplicate_records: Arc<Counter>,
    sorter_depth: Arc<Gauge>,
    sorter_frame_us: Arc<Gauge>,
    cre_held: Arc<Gauge>,
    tachyons_repaired: Arc<Counter>,
    /// Last CRE repair total already pushed to `tachyons_repaired`.
    last_tachyons: u64,
    shed: Arc<Counter>,
    /// Last sorter shed total already pushed to `shed`.
    last_shed: u64,
    ts_clamped: Arc<Counter>,
    /// Last sorter clamp total already pushed to `ts_clamped`.
    last_ts_clamped: u64,
    /// Record creation → delivery latency on synchronized time.
    e2e_latency_us: Arc<Histogram>,
}

impl IsmCore {
    /// New core with the default-sized memory buffer.
    pub fn new(cfg: IsmConfig) -> Result<Self> {
        Self::with_memory(cfg, DEFAULT_MEMORY_BYTES)
    }

    /// New core with an explicit memory-buffer capacity.
    pub fn with_memory(cfg: IsmConfig, memory_bytes: usize) -> Result<Self> {
        cfg.validate()?;
        let store = match cfg.store.dir {
            Some(_) => Some(StoreWriter::open(&cfg.store)?),
            None => None,
        };
        let mut sorter = OnlineSorter::new(cfg.sorter.clone(), cfg.max_buffered_records)?;
        if cfg.flow.shed_unmarked {
            sorter.set_overload_policy(OverloadPolicy::ShedUnmarked);
        }
        Ok(IsmCore {
            cre: CreMatcher::new(cfg.cre.clone())?,
            sorter,
            memory: MemoryBuffer::new(memory_bytes),
            sinks: Vec::new(),
            store,
            stats: IsmCoreStats::default(),
            extra_sync_pending: false,
            last_seq: HashMap::new(),
            telemetry: None,
            stages: None,
            flight_last_shed: 0,
            flight_last_evicted: 0,
        })
    }

    /// Bind this core's counters, gauges and the end-to-end latency
    /// histogram to `registry`. Gauges for the sorter window and CRE hold
    /// queue refresh on every `tick`; the memory buffer is exported
    /// through computed sources so no extra bookkeeping runs per record.
    pub fn bind_telemetry(&mut self, registry: &Arc<Registry>) {
        self.stages = Some(Arc::new(StageLatencies::new(Arc::clone(registry))));
        let e2e_latency_us = Arc::new(Histogram::default());
        registry.register_histogram(
            "brisk_ism_e2e_latency_us",
            "Record creation to output delivery latency (synchronized time)",
            &[],
            &e2e_latency_us,
        );
        let mem = Arc::clone(&self.memory);
        registry.gauge_fn(
            "brisk_ism_memory_records",
            "Records currently resident in the output memory buffer",
            &[],
            move || mem.len() as i64,
        );
        let mem = Arc::clone(&self.memory);
        registry.counter_fn(
            "brisk_ism_memory_written_total",
            "Records ever written to the output memory buffer",
            &[],
            move || mem.written(),
        );
        let mem = Arc::clone(&self.memory);
        registry.counter_fn(
            "brisk_ism_memory_evicted_total",
            "Records evicted from the output memory buffer",
            &[],
            move || mem.evicted(),
        );
        if let Some(store) = &mut self.store {
            store.bind_telemetry(registry);
        }
        registry.counter_fn(
            "brisk_trace_stamps_dropped_total",
            "Trace stamps discarded because a record's context was full",
            &[],
            brisk_core::trace_stamps_dropped_total,
        );
        self.telemetry = Some(CoreTelemetry {
            records_in: registry.counter(
                "brisk_ism_records_in_total",
                "Records received by the ISM core",
            ),
            records_out: registry.counter(
                "brisk_ism_records_out_total",
                "Records delivered to the output stage",
            ),
            batches_in: registry.counter(
                "brisk_ism_batches_in_total",
                "Batches received by the ISM core",
            ),
            duplicate_batches: registry.counter(
                "brisk_ism_duplicate_batches_total",
                "Replayed batches dropped by sequence-number dedup",
            ),
            duplicate_records: registry.counter(
                "brisk_ism_duplicate_records_total",
                "Records inside replayed batches dropped by dedup",
            ),
            sorter_depth: registry.gauge(
                "brisk_ism_sorter_depth",
                "Records buffered in the on-line sorter window",
            ),
            sorter_frame_us: registry.gauge(
                "brisk_ism_sorter_frame_us",
                "Current adaptive sorter time frame T (us)",
            ),
            cre_held: registry.gauge(
                "brisk_ism_cre_held",
                "Consequence records currently held by the CRE switch",
            ),
            tachyons_repaired: registry.counter(
                "brisk_ism_tachyons_repaired_total",
                "Causality violations repaired by the CRE switch",
            ),
            last_tachyons: self.cre.stats().tachyons_repaired,
            shed: registry.counter(
                "brisk_ism_shed_total",
                "Unmarked records dropped by the overload-shedding policy",
            ),
            last_shed: self.sorter.stats().shed,
            ts_clamped: registry.counter(
                "brisk_ism_ts_clamped_total",
                "Non-monotone same-source records whose timestamp was clamped",
            ),
            last_ts_clamped: self.sorter.stats().ts_clamped,
            e2e_latency_us,
        });
    }

    /// The default output: the shared memory buffer consumers read.
    pub fn memory(&self) -> &Arc<MemoryBuffer> {
        &self.memory
    }

    /// Per-stage trace latency histograms (present once telemetry is
    /// bound); clone the `Arc` to serve exemplars from another thread.
    pub fn stage_latencies(&self) -> Option<&Arc<StageLatencies>> {
        self.stages.as_ref()
    }

    /// Attach an additional output sink (PICL file, visual object, …).
    pub fn add_sink(&mut self, sink: Box<dyn EventSink>) {
        self.sinks.push(sink);
    }

    /// The durable trace store, when one is configured.
    pub fn store(&self) -> Option<&StoreWriter> {
        self.store.as_ref()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> IsmCoreStats {
        self.stats
    }

    /// Sorter counters (time frame, inversions, …).
    pub fn sorter_stats(&self) -> SorterStats {
        self.sorter.stats()
    }

    /// Current adaptive time frame `T` (µs).
    pub fn frame_us(&self) -> i64 {
        self.sorter.frame_us()
    }

    /// CRE counters (tachyons repaired, held, …).
    pub fn cre_stats(&self) -> CreStats {
        self.cre.stats()
    }

    /// Accept one *sequenced* batch (protocol v2), deduplicating by
    /// `(node, seq)`: a batch whose sequence number is not above the
    /// highest already accepted from `node` is a replay and is dropped
    /// (counted, not processed). Returns `true` if the batch was accepted,
    /// `false` if it was dropped as a duplicate — the caller should ack
    /// either way (a replay means our previous ack was lost with the old
    /// connection).
    ///
    /// `seq == None` is a v1 (unsequenced) batch: always accepted.
    pub fn push_batch_seq(
        &mut self,
        node: NodeId,
        seq: Option<u64>,
        records: Vec<EventRecord>,
        now: UtcMicros,
    ) -> Result<bool> {
        if let Some(seq) = seq {
            let last = self.last_seq.entry(node).or_insert(0);
            if seq <= *last {
                self.stats.duplicate_batches += 1;
                self.stats.duplicate_records += records.len() as u64;
                if let Some(t) = &self.telemetry {
                    t.duplicate_batches.inc();
                    t.duplicate_records.add(records.len() as u64);
                }
                return Ok(false);
            }
            *last = seq;
        }
        self.push_batch(records, now)?;
        Ok(true)
    }

    /// Accept one batch of records (already correction-adjusted by the
    /// EXS). `now` is the ISM's current time.
    pub fn push_batch(
        &mut self,
        records: impl IntoIterator<Item = EventRecord>,
        now: UtcMicros,
    ) -> Result<()> {
        self.stats.batches_in += 1;
        if let Some(t) = &self.telemetry {
            t.batches_in.inc();
        }
        for rec in records {
            self.stats.records_in += 1;
            if let Some(t) = &self.telemetry {
                t.records_in.inc();
            }
            let out = self.cre.process(rec, now);
            if out.request_extra_sync {
                self.extra_sync_pending = true;
            }
            for mut passed in out.pass {
                passed.stamp_trace(TraceStage::SorterAdmit, now);
                self.sorter.push(passed);
            }
        }
        Ok(())
    }

    /// Advance the pipeline: expire held CRE records, release everything
    /// whose delay elapsed, and deliver it to the outputs. Returns the
    /// number of records delivered.
    pub fn tick(&mut self, now: UtcMicros) -> Result<usize> {
        for expired in self.cre.expire(now) {
            self.sorter.push(expired);
        }
        let mut released = self.sorter.poll(now);
        for rec in released.iter_mut() {
            rec.stamp_trace(TraceStage::SorterRelease, now);
        }
        let n = self.deliver(released, now)?;
        let shed_total = self.sorter.stats().shed;
        if shed_total > self.flight_last_shed {
            brisk_telemetry::flight_log!(
                Warn,
                "ism.sorter",
                "shed",
                "{} unmarked records shed under overload ({shed_total} total)",
                shed_total - self.flight_last_shed
            );
            self.flight_last_shed = shed_total;
        }
        let evicted_total = self.memory.evicted();
        if evicted_total > self.flight_last_evicted {
            brisk_telemetry::flight_log!(
                Info,
                "ism.memory",
                "evict",
                "{} records evicted from the output memory buffer ({evicted_total} total)",
                evicted_total - self.flight_last_evicted
            );
            self.flight_last_evicted = evicted_total;
        }
        if let Some(t) = &mut self.telemetry {
            t.sorter_depth.set(self.sorter.buffered() as i64);
            t.sorter_frame_us.set(self.sorter.frame_us());
            t.cre_held.set(self.cre.held_count() as i64);
            let repaired = self.cre.stats().tachyons_repaired;
            t.tachyons_repaired.add(repaired - t.last_tachyons);
            t.last_tachyons = repaired;
            let shed = self.sorter.stats().shed;
            t.shed.add(shed - t.last_shed);
            t.last_shed = shed;
            let clamped = self.sorter.stats().ts_clamped;
            t.ts_clamped.add(clamped - t.last_ts_clamped);
            t.last_ts_clamped = clamped;
        }
        Ok(n)
    }

    /// True exactly once after a tachyon repair requested an extra clock
    /// synchronization round (§3.6); the caller (server or simulator)
    /// translates this into an immediate round.
    pub fn take_extra_sync_request(&mut self) -> bool {
        std::mem::take(&mut self.extra_sync_pending)
    }

    /// Shutdown path: flush every held and delayed record to the outputs
    /// in merged order, then flush the sinks.
    pub fn drain_all(&mut self) -> Result<usize> {
        for expired in self.cre.expire(UtcMicros::MAX) {
            self.sorter.push(expired);
        }
        let released = self.sorter.drain_all();
        let n = self.deliver(released, UtcMicros::MAX)?;
        for sink in &mut self.sinks {
            sink.flush()?;
        }
        if let Some(store) = &mut self.store {
            store.flush()?;
        }
        Ok(n)
    }

    /// `now == UtcMicros::MAX` marks the shutdown drain, where "now" is
    /// meaningless and latency samples would be garbage.
    fn deliver(&mut self, records: Vec<EventRecord>, now: UtcMicros) -> Result<usize> {
        let n = records.len();
        for mut rec in records {
            if now != UtcMicros::MAX {
                rec.stamp_trace(TraceStage::Deliver, now);
                if let (Some(stages), Some(ctx)) = (&self.stages, rec.trace()) {
                    for pair in ctx.stamps().windows(2) {
                        let (from, t0) = pair[0];
                        let (to, t1) = pair[1];
                        stages.observe(
                            (from.code(), from.name()),
                            (to.code(), to.name()),
                            t1.micros_since(t0).max(0) as u64,
                            ctx.trace_id,
                        );
                    }
                }
            }
            if let Some(t) = &self.telemetry {
                if now != UtcMicros::MAX {
                    t.e2e_latency_us
                        .record(now.micros_since(rec.ts).max(0) as u64);
                }
                t.records_out.inc();
            }
            // One encode serves both byte-oriented consumers.
            let mut encoded = Vec::with_capacity(rec.native_size());
            binenc::encode_record(&rec, &mut encoded);
            if let Some(store) = &mut self.store {
                store.append_encoded(&rec, &encoded)?;
            }
            self.memory.write_encoded(encoded);
            for sink in &mut self.sinks {
                sink.on_record(&rec)?;
            }
            self.stats.records_out += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::output::VecSink;
    use brisk_core::{CorrelationId, EventTypeId, NodeId, SensorId, SorterConfig, Value};

    fn rec(node: u32, seq: u64, ts: i64, fields: Vec<Value>) -> EventRecord {
        EventRecord::new(
            NodeId(node),
            SensorId(0),
            EventTypeId(1),
            seq,
            UtcMicros::from_micros(ts),
            fields,
        )
        .unwrap()
    }

    fn core_with_frame(frame_us: i64) -> IsmCore {
        let cfg = IsmConfig {
            sorter: SorterConfig {
                initial_frame_us: frame_us,
                min_frame_us: 0,
                ..SorterConfig::default()
            },
            ..IsmConfig::default()
        };
        IsmCore::new(cfg).unwrap()
    }

    #[test]
    fn end_to_end_sorted_delivery() {
        let mut core = core_with_frame(100);
        let sink = VecSink::new();
        core.add_sink(Box::new(sink.clone()));
        core.push_batch(
            vec![rec(0, 0, 300, vec![]), rec(0, 1, 500, vec![])],
            UtcMicros::from_micros(500),
        )
        .unwrap();
        core.push_batch(vec![rec(1, 0, 400, vec![])], UtcMicros::from_micros(500))
            .unwrap();
        let n = core.tick(UtcMicros::from_micros(1_000)).unwrap();
        assert_eq!(n, 3);
        let ts: Vec<i64> = sink.snapshot().iter().map(|r| r.ts.as_micros()).collect();
        assert_eq!(ts, vec![300, 400, 500]);
        assert_eq!(core.stats().records_in, 3);
        assert_eq!(core.stats().records_out, 3);
        assert_eq!(core.stats().batches_in, 2);
    }

    #[test]
    fn memory_buffer_receives_everything() {
        let mut core = core_with_frame(0);
        let mut reader = core.memory().reader();
        core.push_batch(
            (0..20).map(|i| rec(0, i, i as i64, vec![Value::U64(i)])),
            UtcMicros::ZERO,
        )
        .unwrap();
        core.tick(UtcMicros::from_micros(100)).unwrap();
        let (got, missed) = reader.poll().unwrap();
        assert_eq!(missed, 0);
        assert_eq!(got.len(), 20);
    }

    #[test]
    fn tachyon_repair_flows_through_and_requests_sync() {
        let mut core = core_with_frame(0);
        let sink = VecSink::new();
        core.add_sink(Box::new(sink.clone()));
        let reason = rec(0, 0, 1_000, vec![Value::Reason(CorrelationId(5))]);
        let conseq = rec(1, 0, 900, vec![Value::Conseq(CorrelationId(5))]);
        core.push_batch(vec![reason], UtcMicros::from_micros(1_000))
            .unwrap();
        core.push_batch(vec![conseq], UtcMicros::from_micros(1_000))
            .unwrap();
        assert!(core.take_extra_sync_request());
        assert!(!core.take_extra_sync_request(), "request is one-shot");
        core.tick(UtcMicros::from_micros(10_000)).unwrap();
        let got = sink.snapshot();
        assert_eq!(got.len(), 2);
        assert!(got[0].ts < got[1].ts, "causality restored in output order");
        assert_eq!(core.cre_stats().tachyons_repaired, 1);
    }

    #[test]
    fn held_conseq_expires_through_tick() {
        let mut core = core_with_frame(0);
        let conseq = rec(1, 0, 900, vec![Value::Conseq(CorrelationId(9))]);
        core.push_batch(vec![conseq], UtcMicros::ZERO).unwrap();
        // Before the hold timeout: nothing comes out.
        assert_eq!(core.tick(UtcMicros::from_millis(100)).unwrap(), 0);
        // After (default hold timeout 2 s): the orphan is released.
        let n = core.tick(UtcMicros::from_secs(3)).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn drain_all_flushes_held_and_delayed() {
        let mut core = core_with_frame(1_000_000);
        let sink = VecSink::new();
        core.add_sink(Box::new(sink.clone()));
        core.push_batch(
            vec![
                rec(0, 0, 100, vec![]),
                rec(1, 0, 50, vec![Value::Conseq(CorrelationId(1))]),
            ],
            UtcMicros::from_micros(100),
        )
        .unwrap();
        assert_eq!(core.tick(UtcMicros::from_micros(200)).unwrap(), 0);
        let n = core.drain_all().unwrap();
        assert_eq!(n, 2);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn bind_telemetry_tracks_core_flow() {
        let mut core = core_with_frame(100);
        let registry = brisk_telemetry::Registry::new();
        core.bind_telemetry(&registry);
        core.push_batch(
            vec![rec(0, 0, 300, vec![]), rec(0, 1, 500, vec![])],
            UtcMicros::from_micros(500),
        )
        .unwrap();
        core.tick(UtcMicros::from_micros(1_000)).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("brisk_ism_records_in_total"), 2);
        assert_eq!(snap.counter_total("brisk_ism_batches_in_total"), 1);
        assert_eq!(snap.counter_total("brisk_ism_records_out_total"), 2);
        assert_eq!(snap.counter_total("brisk_ism_memory_written_total"), 2);
        assert_eq!(snap.gauge("brisk_ism_memory_records"), Some(2));
        let hist = snap
            .histogram("brisk_ism_e2e_latency_us")
            .expect("latency histogram exported");
        assert_eq!(hist.count(), 2);
        // Delivered at now=1000 for ts 300/500 → latencies 700 and 500.
        assert_eq!(hist.max, 700);
        assert!(hist.p50() <= hist.p99());
        // Shutdown drain must not pollute the latency histogram.
        core.push_batch(
            vec![rec(0, 2, 2_000, vec![])],
            UtcMicros::from_micros(2_000),
        )
        .unwrap();
        core.drain_all().unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("brisk_ism_records_out_total"), 3);
        let hist = snap.histogram("brisk_ism_e2e_latency_us").unwrap();
        assert_eq!(hist.count(), 2, "drain_all records no latency samples");
        // The trace-stamp drop counter is exported and tracks the
        // process-wide total (other tests may bump it concurrently, so
        // compare against the source rather than an absolute value).
        let ctx = brisk_core::TraceContext::origin(7, UtcMicros::from_micros(1));
        let mut full = rec(0, 3, 3_000, vec![brisk_core::Value::Trace(ctx)]);
        for _ in 0..=brisk_core::MAX_TRACE_STAMPS {
            full.stamp_trace(brisk_core::TraceStage::PumpRecv, UtcMicros::from_micros(1));
        }
        let snap = registry.snapshot();
        let exported = snap.counter_total("brisk_trace_stamps_dropped_total");
        assert!(exported >= 1, "overflow stamp must surface in the metric");
        assert!(exported <= brisk_core::trace_stamps_dropped_total());
    }

    #[test]
    fn sequenced_replay_is_dropped_per_node() {
        let mut core = core_with_frame(0);
        let registry = brisk_telemetry::Registry::new();
        core.bind_telemetry(&registry);
        let now = UtcMicros::from_micros(100);
        assert!(core
            .push_batch_seq(NodeId(1), Some(1), vec![rec(1, 0, 10, vec![])], now)
            .unwrap());
        assert!(core
            .push_batch_seq(NodeId(1), Some(2), vec![rec(1, 1, 11, vec![])], now)
            .unwrap());
        // Replay of seq 2 from node 1: dropped.
        assert!(!core
            .push_batch_seq(NodeId(1), Some(2), vec![rec(1, 1, 11, vec![])], now)
            .unwrap());
        // Same seq from a *different* node: accepted (per-node streams).
        assert!(core
            .push_batch_seq(NodeId(2), Some(2), vec![rec(2, 0, 12, vec![])], now)
            .unwrap());
        // Unsequenced (v1) batches are never deduplicated.
        assert!(core
            .push_batch_seq(NodeId(1), None, vec![rec(1, 2, 13, vec![])], now)
            .unwrap());
        let stats = core.stats();
        assert_eq!(stats.batches_in, 4);
        assert_eq!(stats.records_in, 4);
        assert_eq!(stats.duplicate_batches, 1);
        assert_eq!(stats.duplicate_records, 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("brisk_ism_duplicate_batches_total"), 1);
        assert_eq!(snap.counter_total("brisk_ism_duplicate_records_total"), 1);
    }

    #[test]
    fn store_receives_delivered_records() {
        use brisk_core::StoreConfig;
        use brisk_store::StoreReader;
        let dir = std::env::temp_dir().join(format!("brisk-core-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = IsmConfig {
            store: StoreConfig::at(dir.clone()),
            ..IsmConfig::default()
        };
        let registry = brisk_telemetry::Registry::new();
        {
            let mut core = IsmCore::new(cfg).unwrap();
            core.bind_telemetry(&registry);
            assert!(core.store().is_some());
            core.push_batch(
                (0..50).map(|i| rec(0, i, i as i64 * 10, vec![Value::U64(i)])),
                UtcMicros::ZERO,
            )
            .unwrap();
            core.tick(UtcMicros::from_secs(1)).unwrap();
            core.drain_all().unwrap();
        } // core drop seals the store
        let (recs, report) = StoreReader::open(&dir).unwrap().read_all().unwrap();
        assert_eq!(recs.len(), 50);
        assert_eq!(report.corrupt_frames, 0);
        let ts: Vec<i64> = recs.iter().map(|r| r.ts.as_micros()).collect();
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "stored in sorted order"
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("brisk_store_records_total"), 50);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_stamps_accumulate_through_the_core() {
        use brisk_core::{TraceContext, TraceStage};
        let mut core = core_with_frame(0);
        let registry = brisk_telemetry::Registry::new();
        core.bind_telemetry(&registry);
        let sink = VecSink::new();
        core.add_sink(Box::new(sink.clone()));
        // A record as the wire would deliver it: Notice→ExsScoop→
        // BatchSend→PumpRecv already stamped upstream.
        let mut ctx = TraceContext::origin(42, UtcMicros::from_micros(100));
        ctx.stamp(TraceStage::ExsScoop, UtcMicros::from_micros(110));
        ctx.stamp(TraceStage::BatchSend, UtcMicros::from_micros(120));
        ctx.stamp(TraceStage::PumpRecv, UtcMicros::from_micros(140));
        let traced = rec(0, 0, 100, vec![Value::Trace(ctx)]);
        core.push_batch(vec![traced], UtcMicros::from_micros(150))
            .unwrap();
        assert_eq!(core.tick(UtcMicros::from_micros(200)).unwrap(), 1);
        let got = sink.snapshot();
        let ctx = got[0].trace().expect("trace survives the core");
        let stages: Vec<TraceStage> = ctx.stamps().iter().map(|&(s, _)| s).collect();
        assert_eq!(
            stages,
            vec![
                TraceStage::Notice,
                TraceStage::ExsScoop,
                TraceStage::BatchSend,
                TraceStage::PumpRecv,
                TraceStage::SorterAdmit,
                TraceStage::SorterRelease,
                TraceStage::Deliver,
            ]
        );
        assert!(
            ctx.stamps().windows(2).all(|w| w[0].1 <= w[1].1),
            "stamps must be monotonic: {ctx}"
        );
        // Every consecutive pair fed the stage histograms with this
        // record's id as the exemplar.
        let (_, exemplar) = core
            .stage_latencies()
            .expect("bound core exposes stage latencies")
            .slowest_exemplar()
            .expect("spans observed");
        assert_eq!(exemplar, 42);
    }

    #[test]
    fn cre_repair_and_hold_are_stamped() {
        use brisk_core::{TraceContext, TraceStage};
        let mut core = core_with_frame(0);
        let sink = VecSink::new();
        core.add_sink(Box::new(sink.clone()));
        let now = UtcMicros::from_micros(1_000);
        // Consequence first (held), its trace sampled at origin.
        let conseq = EventRecord::new(
            NodeId(1),
            SensorId(0),
            EventTypeId(2),
            0,
            UtcMicros::from_micros(900),
            vec![
                Value::Conseq(CorrelationId(5)),
                Value::Trace(TraceContext::origin(7, UtcMicros::from_micros(900))),
            ],
        )
        .unwrap();
        core.push_batch(vec![conseq], now).unwrap();
        // Reason arrives later with a later ts: the held conseq is a
        // tachyon — released, repaired, and both hops stamped.
        let reason = rec(0, 0, 950, vec![Value::Reason(CorrelationId(5))]);
        core.push_batch(vec![reason], now).unwrap();
        core.tick(UtcMicros::from_micros(10_000)).unwrap();
        let got = sink.snapshot();
        assert_eq!(got.len(), 2);
        let ctx = got
            .iter()
            .find_map(|r| r.trace())
            .expect("traced conseq delivered");
        assert_eq!(ctx.stamp_at(TraceStage::CreHold), Some(now));
        assert_eq!(ctx.stamp_at(TraceStage::CreRepair), Some(now));
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = IsmConfig::default();
        cfg.sorter.decay_factor = 7.0;
        assert!(IsmCore::new(cfg).is_err());
    }
}
