//! The threaded ISM server: accept loop + reactor pool + manager loop.
//!
//! Threads:
//!
//! * **accept** — accepts EXS connections and registers each with the
//!   reactor pool immediately; nothing on this thread can block on a
//!   client;
//! * **reactor shards** (bounded pool, see `crate::reactor`) — greet
//!   every connection (`Hello`, with its 5 s deadline) and then
//!   multiplex all of them over `poll(2)`: forward batches zero-copy,
//!   send batch acks and credit grants, run poll exchanges with
//!   socket-accurate timestamps. Connection count is independent of
//!   thread count ([`brisk_core::IsmConfig::pump_threads`]);
//! * **manager** — owns the [`IsmCore`] and the [`SyncMaster`]; consumes
//!   pump events, materializes each batch's records exactly once from
//!   its validated wire frame, ticks the pipeline, schedules
//!   synchronization rounds every `poll_period`, plus the *extra* rounds
//!   requested by tachyon repairs (§3.6).

use crate::core::{IsmCore, IsmCoreStats};
use crate::cre::CreStats;
use crate::output::MemoryBuffer;
use crate::pump::{FlowState, PumpCommand, PumpEvent, PumpHandle, QuarantineLog};
use crate::reactor::{ActiveNodes, ReactorConfig, ReactorPool};
use crate::sorter::SorterStats;
use brisk_clock::{Clock, SyncMaster, SyncOutcome};
use brisk_core::{BriskError, IsmConfig, NodeId, Result, SyncConfig, TraceStage};
use brisk_net::{ConnMetrics, Listener};
use brisk_proto::BatchView;
use brisk_telemetry::{Counter, Histogram, Registry, StageLatencies};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Final report returned when the server stops.
#[derive(Clone, Debug, Default)]
pub struct IsmReport {
    /// Pipeline counters.
    pub core: IsmCoreStats,
    /// Sorter counters.
    pub sorter: SorterStats,
    /// CRE counters.
    pub cre: CreStats,
    /// Completed synchronization rounds.
    pub sync_rounds: u64,
    /// Outcome of the last round, if any.
    pub last_sync: Option<SyncOutcome>,
    /// Upstream-export counters, present when the server ran in relay
    /// mode (see [`IsmServer::set_upstream`]).
    pub relay: Option<crate::relay::RelayStats>,
}

/// The ISM server, pre-spawn. Attach sinks via [`IsmServer::core_mut`],
/// then call [`IsmServer::spawn`].
pub struct IsmServer {
    core: IsmCore,
    sync: SyncMaster,
    clock: Arc<dyn Clock>,
    flow: Arc<FlowState>,
    registry: Option<Arc<Registry>>,
    /// Liveness: evict a node whose connection has been silent this long.
    node_timeout: Option<Duration>,
    /// Undecodable frames tolerated per connection before disconnect.
    error_budget: u32,
    /// Reactor shard threads (0 = auto-size from the machine).
    pump_threads: usize,
    /// Shared malformed-frame quarantine across all pumps.
    quarantine: Arc<QuarantineLog>,
}

/// Manager tick granularity: how often the pipeline is polled when no
/// traffic arrives. This bounds added release latency on top of the
/// sorter's time frame.
const TICK: Duration = Duration::from_millis(1);
/// How long the manager waits for all slaves' samples before closing a
/// round with whatever arrived.
const ROUND_DEADLINE: Duration = Duration::from_secs(2);

impl IsmServer {
    /// New server.
    pub fn new(cfg: IsmConfig, sync_cfg: SyncConfig, clock: Arc<dyn Clock>) -> Result<Self> {
        let flow = FlowState::new(cfg.flow);
        let node_timeout = cfg.node_timeout;
        let error_budget = cfg.protocol_error_budget;
        let pump_threads = cfg.pump_threads;
        Ok(IsmServer {
            core: IsmCore::new(cfg)?,
            sync: SyncMaster::new(sync_cfg)?,
            clock,
            flow,
            registry: None,
            node_timeout,
            error_budget,
            pump_threads,
            quarantine: QuarantineLog::new(),
        })
    }

    /// Bind the whole server — core pipeline, sync master, connection
    /// metering, flow control and the manager queue — to `registry`. Call
    /// before [`IsmServer::spawn`].
    pub fn bind_telemetry(&mut self, registry: &Arc<Registry>) {
        self.core.bind_telemetry(registry);
        self.sync.bind_telemetry(registry);
        let f = Arc::clone(&self.flow);
        registry.gauge_fn(
            "brisk_ism_manager_queue_records",
            "Records resident in the ISM manager queue",
            &[],
            move || f.queued_records() as i64,
        );
        let f = Arc::clone(&self.flow);
        registry.gauge_fn(
            "brisk_ism_manager_queue_depth_high_water",
            "Highest record count ever resident in the ISM manager queue",
            &[],
            move || f.high_water() as i64,
        );
        let f = Arc::clone(&self.flow);
        registry.counter_fn(
            "brisk_ism_deferred_reads_total",
            "Socket reads pumps deferred because the manager queue was over its bound",
            &[],
            move || f.deferrals(),
        );
        self.quarantine.bind_telemetry(registry);
        self.registry = Some(Arc::clone(registry));
    }

    /// Access the core (e.g. to attach sinks) before spawning.
    pub fn core_mut(&mut self) -> &mut IsmCore {
        &mut self.core
    }

    /// Run this server as a *relay*: instead of delivering merged,
    /// repaired records to the local outputs, re-export them upstream as
    /// one namespaced EXS-like stream (§ relay topology in DESIGN.md).
    /// Call before [`IsmServer::spawn`].
    pub fn set_upstream(&mut self, exporter: crate::relay::UpstreamExporter) {
        self.core.set_upstream(exporter);
    }

    /// The output memory buffer (clone the `Arc` to create readers).
    pub fn memory(&self) -> Arc<MemoryBuffer> {
        Arc::clone(self.core.memory())
    }

    /// Start the accept and manager threads.
    pub fn spawn(self, mut listener: Box<dyn Listener>) -> Result<IsmHandle> {
        let addr = listener.local_addr();
        let memory = Arc::clone(self.core.memory());
        let stages = self.core.stage_latencies().cloned();
        let stop = Arc::new(AtomicBool::new(false));
        let (event_tx, event_rx) = unbounded::<PumpEvent>();
        let (pump_tx, pump_rx) = unbounded::<PumpHandle>();

        // Queue depth = events enqueued by pumps − events the manager
        // processed; both sides are cheap relaxed counters.
        let acks_sent = self.registry.as_ref().map(|r| {
            r.counter(
                "brisk_ism_acks_sent_total",
                "Batch acknowledgements sent to external sensors",
            )
        });
        let credit_grants = self.registry.as_ref().map(|r| {
            r.counter(
                "brisk_ism_credit_grants_total",
                "Credit replenishments piggybacked on batch acknowledgements",
            )
        });
        let grant_latency = self.registry.as_ref().map(|r| {
            r.histogram(
                "brisk_ism_grant_latency_us",
                "Microseconds from a batch entering the manager queue to its credit grant",
            )
        });
        let evicted = self.registry.as_ref().map(|r| {
            r.counter(
                "brisk_ism_evicted_nodes_total",
                "Nodes evicted after going silent past the liveness timeout",
            )
        });
        let (conn_metrics, enqueued, processed) = match &self.registry {
            Some(registry) => {
                let enqueued = Arc::new(Counter::new());
                let processed = Arc::new(Counter::new());
                let (e, p) = (Arc::clone(&enqueued), Arc::clone(&processed));
                registry.gauge_fn(
                    "brisk_ism_manager_queue_depth",
                    "Pump events waiting for the ISM manager",
                    &[],
                    move || e.get().saturating_sub(p.get()) as i64,
                );
                (
                    Some(ConnMetrics::register(registry, "ism")),
                    Some(enqueued),
                    Some(processed),
                )
            }
            None => (None, None, None),
        };

        // Reactor pool: a bounded set of shard threads drives every
        // connection, so accepting 1 000 sensors costs sockets, not
        // threads.
        let threads = if self.pump_threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(4)
        } else {
            self.pump_threads
        };
        let reactor = Arc::new(ReactorPool::spawn(
            threads,
            ReactorConfig {
                clock: Arc::clone(&self.clock),
                events: event_tx.clone(),
                pumps: pump_tx,
                enqueued,
                flow: Some(Arc::clone(&self.flow)),
                error_budget: self.error_budget,
                quarantine: Some(Arc::clone(&self.quarantine)),
                active: Arc::new(ActiveNodes::default()),
            },
        )?);

        // Accept thread.
        let accept_stop = Arc::clone(&stop);
        let accept_reactor = Arc::clone(&reactor);
        let accept_join = std::thread::Builder::new()
            .name("brisk-ism-accept".into())
            .spawn(move || accept_loop(&mut listener, accept_stop, conn_metrics, accept_reactor))
            .map_err(BriskError::Io)?;

        // Manager thread.
        let mgr_stop = Arc::clone(&stop);
        let manager = Manager {
            core: self.core,
            sync: self.sync,
            clock: self.clock,
            flow: self.flow,
            events: event_rx,
            new_pumps: pump_rx,
            pumps: HashMap::new(),
            retiring: Vec::new(),
            round: None,
            last_round_finished: Instant::now(),
            node_timeout: self.node_timeout,
            last_seen: HashMap::new(),
            processed,
            acks_sent,
            credit_grants,
            grant_latency,
            evicted,
        };
        let manager_join = std::thread::Builder::new()
            .name("brisk-ism-manager".into())
            .spawn(move || manager.run(mgr_stop))
            .map_err(BriskError::Io)?;

        Ok(IsmHandle {
            addr,
            memory,
            quarantine: self.quarantine,
            stages,
            stop,
            reactor,
            accept_join,
            manager_join,
        })
    }
}

fn accept_loop(
    listener: &mut Box<dyn Listener>,
    stop: Arc<AtomicBool>,
    conn_metrics: Option<ConnMetrics>,
    reactor: Arc<ReactorPool>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept(Some(Duration::from_millis(50))) {
            Ok(Some(conn)) => {
                // Meter before the handshake so Hello frames count too.
                let conn = match &conn_metrics {
                    Some(m) => m.wrap(conn),
                    None => conn,
                };
                // Hand the raw connection straight to the reactor: the
                // greeting (with its 5 s deadline) runs poll-driven on a
                // shard, so a slow or hung client costs a poll slot, not
                // a thread, and can never head-of-line-block other
                // connects.
                reactor.register(conn);
            }
            Ok(None) => continue,
            Err(_) => return,
        }
    }
}

struct RoundInFlight {
    round: u64,
    expected: HashSet<NodeId>,
    started: Instant,
}

struct Manager {
    core: IsmCore,
    sync: SyncMaster,
    clock: Arc<dyn Clock>,
    flow: Arc<FlowState>,
    events: Receiver<PumpEvent>,
    new_pumps: Receiver<PumpHandle>,
    pumps: HashMap<NodeId, PumpHandle>,
    /// Stale pumps (displaced by a reconnect) that have been told to shut
    /// down but whose `Disconnected` has not been seen yet.
    retiring: Vec<PumpHandle>,
    round: Option<RoundInFlight>,
    last_round_finished: Instant,
    /// Evict a node whose connection shows no life signs for this long
    /// (`None` disables the sweep). "Life" is peer traffic: a batch, a
    /// heartbeat, or delivered sync samples — not mere pump-thread
    /// activity, which keeps running even against a dead socket.
    node_timeout: Option<Duration>,
    /// Last observed life sign per registered node.
    last_seen: HashMap<NodeId, Instant>,
    processed: Option<Arc<Counter>>,
    acks_sent: Option<Arc<Counter>>,
    credit_grants: Option<Arc<Counter>>,
    grant_latency: Option<Arc<Histogram>>,
    evicted: Option<Arc<Counter>>,
}

impl Manager {
    fn run(mut self, stop: Arc<AtomicBool>) -> Result<IsmReport> {
        while !stop.load(Ordering::Relaxed) {
            // Register newly-accepted connections.
            self.register_new_pumps();
            // Consume pump events for up to one tick.
            match self.events.recv_timeout(TICK) {
                Ok(ev) => {
                    self.handle_event(ev)?;
                    // Opportunistically drain whatever else queued up.
                    while let Ok(ev) = self.events.try_recv() {
                        self.handle_event(ev)?;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            // Advance the pipeline.
            self.core.tick(self.clock.now())?;
            // Round scheduling: periodic, plus tachyon-triggered extras.
            let extra = self.core.take_extra_sync_request();
            let due = self.last_round_finished.elapsed() >= self.sync.config().poll_period;
            if self.round.is_none() && !self.pumps.is_empty() && (due || extra) {
                self.begin_round();
            }
            self.maybe_close_round(false)?;
            self.evict_stale();
        }
        // Shutdown: stop pumps (retiring ones already got Shutdown, but a
        // repeat is harmless), drain stragglers, flush pipeline.
        for handle in self.pumps.values().chain(self.retiring.iter()) {
            handle.command(PumpCommand::Shutdown);
        }
        let deadline = Instant::now() + Duration::from_secs(3);
        let mut live = self.pumps.len() + self.retiring.len();
        while live > 0 && Instant::now() < deadline {
            match self.events.recv_timeout(Duration::from_millis(20)) {
                Ok(ev @ PumpEvent::Disconnected { .. }) => {
                    live -= 1;
                    // Still routed through handle_event: the processed
                    // counter must balance the pump's enqueued counter or
                    // the queue-depth gauge reads a phantom backlog after
                    // shutdown.
                    self.handle_event(ev)?;
                }
                Ok(ev) => self.handle_event(ev)?,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        for (_, handle) in self.pumps.drain() {
            handle.join();
        }
        for handle in self.retiring.drain(..) {
            handle.join();
        }
        self.core.drain_all()?;
        Ok(IsmReport {
            core: self.core.stats(),
            sorter: self.core.sorter_stats(),
            cre: self.core.cre_stats(),
            sync_rounds: self.sync.rounds_completed(),
            last_sync: self.sync.last_outcome().cloned(),
            relay: self.core.upstream().map(|u| u.stats()),
        })
    }

    /// Drain the registration channel. A node that reconnects before its
    /// dead pump was reaped displaces the old handle: retire it (send
    /// Shutdown, park until its `Disconnected` arrives) so sync rounds
    /// never target a dead socket.
    fn register_new_pumps(&mut self) {
        while let Ok(handle) = self.new_pumps.try_recv() {
            self.last_seen.insert(handle.node, Instant::now());
            if let Some(old) = self.pumps.insert(handle.node, handle) {
                old.command(PumpCommand::Shutdown);
                self.retiring.push(old);
            }
        }
    }

    /// Evict nodes with no life signs past the liveness timeout. TCP can
    /// sit on a silently dead peer for minutes; the heartbeat/eviction
    /// pair bounds how long a dead node occupies a pump slot and sync
    /// rounds. The evicted pump is retired exactly like one displaced by
    /// a reconnect, so a node that comes back simply re-registers.
    fn evict_stale(&mut self) {
        let Some(timeout) = self.node_timeout else {
            return;
        };
        let stale: Vec<NodeId> = self
            .last_seen
            .iter()
            .filter(|(_, seen)| seen.elapsed() > timeout)
            .map(|(node, _)| *node)
            .collect();
        for node in stale {
            self.last_seen.remove(&node);
            if let Some(handle) = self.pumps.remove(&node) {
                brisk_telemetry::flight_log!(
                    Warn,
                    "ism.manager",
                    "node_evicted",
                    "node {node} evicted: no life signs for over {timeout:?}"
                );
                handle.command(PumpCommand::Shutdown);
                self.retiring.push(handle);
                if let Some(c) = &self.evicted {
                    c.inc();
                }
                if let Some(r) = &mut self.round {
                    r.expected.remove(&node);
                }
            }
        }
    }

    fn handle_event(&mut self, ev: PumpEvent) -> Result<()> {
        if let Some(c) = &self.processed {
            c.inc();
        }
        match ev {
            PumpEvent::Batch {
                node,
                id,
                seq,
                frame,
                count,
                recv_ts,
                enqueued_at,
            } => {
                self.last_seen.insert(node, Instant::now());
                let n = count as u64;
                // Materialize exactly once, on the consumer side of the
                // queue: the pump already validated the frame as a view,
                // so a failure here is a logic error rather than wire
                // corruption — skip the batch instead of poisoning the
                // manager. The PumpRecv stamp uses the socket-side
                // receive time, keeping manager queueing delay out of
                // the BatchSend→PumpRecv span.
                //
                // Dedup happens in the core; accepted or not, a sequenced
                // batch is acked — a replayed duplicate means our earlier
                // ack died with the old connection, so re-acking is
                // exactly what unblocks the sender's retransmit window.
                let pushed = match BatchView::parse(&frame).and_then(|view| view.materialize()) {
                    Ok(mut records) => {
                        for rec in records.iter_mut() {
                            rec.stamp_trace(TraceStage::PumpRecv, recv_ts);
                        }
                        self.core
                            .push_batch_seq(node, seq, records, self.clock.now())
                    }
                    Err(_) => Ok(false),
                };
                // The records left the manager queue whether the core
                // accepted them or not; free the pumps before erroring.
                self.flow.sub(n);
                pushed?;
                if let Some(seq) = seq {
                    // The batch may outrun its pump's registration (the
                    // channels are separate): catch up, then ack through
                    // the exact pump instance the batch arrived on.
                    self.register_new_pumps();
                    let handle = self
                        .pumps
                        .get(&node)
                        .filter(|h| h.id() == id)
                        .or_else(|| self.retiring.iter().find(|h| h.id() == id));
                    if let Some(handle) = handle {
                        // v3 peers get their credit budget re-advertised
                        // on every ack: acked records no longer count
                        // against the in-flight budget, so the constant
                        // re-grant is exactly the replenishment.
                        let credit = if handle.version() >= 3 {
                            self.flow.credit()
                        } else {
                            None
                        };
                        if handle.command(PumpCommand::Ack { seq, credit }) {
                            if let Some(c) = &self.acks_sent {
                                c.inc();
                            }
                            if credit.is_some() {
                                if let Some(c) = &self.credit_grants {
                                    c.inc();
                                }
                                if let Some(h) = &self.grant_latency {
                                    h.record(enqueued_at.elapsed().as_micros() as u64);
                                }
                            }
                        }
                    }
                }
            }
            PumpEvent::SyncSamples {
                node,
                round,
                samples,
            } => {
                // Only delivered samples prove the *peer* is alive; an
                // empty set just means the pump's polls timed out.
                if !samples.is_empty() {
                    self.last_seen.insert(node, Instant::now());
                }
                if let Some(r) = &mut self.round {
                    if r.round == round {
                        for s in samples {
                            self.sync.add_sample(node, s);
                        }
                        r.expected.remove(&node);
                        self.maybe_close_round(true)?;
                    }
                }
            }
            PumpEvent::Heartbeat { node, id } => {
                // A stale pump's late heartbeat must not keep an
                // otherwise-dead node alive.
                if self.pumps.get(&node).is_some_and(|h| h.id() == id) {
                    self.last_seen.insert(node, Instant::now());
                }
            }
            PumpEvent::Disconnected { node, id } => {
                // Only the *current* pump's death removes the node: a
                // stale pump (displaced by a reconnect) reporting in late
                // must not tear down its successor.
                if self.pumps.get(&node).is_some_and(|h| h.id() == id) {
                    if let Some(handle) = self.pumps.remove(&node) {
                        handle.join();
                    }
                    self.last_seen.remove(&node);
                    if let Some(r) = &mut self.round {
                        r.expected.remove(&node);
                    }
                } else if let Some(pos) = self.retiring.iter().position(|h| h.id() == id) {
                    self.retiring.swap_remove(pos).join();
                }
            }
        }
        Ok(())
    }

    fn begin_round(&mut self) {
        let round = self.sync.begin_round();
        let samples = self.sync.samples_per_slave() as u32;
        let mut expected = HashSet::new();
        for (node, handle) in &self.pumps {
            if handle.command(PumpCommand::SyncRound { round, samples }) {
                expected.insert(*node);
            }
        }
        if expected.is_empty() {
            self.last_round_finished = Instant::now();
            return;
        }
        self.round = Some(RoundInFlight {
            round,
            expected,
            started: Instant::now(),
        });
    }

    fn maybe_close_round(&mut self, complete_check_only: bool) -> Result<()> {
        let close = match &self.round {
            Some(r) => {
                r.expected.is_empty()
                    || (!complete_check_only && r.started.elapsed() > ROUND_DEADLINE)
            }
            None => false,
        };
        if !close {
            return Ok(());
        }
        self.round = None;
        let outcome = self.sync.finish_round()?;
        for c in &outcome.corrections {
            if let Some(handle) = self.pumps.get(&c.node) {
                handle.command(PumpCommand::Adjust {
                    round: self.sync.rounds_completed(),
                    advance_us: c.advance_us,
                });
            }
        }
        self.last_round_finished = Instant::now();
        Ok(())
    }
}

/// Handle to a running ISM server.
pub struct IsmHandle {
    addr: String,
    memory: Arc<MemoryBuffer>,
    quarantine: Arc<QuarantineLog>,
    stages: Option<Arc<StageLatencies>>,
    stop: Arc<AtomicBool>,
    reactor: Arc<ReactorPool>,
    accept_join: std::thread::JoinHandle<()>,
    manager_join: std::thread::JoinHandle<Result<IsmReport>>,
}

impl IsmHandle {
    /// Address external sensors should connect to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The output memory buffer.
    pub fn memory(&self) -> &Arc<MemoryBuffer> {
        &self.memory
    }

    /// The malformed-frame quarantine log (counters + retained samples).
    pub fn quarantine(&self) -> &Arc<QuarantineLog> {
        &self.quarantine
    }

    /// Per-stage trace latency histograms with exemplar trace ids
    /// (present when telemetry was bound before spawning).
    pub fn stage_latencies(&self) -> Option<&Arc<StageLatencies>> {
        self.stages.as_ref()
    }

    /// Stop the server and collect the final report.
    pub fn stop(self) -> Result<IsmReport> {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.accept_join.join();
        // The manager's shutdown drain needs the reactor alive (pumps
        // forward the EXSs' final flushes and report Disconnected), so
        // the pool stops only after the manager has joined.
        let report = self
            .manager_join
            .join()
            .map_err(|_| BriskError::Sync("ISM manager thread panicked".into()))?;
        self.reactor.stop();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_clock::SystemClock;
    use brisk_core::{EventTypeId, UtcMicros, Value};
    use brisk_lis_like::*;

    /// Minimal in-test EXS substitute: we drive the protocol by hand so the
    /// server tests do not depend on brisk-lis (which depends on this
    /// crate's siblings only, but keeping the dependency graph acyclic for
    /// tests is simpler).
    mod brisk_lis_like {
        pub use brisk_net::{Connection, MemTransport, TcpTransport, Transport};
        pub use brisk_proto::Message;
    }

    fn start_server() -> (IsmHandle, Arc<MemTransport>) {
        let t = MemTransport::new();
        let listener = t.listen("ism").unwrap();
        let server = IsmServer::new(
            IsmConfig::default(),
            SyncConfig {
                poll_period: Duration::from_millis(50),
                ..SyncConfig::default()
            },
            Arc::new(SystemClock),
        )
        .unwrap();
        (server.spawn(listener).unwrap(), t)
    }

    fn hello(conn: &mut Box<dyn Connection>, node: u32) {
        conn.send(
            &Message::Hello {
                node: NodeId(node),
                version: brisk_proto::VERSION,
            }
            .encode(),
        )
        .unwrap();
    }

    fn batch_seq(node: u32, seq: Option<u64>, seqs: std::ops::Range<u64>) -> Message {
        Message::EventBatch {
            node: NodeId(node),
            seq,
            records: seqs
                .map(|i| {
                    brisk_core::EventRecord::new(
                        NodeId(node),
                        brisk_core::SensorId(0),
                        EventTypeId(1),
                        i,
                        UtcMicros::now(),
                        vec![Value::U64(i)],
                    )
                    .unwrap()
                })
                .collect(),
        }
    }

    /// An unsequenced (v1-style) batch.
    fn batch(node: u32, seqs: std::ops::Range<u64>) -> Message {
        batch_seq(node, None, seqs)
    }

    /// Receive decoded messages until `pred` returns `Some`, answering
    /// nothing; returns `None` on timeout.
    fn recv_until<T>(
        conn: &mut Box<dyn Connection>,
        budget: Duration,
        mut pred: impl FnMut(Message) -> Option<T>,
    ) -> Option<T> {
        let deadline = Instant::now() + budget;
        while Instant::now() < deadline {
            if let Ok(Some(frame)) = conn.recv(Some(Duration::from_millis(20))) {
                if let Some(t) = pred(Message::decode(&frame).unwrap()) {
                    return Some(t);
                }
            }
        }
        None
    }

    #[test]
    fn records_reach_memory_buffer() {
        let (handle, t) = start_server();
        let mut reader = handle.memory().reader();
        let mut conn = t.connect("ism").unwrap();
        hello(&mut conn, 1);
        conn.send(&batch(1, 0..10).encode()).unwrap();

        let deadline = Instant::now() + Duration::from_secs(5);
        let mut total = 0;
        while total < 10 && Instant::now() < deadline {
            let (recs, _) = reader.poll().unwrap();
            total += recs.len();
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(total, 10);
        let report = handle.stop().unwrap();
        assert_eq!(report.core.records_in, 10);
        assert_eq!(report.core.records_out, 10);
    }

    #[test]
    fn multiple_nodes_merge() {
        let (handle, t) = start_server();
        let mut reader = handle.memory().reader();
        let mut conns: Vec<Box<dyn Connection>> = (1..=3)
            .map(|n| {
                let mut c = t.connect("ism").unwrap();
                hello(&mut c, n);
                c
            })
            .collect();
        for (i, c) in conns.iter_mut().enumerate() {
            c.send(&batch(i as u32 + 1, 0..5).encode()).unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut got = Vec::new();
        while got.len() < 15 && Instant::now() < deadline {
            let (recs, _) = reader.poll().unwrap();
            got.extend(recs);
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(got.len(), 15);
        // Output must be timestamp-sorted.
        assert!(got.windows(2).all(|w| w[0].ts <= w[1].ts));
        handle.stop().unwrap();
    }

    #[test]
    fn server_answers_nothing_until_clients_connect_then_syncs() {
        let (handle, t) = start_server();
        let mut conn = t.connect("ism").unwrap();
        hello(&mut conn, 1);
        // Expect a SyncPoll within a few poll periods; answer a few.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut polls_answered = 0;
        while polls_answered < 4 && Instant::now() < deadline {
            if let Ok(Some(frame)) = conn.recv(Some(Duration::from_millis(100))) {
                if let Message::SyncPoll {
                    round,
                    sample,
                    master_send,
                } = Message::decode(&frame).unwrap()
                {
                    conn.send(
                        &Message::SyncReply {
                            round,
                            sample,
                            master_send,
                            slave_time: UtcMicros::now(),
                        }
                        .encode(),
                    )
                    .unwrap();
                    polls_answered += 1;
                }
            }
        }
        assert!(polls_answered >= 4, "master must poll its slave");
        let report = handle.stop().unwrap();
        assert!(report.sync_rounds >= 1);
    }

    #[test]
    fn v2_client_gets_hello_ack_and_batch_acks() {
        let (handle, t) = start_server();
        let mut conn = t.connect("ism").unwrap();
        hello(&mut conn, 1);
        let acked = recv_until(&mut conn, Duration::from_secs(2), |m| match m {
            Message::HelloAck { version, credit } => Some((version, credit)),
            _ => None,
        });
        // Credit flow control is off by default: the ack carries no grant.
        assert_eq!(acked, Some((brisk_proto::VERSION, None)));
        conn.send(&batch_seq(1, Some(1), 0..3).encode()).unwrap();
        let acked = recv_until(&mut conn, Duration::from_secs(2), |m| match m {
            Message::BatchAck { seq, credit } => Some((seq, credit)),
            _ => None,
        });
        assert_eq!(acked, Some((1, None)));
        let report = handle.stop().unwrap();
        assert_eq!(report.core.records_in, 3);
    }

    #[test]
    fn credit_enabled_server_grants_on_hello_and_acks() {
        let t = MemTransport::new();
        let listener = t.listen("ism-credit").unwrap();
        let mut server = IsmServer::new(
            IsmConfig {
                flow: brisk_core::FlowConfig {
                    credit_records: 64,
                    max_queued_records: 0,
                    shed_unmarked: false,
                },
                ..IsmConfig::default()
            },
            SyncConfig {
                poll_period: Duration::from_secs(60),
                ..SyncConfig::default()
            },
            Arc::new(SystemClock),
        )
        .unwrap();
        let registry = Registry::new();
        server.bind_telemetry(&registry);
        let handle = server.spawn(listener).unwrap();
        let mut conn = t.connect("ism-credit").unwrap();
        hello(&mut conn, 1);
        let granted = recv_until(&mut conn, Duration::from_secs(2), |m| match m {
            Message::HelloAck { credit, .. } => Some(credit),
            _ => None,
        });
        assert_eq!(granted, Some(Some(64)), "v3 Hello must carry the budget");
        conn.send(&batch_seq(1, Some(1), 0..3).encode()).unwrap();
        let acked = recv_until(&mut conn, Duration::from_secs(2), |m| match m {
            Message::BatchAck { seq, credit } => Some((seq, credit)),
            _ => None,
        });
        assert_eq!(acked, Some((1, Some(64))), "acks must replenish credit");
        handle.stop().unwrap();
        let snap = registry.snapshot();
        assert!(snap.counter_total("brisk_ism_credit_grants_total") >= 1);
        let lat = snap
            .histogram("brisk_ism_grant_latency_us")
            .expect("grant latency histogram");
        assert!(lat.count() >= 1);
    }

    #[test]
    fn v1_client_interoperates_without_acks() {
        let (handle, t) = start_server();
        let mut reader = handle.memory().reader();
        let mut conn = t.connect("ism").unwrap();
        conn.send(
            &Message::Hello {
                node: NodeId(1),
                version: 1,
            }
            .encode(),
        )
        .unwrap();
        conn.send(&batch(1, 0..5).encode()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut total = 0;
        while total < 5 && Instant::now() < deadline {
            let (recs, _) = reader.poll().unwrap();
            total += recs.len();
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(total, 5, "v1 batches must still flow");
        // A v1 peer must never see v2 control messages.
        let v2_msg = recv_until(&mut conn, Duration::from_millis(300), |m| match m {
            Message::HelloAck { .. } | Message::BatchAck { .. } => Some(m),
            _ => None,
        });
        assert!(v2_msg.is_none(), "v1 peer got v2 message {v2_msg:?}");
        handle.stop().unwrap();
    }

    #[test]
    fn replayed_batch_is_dropped_and_reacked() {
        let t = MemTransport::new();
        let listener = t.listen("ism").unwrap();
        let mut server = IsmServer::new(
            IsmConfig::default(),
            SyncConfig {
                poll_period: Duration::from_secs(60), // keep sync out of the way
                ..SyncConfig::default()
            },
            Arc::new(SystemClock),
        )
        .unwrap();
        let registry = Registry::new();
        server.bind_telemetry(&registry);
        let handle = server.spawn(listener).unwrap();
        let mut conn = t.connect("ism").unwrap();
        hello(&mut conn, 1);
        conn.send(&batch_seq(1, Some(1), 0..4).encode()).unwrap();
        let first_ack = recv_until(&mut conn, Duration::from_secs(2), |m| match m {
            Message::BatchAck { seq, .. } => Some(seq),
            _ => None,
        });
        assert_eq!(first_ack, Some(1));
        // Replay the same batch (as after a reconnect whose ack was lost):
        // it must be dropped by dedup yet acked again.
        conn.send(&batch_seq(1, Some(1), 0..4).encode()).unwrap();
        let second_ack = recv_until(&mut conn, Duration::from_secs(2), |m| match m {
            Message::BatchAck { seq, .. } => Some(seq),
            _ => None,
        });
        assert_eq!(second_ack, Some(1), "replays must be re-acked");
        let report = handle.stop().unwrap();
        assert_eq!(report.core.records_in, 4, "replay must not double-count");
        assert_eq!(report.core.duplicate_batches, 1);
        assert_eq!(report.core.duplicate_records, 4);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("brisk_ism_duplicate_batches_total"), 1);
        assert!(snap.counter_total("brisk_ism_acks_sent_total") >= 2);
    }

    #[test]
    fn spoofed_batch_node_ends_connection() {
        let (handle, t) = start_server();
        let mut conn = t.connect("ism").unwrap();
        hello(&mut conn, 1);
        // Spoof: the connection authenticated as node 1 but the batch
        // claims node 2. The server must kill the connection.
        conn.send(&batch_seq(2, Some(1), 0..3).encode()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut killed = false;
        while Instant::now() < deadline {
            if conn.recv(Some(Duration::from_millis(20))).is_err() {
                killed = true;
                break;
            }
        }
        assert!(killed, "spoofed connection must be dropped");
        let report = handle.stop().unwrap();
        assert_eq!(report.core.records_in, 0, "spoofed records must not land");
    }

    #[test]
    fn duplicate_hello_is_rejected_and_node_frees_on_disconnect() {
        let (handle, t) = start_server();
        // First connection for node 1, held open (its pump stays alive).
        let mut conn1 = t.connect("ism").unwrap();
        hello(&mut conn1, 1);
        conn1.send(&batch_seq(1, Some(1), 0..2).encode()).unwrap();
        assert!(
            recv_until(&mut conn1, Duration::from_secs(2), |m| match m {
                Message::BatchAck { seq, .. } => Some(seq),
                _ => None,
            })
            .is_some(),
            "first connection must be live"
        );
        // A second Hello claiming node 1 while conn1 is still live is a
        // protocol error: the impostor is answered with Shutdown and
        // quarantined, and conn1's session is untouched.
        let mut conn2 = t.connect("ism").unwrap();
        hello(&mut conn2, 1);
        let rejected = recv_until(&mut conn2, Duration::from_secs(2), |m| match m {
            Message::Shutdown => Some(()),
            Message::HelloAck { .. } => None,
            other => panic!("unexpected reply to duplicate Hello: {other:?}"),
        });
        assert!(rejected.is_some(), "duplicate Hello must be rejected");
        assert_eq!(handle.quarantine().rejected_hellos(), 1);
        // The original connection keeps working...
        conn1.send(&batch_seq(1, Some(2), 0..2).encode()).unwrap();
        let ack2 = recv_until(&mut conn1, Duration::from_secs(2), |m| match m {
            Message::BatchAck { seq, .. } if seq >= 2 => Some(seq),
            _ => None,
        });
        assert_eq!(ack2, Some(2), "original connection must keep its acks");
        // ...and once it closes, the node id is free for a reconnect.
        conn1.send(&Message::Shutdown.encode()).unwrap();
        drop(conn1);
        let mut conn3 = None;
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            let mut c = t.connect("ism").unwrap();
            hello(&mut c, 1);
            let greeted = recv_until(&mut c, Duration::from_secs(2), |m| match m {
                Message::HelloAck { .. } => Some(true),
                Message::Shutdown => Some(false),
                _ => None,
            });
            if greeted == Some(true) {
                conn3 = Some(c);
                break;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        let mut conn3 = conn3.expect("node id must be reclaimable after disconnect");
        conn3.send(&batch_seq(1, Some(3), 0..2).encode()).unwrap();
        let ack3 = recv_until(&mut conn3, Duration::from_secs(2), |m| match m {
            Message::BatchAck { seq, .. } if seq >= 3 => Some(seq),
            _ => None,
        });
        assert_eq!(ack3, Some(3), "reconnect after disconnect must be accepted");
        let report = handle.stop().unwrap();
        assert_eq!(report.core.records_in, 6);
    }

    fn start_server_with_timeout(
        node_timeout: Duration,
    ) -> (IsmHandle, Arc<MemTransport>, Arc<Registry>) {
        let t = MemTransport::new();
        let listener = t.listen("ism").unwrap();
        let mut server = IsmServer::new(
            IsmConfig {
                node_timeout: Some(node_timeout),
                ..IsmConfig::default()
            },
            SyncConfig {
                poll_period: Duration::from_secs(60), // keep sync out of the way
                ..SyncConfig::default()
            },
            Arc::new(SystemClock),
        )
        .unwrap();
        let registry = Registry::new();
        server.bind_telemetry(&registry);
        (server.spawn(listener).unwrap(), t, registry)
    }

    #[test]
    fn silent_node_is_evicted_after_timeout() {
        let (handle, t, registry) = start_server_with_timeout(Duration::from_millis(150));
        let mut conn = t.connect("ism").unwrap();
        hello(&mut conn, 1);
        conn.send(&batch_seq(1, Some(1), 0..2).encode()).unwrap();
        // Then go silent: the manager must evict the node — the pump
        // sends Shutdown and retires, exactly like a displaced pump.
        let shut = recv_until(&mut conn, Duration::from_secs(5), |m| match m {
            Message::Shutdown => Some(()),
            _ => None,
        });
        assert!(shut.is_some(), "silent node must be told to shut down");
        let report = handle.stop().unwrap();
        assert_eq!(report.core.records_in, 2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("brisk_ism_evicted_nodes_total"), 1);
    }

    #[test]
    fn heartbeats_keep_a_quiet_node_alive() {
        let (handle, t, registry) = start_server_with_timeout(Duration::from_millis(250));
        let mut conn = t.connect("ism").unwrap();
        hello(&mut conn, 1);
        // Send no batches at all — only heartbeats — for several times
        // the timeout. The node must never be evicted.
        let deadline = Instant::now() + Duration::from_millis(1200);
        while Instant::now() < deadline {
            conn.send(&Message::Heartbeat.encode()).unwrap();
            if let Ok(Some(frame)) = conn.recv(Some(Duration::from_millis(50))) {
                if let Ok(Message::Shutdown) = Message::decode(&frame) {
                    panic!("heartbeating node must not be evicted");
                }
            }
        }
        handle.stop().unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("brisk_ism_evicted_nodes_total"), 0);
    }

    #[test]
    fn garbage_frames_are_quarantined_then_budget_disconnects() {
        let t = MemTransport::new();
        let listener = t.listen("ism").unwrap();
        let mut server = IsmServer::new(
            IsmConfig {
                protocol_error_budget: 2,
                ..IsmConfig::default()
            },
            SyncConfig {
                poll_period: Duration::from_secs(60),
                ..SyncConfig::default()
            },
            Arc::new(SystemClock),
        )
        .unwrap();
        let registry = Registry::new();
        server.bind_telemetry(&registry);
        let handle = server.spawn(listener).unwrap();
        let mut conn = t.connect("ism").unwrap();
        hello(&mut conn, 1);
        // Two garbage frames are quarantined; a batch still lands.
        conn.send(&[0xde, 0xad]).unwrap();
        conn.send(&[0xbe, 0xef]).unwrap();
        conn.send(&batch_seq(1, Some(1), 0..3).encode()).unwrap();
        let acked = recv_until(&mut conn, Duration::from_secs(2), |m| match m {
            Message::BatchAck { seq, .. } => Some(seq),
            _ => None,
        });
        assert_eq!(acked, Some(1), "batches must survive quarantined frames");
        // The third garbage frame exhausts the budget: disconnect.
        conn.send(&[0x00]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut killed = false;
        while Instant::now() < deadline {
            if conn.recv(Some(Duration::from_millis(20))).is_err() {
                killed = true;
                break;
            }
        }
        assert!(killed, "offender must be disconnected after the budget");
        assert_eq!(handle.quarantine().frames(), 3);
        assert_eq!(handle.quarantine().disconnects(), 1);
        let report = handle.stop().unwrap();
        assert_eq!(report.core.records_in, 3);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("brisk_ism_quarantined_frames_total"), 3);
        assert_eq!(
            snap.counter_total("brisk_ism_quarantine_disconnects_total"),
            1
        );
    }

    #[test]
    fn stop_with_no_clients_is_clean() {
        let (handle, _t) = start_server();
        std::thread::sleep(Duration::from_millis(50));
        let report = handle.stop().unwrap();
        assert_eq!(report.core.records_in, 0);
    }

    #[test]
    fn bound_server_exports_pipeline_and_net_series() {
        let t = MemTransport::new();
        let listener = t.listen("ism-telemetry").unwrap();
        let mut server = IsmServer::new(
            IsmConfig::default(),
            SyncConfig {
                poll_period: Duration::from_millis(50),
                ..SyncConfig::default()
            },
            Arc::new(SystemClock),
        )
        .unwrap();
        let registry = Registry::new();
        server.bind_telemetry(&registry);
        let handle = server.spawn(listener).unwrap();
        let mut reader = handle.memory().reader();
        let mut conn = t.connect("ism-telemetry").unwrap();
        hello(&mut conn, 3);
        conn.send(&batch(3, 0..12).encode()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut total = 0;
        while total < 12 && Instant::now() < deadline {
            let (recs, _) = reader.poll().unwrap();
            total += recs.len();
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(total, 12);
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("brisk_ism_records_in_total"), 12);
        assert_eq!(snap.counter_total("brisk_ism_records_out_total"), 12);
        assert!(
            snap.counter_labeled("brisk_net_frames_total", &[("role", "ism"), ("dir", "in")])
                .unwrap()
                >= 2,
            "Hello + EventBatch frames metered"
        );
        assert!(
            snap.counter_labeled("brisk_net_bytes_total", &[("role", "ism"), ("dir", "in")])
                .unwrap()
                > 0
        );
        assert_eq!(snap.gauge("brisk_ism_manager_queue_depth"), Some(0));
        drop(conn);
        handle.stop().unwrap();
    }

    #[test]
    fn works_over_real_tcp() {
        let t = TcpTransport;
        let listener = t.listen("127.0.0.1:0").unwrap();
        let server = IsmServer::new(
            IsmConfig::default(),
            SyncConfig::default(),
            Arc::new(SystemClock),
        )
        .unwrap();
        let handle = server.spawn(listener).unwrap();
        let mut reader = handle.memory().reader();
        let mut conn = t.connect(handle.addr()).unwrap();
        hello(&mut conn, 7);
        conn.send(&batch(7, 0..20).encode()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut total = 0;
        while total < 20 && Instant::now() < deadline {
            let (recs, _) = reader.poll().unwrap();
            total += recs.len();
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(total, 20);
        handle.stop().unwrap();
    }
}
