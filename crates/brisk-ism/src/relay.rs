//! The upstream export plane: what makes an ISM a *relay*.
//!
//! A relay ISM accepts N downstream EXS (or relay) connections through
//! the ordinary session plane, merges and repairs their streams through
//! the [`crate::merge::MergePlane`], and then — instead of delivering to
//! local sinks — re-exports the merged stream to a parent ISM *as if it
//! were a single EXS*. The [`UpstreamExporter`] here is that synthetic
//! EXS: it speaks the same v3 Hello/EventBatch/BatchAck/credit protocol,
//! keeps its own bounded retransmit window, replays unacked batches
//! across reconnects, answers the parent's sync polls, and heartbeats on
//! idle links so the parent's liveness sweep never falsely evicts a
//! quiet subtree.
//!
//! Namespacing: every record is rewritten through the relay's
//! [`NodePrefix`] before it leaves (node id plus CRE reason/conseq
//! correlation ids, see [`brisk_proto::namespace`]), and the relay
//! introduces itself upstream as [`NodePrefix::relay_node`] — the bare
//! prefix value, which is disjoint from every rewritten subtree id. The
//! parent therefore sees one EXS-like peer whose batches happen to carry
//! many (namespaced) node ids, which the protocol permits: the batch
//! *header* node is what the spoof check validates, per-record ids are
//! the payload.
//!
//! Backpressure composes across tiers through [`MergeOutput::ready`]:
//! with the upstream link down or its credit spent, the exporter reports
//! not-ready, the merge plane parks records in the sorter's bounded
//! window, the session plane's queue bound fills, downstream reads
//! defer, and downstream credit dries up.

use crate::merge::MergeOutput;
use brisk_clock::{Clock, CorrectedClock};
use brisk_core::{EventRecord, Result, UtcMicros};
use brisk_lis::batch::{Batcher, SendWindow};
use brisk_net::Connection;
use brisk_proto::{Message, NodePrefix};
use brisk_telemetry::{Histogram, Registry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Factory for upstream connections, invoked on every (re)connect.
pub type ConnectFn = Box<dyn Fn() -> Result<Box<dyn Connection>> + Send>;

/// Undecodable inbound control frames tolerated per connection before it
/// is declared broken (mirrors the EXS-side budget).
const CONTROL_ERROR_BUDGET: u32 = 8;

/// Knobs of one relay's upstream link.
#[derive(Clone, Debug)]
pub struct RelayConfig {
    /// This relay's namespace prefix; also its upstream identity
    /// ([`NodePrefix::relay_node`]).
    pub prefix: NodePrefix,
    /// Flush an upstream batch once it holds this many records.
    pub max_batch_records: usize,
    /// Flush once the encoded size reaches this many bytes.
    pub max_batch_bytes: usize,
    /// Flush a non-empty partial batch after this long (latency knob —
    /// every relay tier adds at most this much batching delay).
    pub flush_timeout: Duration,
    /// Sent-but-unacked batches kept for replay across reconnects. A
    /// full window evicts the oldest unacked batch (counted) rather than
    /// blocking the relay.
    pub window_batches: usize,
    /// Heartbeat the upstream once the link has been send-idle this long
    /// (v3 links only; zero disables). This is also what keeps the
    /// parent's `--node-timeout` sweep from evicting a subtree that is
    /// merely quiet: the relay synthesizes its subtree's liveness.
    pub heartbeat_interval: Duration,
    /// First reconnect delay after a link failure.
    pub reconnect_initial: Duration,
    /// Reconnect delay cap (doubling backoff in between).
    pub reconnect_max: Duration,
}

impl RelayConfig {
    /// Defaults for the given prefix.
    pub fn new(prefix: NodePrefix) -> Self {
        RelayConfig {
            prefix,
            max_batch_records: 256,
            max_batch_bytes: 60 * 1024,
            flush_timeout: Duration::from_millis(5),
            window_batches: 1024,
            heartbeat_interval: Duration::from_millis(500),
            reconnect_initial: Duration::from_millis(20),
            reconnect_max: Duration::from_secs(2),
        }
    }
}

/// Counters of one upstream exporter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelayStats {
    /// Upstream connections established (including reconnects).
    pub connects: u64,
    /// `HelloAck`s received (connections the parent actually answered).
    pub hello_acks: u64,
    /// Batches shipped upstream (first transmissions).
    pub batches_exported: u64,
    /// Records shipped upstream (first transmissions).
    pub records_exported: u64,
    /// Batches replayed from the window after a reconnect.
    pub batches_retransmitted: u64,
    /// Cumulative `BatchAck`s received.
    pub acks_received: u64,
    /// Heartbeats sent on idle links.
    pub heartbeats_sent: u64,
    /// Unacked batches evicted from a full window (lost to replay).
    pub window_evicted: u64,
    /// Records dropped because the prefix rewrite overflowed (tree too
    /// deep for the id width).
    pub rewrite_errors: u64,
    /// Inbound control frames that failed to decode and were skipped.
    pub decode_errors: u64,
    /// Clock adjustments applied from upstream `SyncAdjust`s.
    pub adjustments: u64,
    /// Release pauses because the upstream credit budget was spent
    /// (stall leading edges, not per-tick).
    pub credit_stalls: u64,
}

/// Shared atomic backing for [`RelayStats`] plus the link gauges, so a
/// telemetry registry (and tests) can observe a live exporter from
/// another thread without locking.
#[derive(Debug, Default)]
pub struct RelayTelemetry {
    connects: AtomicU64,
    hello_acks: AtomicU64,
    batches_exported: AtomicU64,
    records_exported: AtomicU64,
    batches_retransmitted: AtomicU64,
    acks_received: AtomicU64,
    heartbeats_sent: AtomicU64,
    window_evicted: AtomicU64,
    rewrite_errors: AtomicU64,
    decode_errors: AtomicU64,
    adjustments: AtomicU64,
    credit_stalls: AtomicU64,
    /// 1 while the upstream link is connected.
    connected: AtomicU64,
    /// Current retransmit-window occupancy (batches).
    window_depth: AtomicU64,
    /// Granted credit minus unacked in-flight records (0 while credit is
    /// off).
    credit_balance: AtomicI64,
    /// Batch ship → cumulative ack covering it, in µs (the per-tier
    /// relay delivery latency).
    ack_latency_us: Arc<Histogram>,
}

impl RelayTelemetry {
    /// Materialize the plain [`RelayStats`] view.
    pub fn stats(&self) -> RelayStats {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        RelayStats {
            connects: ld(&self.connects),
            hello_acks: ld(&self.hello_acks),
            batches_exported: ld(&self.batches_exported),
            records_exported: ld(&self.records_exported),
            batches_retransmitted: ld(&self.batches_retransmitted),
            acks_received: ld(&self.acks_received),
            heartbeats_sent: ld(&self.heartbeats_sent),
            window_evicted: ld(&self.window_evicted),
            rewrite_errors: ld(&self.rewrite_errors),
            decode_errors: ld(&self.decode_errors),
            adjustments: ld(&self.adjustments),
            credit_stalls: ld(&self.credit_stalls),
        }
    }

    /// True while the upstream link is up.
    pub fn connected(&self) -> bool {
        self.connected.load(Ordering::Relaxed) == 1
    }

    /// The ship→ack latency histogram.
    pub fn ack_latency_us(&self) -> &Histogram {
        &self.ack_latency_us
    }

    /// Register every relay series with `registry`, labeled by prefix.
    pub fn bind(self: &Arc<Self>, prefix: NodePrefix, registry: &Registry) {
        type Field = fn(&RelayTelemetry) -> &AtomicU64;
        let p = prefix.raw().to_string();
        let counters: [(&str, &str, Field); 12] = [
            (
                "brisk_relay_connects_total",
                "Upstream connections established (including reconnects)",
                |t| &t.connects,
            ),
            (
                "brisk_relay_hello_acks_total",
                "HelloAcks received from the upstream ISM",
                |t| &t.hello_acks,
            ),
            (
                "brisk_relay_exported_batches_total",
                "Merged batches shipped upstream (first transmissions)",
                |t| &t.batches_exported,
            ),
            (
                "brisk_relay_exported_records_total",
                "Merged records shipped upstream (first transmissions)",
                |t| &t.records_exported,
            ),
            (
                "brisk_relay_retransmitted_batches_total",
                "Batches replayed from the retransmit window after reconnect",
                |t| &t.batches_retransmitted,
            ),
            (
                "brisk_relay_acks_total",
                "Batch acknowledgements received from the upstream ISM",
                |t| &t.acks_received,
            ),
            (
                "brisk_relay_heartbeats_total",
                "Liveness heartbeats sent upstream on idle links",
                |t| &t.heartbeats_sent,
            ),
            (
                "brisk_relay_window_evicted_total",
                "Unacked batches evicted from a full retransmit window",
                |t| &t.window_evicted,
            ),
            (
                "brisk_relay_rewrite_errors_total",
                "Records dropped because the namespace rewrite overflowed",
                |t| &t.rewrite_errors,
            ),
            (
                "brisk_relay_decode_errors_total",
                "Inbound upstream control frames that failed to decode",
                |t| &t.decode_errors,
            ),
            (
                "brisk_relay_adjustments_total",
                "Clock adjustments applied from upstream sync rounds",
                |t| &t.adjustments,
            ),
            (
                "brisk_relay_credit_stalls_total",
                "Release pauses because the upstream credit budget was spent",
                |t| &t.credit_stalls,
            ),
        ];
        for (name, help, get) in counters {
            let me = Arc::clone(self);
            registry.counter_fn(name, help, &[("prefix", &p)], move || {
                get(&me).load(Ordering::Relaxed)
            });
        }
        let me = Arc::clone(self);
        registry.gauge_fn(
            "brisk_relay_upstream_connected",
            "1 while the upstream link is established",
            &[("prefix", &p)],
            move || me.connected.load(Ordering::Relaxed) as i64,
        );
        let me = Arc::clone(self);
        registry.gauge_fn(
            "brisk_relay_window_depth",
            "Sent-but-unacked upstream batches held for replay",
            &[("prefix", &p)],
            move || me.window_depth.load(Ordering::Relaxed) as i64,
        );
        let me = Arc::clone(self);
        registry.gauge_fn(
            "brisk_relay_upstream_credit",
            "Granted upstream credit minus unacked in-flight records",
            &[("prefix", &p)],
            move || me.credit_balance.load(Ordering::Relaxed),
        );
        registry.register_histogram(
            "brisk_relay_ack_latency_us",
            "Upstream batch ship to cumulative ack latency",
            &[("prefix", &p)],
            &self.ack_latency_us,
        );
    }
}

/// The relay's synthetic EXS: batches the merged stream, ships it to the
/// parent ISM under the relay's own node id, and maintains exactly-once
/// delivery (send window + replay + the parent's `(node, seq)` dedup)
/// across link failures.
pub struct UpstreamExporter {
    cfg: RelayConfig,
    connect: ConnectFn,
    conn: Option<Box<dyn Connection>>,
    batcher: Batcher,
    /// Survives reconnects: unacked batches replay on the next link.
    window: SendWindow,
    /// Absolute in-flight budget the parent re-advertises on every ack;
    /// `None` = no flow control.
    credit: Option<u64>,
    /// Version from the parent's `HelloAck`; gates heartbeats (v3 tag).
    negotiated: Option<u32>,
    /// The relay's correction clock, when the parent's sync rounds
    /// should steer this tier (SyncPoll/SyncAdjust handling).
    sync_clock: Option<Arc<CorrectedClock<Arc<dyn Clock>>>>,
    /// Reconnect pacing.
    backoff: Duration,
    next_attempt: Instant,
    /// Heartbeat pacing: wall time of the last frame sent upstream.
    last_send: Instant,
    /// Ship time per windowed seq, for the ack-latency histogram.
    inflight: VecDeque<(u64, Instant)>,
    control_errors: u32,
    credit_stalled: bool,
    shared: Arc<RelayTelemetry>,
}

impl UpstreamExporter {
    /// New exporter. Nothing is connected yet; the first
    /// [`MergeOutput::pump`] dials upstream.
    pub fn new(cfg: RelayConfig, connect: ConnectFn) -> Self {
        let synth = brisk_core::ExsConfig {
            max_batch_records: cfg.max_batch_records,
            max_batch_bytes: cfg.max_batch_bytes,
            flush_timeout: cfg.flush_timeout,
            ..brisk_core::ExsConfig::default()
        };
        UpstreamExporter {
            conn: None,
            batcher: Batcher::new(synth),
            window: SendWindow::new(cfg.window_batches),
            credit: None,
            negotiated: None,
            sync_clock: None,
            backoff: cfg.reconnect_initial,
            next_attempt: Instant::now(),
            last_send: Instant::now(),
            inflight: VecDeque::new(),
            control_errors: 0,
            credit_stalled: false,
            shared: Arc::default(),
            cfg,
            connect,
        }
    }

    /// Let the parent's sync rounds steer this relay's correction clock:
    /// `SyncPoll`s answer with this clock's corrected time, and
    /// `SyncAdjust`s shift its correction value. Without this the
    /// exporter answers polls with the time the merge plane hands it and
    /// drops adjustments.
    pub fn with_sync_clock(mut self, clock: Arc<CorrectedClock<Arc<dyn Clock>>>) -> Self {
        self.sync_clock = Some(clock);
        self
    }

    /// This relay's namespace prefix.
    pub fn prefix(&self) -> NodePrefix {
        self.cfg.prefix
    }

    /// Counters so far.
    pub fn stats(&self) -> RelayStats {
        self.shared.stats()
    }

    /// The shared telemetry backing (clone the `Arc` to observe from
    /// another thread).
    pub fn telemetry(&self) -> &Arc<RelayTelemetry> {
        &self.shared
    }

    /// Register this exporter's series with a telemetry registry.
    pub fn bind_telemetry(&self, registry: &Registry) {
        self.shared.bind(self.cfg.prefix, registry);
    }

    /// True while the upstream link is established.
    pub fn connected(&self) -> bool {
        self.conn.is_some()
    }

    /// The credit budget currently granted by the parent, if any.
    pub fn credit(&self) -> Option<u64> {
        self.credit
    }

    /// Sent-but-unacked batches currently held for replay.
    pub fn window_depth(&self) -> usize {
        self.window.depth()
    }

    /// True when flow control permits putting more records in flight:
    /// credit off, or unacked records under budget. An empty window
    /// always passes (progress guarantee — a zero grant can never
    /// deadlock the tier).
    fn credit_open(&self) -> bool {
        match self.credit {
            Some(c) => self.window.depth() == 0 || self.window.unacked_records() < c,
            None => true,
        }
    }

    fn mirror_gauges(&self) {
        self.shared
            .window_depth
            .store(self.window.depth() as u64, Ordering::Relaxed);
        let bal = match self.credit {
            Some(c) => c as i64 - self.window.unacked_records() as i64,
            None => 0,
        };
        self.shared.credit_balance.store(bal, Ordering::Relaxed);
        self.shared
            .connected
            .store(self.conn.is_some() as u64, Ordering::Relaxed);
    }

    /// Drop the link and schedule a retry (doubling backoff). The window
    /// keeps every unacked batch for replay on the next incarnation.
    fn mark_disconnected(&mut self, why: &str) {
        if self.conn.take().is_some() {
            brisk_telemetry::flight_log!(
                Warn,
                "relay.upstream",
                "disconnect",
                "prefix {} lost its upstream link ({why}); {} unacked batches held for replay",
                self.cfg.prefix.raw(),
                self.window.depth()
            );
        }
        self.negotiated = None;
        self.control_errors = 0;
        self.next_attempt = Instant::now() + self.backoff;
        self.backoff = (self.backoff * 2).min(self.cfg.reconnect_max);
    }

    /// Dial upstream if the link is down and the backoff has elapsed:
    /// send `Hello` as the relay's own node and immediately replay every
    /// unacked batch (the parent deduplicates, so replaying batches it
    /// already processed is harmless).
    fn ensure_connected(&mut self) {
        if self.conn.is_some() || Instant::now() < self.next_attempt {
            return;
        }
        let mut conn = match (self.connect)() {
            Ok(conn) => conn,
            Err(_) => {
                self.next_attempt = Instant::now() + self.backoff;
                self.backoff = (self.backoff * 2).min(self.cfg.reconnect_max);
                return;
            }
        };
        let hello = Message::Hello {
            node: self.cfg.prefix.relay_node(),
            version: brisk_proto::VERSION,
        };
        if conn.send(&hello.encode()).is_err() {
            self.next_attempt = Instant::now() + self.backoff;
            self.backoff = (self.backoff * 2).min(self.cfg.reconnect_max);
            return;
        }
        self.conn = Some(conn);
        self.last_send = Instant::now();
        self.shared.connects.fetch_add(1, Ordering::Relaxed);
        brisk_telemetry::flight_log!(
            Info,
            "relay.upstream",
            "connect",
            "prefix {} connected upstream; replaying {} unacked batches",
            self.cfg.prefix.raw(),
            self.window.depth()
        );
        self.replay_unacked();
    }

    /// Replay every unacked batch in sequence order, ahead of new
    /// traffic. Replay deliberately ignores credit: those records were
    /// already granted in flight by the previous connection.
    fn replay_unacked(&mut self) {
        let frames: Vec<Vec<u8>> = self
            .window
            .iter_unacked()
            .map(|(seq, records)| {
                Message::EventBatch {
                    node: self.cfg.prefix.relay_node(),
                    seq: Some(seq),
                    records: records.clone(),
                }
                .encode()
            })
            .collect();
        let n = frames.len() as u64;
        for frame in frames {
            if let Some(conn) = &mut self.conn {
                if conn.send(&frame).is_err() {
                    self.mark_disconnected("send failed during replay");
                    return;
                }
            }
        }
        self.shared
            .batches_retransmitted
            .fetch_add(n, Ordering::Relaxed);
        self.last_send = Instant::now();
    }

    /// Window a fresh batch and ship it. On a dead link the batch simply
    /// stays windowed; the next reconnect's replay delivers it.
    fn ship(&mut self, records: Vec<EventRecord>) {
        let n = records.len() as u64;
        let frame_records = records.clone();
        let (seq, evicted) = self.window.push(records);
        if evicted.is_some() {
            self.shared.window_evicted.fetch_add(1, Ordering::Relaxed);
            brisk_telemetry::flight_log!(
                Warn,
                "relay.upstream",
                "window_evict",
                "prefix {} evicted an unacked batch from a full window (size {})",
                self.cfg.prefix.raw(),
                self.cfg.window_batches
            );
        }
        self.inflight.push_back((seq, Instant::now()));
        if let Some(conn) = &mut self.conn {
            let frame = Message::EventBatch {
                node: self.cfg.prefix.relay_node(),
                seq: Some(seq),
                records: frame_records,
            }
            .encode();
            if conn.send(&frame).is_err() {
                self.mark_disconnected("send failed");
            } else {
                self.last_send = Instant::now();
                self.shared.batches_exported.fetch_add(1, Ordering::Relaxed);
                self.shared.records_exported.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Drain and answer the parent's control traffic without blocking.
    fn poll_control(&mut self, now: UtcMicros) {
        loop {
            let Some(conn) = &mut self.conn else { return };
            match conn.recv(Some(Duration::ZERO)) {
                Ok(Some(frame)) => match Message::decode(&frame) {
                    Ok(msg) => {
                        if !self.handle_control(msg, now) {
                            return;
                        }
                    }
                    Err(_) => {
                        self.shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                        self.control_errors += 1;
                        if self.control_errors > CONTROL_ERROR_BUDGET {
                            self.mark_disconnected("control decode budget exhausted");
                            return;
                        }
                    }
                },
                Ok(None) => return,
                Err(_) => {
                    self.mark_disconnected("recv failed");
                    return;
                }
            }
        }
    }

    /// Handle one decoded upstream message. Returns `false` when the
    /// link died while handling it.
    fn handle_control(&mut self, msg: Message, now: UtcMicros) -> bool {
        match msg {
            Message::HelloAck { version, credit } => {
                self.negotiated = Some(version);
                // Authoritative for the connection's flow control.
                self.credit = credit;
                self.backoff = self.cfg.reconnect_initial;
                // Idle time before negotiation completed doesn't count
                // toward the heartbeat deadline — the parent only expects
                // heartbeats once it has granted v3.
                self.last_send = Instant::now();
                self.shared.hello_acks.fetch_add(1, Ordering::Relaxed);
                brisk_telemetry::flight_log!(
                    Info,
                    "relay.upstream",
                    "hello_ack",
                    "prefix {} upstream negotiated v{version}, credit {credit:?}",
                    self.cfg.prefix.raw()
                );
                if version < 2 {
                    // The parent will never ack: the window would hold
                    // batches forever and exactly-once degrades to
                    // fire-and-forget. Surface it loudly.
                    brisk_telemetry::flight_log!(
                        Warn,
                        "relay.upstream",
                        "v1_upstream",
                        "prefix {} upstream speaks v1: no acks, relay delivery degrades to at-most-once",
                        self.cfg.prefix.raw()
                    );
                }
                true
            }
            Message::BatchAck { seq, credit } => {
                self.window.ack(seq);
                while let Some(&(s, sent)) = self.inflight.front() {
                    if s > seq {
                        break;
                    }
                    self.shared
                        .ack_latency_us
                        .record(sent.elapsed().as_micros() as u64);
                    self.inflight.pop_front();
                }
                if credit.is_some() {
                    self.credit = credit;
                }
                self.shared.acks_received.fetch_add(1, Ordering::Relaxed);
                true
            }
            Message::SyncPoll {
                round,
                sample,
                master_send,
            } => {
                let slave_time = match &self.sync_clock {
                    Some(c) => c.now(),
                    None => now,
                };
                let reply = Message::SyncReply {
                    round,
                    sample,
                    master_send,
                    slave_time,
                };
                if let Some(conn) = &mut self.conn {
                    if conn.send(&reply.encode()).is_err() {
                        self.mark_disconnected("send failed answering sync poll");
                        return false;
                    }
                    self.last_send = Instant::now();
                }
                true
            }
            Message::SyncAdjust { advance_us, .. } => {
                if let Some(c) = &self.sync_clock {
                    c.adjust(advance_us);
                    self.shared.adjustments.fetch_add(1, Ordering::Relaxed);
                }
                true
            }
            Message::Shutdown => {
                // The parent is retiring this link (eviction, restart).
                // Treat it like any disconnect: back off and redial.
                self.mark_disconnected("upstream sent Shutdown");
                false
            }
            // Anything else (a Hello, a batch) is nonsense on an
            // upstream link; count it against the error budget.
            _ => {
                self.shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                self.control_errors += 1;
                if self.control_errors > CONTROL_ERROR_BUDGET {
                    self.mark_disconnected("unexpected upstream traffic");
                    return false;
                }
                true
            }
        }
    }

    /// Heartbeat an idle v3 link so the parent's liveness sweep sees the
    /// subtree as alive even when no records flow.
    fn maybe_heartbeat(&mut self) {
        if self.cfg.heartbeat_interval.is_zero()
            || self.negotiated.is_none_or(|v| v < 3)
            || self.conn.is_none()
        {
            return;
        }
        if self.last_send.elapsed() >= self.cfg.heartbeat_interval {
            if let Some(conn) = &mut self.conn {
                if conn.send(&Message::Heartbeat.encode()).is_err() {
                    self.mark_disconnected("send failed on heartbeat");
                    return;
                }
            }
            self.last_send = Instant::now();
            self.shared.heartbeats_sent.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl MergeOutput for UpstreamExporter {
    /// Rewrite one merged record into this relay's namespace and batch
    /// it for upstream shipment. A record whose ids cannot be rewritten
    /// (tree deeper than the id width) is counted and dropped rather
    /// than poisoning the pipeline.
    fn on_record(&mut self, mut rec: EventRecord, now: UtcMicros) -> Result<()> {
        if self.cfg.prefix.rewrite_record(&mut rec).is_err() {
            self.shared.rewrite_errors.fetch_add(1, Ordering::Relaxed);
            brisk_telemetry::flight_log!(
                Warn,
                "relay.upstream",
                "rewrite_overflow",
                "prefix {} dropped a record whose ids overflow the namespace (node {})",
                self.cfg.prefix.raw(),
                rec.node
            );
            return Ok(());
        }
        if let Some((batch, _reason)) = self.batcher.push(rec, now) {
            self.ship(batch);
        }
        Ok(())
    }

    /// Ready while the link is up and credit permits more in-flight
    /// records. Not-ready parks releases in the merge plane's sorter —
    /// tier-by-tier backpressure instead of an unbounded queue here.
    fn ready(&self) -> bool {
        self.conn.is_some() && self.credit_open()
    }

    /// Per-tick housekeeping: reconnect, answer control traffic, flush
    /// the latency knob, heartbeat, refresh gauges.
    fn pump(&mut self, now: UtcMicros) -> Result<()> {
        self.ensure_connected();
        self.poll_control(now);
        if let Some((batch, _reason)) = self.batcher.poll_timeout(now) {
            self.ship(batch);
        }
        self.maybe_heartbeat();
        let open = self.credit_open();
        if !open && !self.credit_stalled {
            self.credit_stalled = true;
            self.shared.credit_stalls.fetch_add(1, Ordering::Relaxed);
            brisk_telemetry::flight_log!(
                Warn,
                "relay.upstream",
                "credit_stall",
                "prefix {} pausing releases: upstream credit budget {:?} spent",
                self.cfg.prefix.raw(),
                self.credit
            );
        } else if open {
            self.credit_stalled = false;
        }
        self.mirror_gauges();
        Ok(())
    }

    /// Shutdown path: ship the final partial batch, then wait briefly
    /// for the parent's acks to drain the window so an orderly stop
    /// leaves nothing only-locally-buffered.
    fn flush(&mut self) -> Result<()> {
        if let Some((batch, _reason)) = self.batcher.flush() {
            self.ship(batch);
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.window.depth() > 0 && self.conn.is_some() && Instant::now() < deadline {
            let Some(conn) = &mut self.conn else { break };
            match conn.recv(Some(Duration::from_millis(20))) {
                Ok(Some(frame)) => {
                    if let Ok(msg) = Message::decode(&frame) {
                        self.handle_control(msg, UtcMicros::MAX);
                    }
                }
                Ok(None) => {}
                Err(_) => {
                    self.mark_disconnected("recv failed during final drain");
                    break;
                }
            }
        }
        if self.window.depth() > 0 {
            brisk_telemetry::flight_log!(
                Warn,
                "relay.upstream",
                "unacked_at_stop",
                "prefix {} stopping with {} unacked upstream batches",
                self.cfg.prefix.raw(),
                self.window.depth()
            );
        }
        self.mirror_gauges();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_core::{EventTypeId, NodeId, SensorId, Value};
    use brisk_net::{Listener, MemTransport, Transport};
    use brisk_proto::VERSION;

    fn rec(node: u32, seq: u64, ts: i64) -> EventRecord {
        EventRecord::new(
            NodeId(node),
            SensorId(0),
            EventTypeId(1),
            seq,
            UtcMicros::from_micros(ts),
            vec![Value::U64(seq)],
        )
        .unwrap()
    }

    fn exporter(t: &Arc<MemTransport>, name: &'static str, cfg: RelayConfig) -> UpstreamExporter {
        let t = Arc::clone(t);
        UpstreamExporter::new(cfg, Box::new(move || t.connect(name)))
    }

    fn accept(l: &mut Box<dyn Listener>) -> Box<dyn Connection> {
        l.accept(Some(Duration::from_secs(1)))
            .unwrap()
            .expect("exporter must dial")
    }

    fn recv_msg(c: &mut Box<dyn Connection>) -> Message {
        let frame = c
            .recv(Some(Duration::from_secs(1)))
            .unwrap()
            .expect("frame expected");
        Message::decode(&frame).unwrap()
    }

    #[test]
    fn ships_rewritten_batches_and_replays_across_reconnect() {
        let t = MemTransport::new();
        let mut listener = t.listen("up").unwrap();
        let mut cfg = RelayConfig::new(NodePrefix::new(7).unwrap());
        cfg.max_batch_records = 2;
        cfg.reconnect_initial = Duration::from_millis(1);
        let mut ex = exporter(&t, "up", cfg);
        let now = UtcMicros::from_micros(1_000);

        assert!(!ex.ready(), "no link yet");
        ex.pump(now).unwrap();
        let mut server = accept(&mut listener);
        match recv_msg(&mut server) {
            Message::Hello { node, version } => {
                assert_eq!(node, NodeId(7), "relay introduces itself as its prefix");
                assert_eq!(version, VERSION);
            }
            other => panic!("expected Hello, got {other:?}"),
        }
        server
            .send(
                &Message::HelloAck {
                    version: VERSION,
                    credit: None,
                }
                .encode(),
            )
            .unwrap();
        ex.pump(now).unwrap();
        assert!(ex.ready());

        // Two records trip the record knob: one batch ships, rewritten.
        ex.on_record(rec(3, 0, 100), now).unwrap();
        ex.on_record(rec(4, 1, 200), now).unwrap();
        match recv_msg(&mut server) {
            Message::EventBatch { node, seq, records } => {
                assert_eq!(node, NodeId(7), "header node is the relay itself");
                assert_eq!(seq, Some(1));
                assert_eq!(records[0].node, NodeId((3 << 8) | 7));
                assert_eq!(records[1].node, NodeId((4 << 8) | 7));
            }
            other => panic!("expected EventBatch, got {other:?}"),
        }
        assert_eq!(ex.window_depth(), 1, "unacked batch stays windowed");

        // Kill the link without acking: the exporter must notice, back
        // off, redial, and replay the unacked batch.
        drop(server);
        ex.pump(now).unwrap();
        assert!(!ex.connected(), "dead link detected");
        std::thread::sleep(Duration::from_millis(5));
        ex.pump(now).unwrap();
        let mut server = accept(&mut listener);
        match recv_msg(&mut server) {
            Message::Hello { node, .. } => assert_eq!(node, NodeId(7)),
            other => panic!("expected Hello, got {other:?}"),
        }
        match recv_msg(&mut server) {
            Message::EventBatch { seq, records, .. } => {
                assert_eq!(seq, Some(1), "same sequence number on replay");
                assert_eq!(records.len(), 2);
            }
            other => panic!("expected replayed EventBatch, got {other:?}"),
        }
        server
            .send(
                &Message::BatchAck {
                    seq: 1,
                    credit: None,
                }
                .encode(),
            )
            .unwrap();
        ex.pump(now).unwrap();
        assert_eq!(ex.window_depth(), 0, "cumulative ack releases the window");
        let stats = ex.stats();
        assert_eq!(stats.connects, 2);
        assert_eq!(stats.batches_exported, 1);
        assert_eq!(stats.records_exported, 2);
        assert_eq!(stats.batches_retransmitted, 1);
        assert_eq!(stats.acks_received, 1);
    }

    #[test]
    fn credit_exhaustion_gates_ready_until_acked() {
        let t = MemTransport::new();
        let mut listener = t.listen("credit").unwrap();
        let mut cfg = RelayConfig::new(NodePrefix::new(9).unwrap());
        cfg.max_batch_records = 1;
        let mut ex = exporter(&t, "credit", cfg);
        let now = UtcMicros::from_micros(1_000);
        ex.pump(now).unwrap();
        let mut server = accept(&mut listener);
        let _hello = recv_msg(&mut server);
        server
            .send(
                &Message::HelloAck {
                    version: VERSION,
                    credit: Some(1),
                }
                .encode(),
            )
            .unwrap();
        ex.pump(now).unwrap();
        assert!(ex.ready(), "an empty window always passes");
        ex.on_record(rec(1, 0, 100), now).unwrap();
        let _batch = recv_msg(&mut server);
        ex.pump(now).unwrap();
        assert!(!ex.ready(), "budget of 1 spent by the in-flight record");
        assert!(ex.stats().credit_stalls >= 1);
        server
            .send(
                &Message::BatchAck {
                    seq: 1,
                    credit: Some(1),
                }
                .encode(),
            )
            .unwrap();
        ex.pump(now).unwrap();
        assert!(ex.ready(), "ack replenishes the budget");
    }

    #[test]
    fn idle_v3_link_heartbeats() {
        let t = MemTransport::new();
        let mut listener = t.listen("hb").unwrap();
        let mut cfg = RelayConfig::new(NodePrefix::new(2).unwrap());
        cfg.heartbeat_interval = Duration::from_millis(10);
        let mut ex = exporter(&t, "hb", cfg);
        let now = UtcMicros::from_micros(1_000);
        ex.pump(now).unwrap();
        let mut server = accept(&mut listener);
        let _hello = recv_msg(&mut server);
        // No HelloAck yet: idle time passes, no heartbeat (the peer may
        // not speak v3).
        std::thread::sleep(Duration::from_millis(15));
        ex.pump(now).unwrap();
        assert_eq!(ex.stats().heartbeats_sent, 0);
        server
            .send(
                &Message::HelloAck {
                    version: 3,
                    credit: None,
                }
                .encode(),
            )
            .unwrap();
        ex.pump(now).unwrap();
        std::thread::sleep(Duration::from_millis(15));
        ex.pump(now).unwrap();
        assert_eq!(ex.stats().heartbeats_sent, 1);
        match recv_msg(&mut server) {
            Message::Heartbeat => {}
            other => panic!("expected Heartbeat, got {other:?}"),
        }
    }

    #[test]
    fn flush_waits_for_the_final_ack() {
        let t = MemTransport::new();
        let mut listener = t.listen("flush").unwrap();
        let cfg = RelayConfig::new(NodePrefix::new(5).unwrap());
        let mut ex = exporter(&t, "flush", cfg);
        let now = UtcMicros::from_micros(1_000);
        ex.pump(now).unwrap();
        let mut server = accept(&mut listener);
        let _hello = recv_msg(&mut server);
        server
            .send(
                &Message::HelloAck {
                    version: VERSION,
                    credit: None,
                }
                .encode(),
            )
            .unwrap();
        ex.pump(now).unwrap();
        // A partial batch sits in the batcher; flush must ship it and
        // wait for the ack.
        ex.on_record(rec(1, 0, 100), now).unwrap();
        assert_eq!(ex.window_depth(), 0, "partial batch not yet shipped");
        let acker = std::thread::spawn(move || {
            match recv_msg(&mut server) {
                Message::EventBatch { seq, records, .. } => {
                    assert_eq!(seq, Some(1));
                    assert_eq!(records[0].node, NodeId((1 << 8) | 5));
                }
                other => panic!("expected final batch, got {other:?}"),
            }
            server
                .send(
                    &Message::BatchAck {
                        seq: 1,
                        credit: None,
                    }
                    .encode(),
                )
                .unwrap();
        });
        ex.flush().unwrap();
        assert_eq!(ex.window_depth(), 0, "final batch acked before stop");
        acker.join().unwrap();
    }

    #[test]
    fn sync_poll_is_answered_and_adjust_steers_the_clock() {
        use brisk_clock::SystemClock;
        let t = MemTransport::new();
        let mut listener = t.listen("sync").unwrap();
        let cfg = RelayConfig::new(NodePrefix::new(4).unwrap());
        let raw: Arc<dyn Clock> = Arc::new(SystemClock);
        let clock = CorrectedClock::new(raw);
        let mut ex = exporter(&t, "sync", cfg).with_sync_clock(Arc::clone(&clock));
        let now = UtcMicros::from_micros(1_000);
        ex.pump(now).unwrap();
        let mut server = accept(&mut listener);
        let _hello = recv_msg(&mut server);
        server
            .send(
                &Message::SyncPoll {
                    round: 1,
                    sample: 0,
                    master_send: UtcMicros::from_micros(500),
                }
                .encode(),
            )
            .unwrap();
        ex.pump(now).unwrap();
        match recv_msg(&mut server) {
            Message::SyncReply { round, sample, .. } => {
                assert_eq!((round, sample), (1, 0));
            }
            other => panic!("expected SyncReply, got {other:?}"),
        }
        server
            .send(
                &Message::SyncAdjust {
                    round: 1,
                    advance_us: 250,
                }
                .encode(),
            )
            .unwrap();
        ex.pump(now).unwrap();
        assert_eq!(clock.correction_us(), 250);
        assert_eq!(ex.stats().adjustments, 1);
    }
}
