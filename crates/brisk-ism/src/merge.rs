//! The merge plane: CRE switch → adaptive sorter → an output behind a
//! trait.
//!
//! PR 8 splits the old monolithic `IsmCore` in two. The *session plane*
//! (connections, protocol, credit, quarantine) already lives in the
//! reactor/server; what remained entangled was the *merge plane* — the
//! causality switch and the on-line sorter — with its delivery targets.
//! [`MergePlane`] owns the former and knows the latter only as a
//! `&mut dyn` [`MergeOutput`], so the very same merging/repairing logic
//! can feed
//!
//! * local sinks (memory buffer, durable store, PICL files) when the ISM
//!   is a leaf or the tree root, or
//! * an upstream exporter (`crate::relay::UpstreamExporter`) when the ISM
//!   is a *relay* re-exporting its merged subtree to a parent ISM.
//!
//! Backpressure composes through the trait: when an output reports
//! `!ready()` (upstream credit exhausted, link down), the plane stops
//! polling the sorter, records accumulate against the sorter's bounded
//! window, the session plane's queue bound fills, downstream reads defer,
//! and downstream credit dries up — tier by tier, with no unbounded
//! buffer anywhere.

use crate::cre::{CreMatcher, CreStats};
use crate::sorter::{OnlineSorter, OverloadPolicy, SorterStats};
use brisk_clock::Hlc;
use brisk_core::{
    EventRecord, HlcStamp, IsmConfig, NodeId, OrderMode, Result, TraceStage, UtcMicros,
};
use brisk_telemetry::{Counter, Gauge, Histogram, Registry};
use std::collections::HashMap;
use std::sync::Arc;

/// Where merged, repaired records go. Implemented by the local output
/// stage (leaf/root mode) and by the upstream exporter (relay mode).
pub trait MergeOutput: Send {
    /// Deliver one record released by the sorter. `now` is the pipeline's
    /// current synchronized time, or [`UtcMicros::MAX`] during the
    /// shutdown drain (when "now" is meaningless and latency samples
    /// would be garbage).
    fn on_record(&mut self, rec: EventRecord, now: UtcMicros) -> Result<()>;

    /// May the plane release more records right now? A relay returns
    /// `false` while its upstream link is down or out of credit, which
    /// parks released-eligible records in the sorter instead of growing
    /// an unbounded queue here.
    fn ready(&self) -> bool {
        true
    }

    /// Housekeeping hook driven once per plane tick *before* release:
    /// reconnects, ack processing, timed flushes, heartbeats.
    fn pump(&mut self, _now: UtcMicros) -> Result<()> {
        Ok(())
    }

    /// Flush everything buffered (shutdown path).
    fn flush(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Aggregate counters of one merge plane.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Records received in batches.
    pub records_in: u64,
    /// Records delivered to the output stage.
    pub records_out: u64,
    /// Batches received.
    pub batches_in: u64,
    /// Sequenced batches dropped as replays (seq ≤ last seen for the node).
    pub duplicate_batches: u64,
    /// Records inside those dropped replay batches.
    pub duplicate_records: u64,
}

/// Plane-owned telemetry. The plane runs on one thread (the manager), so
/// plain counters updated inline suffice; sorter and CRE internals are
/// exported by publishing stat deltas each tick rather than by threading
/// atomics through those components.
struct MergeTelemetry {
    records_in: Arc<Counter>,
    records_out: Arc<Counter>,
    batches_in: Arc<Counter>,
    duplicate_batches: Arc<Counter>,
    duplicate_records: Arc<Counter>,
    sorter_depth: Arc<Gauge>,
    sorter_frame_us: Arc<Gauge>,
    cre_held: Arc<Gauge>,
    tachyons_repaired: Arc<Counter>,
    last_tachyons: u64,
    shed: Arc<Counter>,
    last_shed: u64,
    ts_clamped: Arc<Counter>,
    last_ts_clamped: u64,
    extra_sync_suppressed: Arc<Counter>,
    last_suppressed: u64,
    causal_reorders: Arc<Counter>,
    hlc_divergence_us: Arc<Histogram>,
}

/// CRE switch + adaptive sorter + per-node dedup, decoupled from any
/// particular output.
pub struct MergePlane {
    cre: CreMatcher,
    sorter: OnlineSorter,
    order: OrderMode,
    /// The plane's own hybrid logical clock: merged with every received
    /// stamp (so downstream stamps dominate the whole subtree) and the
    /// source of stamps for records that arrive without one in causal
    /// mode.
    hlc: Arc<Hlc>,
    stats: MergeStats,
    extra_sync_pending: bool,
    /// Records delivered out of physical-timestamp order because the HLC
    /// order demanded it — the visible work causal mode does.
    causal_reorders: u64,
    /// Last delivered physical ts (causal-reorder detection).
    last_out_ts: Option<UtcMicros>,
    /// |HLC physical − ISM now| already above the flight-recorder alert
    /// threshold?
    flight_divergence_alerted: bool,
    /// Highest batch sequence number accepted per node (protocol v2).
    /// Replayed batches (seq ≤ the entry) are dropped here, which is what
    /// turns the wire's at-least-once delivery into exactly-once at the
    /// output. Lives in the plane — not the pump — so the memory survives
    /// the connection teardown/reconnect that triggers replays.
    last_seq: HashMap<NodeId, u64>,
    telemetry: Option<MergeTelemetry>,
    /// Sorter shed total already reported to the flight recorder.
    flight_last_shed: u64,
}

impl MergePlane {
    /// New plane from the sorter/CRE/flow sections of an [`IsmConfig`]
    /// (the config must already be validated by the caller).
    pub fn new(cfg: &IsmConfig) -> Result<Self> {
        let mut sorter = OnlineSorter::new(cfg.sorter.clone(), cfg.max_buffered_records)?;
        if cfg.flow.shed_unmarked {
            sorter.set_overload_policy(OverloadPolicy::ShedUnmarked);
        }
        sorter.set_order_mode(cfg.order_mode);
        let mut cre = CreMatcher::new(cfg.cre.clone())?;
        cre.set_order_mode(cfg.order_mode);
        Ok(MergePlane {
            cre,
            sorter,
            order: cfg.order_mode,
            hlc: Hlc::new(),
            stats: MergeStats::default(),
            extra_sync_pending: false,
            causal_reorders: 0,
            last_out_ts: None,
            flight_divergence_alerted: false,
            last_seq: HashMap::new(),
            telemetry: None,
            flight_last_shed: 0,
        })
    }

    /// Bind the plane's counters and gauges to `registry`. Gauges for the
    /// sorter window and CRE hold queue refresh on every [`Self::tick`].
    pub fn bind_telemetry(&mut self, registry: &Arc<Registry>) {
        self.hlc.bind_telemetry(registry, "ism");
        self.telemetry = Some(MergeTelemetry {
            records_in: registry.counter(
                "brisk_ism_records_in_total",
                "Records received by the ISM core",
            ),
            records_out: registry.counter(
                "brisk_ism_records_out_total",
                "Records delivered to the output stage",
            ),
            batches_in: registry.counter(
                "brisk_ism_batches_in_total",
                "Batches received by the ISM core",
            ),
            duplicate_batches: registry.counter(
                "brisk_ism_duplicate_batches_total",
                "Replayed batches dropped by sequence-number dedup",
            ),
            duplicate_records: registry.counter(
                "brisk_ism_duplicate_records_total",
                "Records inside replayed batches dropped by dedup",
            ),
            sorter_depth: registry.gauge(
                "brisk_ism_sorter_depth",
                "Records buffered in the on-line sorter window",
            ),
            sorter_frame_us: registry.gauge(
                "brisk_ism_sorter_frame_us",
                "Current adaptive sorter time frame T (us)",
            ),
            cre_held: registry.gauge(
                "brisk_ism_cre_held",
                "Consequence records currently held by the CRE switch",
            ),
            tachyons_repaired: registry.counter(
                "brisk_ism_tachyons_repaired_total",
                "Causality violations repaired by the CRE switch",
            ),
            last_tachyons: self.cre.stats().tachyons_repaired,
            shed: registry.counter(
                "brisk_ism_shed_total",
                "Unmarked records dropped by the overload-shedding policy",
            ),
            last_shed: self.sorter.stats().shed,
            ts_clamped: registry.counter(
                "brisk_ism_ts_clamped_total",
                "Non-monotone same-source records whose timestamp was clamped",
            ),
            last_ts_clamped: self.sorter.stats().ts_clamped,
            extra_sync_suppressed: registry.counter(
                "brisk_sync_extra_suppressed_total",
                "Extra sync requests suppressed by the token-bucket rate limit",
            ),
            last_suppressed: self.cre.stats().extra_syncs_suppressed,
            causal_reorders: registry.counter(
                "brisk_hlc_causal_reorders_total",
                "Records delivered out of physical-ts order because HLC order demanded it",
            ),
            hlc_divergence_us: registry.histogram(
                "brisk_hlc_divergence_us",
                "|X_HLC physical - ISM clock| at batch receive (us)",
            ),
        });
    }

    /// The plane's hybrid logical clock (merged with every received stamp).
    pub fn hlc(&self) -> &Arc<Hlc> {
        &self.hlc
    }

    /// Records delivered out of physical-ts order under causal ordering.
    pub fn causal_reorders(&self) -> u64 {
        self.causal_reorders
    }

    /// Aggregate counters.
    pub fn stats(&self) -> MergeStats {
        self.stats
    }

    /// Sorter counters (time frame, inversions, …).
    pub fn sorter_stats(&self) -> SorterStats {
        self.sorter.stats()
    }

    /// Current adaptive time frame `T` (µs).
    pub fn frame_us(&self) -> i64 {
        self.sorter.frame_us()
    }

    /// Records currently buffered in the sorter window.
    pub fn buffered(&self) -> usize {
        self.sorter.buffered()
    }

    /// CRE counters (tachyons repaired, held, …).
    pub fn cre_stats(&self) -> CreStats {
        self.cre.stats()
    }

    /// True exactly once after a tachyon repair requested an extra clock
    /// synchronization round (§3.6); the caller (server or simulator)
    /// translates this into an immediate round.
    pub fn take_extra_sync_request(&mut self) -> bool {
        std::mem::take(&mut self.extra_sync_pending)
    }

    /// Accept one *sequenced* batch (protocol v2), deduplicating by
    /// `(node, seq)`: a batch whose sequence number is not above the
    /// highest already accepted from `node` is a replay and is dropped
    /// (counted, not processed). Returns `true` if the batch was accepted,
    /// `false` if it was dropped as a duplicate — the caller should ack
    /// either way (a replay means our previous ack was lost with the old
    /// connection).
    ///
    /// `seq == None` is a v1 (unsequenced) batch: always accepted.
    pub fn push_batch_seq(
        &mut self,
        node: NodeId,
        seq: Option<u64>,
        records: Vec<EventRecord>,
        now: UtcMicros,
    ) -> Result<bool> {
        if let Some(seq) = seq {
            let last = self.last_seq.entry(node).or_insert(0);
            if seq <= *last {
                self.stats.duplicate_batches += 1;
                self.stats.duplicate_records += records.len() as u64;
                if let Some(t) = &self.telemetry {
                    t.duplicate_batches.inc();
                    t.duplicate_records.add(records.len() as u64);
                }
                return Ok(false);
            }
            *last = seq;
        }
        self.push_batch(records, now)?;
        Ok(true)
    }

    /// Accept one batch of records (already correction-adjusted by the
    /// EXS). `now` is the ISM's current time.
    pub fn push_batch(
        &mut self,
        records: impl IntoIterator<Item = EventRecord>,
        now: UtcMicros,
    ) -> Result<()> {
        self.stats.batches_in += 1;
        if let Some(t) = &self.telemetry {
            t.batches_in.inc();
        }
        // Observing a stamp is a set-max, which is associative: folding the
        // batch down to its max stamp and observing that once is equivalent
        // to observing every record, without taking the HLC lock per record.
        let mut batch_max: Option<HlcStamp> = None;
        let mut batch_max_logical = 0u32;
        for mut rec in records {
            self.stats.records_in += 1;
            if let Some(t) = &self.telemetry {
                t.records_in.inc();
            }
            if self.order == OrderMode::Causal {
                let stamp = self.merge_hlc(&mut rec, now);
                batch_max = Some(batch_max.map_or(stamp, |m| m.max(stamp)));
                batch_max_logical = batch_max_logical.max(stamp.logical);
            }
            let out = self.cre.process(rec, now);
            if out.request_extra_sync {
                self.extra_sync_pending = true;
            }
            for mut passed in out.pass {
                passed.stamp_trace(TraceStage::SorterAdmit, now);
                self.sorter.push(passed);
            }
        }
        if let Some(max) = batch_max {
            self.hlc.observe(max);
            self.hlc.note_logical(batch_max_logical);
        }
        Ok(())
    }

    /// Causal-mode receive step: read the record's `X_HLC` (stamping
    /// records that arrived without one — the stamp materializes the
    /// physical-ts fallback so it survives re-export through relay tiers)
    /// and return it for the caller's batch-max fold into the plane's
    /// clock, so everything stamped downstream dominates the whole
    /// subtree.
    fn merge_hlc(&mut self, rec: &mut EventRecord, now: UtcMicros) -> HlcStamp {
        let stamp = match rec.hlc() {
            Some(s) => s,
            None => {
                let s = HlcStamp::new(rec.ts, 0);
                rec.set_hlc(s);
                s
            }
        };
        let divergence = stamp.divergence_us(now).unsigned_abs();
        if let Some(t) = &self.telemetry {
            t.hlc_divergence_us.record(divergence);
        }
        // One flight-recorder alert per plane once physical clocks have
        // visibly diverged from causal time — the breadcrumb that says
        // "trust HLC order, not the timestamps" when debugging a capture.
        if divergence > 1_000_000 && !self.flight_divergence_alerted {
            self.flight_divergence_alerted = true;
            brisk_telemetry::flight_log!(
                Warn,
                "ism.hlc",
                "divergence",
                "X_HLC physical diverges from ISM clock by {divergence} us (node {})",
                rec.node
            );
        }
        stamp
    }

    /// Advance the pipeline: pump the output, expire held CRE records,
    /// release everything whose delay elapsed (if the output is ready for
    /// it), and deliver. Returns the number of records delivered.
    pub fn tick(&mut self, now: UtcMicros, out: &mut dyn MergeOutput) -> Result<usize> {
        out.pump(now)?;
        for expired in self.cre.expire(now) {
            self.sorter.push(expired);
        }
        let n = if out.ready() {
            let mut released = self.sorter.poll(now);
            for rec in released.iter_mut() {
                rec.stamp_trace(TraceStage::SorterRelease, now);
            }
            self.deliver(released, now, out)?
        } else {
            0
        };
        let shed_total = self.sorter.stats().shed;
        if shed_total > self.flight_last_shed {
            brisk_telemetry::flight_log!(
                Warn,
                "ism.sorter",
                "shed",
                "{} unmarked records shed under overload ({shed_total} total)",
                shed_total - self.flight_last_shed
            );
            self.flight_last_shed = shed_total;
        }
        if let Some(t) = &mut self.telemetry {
            t.sorter_depth.set(self.sorter.buffered() as i64);
            t.sorter_frame_us.set(self.sorter.frame_us());
            t.cre_held.set(self.cre.held_count() as i64);
            let repaired = self.cre.stats().tachyons_repaired;
            t.tachyons_repaired.add(repaired - t.last_tachyons);
            t.last_tachyons = repaired;
            let shed = self.sorter.stats().shed;
            t.shed.add(shed - t.last_shed);
            t.last_shed = shed;
            let clamped = self.sorter.stats().ts_clamped;
            t.ts_clamped.add(clamped - t.last_ts_clamped);
            t.last_ts_clamped = clamped;
            let suppressed = self.cre.stats().extra_syncs_suppressed;
            t.extra_sync_suppressed.add(suppressed - t.last_suppressed);
            t.last_suppressed = suppressed;
        }
        Ok(n)
    }

    /// Shutdown path: flush every held and delayed record to the output
    /// in merged order (ignoring `ready()` — the data must leave), then
    /// flush the output itself.
    pub fn drain_all(&mut self, out: &mut dyn MergeOutput) -> Result<usize> {
        for expired in self.cre.expire(UtcMicros::MAX) {
            self.sorter.push(expired);
        }
        let released = self.sorter.drain_all();
        let n = self.deliver(released, UtcMicros::MAX, out)?;
        out.flush()?;
        Ok(n)
    }

    fn deliver(
        &mut self,
        records: Vec<EventRecord>,
        now: UtcMicros,
        out: &mut dyn MergeOutput,
    ) -> Result<usize> {
        let n = records.len();
        for rec in records {
            if self.order == OrderMode::Causal {
                if let Some(last) = self.last_out_ts {
                    if rec.ts < last {
                        self.causal_reorders += 1;
                        if let Some(t) = &self.telemetry {
                            t.causal_reorders.inc();
                        }
                    }
                }
                self.last_out_ts = Some(rec.ts.max(self.last_out_ts.unwrap_or(rec.ts)));
            }
            out.on_record(rec, now)?;
            self.stats.records_out += 1;
            if let Some(t) = &self.telemetry {
                t.records_out.inc();
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_core::{EventTypeId, SensorId, SorterConfig};

    fn rec(node: u32, seq: u64, ts: i64) -> EventRecord {
        EventRecord::new(
            NodeId(node),
            SensorId(0),
            EventTypeId(1),
            seq,
            UtcMicros::from_micros(ts),
            vec![],
        )
        .unwrap()
    }

    fn plane(frame_us: i64) -> MergePlane {
        let cfg = IsmConfig {
            sorter: SorterConfig {
                initial_frame_us: frame_us,
                min_frame_us: 0,
                ..SorterConfig::default()
            },
            ..IsmConfig::default()
        };
        MergePlane::new(&cfg).unwrap()
    }

    /// Collects records; `ready` flips to model a stalled upstream.
    struct TestOut {
        got: Vec<EventRecord>,
        ready: bool,
        pumps: usize,
    }

    impl TestOut {
        fn new() -> Self {
            TestOut {
                got: Vec::new(),
                ready: true,
                pumps: 0,
            }
        }
    }

    impl MergeOutput for TestOut {
        fn on_record(&mut self, rec: EventRecord, _now: UtcMicros) -> Result<()> {
            self.got.push(rec);
            Ok(())
        }
        fn ready(&self) -> bool {
            self.ready
        }
        fn pump(&mut self, _now: UtcMicros) -> Result<()> {
            self.pumps += 1;
            Ok(())
        }
    }

    #[test]
    fn a_stalled_output_parks_records_in_the_sorter() {
        let mut p = plane(0);
        let mut out = TestOut::new();
        out.ready = false;
        p.push_batch(
            vec![rec(1, 0, 100), rec(1, 1, 200)],
            UtcMicros::from_micros(200),
        )
        .unwrap();
        // Output not ready: nothing released, records parked in the window.
        assert_eq!(p.tick(UtcMicros::from_micros(10_000), &mut out).unwrap(), 0);
        assert!(out.got.is_empty());
        assert_eq!(p.buffered(), 2);
        assert_eq!(out.pumps, 1, "pump still runs while stalled");
        // Output recovers: everything flows, in order.
        out.ready = true;
        assert_eq!(p.tick(UtcMicros::from_micros(20_000), &mut out).unwrap(), 2);
        let ts: Vec<i64> = out.got.iter().map(|r| r.ts.as_micros()).collect();
        assert_eq!(ts, vec![100, 200]);
        assert_eq!(p.stats().records_out, 2);
    }

    #[test]
    fn causal_plane_stamps_unstamped_records_and_counts_reorders() {
        let cfg = IsmConfig {
            sorter: SorterConfig {
                initial_frame_us: 0,
                min_frame_us: 0,
                ..SorterConfig::default()
            },
            order_mode: brisk_core::OrderMode::Causal,
            ..IsmConfig::default()
        };
        let mut p = MergePlane::new(&cfg).unwrap();
        let mut out = TestOut::new();
        // Node 1's clock is 2 s fast: its record's header ts looks far
        // later than node 2's, but its HLC stamp is causally earlier.
        let mut fast = rec(1, 0, 2_000_300);
        fast.set_hlc(brisk_core::HlcStamp::new(UtcMicros::from_micros(300), 0));
        let slow = rec(2, 0, 400); // unstamped: falls back to ts 400
        let now = UtcMicros::from_micros(500);
        p.push_batch(vec![fast, slow], now).unwrap();
        p.tick(UtcMicros::from_micros(10_000_000), &mut out)
            .unwrap();
        assert_eq!(out.got.len(), 2);
        assert!(
            out.got.iter().all(|r| r.hlc().is_some()),
            "every delivered record carries a stamp in causal mode"
        );
        assert_eq!(out.got[0].node, NodeId(1), "hlc 300 first");
        assert_eq!(out.got[1].node, NodeId(2));
        assert_eq!(
            p.causal_reorders(),
            1,
            "node 2's record was delivered after a (physically) later one"
        );
        assert!(p.hlc().last().physical >= UtcMicros::from_micros(300));
    }

    #[test]
    fn drain_ignores_readiness() {
        let mut p = plane(1_000_000);
        let mut out = TestOut::new();
        out.ready = false;
        p.push_batch(vec![rec(1, 0, 100)], UtcMicros::from_micros(100))
            .unwrap();
        assert_eq!(p.drain_all(&mut out).unwrap(), 1);
        assert_eq!(out.got.len(), 1);
    }
}
