//! # brisk-ism — the instrumentation system manager
//!
//! The ISM is the central component of BRISK (§3.5, Fig. 1): it receives
//! instrumentation data batches from the external sensors, merges them into
//! one time-ordered stream, repairs causally-inconsistent timestamps, runs
//! the clock-synchronization master, and hands the result to consumers.
//!
//! Pipeline, matching Fig. 1 left to right:
//!
//! ```text
//! batch queues → CRE switch/hash → on-line sorting (ts-ordered heap)
//!             → outputs: memory buffer | PICL trace file | consumer sinks
//! ```
//!
//! * [`sorter::OnlineSorter`] — the adaptive time-frame merge (§3.6): each
//!   record is delayed `T` after its (synchronized) creation time; `T`
//!   grows when an out-of-order extraction is observed and decays
//!   exponentially afterwards.
//! * [`cre::CreMatcher`] — causally-related-event handling: `X_REASON` /
//!   `X_CONSEQ` matching via a hash table, timestamp override for tachyons,
//!   and the request for an extra synchronization round.
//! * [`output`] — the output stage: [`output::MemoryBuffer`] (the default
//!   output mode — consumers read the same binary structure the sensors
//!   wrote), [`output::PiclFileSink`], and arbitrary [`output::EventSink`]s
//!   (the visual-object path lives in `brisk-consumers`).
//! * [`core::IsmCore`] — the transport-free composition of the above;
//!   driven by the threaded [`server::IsmServer`] in real deployments and
//!   directly by `brisk-sim` in deterministic experiments.
//! * [`pump`] / [`server::IsmServer`] — the networked manager: a small
//!   poll-based reactor pool drives every EXS connection (receives
//!   batches zero-copy, runs poll exchanges with accurate send/receive
//!   timestamps) and one manager thread owns the core. Connection count
//!   is decoupled from thread count: a thousand idle sensors cost a
//!   handful of reactor threads, not a thousand pump threads.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod core;
pub mod cre;
pub mod merge;
pub mod output;
pub mod pump;
mod reactor;
pub mod relay;
pub mod server;
pub mod sorter;

pub use crate::core::{IsmCore, IsmCoreStats};
pub use cre::{CreMatcher, CreStats};
pub use merge::{MergeOutput, MergePlane, MergeStats};
pub use output::{EventSink, MemoryBuffer, MemoryBufferReader, PiclFileSink};
pub use pump::{ProtocolGuard, QuarantineLog, QuarantineSample};
pub use relay::{RelayConfig, RelayStats, UpstreamExporter};
pub use server::{IsmHandle, IsmReport, IsmServer};
pub use sorter::{OnlineSorter, OverloadPolicy, SorterStats};
