//! Per-connection pump logic.
//!
//! The ISM keeps one long-lived connection per external sensor. Each
//! connection gets a *pump* that (a) forwards incoming event batches to
//! the manager and (b) executes clock-sync poll exchanges on the
//! manager's behalf. Running the poll exchange *at the pump* stamps
//! `t_master_send` / `t_master_recv` right at the socket, keeping manager
//! scheduling delays out of the skew samples.
//!
//! Two drivers share this logic through `PumpIo`: the threaded
//! [`run_pump`] (one thread per connection — used by tests and embedders)
//! and the server's poll-based reactor (`crate::reactor`), which
//! multiplexes every connection over a small bounded thread pool.

use brisk_clock::{Clock, SkewSample};
use brisk_core::{BriskError, FlowConfig, NodeId, Result, UtcMicros};
use brisk_net::Connection;
use brisk_proto::{BatchView, Message};
use brisk_telemetry::{Counter, Registry};
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Shared EXS→ISM flow-control state: one instance per server, touched by
/// every pump and by the manager.
///
/// The manager's ingest queue itself stays an unbounded channel (events
/// already read off a socket are never dropped); what is bounded is the
/// number of *records* resident in it. While `queued` exceeds the
/// configured bound, pumps stop reading their sockets — commands from the
/// manager still run, so sync rounds and shutdown cannot deadlock — and
/// TCP backpressure pushes the overload back to the sender, whose credit
/// runs out next.
pub struct FlowState {
    cfg: FlowConfig,
    queued: AtomicU64,
    high_water: AtomicU64,
    deferrals: AtomicU64,
}

impl FlowState {
    /// New shared state for one server.
    pub fn new(cfg: FlowConfig) -> Arc<Self> {
        Arc::new(FlowState {
            cfg,
            queued: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
            deferrals: AtomicU64::new(0),
        })
    }

    /// The per-connection credit budget to grant, or `None` when credit
    /// flow control is disabled.
    pub fn credit(&self) -> Option<u64> {
        match self.cfg.credit_records {
            0 => None,
            n => Some(n),
        }
    }

    /// Account `n` records entering the manager queue.
    pub fn add(&self, n: u64) {
        let now = self.queued.fetch_add(n, Ordering::Relaxed) + n;
        self.high_water.fetch_max(now, Ordering::Relaxed);
    }

    /// Account `n` records leaving the manager queue.
    pub fn sub(&self, n: u64) {
        self.queued.fetch_sub(n, Ordering::Relaxed);
    }

    /// Records currently queued between the pumps and the manager.
    pub fn queued_records(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Highest queue depth (records) observed so far.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// True while pumps should defer socket reads.
    pub fn over_limit(&self) -> bool {
        self.cfg.max_queued_records != 0
            && self.queued_records() > self.cfg.max_queued_records as u64
    }

    /// Count one deferred socket read.
    pub fn note_deferral(&self) {
        self.deferrals.fetch_add(1, Ordering::Relaxed);
    }

    /// Deferred socket reads so far.
    pub fn deferrals(&self) -> u64 {
        self.deferrals.load(Ordering::Relaxed)
    }
}

/// Upper bound on retained malformed-frame samples: enough to diagnose a
/// corruption pattern, small enough never to matter for memory.
pub const MAX_QUARANTINE_SAMPLES: usize = 16;
/// Leading bytes of a malformed frame kept (as hex) per sample.
pub const QUARANTINE_SAMPLE_BYTES: usize = 64;

/// One retained malformed frame (head only), for post-mortem inspection.
#[derive(Clone, Debug)]
pub struct QuarantineSample {
    /// Node whose connection produced the frame.
    pub node: NodeId,
    /// Full length of the offending frame in bytes.
    pub len: usize,
    /// Hex dump of the frame's first [`QUARANTINE_SAMPLE_BYTES`] bytes.
    pub head_hex: String,
    /// Why the frame did not decode.
    pub error: String,
}

/// Shared record of undecodable frames across all pumps.
///
/// A frame that fails [`Message::decode`] is *quarantined*: counted here,
/// sampled (bounded), and otherwise dropped — the connection survives
/// until its per-connection error budget runs out. This keeps one node's
/// corrupted link from taking anything else down while still leaving an
/// audit trail of what arrived.
#[derive(Default)]
pub struct QuarantineLog {
    frames: AtomicU64,
    disconnects: AtomicU64,
    rejected_hellos: AtomicU64,
    samples: Mutex<Vec<QuarantineSample>>,
}

impl QuarantineLog {
    /// New shared log.
    pub fn new() -> Arc<Self> {
        Arc::new(QuarantineLog::default())
    }

    /// Record one undecodable frame.
    pub fn record(&self, node: NodeId, frame: &[u8], error: &str) {
        self.frames.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut samples) = self.samples.lock() {
            if samples.len() < MAX_QUARANTINE_SAMPLES {
                let head = &frame[..frame.len().min(QUARANTINE_SAMPLE_BYTES)];
                let head_hex = head.iter().map(|b| format!("{b:02x}")).collect();
                samples.push(QuarantineSample {
                    node,
                    len: frame.len(),
                    head_hex,
                    error: error.to_string(),
                });
            }
        }
    }

    /// Record one connection dropped for exhausting its error budget.
    pub fn note_disconnect(&self) {
        self.disconnects.fetch_add(1, Ordering::Relaxed);
    }

    /// Total undecodable frames quarantined.
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Connections dropped for exhausting their error budget.
    pub fn disconnects(&self) -> u64 {
        self.disconnects.load(Ordering::Relaxed)
    }

    /// Record one `Hello` rejected because its node id was already
    /// claimed by a live connection.
    pub fn note_rejected_hello(&self) {
        self.rejected_hellos.fetch_add(1, Ordering::Relaxed);
    }

    /// `Hello`s rejected for claiming an already-active node id.
    pub fn rejected_hellos(&self) -> u64 {
        self.rejected_hellos.load(Ordering::Relaxed)
    }

    /// The retained samples (at most [`MAX_QUARANTINE_SAMPLES`]).
    pub fn samples(&self) -> Vec<QuarantineSample> {
        self.samples.lock().map(|s| s.clone()).unwrap_or_default()
    }

    /// Export the quarantine counters.
    pub fn bind_telemetry(self: &Arc<Self>, registry: &Arc<Registry>) {
        let log = Arc::clone(self);
        registry.counter_fn(
            "brisk_ism_quarantined_frames_total",
            "Undecodable frames quarantined by ISM pumps",
            &[],
            move || log.frames(),
        );
        let log = Arc::clone(self);
        registry.counter_fn(
            "brisk_ism_quarantine_disconnects_total",
            "Connections dropped after exhausting their protocol error budget",
            &[],
            move || log.disconnects(),
        );
        let log = Arc::clone(self);
        registry.counter_fn(
            "brisk_ism_rejected_hellos_total",
            "Hellos rejected for claiming a node id already served by a live connection",
            &[],
            move || log.rejected_hellos(),
        );
    }
}

/// Per-connection malformed-frame policy handed to [`run_pump`].
pub struct ProtocolGuard {
    /// Undecodable frames tolerated before the connection is dropped
    /// (0 = drop on the first one).
    pub budget: u32,
    /// Shared log counting and sampling quarantined frames.
    pub log: Option<Arc<QuarantineLog>>,
}

impl Default for ProtocolGuard {
    fn default() -> Self {
        ProtocolGuard {
            budget: 8,
            log: None,
        }
    }
}

/// Process-wide pump identity source. Ids disambiguate pump *instances*
/// serving the same node: when a node reconnects, the manager must not
/// let a late `Disconnected` from the old pump tear down the new one.
static NEXT_PUMP_ID: AtomicU64 = AtomicU64::new(1);

/// Commands the manager sends to a pump.
#[derive(Debug)]
pub enum PumpCommand {
    /// Run a poll exchange of `samples` polls for round `round` and report
    /// a [`PumpEvent::SyncSamples`].
    SyncRound {
        /// Round number.
        round: u64,
        /// Number of poll/reply pairs to collect.
        samples: u32,
    },
    /// Forward a `SyncAdjust` to the slave.
    Adjust {
        /// Round that produced the correction.
        round: u64,
        /// Microseconds the slave should add to its correction value.
        advance_us: i64,
    },
    /// Acknowledge every sequenced batch up to `seq` (protocol v2): the
    /// manager issues this once the core accepted (or dedup-dropped) the
    /// batch, and the pump turns it into a wire [`Message::BatchAck`].
    Ack {
        /// Cumulative acknowledged sequence number.
        seq: u64,
        /// Replenished credit budget to piggyback (protocol v3): the
        /// maximum number of unacknowledged records the sender may have
        /// in flight from now on. `None` on connections without credit
        /// flow control (v1/v2 peers, or credit disabled).
        credit: Option<u64>,
    },
    /// Send `Shutdown` to the slave and exit.
    Shutdown,
}

/// Events pumps send to the manager.
#[derive(Debug)]
pub enum PumpEvent {
    /// A batch of records arrived.
    Batch {
        /// Origin node (the *handshake* identity — the pump rejects
        /// batches whose embedded node disagrees).
        node: NodeId,
        /// Pump instance that received the batch (matches
        /// [`PumpHandle::id`]); acks are routed back through it, never
        /// through whichever handle happens to own the node right now.
        id: u64,
        /// Batch sequence number (`None` on v1 connections).
        seq: Option<u64>,
        /// The wire frame, validated but still encoded. The pump parsed
        /// it as a [`BatchView`] (rejecting malformed bytes and spoofed
        /// node ids) without materializing a single record; the manager
        /// materializes exactly once on the consumer side, so record
        /// payloads cross the queue as one buffer, not per-record
        /// allocations.
        frame: Vec<u8>,
        /// Records in the frame, pre-counted at validation so flow
        /// accounting and credit math never re-parse the frame.
        count: usize,
        /// When the frame left the socket; the manager stamps
        /// `PumpRecv` with this so the BatchSend→PumpRecv trace span
        /// stays pure wire + validation time even though
        /// materialization happens later.
        recv_ts: UtcMicros,
        /// When the pump put this batch on the manager queue; the delay
        /// until the manager acks it is the credit-grant latency.
        enqueued_at: Instant,
    },
    /// A sync round's samples are ready (possibly fewer than requested if
    /// replies timed out).
    SyncSamples {
        /// The slave node.
        node: NodeId,
        /// Round number.
        round: u64,
        /// Collected samples.
        samples: Vec<SkewSample>,
    },
    /// The peer proved liveness with a [`Message::Heartbeat`] (protocol
    /// v3): no payload, no reply — just evidence the EXS is alive, so
    /// the manager's stale-node eviction timer resets.
    Heartbeat {
        /// The node that proved liveness.
        node: NodeId,
        /// Pump instance that received the heartbeat (matches
        /// [`PumpHandle::id`]), so a stale pump's late heartbeat cannot
        /// keep an otherwise-dead node alive.
        id: u64,
    },
    /// The connection ended (orderly or not).
    Disconnected {
        /// The node that went away.
        node: NodeId,
        /// Identity of the pump instance that ended (matches
        /// [`PumpHandle::id`]), so the manager can tell a stale pump's
        /// death from the current one's.
        id: u64,
    },
}

/// Handle the manager holds for one pump.
pub struct PumpHandle {
    /// The node this pump serves.
    pub node: NodeId,
    id: u64,
    version: u32,
    cmd_tx: Sender<PumpCommand>,
    /// Invoked after every queued command. Reactor-driven pumps use it
    /// to kick their shard out of `poll` so commands are serviced
    /// immediately rather than on the next timeout; threaded pumps
    /// leave it `None` (they poll their command channel every pass).
    wake: Option<Arc<dyn Fn() + Send + Sync>>,
    /// `None` for pumps that run inline on their greeter thread (the
    /// accept path); the manager then relies on the `Disconnected` event
    /// rather than a join for teardown.
    join: Option<std::thread::JoinHandle<()>>,
}

impl PumpHandle {
    /// This pump instance's identity (unique across the process).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The protocol version negotiated on this pump's connection; the
    /// manager attaches credit to acks only when this is ≥ 3.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Attach the post-command wake callback (reactor pumps only).
    pub(crate) fn attach_wake(&mut self, wake: Arc<dyn Fn() + Send + Sync>) {
        self.wake = Some(wake);
    }

    /// Send a command; returns `false` if the pump is gone.
    pub fn command(&self, cmd: PumpCommand) -> bool {
        let sent = self.cmd_tx.send(cmd).is_ok();
        if sent {
            if let Some(wake) = &self.wake {
                wake();
            }
        }
        sent
    }

    /// Wait for the pump thread to finish (no-op for greeter-run pumps).
    pub fn join(self) {
        if let Some(join) = self.join {
            let _ = join.join();
        }
    }
}

/// How long a pump waits for one `SyncReply` before skipping the sample.
const SAMPLE_TIMEOUT: Duration = Duration::from_secs(1);
/// Pump receive granularity while idle.
const IDLE_RECV: Duration = Duration::from_millis(5);

/// Perform the server-side handshake: read the `Hello`, negotiate the
/// protocol version and return `(node, version)`. v2+ peers get a
/// `HelloAck` carrying the negotiated version (v1 peers would not
/// understand the message — its absence *is* the v1 signal); `credit` is
/// the initial flow-control budget and rides along only when the
/// negotiated version is ≥ 3. Call before [`spawn_pump`].
pub fn handshake(
    conn: &mut Box<dyn Connection>,
    timeout: Duration,
    credit: Option<u64>,
) -> Result<(NodeId, u32)> {
    let deadline = Instant::now() + timeout;
    loop {
        let budget = deadline.saturating_duration_since(Instant::now());
        if budget.is_zero() {
            return Err(BriskError::Protocol("handshake timed out".into()));
        }
        match conn.recv(Some(budget))? {
            Some(frame) => {
                return match Message::decode(&frame)? {
                    Message::Hello { node, version } => {
                        let version = brisk_proto::negotiate(version);
                        if version >= 2 {
                            let credit = if version >= 3 { credit } else { None };
                            conn.send(&Message::HelloAck { version, credit }.encode())?;
                        }
                        Ok((node, version))
                    }
                    other => Err(BriskError::Protocol(format!(
                        "expected Hello, got {other:?}"
                    ))),
                }
            }
            None => continue,
        }
    }
}

/// Spawn a pump for a connection that already completed [`handshake`],
/// assuming the current protocol version was negotiated.
pub fn spawn_pump(
    node: NodeId,
    conn: Box<dyn Connection>,
    clock: Arc<dyn Clock>,
    events: Sender<PumpEvent>,
) -> Result<PumpHandle> {
    spawn_pump_with_counter(node, conn, clock, events, None)
}

/// Like [`spawn_pump`], with an optional counter incremented for every
/// event this pump enqueues toward the manager. Paired with a
/// manager-side "processed" counter it yields the manager queue depth.
pub fn spawn_pump_with_counter(
    node: NodeId,
    conn: Box<dyn Connection>,
    clock: Arc<dyn Clock>,
    events: Sender<PumpEvent>,
    enqueued: Option<Arc<Counter>>,
) -> Result<PumpHandle> {
    let (mut handle, cmd_rx) = pump_channel(node, brisk_proto::VERSION);
    let id = handle.id;
    let join = std::thread::Builder::new()
        .name(format!("brisk-pump-{node}"))
        .spawn(move || {
            run_pump(
                id,
                node,
                conn,
                clock,
                events,
                cmd_rx,
                enqueued,
                None,
                ProtocolGuard::default(),
            )
        })
        .map_err(BriskError::Io)?;
    handle.join = Some(join);
    Ok(handle)
}

/// Build the handle/receiver pair for a pump that will run *inline* on
/// the current thread (the greeter pattern: the accept loop hands the
/// connection to a per-connection thread that handshakes and then calls
/// [`run_pump`] itself). `version` is the negotiated protocol version
/// from [`handshake`]. The handle carries no join — the manager learns
/// of the pump's death through its `Disconnected` event.
pub fn pump_channel(node: NodeId, version: u32) -> (PumpHandle, Receiver<PumpCommand>) {
    let (cmd_tx, cmd_rx) = unbounded();
    let handle = PumpHandle {
        node,
        id: NEXT_PUMP_ID.fetch_add(1, Ordering::Relaxed),
        version,
        cmd_tx,
        wake: None,
        join: None,
    };
    (handle, cmd_rx)
}

/// Drive one pump to completion on the current thread. `id` must be the
/// [`PumpHandle::id`] of the handle built by [`pump_channel`], so the
/// final `Disconnected` event names the right pump instance. `flow`
/// makes the pump defer socket reads while the shared manager-queue
/// bound is exceeded; `guard` sets the malformed-frame quarantine
/// policy.
#[allow(clippy::too_many_arguments)]
pub fn run_pump(
    id: u64,
    node: NodeId,
    conn: Box<dyn Connection>,
    clock: Arc<dyn Clock>,
    events: Sender<PumpEvent>,
    cmd_rx: Receiver<PumpCommand>,
    enqueued: Option<Arc<Counter>>,
    flow: Option<Arc<FlowState>>,
    guard: ProtocolGuard,
) {
    let mut pump = Pump {
        conn,
        cmd_rx,
        io: PumpIo::new(node, id, clock, events, enqueued, flow, guard),
    };
    pump.run();
}

/// What [`PumpIo::on_frame`] did with a frame.
pub(crate) enum FrameOutcome {
    /// Fully handled: forwarded to the manager, quarantined, or dropped.
    Consumed,
    /// A `SyncReply` arrived. The caller owns the sync state machine
    /// (blocking exchange in [`run_pump`], per-connection state in the
    /// reactor), so the reply is surfaced instead of swallowed.
    SyncReply {
        /// Round the reply claims to answer.
        round: u64,
        /// Sample index within the round.
        sample: u32,
        /// The slave's clock reading at reply time.
        slave_time: UtcMicros,
    },
}

/// The connection-independent half of a pump: frame routing, event
/// emission, flow accounting and the malformed-frame quarantine policy.
/// Shared by the threaded [`run_pump`] and the poll reactor
/// (`crate::reactor`) so both paths accept — and reject — exactly the
/// same traffic.
pub(crate) struct PumpIo {
    pub(crate) node: NodeId,
    pub(crate) id: u64,
    pub(crate) clock: Arc<dyn Clock>,
    events: Sender<PumpEvent>,
    enqueued: Option<Arc<Counter>>,
    pub(crate) flow: Option<Arc<FlowState>>,
    guard: ProtocolGuard,
    /// Undecodable frames seen on this connection so far.
    errors: u32,
}

impl PumpIo {
    pub(crate) fn new(
        node: NodeId,
        id: u64,
        clock: Arc<dyn Clock>,
        events: Sender<PumpEvent>,
        enqueued: Option<Arc<Counter>>,
        flow: Option<Arc<FlowState>>,
        guard: ProtocolGuard,
    ) -> PumpIo {
        PumpIo {
            node,
            id,
            clock,
            events,
            enqueued,
            flow,
            guard,
            errors: 0,
        }
    }

    pub(crate) fn send_event(&self, event: PumpEvent) {
        if self.events.send(event).is_ok() {
            if let Some(c) = &self.enqueued {
                c.inc();
            }
        }
    }

    /// Quarantine one undecodable frame. Returns `true` when the
    /// connection's protocol error budget is exhausted and it must be
    /// dropped — other nodes' connections are never affected.
    fn note_malformed(&mut self, frame: &[u8], error: &brisk_proto::DecodeError) -> bool {
        self.errors += 1;
        brisk_telemetry::flight_log!(
            Warn,
            "ism.pump",
            "quarantine",
            "node {} frame of {} bytes quarantined: {error}",
            self.node,
            frame.len()
        );
        if let Some(log) = &self.guard.log {
            log.record(self.node, frame, &error.to_string());
        }
        if self.errors > self.guard.budget {
            if let Some(log) = &self.guard.log {
                log.note_disconnect();
            }
            brisk_telemetry::flight_log!(
                Error,
                "ism.pump",
                "quarantine_disconnect",
                "node {} dropped after {} undecodable frames (budget {})",
                self.node,
                self.errors,
                self.guard.budget
            );
            return true;
        }
        false
    }

    /// Route one inbound frame. `Err` means the connection is done
    /// (orderly `Shutdown`, a spoofed batch, a protocol violation, or an
    /// exhausted quarantine budget); `Ok` carries what happened.
    ///
    /// Batches take the zero-copy path: the frame is validated as a
    /// [`BatchView`] — every record body walked and bounds-checked, no
    /// record materialized — and the raw bytes are forwarded to the
    /// manager, which materializes exactly once.
    pub(crate) fn on_frame(&mut self, frame: Vec<u8>) -> Result<FrameOutcome> {
        if brisk_proto::peek_tag(&frame).is_some_and(brisk_proto::is_batch_tag) {
            let (count, seq) = match BatchView::parse(&frame) {
                Ok(view) => {
                    // The connection authenticated as `self.node` in the
                    // handshake; a batch claiming another origin is
                    // spoofed (or a badly confused client) — kill the
                    // connection rather than pollute another node's
                    // event stream.
                    if view.node() != self.node {
                        return Err(BriskError::Protocol(format!(
                            "batch claims node {} on a connection that said Hello as {}",
                            view.node(),
                            self.node
                        )));
                    }
                    (view.len(), view.seq())
                }
                Err(e) => {
                    return if self.note_malformed(&frame, &e) {
                        Err(BriskError::Disconnected)
                    } else {
                        Ok(FrameOutcome::Consumed)
                    };
                }
            };
            if let Some(flow) = &self.flow {
                flow.add(count as u64);
            }
            // First ISM-side trace hop, taken right at the socket: the
            // manager stamps PumpRecv with this timestamp when it
            // materializes, keeping queueing delay out of the
            // BatchSend→PumpRecv span.
            let recv_ts = self.clock.now();
            self.send_event(PumpEvent::Batch {
                node: self.node,
                id: self.id,
                seq,
                frame,
                count,
                recv_ts,
                enqueued_at: Instant::now(),
            });
            return Ok(FrameOutcome::Consumed);
        }
        match Message::decode(&frame) {
            Ok(Message::SyncReply {
                round,
                sample,
                slave_time,
                ..
            }) => Ok(FrameOutcome::SyncReply {
                round,
                sample,
                slave_time,
            }),
            Ok(Message::Heartbeat) => {
                self.send_event(PumpEvent::Heartbeat {
                    node: self.node,
                    id: self.id,
                });
                Ok(FrameOutcome::Consumed)
            }
            Ok(Message::Shutdown) => Err(BriskError::Disconnected),
            Ok(other) => Err(BriskError::Protocol(format!(
                "unexpected message at ISM: {other:?}"
            ))),
            Err(e) => {
                if self.note_malformed(&frame, &e) {
                    Err(BriskError::Disconnected)
                } else {
                    Ok(FrameOutcome::Consumed)
                }
            }
        }
    }
}

struct Pump {
    conn: Box<dyn Connection>,
    cmd_rx: Receiver<PumpCommand>,
    io: PumpIo,
}

impl Pump {
    fn run(&mut self) {
        loop {
            // Commands first: sync traffic must not starve behind batches.
            match self.cmd_rx.try_recv() {
                Ok(PumpCommand::SyncRound { round, samples }) => {
                    if self.do_sync_round(round, samples).is_err() {
                        break;
                    }
                    continue;
                }
                Ok(PumpCommand::Adjust { round, advance_us }) => {
                    if self
                        .conn
                        .send(&Message::SyncAdjust { round, advance_us }.encode())
                        .is_err()
                    {
                        break;
                    }
                    continue;
                }
                Ok(PumpCommand::Ack { seq, credit }) => {
                    if self
                        .conn
                        .send(&Message::BatchAck { seq, credit }.encode())
                        .is_err()
                    {
                        break;
                    }
                    continue;
                }
                Ok(PumpCommand::Shutdown) => {
                    let _ = self.conn.send(&Message::Shutdown.encode());
                    // Drain whatever the EXS flushed before its own
                    // Shutdown so no records are lost at teardown.
                    let deadline = Instant::now() + Duration::from_secs(2);
                    while Instant::now() < deadline {
                        match self.conn.recv(Some(IDLE_RECV)) {
                            Ok(Some(frame)) => {
                                if self.io.on_frame(frame).is_err() {
                                    break;
                                }
                            }
                            Ok(None) => continue,
                            Err(_) => break,
                        }
                    }
                    break;
                }
                Err(TryRecvError::Empty) => {}
                Err(TryRecvError::Disconnected) => break,
            }
            // Backpressure: while the manager queue holds more records
            // than the configured bound, stop reading the socket.
            // Commands above still run, so sync rounds and shutdown make
            // progress; the sender's unsent traffic piles up in the
            // transport and its credit dries up next.
            if let Some(flow) = &self.io.flow {
                if flow.over_limit() {
                    flow.note_deferral();
                    std::thread::sleep(IDLE_RECV);
                    continue;
                }
            }
            // Then inbound traffic. A stray SyncReply outside a round is
            // stale — dropped, like any other consumed frame.
            match self.conn.recv(Some(IDLE_RECV)) {
                Ok(Some(frame)) => {
                    if self.io.on_frame(frame).is_err() {
                        break;
                    }
                }
                Ok(None) => {}
                Err(_) => break,
            }
        }
        self.io.send_event(PumpEvent::Disconnected {
            node: self.io.node,
            id: self.io.id,
        });
    }

    fn do_sync_round(&mut self, round: u64, samples: u32) -> Result<()> {
        let mut collected = Vec::with_capacity(samples as usize);
        'sampling: for sample in 0..samples {
            let t0 = self.io.clock.now();
            self.conn.send(
                &Message::SyncPoll {
                    round,
                    sample,
                    master_send: t0,
                }
                .encode(),
            )?;
            let deadline = Instant::now() + SAMPLE_TIMEOUT;
            loop {
                let budget = deadline.saturating_duration_since(Instant::now());
                if budget.is_zero() {
                    continue 'sampling; // sample lost; move on
                }
                match self.conn.recv(Some(budget))? {
                    None => continue 'sampling,
                    // Batches keep flowing during the exchange, and the
                    // quarantine budget applies mid-exchange too: both
                    // live inside `on_frame`.
                    Some(frame) => match self.io.on_frame(frame)? {
                        FrameOutcome::SyncReply {
                            round: r,
                            sample: s,
                            slave_time,
                        } if r == round && s == sample => {
                            let t1 = self.io.clock.now();
                            collected.push(SkewSample {
                                t_master_send: t0,
                                t_slave: slave_time,
                                t_master_recv: t1,
                            });
                            break;
                        }
                        // Stale/mismatched reply or consumed frame.
                        _ => {}
                    },
                }
            }
        }
        self.io.send_event(PumpEvent::SyncSamples {
            node: self.io.node,
            round,
            samples: collected,
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_clock::SystemClock;
    use brisk_core::{EventRecord, EventTypeId, SensorId, UtcMicros};
    use brisk_net::{MemTransport, Transport};

    fn mem_pair() -> (Box<dyn Connection>, Box<dyn Connection>) {
        let t = MemTransport::new();
        let mut l = t.listen("x").unwrap();
        let c = t.connect("x").unwrap();
        let s = l.accept(Some(Duration::from_secs(1))).unwrap().unwrap();
        (s, c)
    }

    #[test]
    fn handshake_accepts_hello_only() {
        let (mut server, mut client) = mem_pair();
        client
            .send(
                &Message::Hello {
                    node: NodeId(5),
                    version: brisk_proto::VERSION,
                }
                .encode(),
            )
            .unwrap();
        assert_eq!(
            handshake(&mut server, Duration::from_secs(1), None).unwrap(),
            (NodeId(5), brisk_proto::VERSION)
        );
        // A v2+ peer is told the negotiated version.
        let frame = client.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        assert_eq!(
            Message::decode(&frame).unwrap(),
            Message::HelloAck {
                version: brisk_proto::VERSION,
                credit: None
            }
        );

        let (mut server, mut client) = mem_pair();
        client.send(&Message::Shutdown.encode()).unwrap();
        assert!(handshake(&mut server, Duration::from_millis(100), None).is_err());
    }

    #[test]
    fn handshake_grants_credit_to_v3_peers_only() {
        // A v3 peer receives the initial credit budget in its HelloAck.
        let (mut server, mut client) = mem_pair();
        client
            .send(
                &Message::Hello {
                    node: NodeId(5),
                    version: brisk_proto::VERSION,
                }
                .encode(),
            )
            .unwrap();
        handshake(&mut server, Duration::from_secs(1), Some(512)).unwrap();
        let frame = client.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        assert_eq!(
            Message::decode(&frame).unwrap(),
            Message::HelloAck {
                version: brisk_proto::VERSION,
                credit: Some(512)
            }
        );

        // A v2 peer cannot decode the credit tag: the grant is dropped.
        let (mut server, mut client) = mem_pair();
        client
            .send(
                &Message::Hello {
                    node: NodeId(5),
                    version: 2,
                }
                .encode(),
            )
            .unwrap();
        assert_eq!(
            handshake(&mut server, Duration::from_secs(1), Some(512)).unwrap(),
            (NodeId(5), 2)
        );
        let frame = client.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        assert_eq!(
            Message::decode(&frame).unwrap(),
            Message::HelloAck {
                version: 2,
                credit: None
            }
        );
    }

    #[test]
    fn handshake_with_v1_peer_sends_no_hello_ack() {
        let (mut server, mut client) = mem_pair();
        client
            .send(
                &Message::Hello {
                    node: NodeId(5),
                    version: 1,
                }
                .encode(),
            )
            .unwrap();
        assert_eq!(
            handshake(&mut server, Duration::from_secs(1), Some(512)).unwrap(),
            (NodeId(5), 1)
        );
        // No HelloAck: a v1 peer could not decode it.
        assert!(client
            .recv(Some(Duration::from_millis(50)))
            .unwrap()
            .is_none());
    }

    #[test]
    fn handshake_times_out() {
        let (mut server, _client) = mem_pair();
        assert!(handshake(&mut server, Duration::from_millis(30), None).is_err());
    }

    #[test]
    fn pump_forwards_batches_and_reports_disconnect() {
        let (server, mut client) = mem_pair();
        let (tx, rx) = unbounded();
        let pump = spawn_pump(NodeId(5), server, Arc::new(SystemClock), tx).unwrap();
        let rec = EventRecord::new(
            NodeId(5),
            SensorId(0),
            EventTypeId(1),
            0,
            UtcMicros::from_micros(9),
            vec![],
        )
        .unwrap();
        client
            .send(
                &Message::EventBatch {
                    node: NodeId(5),
                    seq: Some(1),
                    records: vec![rec.clone()],
                }
                .encode(),
            )
            .unwrap();
        match rx.recv_timeout(Duration::from_secs(1)).unwrap() {
            PumpEvent::Batch {
                node,
                id,
                seq,
                frame,
                count,
                ..
            } => {
                assert_eq!(node, NodeId(5));
                assert_eq!(id, pump.id());
                assert_eq!(seq, Some(1));
                assert_eq!(count, 1);
                // The pump forwards the validated frame un-decoded; the
                // consumer materializes the records from the view.
                let view = BatchView::parse(&frame).unwrap();
                assert_eq!(view.materialize().unwrap(), vec![rec]);
            }
            other => panic!("unexpected {other:?}"),
        }
        drop(client);
        match rx.recv_timeout(Duration::from_secs(1)).unwrap() {
            PumpEvent::Disconnected { node, id } => {
                assert_eq!(node, NodeId(5));
                assert_eq!(id, pump.id());
            }
            other => panic!("unexpected {other:?}"),
        }
        pump.join();
    }

    #[test]
    fn spoofed_batch_node_kills_connection() {
        let (server, mut client) = mem_pair();
        let (tx, rx) = unbounded();
        let pump = spawn_pump(NodeId(5), server, Arc::new(SystemClock), tx).unwrap();
        // The connection said Hello as node 5; a batch claiming node 6 is
        // spoofed and must end the connection without being forwarded.
        client
            .send(
                &Message::EventBatch {
                    node: NodeId(6),
                    seq: Some(1),
                    records: vec![],
                }
                .encode(),
            )
            .unwrap();
        match rx.recv_timeout(Duration::from_secs(1)).unwrap() {
            PumpEvent::Disconnected { node, .. } => assert_eq!(node, NodeId(5)),
            other => panic!("spoofed batch must not be forwarded, got {other:?}"),
        }
        pump.join();
    }

    #[test]
    fn ack_command_reaches_client() {
        let (server, mut client) = mem_pair();
        let (tx, _rx) = unbounded();
        let pump = spawn_pump(NodeId(5), server, Arc::new(SystemClock), tx).unwrap();
        pump.command(PumpCommand::Ack {
            seq: 42,
            credit: Some(64),
        });
        let frame = client.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        assert_eq!(
            Message::decode(&frame).unwrap(),
            Message::BatchAck {
                seq: 42,
                credit: Some(64)
            }
        );
        pump.command(PumpCommand::Shutdown);
        pump.join();
    }

    #[test]
    fn over_limit_flow_defers_socket_reads_but_not_commands() {
        let flow = FlowState::new(FlowConfig {
            credit_records: 64,
            max_queued_records: 1,
            shed_unmarked: false,
        });
        flow.add(10); // some other pump filled the manager queue
        let (server, mut client) = mem_pair();
        let (tx, rx) = unbounded();
        let (handle, cmd_rx) = pump_channel(NodeId(5), brisk_proto::VERSION);
        let id = handle.id();
        let flow2 = Arc::clone(&flow);
        let join = std::thread::spawn(move || {
            run_pump(
                id,
                NodeId(5),
                server,
                Arc::new(SystemClock),
                tx,
                cmd_rx,
                None,
                Some(flow2),
                ProtocolGuard::default(),
            )
        });
        client
            .send(
                &Message::EventBatch {
                    node: NodeId(5),
                    seq: Some(1),
                    records: vec![],
                }
                .encode(),
            )
            .unwrap();
        // The batch stays in the transport while the queue is over its
        // bound...
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
        // ...but manager commands are still serviced (no sync deadlock).
        assert!(handle.command(PumpCommand::Ack {
            seq: 7,
            credit: Some(64)
        }));
        let frame = client.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        assert_eq!(
            Message::decode(&frame).unwrap(),
            Message::BatchAck {
                seq: 7,
                credit: Some(64)
            }
        );
        assert!(flow.deferrals() > 0);
        // Once the manager drains the queue the deferred batch flows.
        flow.sub(10);
        match rx.recv_timeout(Duration::from_secs(1)).unwrap() {
            PumpEvent::Batch { seq, .. } => assert_eq!(seq, Some(1)),
            other => panic!("unexpected {other:?}"),
        }
        handle.command(PumpCommand::Shutdown);
        drop(client);
        join.join().unwrap();
    }

    /// Run a pump on its own thread with an explicit quarantine policy.
    fn spawn_guarded(
        server: Box<dyn Connection>,
        guard: ProtocolGuard,
    ) -> (PumpHandle, Receiver<PumpEvent>, std::thread::JoinHandle<()>) {
        let (tx, rx) = unbounded();
        let (handle, cmd_rx) = pump_channel(NodeId(5), brisk_proto::VERSION);
        let id = handle.id();
        let join = std::thread::spawn(move || {
            run_pump(
                id,
                NodeId(5),
                server,
                Arc::new(SystemClock),
                tx,
                cmd_rx,
                None,
                None,
                guard,
            )
        });
        (handle, rx, join)
    }

    #[test]
    fn malformed_frames_are_quarantined_within_budget() {
        let (server, mut client) = mem_pair();
        let log = QuarantineLog::new();
        let (_handle, rx, join) = spawn_guarded(
            server,
            ProtocolGuard {
                budget: 2,
                log: Some(Arc::clone(&log)),
            },
        );
        // Two garbage frames fit inside the budget: the connection lives
        // and a valid batch still flows afterwards.
        client.send(&[0xde, 0xad, 0xbe, 0xef]).unwrap();
        client.send(b"not a brisk frame").unwrap();
        client
            .send(
                &Message::EventBatch {
                    node: NodeId(5),
                    seq: Some(1),
                    records: vec![],
                }
                .encode(),
            )
            .unwrap();
        match rx.recv_timeout(Duration::from_secs(1)).unwrap() {
            PumpEvent::Batch { seq, .. } => assert_eq!(seq, Some(1)),
            other => panic!("batch must survive quarantined garbage, got {other:?}"),
        }
        assert_eq!(log.frames(), 2);
        assert_eq!(log.disconnects(), 0);
        // The third garbage frame exhausts the budget: disconnect.
        client.send(&[0xff; 8]).unwrap();
        match rx.recv_timeout(Duration::from_secs(1)).unwrap() {
            PumpEvent::Disconnected { node, .. } => assert_eq!(node, NodeId(5)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(log.frames(), 3);
        assert_eq!(log.disconnects(), 1);
        let samples = log.samples();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].node, NodeId(5));
        assert_eq!(samples[0].head_hex, "deadbeef");
        assert!(!samples[0].error.is_empty());
        join.join().unwrap();
    }

    #[test]
    fn zero_budget_drops_connection_on_first_bad_frame() {
        let (server, mut client) = mem_pair();
        let log = QuarantineLog::new();
        let (_handle, rx, join) = spawn_guarded(
            server,
            ProtocolGuard {
                budget: 0,
                log: Some(Arc::clone(&log)),
            },
        );
        client.send(&[0x00]).unwrap();
        match rx.recv_timeout(Duration::from_secs(1)).unwrap() {
            PumpEvent::Disconnected { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(log.frames(), 1);
        assert_eq!(log.disconnects(), 1);
        join.join().unwrap();
    }

    #[test]
    fn heartbeat_is_forwarded_as_liveness() {
        let (server, mut client) = mem_pair();
        let (tx, rx) = unbounded();
        let pump = spawn_pump(NodeId(5), server, Arc::new(SystemClock), tx).unwrap();
        client.send(&Message::Heartbeat.encode()).unwrap();
        match rx.recv_timeout(Duration::from_secs(1)).unwrap() {
            PumpEvent::Heartbeat { node, id } => {
                assert_eq!(node, NodeId(5));
                assert_eq!(id, pump.id());
            }
            other => panic!("unexpected {other:?}"),
        }
        pump.command(PumpCommand::Shutdown);
        pump.join();
    }

    #[test]
    fn sync_round_collects_samples_while_batches_flow() {
        let (server, mut client) = mem_pair();
        let (tx, rx) = unbounded();
        let pump = spawn_pump(NodeId(2), server, Arc::new(SystemClock), tx).unwrap();
        // Slave side: answer 3 polls, interleaving a batch.
        let slave = std::thread::spawn(move || {
            let mut answered = 0;
            while answered < 3 {
                if let Ok(Some(frame)) = client.recv(Some(Duration::from_secs(1))) {
                    match Message::decode(&frame).unwrap() {
                        Message::SyncPoll {
                            round,
                            sample,
                            master_send,
                        } => {
                            if answered == 1 {
                                client
                                    .send(
                                        &Message::EventBatch {
                                            node: NodeId(2),
                                            seq: Some(1),
                                            records: vec![],
                                        }
                                        .encode(),
                                    )
                                    .unwrap();
                            }
                            client
                                .send(
                                    &Message::SyncReply {
                                        round,
                                        sample,
                                        master_send,
                                        slave_time: UtcMicros::now(),
                                    }
                                    .encode(),
                                )
                                .unwrap();
                            answered += 1;
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
            client
        });
        assert!(pump.command(PumpCommand::SyncRound {
            round: 9,
            samples: 3
        }));
        let mut batches = 0;
        let mut samples = None;
        for _ in 0..2 {
            match rx.recv_timeout(Duration::from_secs(2)).unwrap() {
                PumpEvent::Batch { .. } => batches += 1,
                PumpEvent::SyncSamples {
                    node,
                    round,
                    samples: s,
                } => {
                    assert_eq!(node, NodeId(2));
                    assert_eq!(round, 9);
                    samples = Some(s);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(batches, 1);
        let samples = samples.expect("sync samples event");
        assert_eq!(samples.len(), 3);
        for s in samples {
            assert!(s.rtt_us() >= 0);
        }
        drop(slave.join().unwrap());
        pump.command(PumpCommand::Shutdown);
        pump.join();
    }

    #[test]
    fn adjust_command_reaches_slave() {
        let (server, mut client) = mem_pair();
        let (tx, _rx) = unbounded();
        let pump = spawn_pump(NodeId(2), server, Arc::new(SystemClock), tx).unwrap();
        pump.command(PumpCommand::Adjust {
            round: 1,
            advance_us: 123,
        });
        let frame = client.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        assert_eq!(
            Message::decode(&frame).unwrap(),
            Message::SyncAdjust {
                round: 1,
                advance_us: 123
            }
        );
        pump.command(PumpCommand::Shutdown);
        pump.join();
    }
}
