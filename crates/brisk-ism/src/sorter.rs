//! Dynamic on-line sorting (§3.5, §3.6).
//!
//! "For dynamic merging/on-line sorting and extracting instrumentation data
//! records from multiple queues, the ISM uses a heap having one entry for
//! each queue." Queues are keyed by *(node, sensor)*: within one sensor,
//! records arrive in emission order with timestamps from one clock, so each
//! queue is non-decreasing in timestamp — the precondition a heap-of-heads
//! merge needs. (The paper keys by external sensor; one queue per internal
//! sensor is the same idea one level finer, needed because our EXS drains
//! multiple sensor rings round-robin.)
//!
//! "Using the synchronized embedded time-stamps, its current time, and a
//! user-specified time frame `T`, the ISM delays each instrumentation data
//! record for `T` time units after its creation. If the ISM detects that
//! two successive records from different external sensors have been
//! extracted out of order, it increases the time frame; then, it
//! exponentially decreases the time frame to reduce the amount of
//! instrumentation data delayed in memory. This method of sorting results
//! in a trade-off between the event ordering and latency."

use brisk_core::config::FrameGrowth;
use brisk_core::{
    EventRecord, HlcStamp, NodeId, OrderMode, Result, SensorId, SorterConfig, UtcMicros,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Key of one input queue.
type QueueKey = (NodeId, SensorId);

/// The merge key. Both order modes use the same shape: physical mode
/// orders by the header timestamp as an HLC with logical 0, causal mode
/// by the `X_HLC` stamp; node/sensor/seq are stable tiebreakers.
type SortKey = (HlcStamp, u32, u32, u64);

/// The sort key of `rec` under `order`.
fn key_under(order: OrderMode, rec: &EventRecord) -> SortKey {
    match order {
        OrderMode::Physical => (
            HlcStamp::new(rec.ts, 0),
            rec.node.raw(),
            rec.sensor.raw(),
            rec.seq,
        ),
        OrderMode::Causal => rec.causal_sort_key(),
    }
}

/// Heap entry: the head record's sort key plus its queue.
type HeapEntry = Reverse<(SortKey, QueueKey)>;

/// Counters describing sorter behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SorterStats {
    /// Records accepted.
    pub pushed: u64,
    /// Records released to the output stage.
    pub released: u64,
    /// Out-of-order extractions observed (each grows `T`).
    pub inversions: u64,
    /// Records released early because the buffer bound was hit
    /// (Fig. 1 "event dropping" under memory pressure).
    pub forced_releases: u64,
    /// Records *dropped* under memory pressure by the
    /// [`OverloadPolicy::ShedUnmarked`] policy. Never includes
    /// CRE-marked records.
    pub shed: u64,
    /// Exponential decay steps applied to `T`.
    pub decays: u64,
    /// Non-monotone same-source records whose timestamp was clamped to
    /// preserve the per-queue ordering invariant.
    pub ts_clamped: u64,
}

/// What the sorter does with records when the buffer bound is exceeded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Release the globally-smallest heads early, out of frame
    /// (today's behaviour; ordering may suffer, nothing is lost).
    #[default]
    ForceRelease,
    /// Drop the oldest *unmarked* heads outright (counted in
    /// [`SorterStats::shed`]); CRE-marked records are never dropped —
    /// they are force-released instead, so causal pairs survive
    /// overload intact.
    ShedUnmarked,
}

/// The adaptive-time-frame k-way merge.
///
/// ```
/// use brisk_core::{EventRecord, EventTypeId, NodeId, SensorId, SorterConfig, UtcMicros};
/// use brisk_ism::OnlineSorter;
///
/// let mut sorter = OnlineSorter::new(
///     SorterConfig { initial_frame_us: 1_000, ..SorterConfig::default() },
///     0, // unbounded buffering
/// ).unwrap();
/// let rec = |node: u32, ts: i64| EventRecord::new(
///     NodeId(node), SensorId(0), EventTypeId(1), 0,
///     UtcMicros::from_micros(ts), vec![],
/// ).unwrap();
///
/// // Records from two nodes arrive out of order…
/// sorter.push(rec(0, 300));
/// sorter.push(rec(1, 100));
/// // …and nothing is released until the frame T has passed…
/// assert!(sorter.poll(UtcMicros::from_micros(1_050)).is_empty());
/// // …after which they come out merged by timestamp.
/// let out = sorter.poll(UtcMicros::from_micros(2_000));
/// assert_eq!(out[0].ts.as_micros(), 100);
/// assert_eq!(out[1].ts.as_micros(), 300);
/// ```
pub struct OnlineSorter {
    cfg: SorterConfig,
    /// Upper bound on buffered records; 0 = unbounded.
    max_buffered: usize,
    overload: OverloadPolicy,
    order: OrderMode,
    /// Per-source FIFO queues; each record is stored with its sort key,
    /// computed once at push time (an `X_HLC` lookup scans the record's
    /// fields — doing it per heap operation instead would dominate the
    /// causal-mode merge cost).
    queues: HashMap<QueueKey, VecDeque<(EventRecord, SortKey)>>,
    /// Min-heap over the head of every non-empty queue.
    heads: BinaryHeap<HeapEntry>,
    buffered: usize,
    frame_us: i64,
    last_released_key: Option<HlcStamp>,
    last_released_from: Option<QueueKey>,
    last_decay_at: Option<UtcMicros>,
    stats: SorterStats,
}

impl OnlineSorter {
    /// New sorter. `max_buffered` bounds in-memory records (0 = unbounded).
    pub fn new(cfg: SorterConfig, max_buffered: usize) -> Result<Self> {
        cfg.validate()?;
        Ok(OnlineSorter {
            frame_us: cfg.initial_frame_us,
            cfg,
            max_buffered,
            overload: OverloadPolicy::default(),
            order: OrderMode::default(),
            queues: HashMap::new(),
            heads: BinaryHeap::new(),
            buffered: 0,
            last_released_key: None,
            last_released_from: None,
            last_decay_at: None,
            stats: SorterStats::default(),
        })
    }

    /// Select the policy applied when the buffer bound is exceeded.
    pub fn set_overload_policy(&mut self, policy: OverloadPolicy) {
        self.overload = policy;
    }

    /// Select the ordering discipline. Must be called before any record
    /// is pushed — heap keys are computed at push time.
    pub fn set_order_mode(&mut self, order: OrderMode) {
        debug_assert_eq!(self.buffered, 0, "order mode change with records buffered");
        self.order = order;
    }

    /// Current time frame `T` in microseconds.
    pub fn frame_us(&self) -> i64 {
        self.frame_us
    }

    /// Records currently delayed in memory.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Counters so far.
    pub fn stats(&self) -> SorterStats {
        self.stats
    }

    /// Accept a batch from one node. Records are appended to their
    /// per-sensor queues in arrival order ("the in-order arrival of these
    /// batches is guaranteed by the socket stream protocol").
    pub fn push_batch(&mut self, records: impl IntoIterator<Item = EventRecord>) {
        for rec in records {
            self.push(rec);
        }
    }

    /// Accept one record.
    pub fn push(&mut self, rec: EventRecord) {
        let qkey = (rec.node, rec.sensor);
        let q = self.queues.entry(qkey).or_default();
        let was_empty = q.is_empty();
        // Defensive: a sensor whose clock stepped backwards could emit a
        // non-monotone stream; clamp so the queue invariant holds and the
        // inversion is surfaced by the merge rather than corrupting it.
        // The tail's key is read from the queue — never recomputed from
        // its fields — so a push costs one key computation total.
        let mut rec = rec;
        let mut rec_key = key_under(self.order, &rec);
        if let Some((back, back_key)) = q.back() {
            match self.order {
                OrderMode::Physical => {
                    if rec.ts < back.ts {
                        rec.ts = back.ts;
                        rec_key = key_under(self.order, &rec);
                        self.stats.ts_clamped += 1;
                    }
                }
                OrderMode::Causal => {
                    let bk = back_key.0;
                    if rec_key.0 < bk {
                        // Raise the stamp just above the queue tail; keep
                        // the physical ts monotone too so a later switch
                        // back to timestamp views stays coherent.
                        rec.set_hlc(HlcStamp::new(bk.physical, bk.logical.saturating_add(1)));
                        if rec.ts < back.ts {
                            rec.ts = back.ts;
                        }
                        rec_key = key_under(self.order, &rec);
                        self.stats.ts_clamped += 1;
                    }
                }
            }
        }
        q.push_back((rec, rec_key));
        self.buffered += 1;
        self.stats.pushed += 1;
        if was_empty {
            self.heads.push(Reverse((rec_key, qkey)));
        }
    }

    /// Release every record whose delay has expired, in merged timestamp
    /// order. `now` is the ISM's current (synchronized) time.
    pub fn poll(&mut self, now: UtcMicros) -> Vec<EventRecord> {
        self.maybe_decay(now);
        self.release_ready(now)
    }

    /// The release loop proper, shared by `poll` (which decays first) and
    /// `drain_all` (which must not touch the decay schedule).
    fn release_ready(&mut self, now: UtcMicros) -> Vec<EventRecord> {
        let mut out = Vec::new();
        loop {
            // Memory pressure: evict the globally-smallest head early.
            let force = self.max_buffered != 0 && self.buffered > self.max_buffered;
            let Some(&Reverse((key, qkey))) = self.heads.peek() else {
                break;
            };
            let release_deadline = key.0.physical.offset(self.frame_us);
            if !force && now < release_deadline {
                break;
            }
            self.heads.pop();
            let q = self.queues.get_mut(&qkey).expect("queue for heap entry");
            let (rec, _) = q.pop_front().expect("non-empty queue in heap");
            self.buffered -= 1;
            if let Some((_, next_key)) = q.front() {
                self.heads.push(Reverse((*next_key, qkey)));
            }
            if force {
                // Under ShedUnmarked, plain records are dropped outright;
                // CRE-marked ones are never shed (their peer may already
                // have been delivered) and fall back to a forced release.
                if self.overload == OverloadPolicy::ShedUnmarked && !rec.is_causally_marked() {
                    self.stats.shed += 1;
                    continue;
                }
                self.stats.forced_releases += 1;
            }
            self.stats.released += 1;
            self.observe_release(key.0, qkey);
            out.push(rec);
        }
        out
    }

    /// Inversion detection and frame growth: "two successive records from
    /// different external sensors … extracted out of order". `key` is the
    /// released record's cached stamp (from its heap entry) and `from` its
    /// queue — no field rescan on release.
    fn observe_release(&mut self, key: HlcStamp, from: QueueKey) {
        if let (Some(last_key), Some(last_from)) = (self.last_released_key, self.last_released_from)
        {
            if key < last_key && from != last_from {
                self.stats.inversions += 1;
                let lateness = last_key.physical.micros_since(key.physical);
                let grown = match self.cfg.growth {
                    FrameGrowth::ToObservedLateness => lateness,
                    // max(1) so a frame that decayed to 0 (legal with
                    // min_frame_us = 0) can still grow: 0 * f == 0.
                    FrameGrowth::Multiplicative(f) => {
                        ((self.frame_us.max(1) as f64) * f).ceil() as i64
                    }
                    FrameGrowth::Additive(a) => self.frame_us + a,
                };
                // An inversion must always move T, whatever the policy
                // computes (e.g. lateness smaller than the current frame).
                self.frame_us = grown
                    .max(self.frame_us.saturating_add(1))
                    .clamp(self.cfg.min_frame_us, self.cfg.max_frame_us);
            }
        }
        // "Two SUCCESSIVE records": the comparison baseline is always the
        // record released immediately before this one.
        self.last_released_key = Some(key);
        self.last_released_from = Some(from);
    }

    fn maybe_decay(&mut self, now: UtcMicros) {
        let interval_us = self.cfg.decay_interval.as_micros() as i64;
        let last = *self.last_decay_at.get_or_insert(now);
        if now.micros_since(last) < interval_us {
            return;
        }
        // Apply one decay step per elapsed interval.
        let steps = (now.micros_since(last) / interval_us).min(64) as u32;
        if self.cfg.decay_factor < 1.0 {
            let factor = self.cfg.decay_factor.powi(steps as i32);
            self.frame_us = (((self.frame_us as f64) * factor) as i64)
                .clamp(self.cfg.min_frame_us, self.cfg.max_frame_us);
            self.stats.decays += steps as u64;
        }
        self.last_decay_at = Some(last.offset(steps as i64 * interval_us));
    }

    /// Unconditionally release everything in merged order (shutdown path).
    /// Bypasses `maybe_decay`: "now = MAX" is not a real clock reading and
    /// must not advance the decay schedule or its counters.
    pub fn drain_all(&mut self) -> Vec<EventRecord> {
        let saved_frame = self.frame_us;
        self.frame_us = 0;
        let out = self.release_ready(UtcMicros::MAX);
        self.frame_us = saved_frame;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_core::EventTypeId;
    use std::time::Duration;

    fn rec(node: u32, sensor: u32, seq: u64, ts: i64) -> EventRecord {
        EventRecord::new(
            NodeId(node),
            SensorId(sensor),
            EventTypeId(1),
            seq,
            UtcMicros::from_micros(ts),
            vec![],
        )
        .unwrap()
    }

    fn cfg(initial: i64) -> SorterConfig {
        SorterConfig {
            initial_frame_us: initial,
            min_frame_us: 0,
            max_frame_us: 1_000_000,
            growth: FrameGrowth::ToObservedLateness,
            decay_factor: 0.5,
            decay_interval: Duration::from_millis(100),
        }
    }

    #[test]
    fn records_are_delayed_t_after_creation() {
        let mut s = OnlineSorter::new(cfg(1_000), 0).unwrap();
        s.push(rec(0, 0, 0, 5_000));
        // Before ts+T: nothing.
        assert!(s.poll(UtcMicros::from_micros(5_999)).is_empty());
        // At ts+T: released.
        let out = s.poll(UtcMicros::from_micros(6_000));
        assert_eq!(out.len(), 1);
        assert_eq!(s.buffered(), 0);
    }

    #[test]
    fn merge_is_timestamp_ordered_across_sources() {
        let mut s = OnlineSorter::new(cfg(0), 0).unwrap();
        s.push_batch([rec(0, 0, 0, 10), rec(0, 0, 1, 30), rec(0, 0, 2, 50)]);
        s.push_batch([rec(1, 0, 0, 20), rec(1, 0, 1, 40)]);
        s.push_batch([rec(2, 0, 0, 25)]);
        let out = s.poll(UtcMicros::from_micros(1_000));
        let ts: Vec<i64> = out.iter().map(|r| r.ts.as_micros()).collect();
        assert_eq!(ts, vec![10, 20, 25, 30, 40, 50]);
    }

    #[test]
    fn equal_timestamps_break_ties_deterministically() {
        let mut s = OnlineSorter::new(cfg(0), 0).unwrap();
        s.push(rec(1, 0, 0, 10));
        s.push(rec(0, 0, 0, 10));
        let out = s.poll(UtcMicros::from_micros(1_000));
        assert_eq!(out[0].node, NodeId(0));
        assert_eq!(out[1].node, NodeId(1));
    }

    #[test]
    fn inversion_grows_frame_to_observed_lateness() {
        let mut s = OnlineSorter::new(cfg(0), 0).unwrap();
        // Release node 0's record at ts=100 first (T=0, it is released as
        // soon as polled)…
        s.push(rec(0, 0, 0, 100));
        assert_eq!(s.poll(UtcMicros::from_micros(100)).len(), 1);
        // …then node 1's record arrives late with ts=40: inversion.
        s.push(rec(1, 0, 0, 40));
        let out = s.poll(UtcMicros::from_micros(200));
        assert_eq!(out.len(), 1);
        assert_eq!(s.stats().inversions, 1);
        assert_eq!(s.frame_us(), 60, "grown to the observed lateness");
    }

    #[test]
    fn same_source_out_of_order_is_not_an_inversion() {
        // Within one sensor the sorter clamps (defensive monotonicity), so
        // no inversion is counted.
        let mut s = OnlineSorter::new(cfg(0), 0).unwrap();
        s.push(rec(0, 0, 0, 100));
        s.push(rec(0, 0, 1, 50)); // clamped to 100
        let out = s.poll(UtcMicros::from_micros(1_000));
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].ts.as_micros(), 100);
        assert_eq!(s.stats().inversions, 0);
        assert_eq!(s.stats().ts_clamped, 1, "the silent clamp is counted");
    }

    #[test]
    fn shed_policy_drops_unmarked_but_never_marked_records() {
        use brisk_core::{CorrelationId, Value};
        let mut s = OnlineSorter::new(cfg(1_000_000), 3).unwrap();
        s.set_overload_policy(OverloadPolicy::ShedUnmarked);
        // Oldest two heads: one unmarked, one CRE-marked.
        s.push(rec(0, 0, 0, 10));
        let marked = EventRecord::new(
            NodeId(1),
            SensorId(0),
            EventTypeId(1),
            0,
            UtcMicros::from_micros(11),
            vec![Value::Conseq(CorrelationId(4))],
        )
        .unwrap();
        s.push(marked);
        for i in 2..5 {
            s.push(rec(0, 0, i, 10 + i as i64));
        }
        let out = s.poll(UtcMicros::from_micros(20));
        assert_eq!(s.buffered(), 3, "buffered must drop to the bound");
        assert_eq!(s.stats().shed, 1, "the unmarked head was dropped");
        assert_eq!(s.stats().forced_releases, 1, "the marked one released");
        assert_eq!(out.len(), 1);
        assert!(out[0].is_causally_marked(), "marked records are never shed");
    }

    #[test]
    fn multiplicative_and_additive_growth() {
        let mut c = cfg(100);
        c.growth = FrameGrowth::Multiplicative(2.0);
        let mut s = OnlineSorter::new(c, 0).unwrap();
        s.push(rec(0, 0, 0, 100));
        s.poll(UtcMicros::from_micros(200));
        s.push(rec(1, 0, 0, 40));
        s.poll(UtcMicros::from_micros(400));
        assert_eq!(s.frame_us(), 200);

        let mut c = cfg(100);
        c.growth = FrameGrowth::Additive(35);
        let mut s = OnlineSorter::new(c, 0).unwrap();
        s.push(rec(0, 0, 0, 100));
        s.poll(UtcMicros::from_micros(200));
        s.push(rec(1, 0, 0, 40));
        s.poll(UtcMicros::from_micros(400));
        assert_eq!(s.frame_us(), 135);
    }

    #[test]
    fn multiplicative_growth_recovers_from_zero_frame() {
        // With min_frame_us = 0 the frame can legally decay to 0; an
        // inversion must still be able to grow it again.
        let mut c = cfg(0);
        c.growth = FrameGrowth::Multiplicative(2.0);
        let mut s = OnlineSorter::new(c, 0).unwrap();
        s.push(rec(0, 0, 0, 100));
        s.poll(UtcMicros::from_micros(100));
        s.push(rec(1, 0, 0, 40));
        s.poll(UtcMicros::from_micros(200));
        assert_eq!(s.stats().inversions, 1);
        assert!(s.frame_us() > 0, "frame must escape 0 on an inversion");
    }

    #[test]
    fn every_growth_policy_strictly_grows_on_inversion() {
        for growth in [
            FrameGrowth::ToObservedLateness,
            FrameGrowth::Multiplicative(2.0),
            FrameGrowth::Additive(35),
        ] {
            for initial in [0i64, 1, 100, 10_000] {
                let mut c = cfg(initial);
                c.growth = growth;
                let mut s = OnlineSorter::new(c, 0).unwrap();
                s.push(rec(0, 0, 0, 100_000));
                s.poll(UtcMicros::from_micros(200_000));
                s.push(rec(1, 0, 0, 99_000));
                s.poll(UtcMicros::from_micros(200_000));
                assert_eq!(s.stats().inversions, 1, "{growth:?} from {initial}");
                assert!(
                    s.frame_us() > initial,
                    "{growth:?} must strictly grow from {initial}, got {}",
                    s.frame_us()
                );
            }
        }
    }

    #[test]
    fn drain_all_does_not_decay() {
        let mut s = OnlineSorter::new(cfg(1_000), 0).unwrap();
        let t0 = UtcMicros::ZERO;
        s.poll(t0); // initializes the decay timer
        s.push(rec(0, 0, 0, 10));
        let out = s.drain_all();
        assert_eq!(out.len(), 1);
        assert_eq!(s.stats().decays, 0, "shutdown drain must not decay");
        // The decay timer must not have been dragged to now = MAX either:
        // one interval later a normal poll still decays exactly once.
        s.poll(t0 + Duration::from_millis(100));
        assert_eq!(s.frame_us(), 500, "decay schedule intact after drain");
    }

    #[test]
    fn frame_decays_exponentially_and_clamps() {
        let mut c = cfg(1_000);
        c.min_frame_us = 100;
        let mut s = OnlineSorter::new(c, 0).unwrap();
        let t0 = UtcMicros::ZERO;
        s.poll(t0); // initializes decay timer
        s.poll(t0 + Duration::from_millis(100));
        assert_eq!(s.frame_us(), 500);
        s.poll(t0 + Duration::from_millis(200));
        assert_eq!(s.frame_us(), 250);
        // Far in the future: clamped at min.
        s.poll(t0 + Duration::from_secs(10));
        assert_eq!(s.frame_us(), 100);
        assert!(s.stats().decays >= 3);
    }

    #[test]
    fn larger_frame_orders_late_traffic_correctly() {
        // With T large enough, a late-delivered record still comes out in
        // order — the ordering/latency trade-off.
        let mut s = OnlineSorter::new(cfg(1_000), 0).unwrap();
        s.push(rec(0, 0, 0, 100));
        // Node 1's ts=50 record arrives AFTER node 0's ts=100 one.
        s.push(rec(1, 0, 0, 50));
        let out = s.poll(UtcMicros::from_micros(2_000));
        let ts: Vec<i64> = out.iter().map(|r| r.ts.as_micros()).collect();
        assert_eq!(ts, vec![50, 100]);
        assert_eq!(s.stats().inversions, 0);
    }

    #[test]
    fn memory_pressure_forces_early_release() {
        let mut s = OnlineSorter::new(cfg(1_000_000), 3).unwrap();
        for i in 0..5 {
            s.push(rec(0, 0, i, 10 + i as i64));
        }
        // Frame is huge; without pressure nothing would be released.
        let out = s.poll(UtcMicros::from_micros(20));
        assert_eq!(out.len(), 2, "buffered must drop to the bound");
        assert_eq!(s.buffered(), 3);
        assert_eq!(s.stats().forced_releases, 2);
    }

    #[test]
    fn drain_all_empties_in_order_and_restores_frame() {
        let mut s = OnlineSorter::new(cfg(500), 0).unwrap();
        s.push(rec(0, 0, 0, 30));
        s.push(rec(1, 0, 0, 10));
        s.push(rec(2, 0, 0, 20));
        let out = s.drain_all();
        let ts: Vec<i64> = out.iter().map(|r| r.ts.as_micros()).collect();
        assert_eq!(ts, vec![10, 20, 30]);
        assert_eq!(s.frame_us(), 500);
        assert_eq!(s.buffered(), 0);
    }

    fn hlc_rec(node: u32, seq: u64, ts: i64, hlc_phys: i64, hlc_logical: u32) -> EventRecord {
        let mut r = rec(node, 0, seq, ts);
        r.set_hlc(HlcStamp::new(UtcMicros::from_micros(hlc_phys), hlc_logical));
        r
    }

    #[test]
    fn causal_mode_orders_by_hlc_not_timestamp() {
        let mut s = OnlineSorter::new(cfg(0), 0).unwrap();
        s.set_order_mode(OrderMode::Causal);
        // Node 0's clock is 2 s ahead: its record's physical ts LOOKS later,
        // but its HLC stamp is causally earlier.
        s.push(hlc_rec(0, 0, 2_000_100, 100, 0));
        s.push(hlc_rec(1, 0, 200, 150, 0));
        let out = s.poll(UtcMicros::from_micros(10_000_000));
        assert_eq!(out[0].node, NodeId(0), "HLC order wins over ts order");
        assert_eq!(out[1].node, NodeId(1));
    }

    #[test]
    fn causal_mode_logical_counter_breaks_physical_ties() {
        let mut s = OnlineSorter::new(cfg(0), 0).unwrap();
        s.set_order_mode(OrderMode::Causal);
        s.push(hlc_rec(0, 0, 10, 100, 5));
        s.push(hlc_rec(1, 0, 20, 100, 2));
        let out = s.poll(UtcMicros::from_micros(1_000));
        assert_eq!(out[0].node, NodeId(1), "lower logical first");
        assert_eq!(out[1].node, NodeId(0));
    }

    #[test]
    fn causal_mode_unstamped_records_fall_back_to_timestamp() {
        let mut s = OnlineSorter::new(cfg(0), 0).unwrap();
        s.set_order_mode(OrderMode::Causal);
        s.push(rec(0, 0, 0, 300));
        s.push(hlc_rec(1, 0, 0, 250, 1));
        let out = s.poll(UtcMicros::from_micros(1_000));
        assert_eq!(out[0].node, NodeId(1), "hlc 250 before plain ts 300");
        assert_eq!(out[1].node, NodeId(0));
    }

    #[test]
    fn causal_mode_clamps_non_monotone_queue_stamps() {
        let mut s = OnlineSorter::new(cfg(0), 0).unwrap();
        s.set_order_mode(OrderMode::Causal);
        s.push(hlc_rec(0, 0, 0, 100, 0));
        s.push(hlc_rec(0, 1, 0, 50, 0)); // same queue, stamp went backwards
        let out = s.poll(UtcMicros::from_micros(1_000));
        assert_eq!(out.len(), 2);
        assert_eq!(s.stats().ts_clamped, 1);
        let k0 = out[0].causal_sort_key().0;
        let k1 = out[1].causal_sort_key().0;
        assert!(k1 > k0, "clamped stamp must restore queue monotonicity");
    }

    #[test]
    fn causal_inversion_grows_frame() {
        let mut s = OnlineSorter::new(cfg(0), 0).unwrap();
        s.set_order_mode(OrderMode::Causal);
        s.push(hlc_rec(0, 0, 100, 100, 0));
        assert_eq!(s.poll(UtcMicros::from_micros(200)).len(), 1);
        // Late arrival, causally earlier: an inversion in causal terms.
        s.push(hlc_rec(1, 0, 90, 40, 0));
        assert_eq!(s.poll(UtcMicros::from_micros(300)).len(), 1);
        assert_eq!(s.stats().inversions, 1);
        assert_eq!(s.frame_us(), 60, "grown to observed HLC-physical lateness");
    }

    #[test]
    fn stats_track_pushes_and_releases() {
        let mut s = OnlineSorter::new(cfg(0), 0).unwrap();
        s.push_batch((0..10).map(|i| rec(0, 0, i, i as i64)));
        let out = s.poll(UtcMicros::from_micros(100));
        assert_eq!(out.len(), 10);
        let st = s.stats();
        assert_eq!(st.pushed, 10);
        assert_eq!(st.released, 10);
    }

    #[test]
    fn interleaved_push_poll_still_sorted_with_adequate_frame() {
        let mut s = OnlineSorter::new(cfg(100), 0).unwrap();
        let mut released = Vec::new();
        // Two sources, slightly out of phase, delivered in dribbles.
        for step in 0..50i64 {
            s.push(rec(0, 0, step as u64, step * 10));
            if step % 3 == 0 {
                s.push(rec(1, 0, (step / 3) as u64, step * 10 - 5));
            }
            released.extend(s.poll(UtcMicros::from_micros(step * 10)));
        }
        released.extend(s.drain_all());
        let ts: Vec<i64> = released.iter().map(|r| r.ts.as_micros()).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted, "output must be globally sorted");
        assert_eq!(released.len(), 50 + 17);
    }
}
