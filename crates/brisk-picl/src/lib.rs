//! # brisk-picl — PICL ASCII trace records
//!
//! The ISM "may log instrumentation data to trace files in the PICL ASCII
//! format" (§3.1), referencing P. H. Worley's *A new PICL trace file
//! format* (ORNL/TM-12125, 1992). Consumers that cannot read the ISM's
//! binary memory buffer receive records "as PICL strings" (§3.5) — that
//! conversion lives here too.
//!
//! ## Format
//!
//! One record per line, whitespace-separated:
//!
//! ```text
//! <rectype> <event> <clock> <node> <sensor> <seq> <n> <datum>*
//! ```
//!
//! * `rectype` — numeric record class (PICL distinguishes entry/exit/
//!   marker/... record types; BRISK maps every application event to the
//!   *marker* class and uses distinct classes for its own bookkeeping);
//! * `event` — the application event type;
//! * `clock` — timestamp, either microseconds of UTC (integer) or seconds
//!   since the ISM started (fixed-point decimal), matching the paper's two
//!   output modes;
//! * `node`, `sensor`, `seq` — record origin;
//! * `n` — number of data fields, each rendered as an integer, a decimal,
//!   or a double-quoted string with `\"`/`\\`/`\n` escapes.
//!
//! Comment lines start with `%`. A parser is provided so tests and
//! downstream tools can round-trip trace files.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod record;
pub mod writer;

pub use record::{PiclDatum, PiclRecord, RecType, TsMode};
pub use writer::{read_trace, PiclWriter};
