//! Trace-file writer and reader.

use crate::record::{PiclRecord, TsMode};
use brisk_core::{EventRecord, Result};
use std::io::{BufRead, BufWriter, Write};

/// Buffered PICL trace writer. One consumer of the ISM output typically
/// owns one of these over a `File`.
pub struct PiclWriter<W: Write> {
    out: BufWriter<W>,
    mode: TsMode,
    records_written: u64,
}

impl<W: Write> PiclWriter<W> {
    /// Create a writer with the given timestamp mode and emit the header
    /// comment block.
    pub fn new(inner: W, mode: TsMode) -> Result<Self> {
        let mut out = BufWriter::new(inner);
        writeln!(out, "% BRISK PICL ASCII trace")?;
        match mode {
            TsMode::Utc => writeln!(out, "% clock: microseconds UTC")?,
            TsMode::SecondsSince(origin) => {
                writeln!(out, "% clock: seconds since {}", origin.as_micros())?
            }
        }
        Ok(PiclWriter {
            out,
            mode,
            records_written: 0,
        })
    }

    /// Write one pre-built PICL record.
    pub fn write_picl(&mut self, rec: &PiclRecord) -> Result<()> {
        writeln!(self.out, "{}", rec.to_line())?;
        self.records_written += 1;
        Ok(())
    }

    /// Convert and write one event record.
    pub fn write_event(&mut self, rec: &EventRecord) -> Result<()> {
        let p = PiclRecord::from_event(rec, self.mode);
        self.write_picl(&p)
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Flush buffered output.
    pub fn flush(&mut self) -> Result<()> {
        self.out.flush()?;
        Ok(())
    }

    /// Flush and return the inner writer.
    pub fn into_inner(self) -> Result<W> {
        self.out
            .into_inner()
            .map_err(|e| brisk_core::BriskError::Io(e.into_error()))
    }
}

/// Read a whole trace: skips `%` comments and blank lines, parses the rest.
pub fn read_trace<R: BufRead>(input: R) -> Result<Vec<PiclRecord>> {
    let mut out = Vec::new();
    for line in input.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        out.push(PiclRecord::parse_line(trimmed)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_core::{EventTypeId, NodeId, SensorId, UtcMicros, Value};

    fn rec(seq: u64, us: i64) -> EventRecord {
        EventRecord::new(
            NodeId(1),
            SensorId(0),
            EventTypeId(5),
            seq,
            UtcMicros::from_micros(us),
            vec![Value::I32(seq as i32), Value::Str(format!("ev {seq}"))],
        )
        .unwrap()
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut w = PiclWriter::new(Vec::new(), TsMode::Utc).unwrap();
        for i in 0..20 {
            w.write_event(&rec(i, i as i64 * 1_000)).unwrap();
        }
        assert_eq!(w.records_written(), 20);
        let bytes = w.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("% BRISK PICL ASCII trace"));
        let parsed = read_trace(text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 20);
        assert_eq!(parsed[3].seq, 3);
        assert_eq!(parsed[3].event, 5);
    }

    #[test]
    fn seconds_mode_header_mentions_origin() {
        let w =
            PiclWriter::new(Vec::new(), TsMode::SecondsSince(UtcMicros::from_secs(10))).unwrap();
        let bytes = w.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("seconds since 10000000"));
    }

    #[test]
    fn reader_skips_comments_and_blanks() {
        let input = "% header\n\n21 1 0 0 0 0 0\n   \n% mid comment\n21 2 5 1 0 1 1 7\n";
        let parsed = read_trace(input.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].event, 2);
    }

    #[test]
    fn reader_propagates_parse_errors() {
        let input = "21 1 0 0 0 0 0\nnot a record\n";
        assert!(read_trace(input.as_bytes()).is_err());
    }

    #[test]
    fn flush_makes_bytes_visible() {
        // Write into a shared Vec via a cursor-like adapter.
        let mut w = PiclWriter::new(Vec::new(), TsMode::Utc).unwrap();
        w.write_event(&rec(0, 0)).unwrap();
        w.flush().unwrap();
        let bytes = w.into_inner().unwrap();
        assert!(!bytes.is_empty());
    }
}
