//! PICL record model and the EventRecord conversion.

use brisk_core::{BriskError, EventRecord, Result, UtcMicros, Value};
use std::fmt;

/// PICL record classes used by BRISK.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum RecType {
    /// An application event (`NOTICE`). PICL's user-defined marker class.
    Marker = 21,
    /// A BRISK bookkeeping record (sync rounds, drops, …).
    System = 90,
}

impl RecType {
    fn from_u32(v: u32) -> Result<Self> {
        Ok(match v {
            21 => RecType::Marker,
            90 => RecType::System,
            _ => return Err(BriskError::Codec(format!("unknown PICL rectype {v}"))),
        })
    }
}

/// Timestamp rendering mode (§3.5): "with the time-stamps either in the UTC
/// format or as the (floating-point) number of seconds since the ISM was
/// run".
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TsMode {
    /// Integer microseconds of UTC.
    Utc,
    /// Seconds (6 decimal places) since the given origin.
    SecondsSince(UtcMicros),
}

/// One data field of a PICL record.
#[derive(Clone, Debug, PartialEq)]
pub enum PiclDatum {
    /// Integer datum.
    Int(i64),
    /// Floating-point datum.
    Double(f64),
    /// String datum.
    Str(String),
}

impl fmt::Display for PiclDatum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PiclDatum::Int(v) => write!(f, "{v}"),
            // `{:?}` prints f64 with enough digits to round-trip exactly.
            PiclDatum::Double(v) => write!(f, "{v:?}"),
            PiclDatum::Str(s) => {
                write!(f, "\"")?;
                for ch in s.chars() {
                    match ch {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        '\n' => write!(f, "\\n")?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
        }
    }
}

/// One PICL trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct PiclRecord {
    /// Record class.
    pub rectype: RecType,
    /// Event type number.
    pub event: u32,
    /// Rendered clock field.
    pub clock: ClockField,
    /// Originating node.
    pub node: u32,
    /// Originating sensor.
    pub sensor: u32,
    /// Per-sensor sequence number.
    pub seq: u64,
    /// Data fields.
    pub data: Vec<PiclDatum>,
}

/// A clock value as it appears in the trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ClockField {
    /// Microseconds of UTC.
    UtcMicros(i64),
    /// Seconds since the ISM started.
    Seconds(f64),
}

impl fmt::Display for ClockField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockField::UtcMicros(us) => write!(f, "{us}"),
            ClockField::Seconds(s) => write!(f, "{s:.6}"),
        }
    }
}

impl PiclRecord {
    /// Convert an event record, rendering its timestamp per `mode`.
    pub fn from_event(rec: &EventRecord, mode: TsMode) -> Self {
        let clock = match mode {
            TsMode::Utc => ClockField::UtcMicros(rec.ts.as_micros()),
            TsMode::SecondsSince(origin) => {
                ClockField::Seconds(rec.ts.micros_since(origin) as f64 / 1e6)
            }
        };
        let data = rec
            .fields
            .iter()
            .map(|v| match v {
                Value::Str(s) => PiclDatum::Str(s.clone()),
                Value::Bytes(b) => {
                    // PICL is text; render bytes as hex.
                    PiclDatum::Str(b.iter().map(|x| format!("{x:02x}")).collect())
                }
                Value::F32(x) => PiclDatum::Double(*x as f64),
                Value::F64(x) => PiclDatum::Double(*x),
                Value::U64(x) => {
                    // Preserve values above i64::MAX textually.
                    if let Ok(v) = i64::try_from(*x) {
                        PiclDatum::Int(v)
                    } else {
                        PiclDatum::Str(x.to_string())
                    }
                }
                Value::Ts(t) => PiclDatum::Int(t.as_micros()),
                Value::Reason(id) | Value::Conseq(id) => {
                    if let Ok(v) = i64::try_from(id.raw()) {
                        PiclDatum::Int(v)
                    } else {
                        PiclDatum::Str(id.raw().to_string())
                    }
                }
                other => PiclDatum::Int(other.as_i64().unwrap_or(0)),
            })
            .collect();
        PiclRecord {
            rectype: RecType::Marker,
            event: rec.event_type.raw(),
            clock,
            node: rec.node.raw(),
            sensor: rec.sensor.raw(),
            seq: rec.seq,
            data,
        }
    }

    /// Render as one trace line (no trailing newline).
    pub fn to_line(&self) -> String {
        use fmt::Write as _;
        let mut line = String::with_capacity(48 + self.data.len() * 12);
        let _ = write!(
            line,
            "{} {} {} {} {} {} {}",
            self.rectype as u32,
            self.event,
            self.clock,
            self.node,
            self.sensor,
            self.seq,
            self.data.len()
        );
        for d in &self.data {
            let _ = write!(line, " {d}");
        }
        line
    }

    /// Parse one trace line (comments and blank lines are the caller's
    /// concern).
    pub fn parse_line(line: &str) -> Result<PiclRecord> {
        let mut toks = Tokenizer::new(line);
        let rectype = RecType::from_u32(toks.u32()?)?;
        let event = toks.u32()?;
        let clock_tok = toks.raw()?;
        let clock = if clock_tok.contains('.') {
            ClockField::Seconds(
                clock_tok
                    .parse::<f64>()
                    .map_err(|e| BriskError::Codec(format!("bad clock {clock_tok:?}: {e}")))?,
            )
        } else {
            ClockField::UtcMicros(
                clock_tok
                    .parse::<i64>()
                    .map_err(|e| BriskError::Codec(format!("bad clock {clock_tok:?}: {e}")))?,
            )
        };
        let node = toks.u32()?;
        let sensor = toks.u32()?;
        let seq = toks.u64()?;
        let n = toks.u32()? as usize;
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(toks.datum()?);
        }
        toks.finish()?;
        Ok(PiclRecord {
            rectype,
            event,
            clock,
            node,
            sensor,
            seq,
            data,
        })
    }
}

/// Whitespace tokenizer aware of quoted strings.
struct Tokenizer<'a> {
    rest: &'a str,
}

impl<'a> Tokenizer<'a> {
    fn new(line: &'a str) -> Self {
        Tokenizer { rest: line.trim() }
    }

    fn raw(&mut self) -> Result<&'a str> {
        self.rest = self.rest.trim_start();
        if self.rest.is_empty() {
            return Err(BriskError::Codec("unexpected end of PICL line".into()));
        }
        let end = self
            .rest
            .find(char::is_whitespace)
            .unwrap_or(self.rest.len());
        let tok = &self.rest[..end];
        self.rest = &self.rest[end..];
        Ok(tok)
    }

    fn u32(&mut self) -> Result<u32> {
        let t = self.raw()?;
        t.parse()
            .map_err(|e| BriskError::Codec(format!("bad integer {t:?}: {e}")))
    }

    fn u64(&mut self) -> Result<u64> {
        let t = self.raw()?;
        t.parse()
            .map_err(|e| BriskError::Codec(format!("bad integer {t:?}: {e}")))
    }

    fn datum(&mut self) -> Result<PiclDatum> {
        self.rest = self.rest.trim_start();
        if let Some(stripped) = self.rest.strip_prefix('"') {
            // Quoted string with escapes.
            let mut out = String::new();
            let mut chars = stripped.char_indices();
            loop {
                let Some((i, c)) = chars.next() else {
                    return Err(BriskError::Codec("unterminated PICL string".into()));
                };
                match c {
                    '"' => {
                        self.rest = &stripped[i + 1..];
                        return Ok(PiclDatum::Str(out));
                    }
                    '\\' => match chars.next() {
                        Some((_, '"')) => out.push('"'),
                        Some((_, '\\')) => out.push('\\'),
                        Some((_, 'n')) => out.push('\n'),
                        other => {
                            return Err(BriskError::Codec(format!(
                                "bad escape in PICL string: {other:?}"
                            )))
                        }
                    },
                    c => out.push(c),
                }
            }
        }
        let t = self.raw()?;
        if t.contains('.') || t.contains("inf") || t.contains("NaN") || t.contains('e') {
            t.parse::<f64>()
                .map(PiclDatum::Double)
                .map_err(|e| BriskError::Codec(format!("bad datum {t:?}: {e}")))
        } else {
            t.parse::<i64>()
                .map(PiclDatum::Int)
                .map_err(|e| BriskError::Codec(format!("bad datum {t:?}: {e}")))
        }
    }

    fn finish(&mut self) -> Result<()> {
        if self.rest.trim().is_empty() {
            Ok(())
        } else {
            Err(BriskError::Codec(format!(
                "trailing tokens on PICL line: {:?}",
                self.rest.trim()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_core::{CorrelationId, EventTypeId, NodeId, SensorId};

    fn rec(fields: Vec<Value>) -> EventRecord {
        EventRecord::new(
            NodeId(2),
            SensorId(1),
            EventTypeId(14),
            9,
            UtcMicros::from_micros(1_500_000),
            fields,
        )
        .unwrap()
    }

    #[test]
    fn utc_mode_renders_micros() {
        let p = PiclRecord::from_event(&rec(vec![Value::I32(5)]), TsMode::Utc);
        assert_eq!(p.clock, ClockField::UtcMicros(1_500_000));
        assert_eq!(p.to_line(), "21 14 1500000 2 1 9 1 5");
    }

    #[test]
    fn seconds_mode_is_relative_to_origin() {
        let p = PiclRecord::from_event(
            &rec(vec![]),
            TsMode::SecondsSince(UtcMicros::from_micros(500_000)),
        );
        assert_eq!(p.clock, ClockField::Seconds(1.0));
        assert_eq!(p.to_line(), "21 14 1.000000 2 1 9 0");
    }

    #[test]
    fn all_value_kinds_map_to_data() {
        let p = PiclRecord::from_event(
            &rec(vec![
                Value::I32(-3),
                Value::F64(2.5),
                Value::Str("hi there".into()),
                Value::Bytes(vec![0xde, 0xad]),
                Value::Ts(UtcMicros::from_micros(7)),
                Value::Reason(CorrelationId(11)),
                Value::Bool(true),
            ]),
            TsMode::Utc,
        );
        assert_eq!(
            p.data,
            vec![
                PiclDatum::Int(-3),
                PiclDatum::Double(2.5),
                PiclDatum::Str("hi there".into()),
                PiclDatum::Str("dead".into()),
                PiclDatum::Int(7),
                PiclDatum::Int(11),
                PiclDatum::Int(1),
            ]
        );
    }

    #[test]
    fn huge_u64_preserved_as_string() {
        let p = PiclRecord::from_event(&rec(vec![Value::U64(u64::MAX)]), TsMode::Utc);
        assert_eq!(p.data, vec![PiclDatum::Str(u64::MAX.to_string())]);
    }

    #[test]
    fn line_round_trip_plain() {
        let p = PiclRecord::from_event(&rec(vec![Value::I32(1), Value::F64(0.5)]), TsMode::Utc);
        let line = p.to_line();
        let back = PiclRecord::parse_line(&line).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn line_round_trip_with_tricky_strings() {
        for s in [
            "",
            "plain",
            "with space",
            "q\"uote",
            "back\\slash",
            "new\nline",
        ] {
            let p = PiclRecord::from_event(&rec(vec![Value::Str(s.into())]), TsMode::Utc);
            let line = p.to_line();
            let back = PiclRecord::parse_line(&line).unwrap();
            assert_eq!(back, p, "for {s:?} line {line:?}");
        }
    }

    #[test]
    fn seconds_clock_round_trips() {
        let p = PiclRecord::from_event(&rec(vec![]), TsMode::SecondsSince(UtcMicros::ZERO));
        let back = PiclRecord::parse_line(&p.to_line()).unwrap();
        assert_eq!(back.clock, ClockField::Seconds(1.5));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(PiclRecord::parse_line("").is_err());
        assert!(PiclRecord::parse_line("21 14").is_err());
        assert!(PiclRecord::parse_line("99 1 0 0 0 0 0").is_err()); // bad rectype
        assert!(PiclRecord::parse_line("21 14 0 0 0 0 1 \"open").is_err()); // unterminated
        assert!(PiclRecord::parse_line("21 14 0 0 0 0 0 extra").is_err()); // trailing
        assert!(PiclRecord::parse_line("21 14 0 0 0 0 2 1").is_err()); // missing datum
    }

    #[test]
    fn negative_double_datum_parses() {
        let back = PiclRecord::parse_line("21 1 0 0 0 0 1 -2.75").unwrap();
        assert_eq!(back.data, vec![PiclDatum::Double(-2.75)]);
    }
}
