//! Property-based tests for the PICL trace format.

use brisk_core::{CorrelationId, EventRecord, EventTypeId, NodeId, SensorId, UtcMicros, Value};
use brisk_picl::{read_trace, PiclRecord, PiclWriter, TsMode};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(Value::I32),
        any::<i64>().prop_map(Value::I64),
        (-1e12f64..1e12).prop_map(Value::F64),
        any::<bool>().prop_map(Value::Bool),
        // Arbitrary printable-ish strings incl. quotes/backslashes/newlines.
        "[ -~\\n]{0,24}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..16).prop_map(Value::Bytes),
        any::<i64>().prop_map(|us| Value::Ts(UtcMicros::from_micros(us))),
        (0u64..u64::MAX).prop_map(|id| Value::Reason(CorrelationId(id))),
    ]
}

fn arb_record() -> impl Strategy<Value = EventRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        any::<u64>(),
        -1_000_000_000i64..1_000_000_000,
        proptest::collection::vec(arb_value(), 0..=8),
    )
        .prop_map(|(node, sensor, ety, seq, ts, fields)| {
            EventRecord::new(
                NodeId(node),
                SensorId(sensor),
                EventTypeId(ety),
                seq,
                UtcMicros::from_micros(ts),
                fields,
            )
            .unwrap()
        })
}

proptest! {
    /// Every event record converts to a PICL line that parses back to the
    /// same PICL record (UTC mode).
    #[test]
    fn line_round_trip_utc(rec in arb_record()) {
        let p = PiclRecord::from_event(&rec, TsMode::Utc);
        let line = p.to_line();
        let back = PiclRecord::parse_line(&line).unwrap();
        prop_assert_eq!(back, p);
    }

    /// Whole traces round-trip through the writer/reader, preserving
    /// record count and origin metadata.
    #[test]
    fn trace_round_trip(records in proptest::collection::vec(arb_record(), 0..30)) {
        let mut w = PiclWriter::new(Vec::new(), TsMode::Utc).unwrap();
        for r in &records {
            w.write_event(r).unwrap();
        }
        let bytes = w.into_inner().unwrap();
        let parsed = read_trace(&bytes[..]).unwrap();
        prop_assert_eq!(parsed.len(), records.len());
        for (p, r) in parsed.iter().zip(&records) {
            prop_assert_eq!(p.node, r.node.raw());
            prop_assert_eq!(p.sensor, r.sensor.raw());
            prop_assert_eq!(p.seq, r.seq);
            prop_assert_eq!(p.event, r.event_type.raw());
            prop_assert_eq!(p.data.len(), r.fields.len());
        }
    }

    /// The parser never panics on arbitrary input lines.
    #[test]
    fn parser_never_panics(line in ".*") {
        let _ = PiclRecord::parse_line(&line);
    }

    /// Seconds-mode clocks survive the text round trip to microsecond
    /// precision.
    #[test]
    fn seconds_mode_precision(ts in 0i64..100_000_000_000) {
        let rec = EventRecord::new(
            NodeId(0),
            SensorId(0),
            EventTypeId(0),
            0,
            UtcMicros::from_micros(ts),
            vec![],
        )
        .unwrap();
        let p = PiclRecord::from_event(&rec, TsMode::SecondsSince(UtcMicros::ZERO));
        let back = PiclRecord::parse_line(&p.to_line()).unwrap();
        match back.clock {
            brisk_picl::record::ClockField::Seconds(s) => {
                let us = (s * 1e6).round() as i64;
                prop_assert!((us - ts).abs() <= 1, "{} vs {}", us, ts);
            }
            other => prop_assert!(false, "unexpected clock {other:?}"),
        }
    }
}
