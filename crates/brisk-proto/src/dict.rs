//! Descriptor dictionary — the TP's compressed meta-header idea at rest.
//!
//! The transfer protocol compresses the meta-information header of every
//! record on the wire (§3.4: packed descriptor nibbles). A trace at rest
//! repeats far more than the descriptor: real instrumentation streams
//! contain a small number of distinct *record shapes* — the tuple
//! `(node, sensor, event type, descriptor)` — repeated millions of times.
//! A [`DescriptorDict`] interns each distinct shape once and lets the
//! store's compacted segment format replace the 28-byte record header +
//! packed descriptor with a one/two-byte dictionary reference.
//!
//! The dictionary is XDR-encoded (like every BRISK control structure) so
//! it can ride inside a compacted segment header:
//!
//! ```text
//! uint   entry count
//! entry* {
//!   uint   node id
//!   uint   sensor id
//!   uint   event type id
//!   opaque packed descriptor      (descriptor::pack bytes)
//! }
//! ```

use brisk_core::{BriskError, EventRecord, RecordDescriptor, Result};
use brisk_xdr::{XdrDecoder, XdrEncoder};
use std::collections::HashMap;

/// Hard cap on dictionary size: a segment with more distinct record
/// shapes than this is not worth compacting (and a decoded count above it
/// means the bytes are corrupt).
pub const MAX_DICT_ENTRIES: usize = 64 * 1024;

/// One distinct record shape: everything about a record that is not the
/// sequence number, timestamp, or field payloads.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DictKey {
    /// Originating node id.
    pub node: u32,
    /// Sensor id within the node.
    pub sensor: u32,
    /// Event type id.
    pub event_type: u32,
    /// Field-type descriptor of the record body.
    pub descriptor: RecordDescriptor,
}

impl DictKey {
    /// The shape of `rec`. Fails only if the record's fields violate the
    /// descriptor invariants (impossible for records built through the
    /// normal constructors).
    pub fn of(rec: &EventRecord) -> Result<DictKey> {
        Ok(DictKey {
            node: rec.node.0,
            sensor: rec.sensor.0,
            event_type: rec.event_type.0,
            descriptor: RecordDescriptor::of(&rec.fields)?,
        })
    }
}

/// An order-preserving interner of [`DictKey`]s. Ids are dense and start
/// at zero, so they varint-encode to one byte for the first 128 shapes.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DescriptorDict {
    keys: Vec<DictKey>,
    index: HashMap<DictKey, u32>,
}

impl DescriptorDict {
    /// An empty dictionary.
    pub fn new() -> DescriptorDict {
        DescriptorDict::default()
    }

    /// Number of interned shapes.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Intern `key`, returning its dense id. Errors when the dictionary
    /// is full ([`MAX_DICT_ENTRIES`]).
    pub fn intern(&mut self, key: DictKey) -> Result<u32> {
        if let Some(&id) = self.index.get(&key) {
            return Ok(id);
        }
        if self.keys.len() >= MAX_DICT_ENTRIES {
            return Err(BriskError::Codec(format!(
                "descriptor dictionary full ({MAX_DICT_ENTRIES} shapes)"
            )));
        }
        let id = self.keys.len() as u32;
        self.keys.push(key.clone());
        self.index.insert(key, id);
        Ok(id)
    }

    /// Intern the shape of `rec`.
    pub fn intern_record(&mut self, rec: &EventRecord) -> Result<u32> {
        self.intern(DictKey::of(rec)?)
    }

    /// Look up a shape by id.
    pub fn get(&self, id: u32) -> Option<&DictKey> {
        self.keys.get(id as usize)
    }

    /// Iterate shapes in id order.
    pub fn keys(&self) -> impl Iterator<Item = &DictKey> {
        self.keys.iter()
    }

    /// Append the XDR encoding to `xdr`.
    pub fn encode(&self, xdr: &mut XdrEncoder) {
        xdr.uint(self.keys.len() as u32);
        for k in &self.keys {
            xdr.uint(k.node).uint(k.sensor).uint(k.event_type);
            xdr.opaque(&k.descriptor.pack());
        }
    }

    /// Decode a dictionary previously written by [`encode`](Self::encode).
    pub fn decode(dec: &mut XdrDecoder) -> Result<DescriptorDict> {
        let n = dec.uint()? as usize;
        if n > MAX_DICT_ENTRIES {
            return Err(BriskError::Codec(format!("absurd dictionary size {n}")));
        }
        let mut dict = DescriptorDict::default();
        for _ in 0..n {
            let node = dec.uint()?;
            let sensor = dec.uint()?;
            let event_type = dec.uint()?;
            let packed = dec.opaque_bounded(4 * 1024)?;
            let (descriptor, used) = RecordDescriptor::unpack(packed)?;
            if used != packed.len() {
                return Err(BriskError::Codec(
                    "trailing bytes after packed descriptor in dictionary".into(),
                ));
            }
            dict.intern(DictKey {
                node,
                sensor,
                event_type,
                descriptor,
            })?;
        }
        if dict.keys.len() != n {
            return Err(BriskError::Codec(
                "duplicate shape in descriptor dictionary".into(),
            ));
        }
        Ok(dict)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use brisk_core::{EventTypeId, NodeId, SensorId, UtcMicros, Value};

    fn rec(node: u32, sensor: u32, fields: Vec<Value>) -> EventRecord {
        EventRecord {
            node: NodeId(node),
            sensor: SensorId(sensor),
            event_type: EventTypeId(7),
            seq: 1,
            ts: UtcMicros::from_micros(5),
            fields,
        }
    }

    #[test]
    fn interning_is_dense_and_idempotent() {
        let mut d = DescriptorDict::new();
        let a = d.intern_record(&rec(1, 2, vec![Value::I32(9)])).unwrap();
        let b = d.intern_record(&rec(1, 2, vec![Value::I32(10)])).unwrap();
        let c = d.intern_record(&rec(1, 3, vec![Value::I32(9)])).unwrap();
        let e = d
            .intern_record(&rec(1, 2, vec![Value::Str("x".into())]))
            .unwrap();
        assert_eq!((a, b, c, e), (0, 0, 1, 2));
        assert_eq!(d.len(), 3);
        assert_eq!(d.get(1).unwrap().sensor, 3);
    }

    #[test]
    fn dictionary_round_trips_through_xdr() {
        let mut d = DescriptorDict::new();
        d.intern_record(&rec(1, 2, vec![Value::I32(9), Value::F64(0.5)]))
            .unwrap();
        d.intern_record(&rec(3, 4, vec![Value::Str("hi".into())]))
            .unwrap();
        d.intern_record(&rec(3, 4, vec![])).unwrap();
        let mut xdr = XdrEncoder::new();
        d.encode(&mut xdr);
        let mut dec = XdrDecoder::new(xdr.as_bytes());
        let back = DescriptorDict::decode(&mut dec).unwrap();
        dec.finish().unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn corrupt_dictionary_is_rejected() {
        let mut d = DescriptorDict::new();
        d.intern_record(&rec(1, 2, vec![Value::Bool(true)]))
            .unwrap();
        let mut xdr = XdrEncoder::new();
        d.encode(&mut xdr);
        let mut bytes = xdr.as_bytes().to_vec();
        bytes[0] ^= 0x80; // absurd count
        assert!(DescriptorDict::decode(&mut XdrDecoder::new(&bytes)).is_err());
    }
}
