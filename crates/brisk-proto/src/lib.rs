//! # brisk-proto — the BRISK transfer protocol messages
//!
//! The transfer protocol (TP) between an external sensor and the ISM is
//! XDR-based (§3.4). Each transport frame carries exactly one
//! [`Message`]; framing (length prefixes) is the transport's job
//! (`brisk-net`), encoding is this crate's.
//!
//! Message set:
//!
//! * [`Message::Hello`] — sent by the EXS when it connects; carries the
//!   protocol magic/version and the node id, which subsequent batches from
//!   this connection implicitly belong to.
//! * [`Message::HelloAck`] — *v2*: the ISM's reply to a v2 `Hello`,
//!   carrying the negotiated protocol version. Never sent to v1 peers
//!   (they would reject the unknown tag), so its absence is itself the
//!   "fall back to v1" signal.
//! * [`Message::EventBatch`] — a batch of event records. "The external
//!   sensor packages instrumentation data in XDR format with the
//!   meta-information header compressed" — each record body embeds its
//!   packed descriptor, see [`brisk_xdr::values`]. Under v2 the batch
//!   carries a per-node monotonic sequence number (`seq: Some(n)`, a
//!   distinct wire tag) so the ISM can acknowledge and deduplicate;
//!   `seq: None` encodes the v1 wire format.
//! * [`Message::BatchAck`] — *v2*: ISM→EXS cumulative acknowledgement:
//!   every sequenced batch with `seq <= ack.seq` has been handed to the
//!   ISM pipeline and may be dropped from the sender's retransmit window.
//!
//! ## Credit-based flow control (v3)
//!
//! A v3 ISM may grant a *credit budget* — the maximum number of records
//! the EXS may have unacknowledged in flight — in `HelloAck` and
//! re-advertise it on every `BatchAck` (absolute value, not a delta, so a
//! lost ack cannot strand credit). Credit rides on two *new* wire tags
//! (`HelloAckCredit`, `BatchAckCredit`) rather than extra fields on the
//! v2 tags, because decoders reject trailing bytes: a v2 peer keeps
//! receiving the exact v2 encodings (`credit: None`) and is none the
//! wiser. `credit: Some(0)` is valid and means "stop sending new batches
//! until replenished" — the EXS may still retransmit its unacknowledged
//! window.
//! * [`Message::SyncPoll`] / [`Message::SyncReply`] /
//!   [`Message::SyncAdjust`] — the clock-synchronization exchange (§3.3).
//!   The poll carries the master send time so the reply can echo it; the
//!   sample index lets the master average several exchanges per round.
//! * [`Message::Shutdown`] — orderly termination.
//!
//! ## Version negotiation
//!
//! `Hello` advertises the sender's version; the receiver accepts anything
//! in `MIN_VERSION..=VERSION` and the connection runs at
//! [`negotiate`]\(peer\) = `min(peer, VERSION)`. A v1 peer therefore
//! interoperates with a v3 ISM (plain unsequenced batches, no acks), a v2
//! peer gets acknowledged, replayable delivery without credit, and two v3
//! endpoints additionally get credit-based flow control — but only when
//! the ISM chooses to grant credit (`credit: None` on a v3 connection
//! falls back to v2 semantics).

#![deny(missing_docs)]
#![deny(unsafe_code)]
// The decode path is a hostile-input boundary; it must never panic.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod dict;
pub mod namespace;

pub use dict::{DescriptorDict, DictKey};
pub use namespace::{NamespaceError, NodePrefix};

use brisk_core::{BriskError, EventRecord, NodeId, UtcMicros};
use brisk_xdr::values::{decode_record_body, encode_record_body};
use brisk_xdr::{decode_record_view, RecordView, XdrDecoder, XdrEncoder};
use std::fmt;

/// Protocol magic: "BRSK".
pub const MAGIC: u32 = 0x4252_534B;

/// Protocol version implemented by this crate.
pub const VERSION: u32 = 3;

/// Oldest protocol version still accepted from peers.
pub const MIN_VERSION: u32 = 1;

/// The version a connection runs at given the peer's advertised version:
/// the highest both sides implement.
pub const fn negotiate(peer_version: u32) -> u32 {
    if peer_version < VERSION {
        peer_version
    } else {
        VERSION
    }
}

/// Maximum records accepted in one batch.
pub const MAX_BATCH_RECORDS: usize = 65_536;

/// Why a frame failed to decode into a [`Message`]. Typed so the ingest
/// layers (ISM pump quarantine, EXS control loop) can count and budget
/// protocol errors without string matching; converts into
/// [`BriskError`] for callers that propagate through the kernel-wide
/// error type.
#[derive(Clone, Debug, PartialEq)]
pub enum DecodeError {
    /// The tag word named no known message kind.
    UnknownTag(u32),
    /// A `Hello` carried the wrong protocol magic.
    BadMagic(u32),
    /// A `Hello` advertised a version outside `MIN_VERSION..=VERSION`.
    UnsupportedVersion(u32),
    /// An `EventBatch` declared more records than [`MAX_BATCH_RECORDS`].
    TooManyRecords {
        /// Declared record count.
        count: usize,
        /// Permitted maximum.
        max: usize,
    },
    /// A record body inside a batch failed semantic validation.
    Record(String),
    /// The underlying XDR primitives failed (truncation, padding, bounds,
    /// trailing bytes, ...).
    Xdr(brisk_xdr::DecodeError),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownTag(v) => write!(f, "unknown message tag {v}"),
            DecodeError::BadMagic(m) => {
                write!(f, "bad magic {m:#x}, expected {MAGIC:#x}")
            }
            DecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v}")
            }
            DecodeError::TooManyRecords { count, max } => {
                write!(f, "batch of {count} records exceeds {max}")
            }
            DecodeError::Record(m) => write!(f, "bad record in batch: {m}"),
            DecodeError::Xdr(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Xdr(e) => Some(e),
            _ => None,
        }
    }
}

impl From<brisk_xdr::DecodeError> for DecodeError {
    fn from(e: brisk_xdr::DecodeError) -> Self {
        DecodeError::Xdr(e)
    }
}

impl From<BriskError> for DecodeError {
    fn from(e: BriskError) -> Self {
        DecodeError::Record(e.to_string())
    }
}

impl From<DecodeError> for BriskError {
    fn from(e: DecodeError) -> Self {
        match e {
            DecodeError::UnknownTag(_)
            | DecodeError::BadMagic(_)
            | DecodeError::UnsupportedVersion(_)
            | DecodeError::TooManyRecords { .. } => BriskError::Protocol(e.to_string()),
            DecodeError::Record(_) | DecodeError::Xdr(_) => BriskError::Codec(e.to_string()),
        }
    }
}

/// Message discriminants on the wire. `EventBatchSeq`, `BatchAck` and
/// `HelloAck` are v2 additions; `HelloAckCredit` and `BatchAckCredit` are
/// the v3 credit-carrying variants of the latter two, and `Heartbeat` is
/// the v3 liveness probe. Older decoders reject unknown tags, so each is
/// only sent once the peer is known to speak the matching version.
///
/// `EventBatchMulti` is the relay-tier batch format: `EventBatch` /
/// `EventBatchSeq` compress the per-record node id into the batch header
/// (every record in an EXS batch comes from the one node that said
/// `Hello`), but a relay ISM merges many downstream nodes into a single
/// upstream link, so its batches carry one node id per record. Only
/// emitted on negotiated-v3 ISM→ISM links.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
enum Tag {
    Hello = 1,
    EventBatch = 2,
    SyncPoll = 3,
    SyncReply = 4,
    SyncAdjust = 5,
    Shutdown = 6,
    EventBatchSeq = 7,
    BatchAck = 8,
    HelloAck = 9,
    HelloAckCredit = 10,
    BatchAckCredit = 11,
    Heartbeat = 12,
    EventBatchMulti = 13,
}

impl Tag {
    fn from_u32(v: u32) -> Result<Tag, DecodeError> {
        Ok(match v {
            1 => Tag::Hello,
            2 => Tag::EventBatch,
            3 => Tag::SyncPoll,
            4 => Tag::SyncReply,
            5 => Tag::SyncAdjust,
            6 => Tag::Shutdown,
            7 => Tag::EventBatchSeq,
            8 => Tag::BatchAck,
            9 => Tag::HelloAck,
            10 => Tag::HelloAckCredit,
            11 => Tag::BatchAckCredit,
            12 => Tag::Heartbeat,
            13 => Tag::EventBatchMulti,
            _ => return Err(DecodeError::UnknownTag(v)),
        })
    }
}

/// One protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Connection preamble from the external sensor.
    Hello {
        /// Node this connection serves.
        node: NodeId,
        /// Protocol version spoken by the sender.
        version: u32,
    },
    /// The ISM's reply to a v2+ `Hello`: the negotiated protocol version
    /// and, on v3 connections with flow control enabled, the initial
    /// credit budget.
    HelloAck {
        /// Version the connection will run at (`negotiate(peer)`).
        version: u32,
        /// v3: maximum records the sender may have unacknowledged in
        /// flight. `None` (the v2 wire encoding) disables flow control.
        credit: Option<u64>,
    },
    /// A batch of event records from one node.
    EventBatch {
        /// Originating node (redundant with Hello; kept so a batch is
        /// self-describing for trace files and debugging).
        node: NodeId,
        /// Per-node monotonic batch sequence number. `Some(n)` encodes the
        /// v2 acknowledged-delivery wire format; `None` encodes the v1
        /// format (no ack expected, no dedup possible).
        seq: Option<u64>,
        /// The records, in per-sensor sequence order.
        records: Vec<EventRecord>,
    },
    /// ISM→EXS cumulative acknowledgement of sequenced batches (v2).
    BatchAck {
        /// Every batch with sequence number `<= seq` has been handed to
        /// the ISM pipeline.
        seq: u64,
        /// v3: replenished credit budget (absolute, replaces the previous
        /// grant). `None` (the v2 wire encoding) leaves flow control off.
        credit: Option<u64>,
    },
    /// Master→slave: "what time is it?" — sample `sample` of round `round`.
    SyncPoll {
        /// Synchronization round number.
        round: u64,
        /// Sample index within the round.
        sample: u32,
        /// Master clock at send time, echoed back in the reply.
        master_send: UtcMicros,
    },
    /// Slave→master reply to a poll.
    SyncReply {
        /// Round number echoed from the poll.
        round: u64,
        /// Sample index echoed from the poll.
        sample: u32,
        /// Master send time echoed from the poll.
        master_send: UtcMicros,
        /// Slave's corrected clock reading when the poll arrived.
        slave_time: UtcMicros,
    },
    /// Master→slave: advance your correction value.
    SyncAdjust {
        /// Round that produced this correction.
        round: u64,
        /// Microseconds to add to the slave's correction value.
        advance_us: i64,
    },
    /// Orderly shutdown notice (either direction).
    Shutdown,
    /// EXS→ISM liveness probe (v3): sent when the connection has been idle
    /// past the heartbeat interval, so the ISM can tell a quiet node from a
    /// silently dead one (a half-open TCP connection never reports). Pure
    /// liveness — no payload, no reply.
    Heartbeat,
}

impl Message {
    /// Encode into a transport frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = XdrEncoder::with_capacity(64);
        match self {
            Message::Hello { node, version } => {
                e.uint(Tag::Hello as u32);
                e.uint(MAGIC);
                e.uint(*version);
                e.uint(node.raw());
            }
            Message::HelloAck { version, credit } => match credit {
                Some(credit) => {
                    e.uint(Tag::HelloAckCredit as u32);
                    e.uint(*version);
                    e.uhyper(*credit);
                }
                None => {
                    e.uint(Tag::HelloAck as u32);
                    e.uint(*version);
                }
            },
            Message::EventBatch { node, seq, records } => {
                // The EXS wire formats compress the node id into the
                // batch header; only a batch whose records all share the
                // header node survives that round trip. A relay batch
                // mixes nodes, so it takes the Multi format, which spends
                // one word per record to keep each origin.
                if records.iter().any(|r| r.node != *node) {
                    e.uint(Tag::EventBatchMulti as u32);
                    e.uint(node.raw());
                    match seq {
                        Some(seq) => {
                            e.uint(1);
                            e.uhyper(*seq);
                        }
                        None => {
                            e.uint(0);
                        }
                    }
                    e.uint(records.len() as u32);
                    for r in records {
                        e.uint(r.node.raw());
                        encode_record_body(r, &mut e);
                    }
                } else {
                    match seq {
                        Some(seq) => {
                            e.uint(Tag::EventBatchSeq as u32);
                            e.uint(node.raw());
                            e.uhyper(*seq);
                        }
                        None => {
                            e.uint(Tag::EventBatch as u32);
                            e.uint(node.raw());
                        }
                    }
                    e.uint(records.len() as u32);
                    for r in records {
                        encode_record_body(r, &mut e);
                    }
                }
            }
            Message::BatchAck { seq, credit } => match credit {
                Some(credit) => {
                    e.uint(Tag::BatchAckCredit as u32);
                    e.uhyper(*seq);
                    e.uhyper(*credit);
                }
                None => {
                    e.uint(Tag::BatchAck as u32);
                    e.uhyper(*seq);
                }
            },
            Message::SyncPoll {
                round,
                sample,
                master_send,
            } => {
                e.uint(Tag::SyncPoll as u32);
                e.uhyper(*round);
                e.uint(*sample);
                e.hyper(master_send.as_micros());
            }
            Message::SyncReply {
                round,
                sample,
                master_send,
                slave_time,
            } => {
                e.uint(Tag::SyncReply as u32);
                e.uhyper(*round);
                e.uint(*sample);
                e.hyper(master_send.as_micros());
                e.hyper(slave_time.as_micros());
            }
            Message::SyncAdjust { round, advance_us } => {
                e.uint(Tag::SyncAdjust as u32);
                e.uhyper(*round);
                e.hyper(*advance_us);
            }
            Message::Shutdown => {
                e.uint(Tag::Shutdown as u32);
            }
            Message::Heartbeat => {
                e.uint(Tag::Heartbeat as u32);
            }
        }
        e.into_bytes()
    }

    /// Decode a transport frame.
    ///
    /// Never panics: arbitrary input yields a typed [`DecodeError`] (which
    /// converts into [`BriskError`] via `?` where the kernel-wide error
    /// type is wanted), and allocation is bounded by the frame length plus
    /// the declared-and-checked record count.
    pub fn decode(frame: &[u8]) -> Result<Message, DecodeError> {
        let mut d = XdrDecoder::new(frame);
        let tag = Tag::from_u32(d.uint()?)?;
        let msg = match tag {
            Tag::Hello => {
                let magic = d.uint()?;
                if magic != MAGIC {
                    return Err(DecodeError::BadMagic(magic));
                }
                let version = d.uint()?;
                if !(MIN_VERSION..=VERSION).contains(&version) {
                    return Err(DecodeError::UnsupportedVersion(version));
                }
                Message::Hello {
                    node: NodeId(d.uint()?),
                    version,
                }
            }
            Tag::HelloAck => Message::HelloAck {
                version: d.uint()?,
                credit: None,
            },
            Tag::HelloAckCredit => Message::HelloAck {
                version: d.uint()?,
                credit: Some(d.uhyper()?),
            },
            Tag::EventBatch | Tag::EventBatchSeq => {
                let node = NodeId(d.uint()?);
                let seq = match tag {
                    Tag::EventBatchSeq => Some(d.uhyper()?),
                    _ => None,
                };
                let count = d.uint()? as usize;
                if count > MAX_BATCH_RECORDS {
                    return Err(DecodeError::TooManyRecords {
                        count,
                        max: MAX_BATCH_RECORDS,
                    });
                }
                let mut records = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    records.push(decode_record_body(node, &mut d)?);
                }
                Message::EventBatch { node, seq, records }
            }
            Tag::EventBatchMulti => {
                let node = NodeId(d.uint()?);
                let seq = match d.uint()? {
                    0 => None,
                    _ => Some(d.uhyper()?),
                };
                let count = d.uint()? as usize;
                if count > MAX_BATCH_RECORDS {
                    return Err(DecodeError::TooManyRecords {
                        count,
                        max: MAX_BATCH_RECORDS,
                    });
                }
                let mut records = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    let rec_node = NodeId(d.uint()?);
                    records.push(decode_record_body(rec_node, &mut d)?);
                }
                Message::EventBatch { node, seq, records }
            }
            Tag::BatchAck => Message::BatchAck {
                seq: d.uhyper()?,
                credit: None,
            },
            Tag::BatchAckCredit => Message::BatchAck {
                seq: d.uhyper()?,
                credit: Some(d.uhyper()?),
            },
            Tag::SyncPoll => Message::SyncPoll {
                round: d.uhyper()?,
                sample: d.uint()?,
                master_send: UtcMicros::from_micros(d.hyper()?),
            },
            Tag::SyncReply => Message::SyncReply {
                round: d.uhyper()?,
                sample: d.uint()?,
                master_send: UtcMicros::from_micros(d.hyper()?),
                slave_time: UtcMicros::from_micros(d.hyper()?),
            },
            Tag::SyncAdjust => Message::SyncAdjust {
                round: d.uhyper()?,
                advance_us: d.hyper()?,
            },
            Tag::Shutdown => Message::Shutdown,
            Tag::Heartbeat => Message::Heartbeat,
        };
        d.finish()?;
        Ok(msg)
    }
}

/// Read a frame's wire tag without decoding the body. `None` when the
/// frame is shorter than one XDR word (such a frame can never decode).
///
/// The ingest hot path uses this to route event batches through the
/// zero-copy [`BatchView`] parse while every other (rare, small) message
/// kind takes the owned [`Message::decode`] path.
pub fn peek_tag(frame: &[u8]) -> Option<u32> {
    let word: [u8; 4] = frame.get(..4)?.try_into().ok()?;
    Some(u32::from_be_bytes(word))
}

/// Does this wire tag name an event batch (`EventBatch`, `EventBatchSeq`
/// or `EventBatchMulti`)? Pair with [`peek_tag`] to route frames.
pub const fn is_batch_tag(tag: u32) -> bool {
    tag == Tag::EventBatch as u32
        || tag == Tag::EventBatchSeq as u32
        || tag == Tag::EventBatchMulti as u32
}

/// A fully-validated *borrowing* view over an `EventBatch` /
/// `EventBatchSeq` frame.
///
/// Parsing walks every record body with the same validation as
/// [`Message::decode`] (it shares the single decode implementation in
/// `brisk_xdr::view`), but each record is kept as a [`RecordView`] whose
/// field bytes still point into the arrival buffer — nothing is copied
/// until [`BatchView::materialize`] (or a per-record
/// [`RecordView::materialize`]) is called. The ISM pump validates a frame
/// once with this type and forwards the raw frame; the manager re-parses
/// and materializes exactly once, so a record is copied at most once
/// end-to-end.
#[derive(Debug)]
pub struct BatchView<'a> {
    node: NodeId,
    seq: Option<u64>,
    records: Vec<RecordView<'a>>,
    /// Per-record origin nodes, parallel to `records`. `None` for the
    /// single-node `EventBatch` / `EventBatchSeq` formats, where every
    /// record originates from the header node.
    nodes: Option<Vec<NodeId>>,
}

impl<'a> BatchView<'a> {
    /// Parse and validate a batch frame without copying record payloads.
    ///
    /// The frame must be an `EventBatch` or `EventBatchSeq` (check with
    /// [`peek_tag`] / [`is_batch_tag`] first); any other tag is an
    /// [`DecodeError::UnknownTag`] from this constructor's point of view.
    /// Validation is exhaustive — bounds, descriptor, every field, no
    /// trailing bytes — so a frame this accepts is exactly a frame
    /// [`Message::decode`] accepts.
    pub fn parse(frame: &'a [u8]) -> Result<BatchView<'a>, DecodeError> {
        let mut d = XdrDecoder::new(frame);
        let tag = d.uint()?;
        if !is_batch_tag(tag) {
            return Err(DecodeError::UnknownTag(tag));
        }
        let multi = tag == Tag::EventBatchMulti as u32;
        let node = NodeId(d.uint()?);
        let seq = if tag == Tag::EventBatchSeq as u32 {
            Some(d.uhyper()?)
        } else if multi {
            match d.uint()? {
                0 => None,
                _ => Some(d.uhyper()?),
            }
        } else {
            None
        };
        let count = d.uint()? as usize;
        if count > MAX_BATCH_RECORDS {
            return Err(DecodeError::TooManyRecords {
                count,
                max: MAX_BATCH_RECORDS,
            });
        }
        let mut records = Vec::with_capacity(count.min(4096));
        let mut nodes = multi.then(|| Vec::with_capacity(count.min(4096)));
        for _ in 0..count {
            if let Some(nodes) = nodes.as_mut() {
                nodes.push(NodeId(d.uint()?));
            }
            records.push(decode_record_view(&mut d)?);
        }
        d.finish()?;
        Ok(BatchView {
            node,
            seq,
            records,
            nodes,
        })
    }

    /// Originating node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Per-node batch sequence number (`None` on the v1 wire format).
    pub fn seq(&self) -> Option<u64> {
        self.seq
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The validated record views, still borrowing the frame.
    pub fn records(&self) -> &[RecordView<'a>] {
        &self.records
    }

    /// Copy the records out into owned [`EventRecord`]s — the single
    /// copy the ingest path pays. Records from a Multi-format batch keep
    /// their own origin node; the single-node formats stamp the header
    /// node onto every record.
    pub fn materialize(&self) -> Result<Vec<EventRecord>, DecodeError> {
        let mut out = Vec::with_capacity(self.records.len());
        for (i, rv) in self.records.iter().enumerate() {
            let node = match &self.nodes {
                Some(nodes) => nodes[i],
                None => self.node,
            };
            out.push(rv.materialize(node)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use brisk_core::{EventTypeId, SensorId, Value};

    fn rec(seq: u64, ts: i64) -> EventRecord {
        EventRecord::new(
            NodeId(3),
            SensorId(1),
            EventTypeId(7),
            seq,
            UtcMicros::from_micros(ts),
            vec![Value::I32(seq as i32), Value::Str(format!("r{seq}"))],
        )
        .unwrap()
    }

    #[test]
    fn hello_round_trip() {
        let m = Message::Hello {
            node: NodeId(9),
            version: VERSION,
        };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn hello_rejects_bad_magic_and_version() {
        let m = Message::Hello {
            node: NodeId(9),
            version: VERSION,
        };
        let mut bytes = m.encode();
        bytes[4] ^= 0xff; // clobber magic
        assert!(Message::decode(&bytes).is_err());

        let mut bytes = m.encode();
        bytes[11] = 99; // version -> 99
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn batch_round_trip() {
        let m = Message::EventBatch {
            node: NodeId(3),
            seq: None,
            records: (0..10).map(|i| rec(i, i as i64 * 100)).collect(),
        };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn sequenced_batch_round_trip() {
        let m = Message::EventBatch {
            node: NodeId(3),
            seq: Some(u64::MAX - 7),
            records: (0..10).map(|i| rec(i, i as i64 * 100)).collect(),
        };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    fn rec_at(node: u32, seq: u64, ts: i64) -> EventRecord {
        EventRecord::new(
            NodeId(node),
            SensorId(1),
            EventTypeId(7),
            seq,
            UtcMicros::from_micros(ts),
            vec![Value::I32(seq as i32)],
        )
        .unwrap()
    }

    #[test]
    fn multi_node_batch_round_trips() {
        // A relay batch: header node is the relay, records keep their
        // rewritten subtree ids. Both seq variants must survive.
        for seq in [None, Some(0), Some(u64::MAX - 7)] {
            let m = Message::EventBatch {
                node: NodeId(2),
                seq,
                records: vec![
                    rec_at(0x0502, 0, 100),
                    rec_at(0x0902, 1, 200),
                    rec_at(0x0502, 2, 300),
                ],
            };
            let bytes = m.encode();
            assert_eq!(peek_tag(&bytes), Some(13), "{seq:?}");
            assert!(is_batch_tag(13));
            assert_eq!(Message::decode(&bytes).unwrap(), m, "{seq:?}");
        }
    }

    #[test]
    fn single_node_batch_stays_on_the_compact_wire_format() {
        // When every record shares the header node (the EXS case) the
        // encoder must keep emitting the v1/v2 formats old peers accept.
        let m = Message::EventBatch {
            node: NodeId(3),
            seq: Some(9),
            records: (0..4).map(|i| rec(i, i as i64 * 100)).collect(),
        };
        assert_eq!(peek_tag(&m.encode()), Some(7));
        let m = Message::EventBatch {
            node: NodeId(3),
            seq: None,
            records: (0..4).map(|i| rec(i, i as i64 * 100)).collect(),
        };
        assert_eq!(peek_tag(&m.encode()), Some(2));
    }

    #[test]
    fn multi_node_batch_view_materializes_per_record_nodes() {
        let m = Message::EventBatch {
            node: NodeId(2),
            seq: Some(5),
            records: vec![rec_at(0x0502, 0, 100), rec_at(0x0902, 1, 200)],
        };
        let bytes = m.encode();
        let view = BatchView::parse(&bytes).unwrap();
        assert_eq!(view.node(), NodeId(2));
        assert_eq!(view.seq(), Some(5));
        assert_eq!(view.len(), 2);
        let records = view.materialize().unwrap();
        assert_eq!(records[0].node, NodeId(0x0502));
        assert_eq!(records[1].node, NodeId(0x0902));
        match Message::decode(&bytes).unwrap() {
            Message::EventBatch { records: owned, .. } => assert_eq!(owned, records),
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn v2_control_messages_round_trip() {
        for m in [
            Message::HelloAck {
                version: VERSION,
                credit: None,
            },
            Message::BatchAck {
                seq: 42,
                credit: None,
            },
            Message::BatchAck {
                seq: 0,
                credit: None,
            },
        ] {
            assert_eq!(Message::decode(&m.encode()).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn v3_credit_messages_round_trip() {
        for m in [
            Message::HelloAck {
                version: VERSION,
                credit: Some(10_000),
            },
            Message::HelloAck {
                version: VERSION,
                credit: Some(0),
            },
            Message::BatchAck {
                seq: 42,
                credit: Some(u64::MAX),
            },
            Message::BatchAck {
                seq: 0,
                credit: Some(0),
            },
        ] {
            assert_eq!(Message::decode(&m.encode()).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn creditless_acks_use_the_v2_wire_tags() {
        // A credit-less ack must be byte-identical to what a v2 build
        // emits, or v2 peers would reject the frame as an unknown tag.
        let ack = Message::BatchAck {
            seq: 7,
            credit: None,
        };
        assert_eq!(&ack.encode()[..4], &[0, 0, 0, 8], "BatchAck tag");
        let hello_ack = Message::HelloAck {
            version: 2,
            credit: None,
        };
        assert_eq!(&hello_ack.encode()[..4], &[0, 0, 0, 9], "HelloAck tag");
        // And the credit-carrying forms use the new tags.
        let ack = Message::BatchAck {
            seq: 7,
            credit: Some(1),
        };
        assert_eq!(&ack.encode()[..4], &[0, 0, 0, 11], "BatchAckCredit tag");
        let hello_ack = Message::HelloAck {
            version: 3,
            credit: Some(1),
        };
        assert_eq!(
            &hello_ack.encode()[..4],
            &[0, 0, 0, 10],
            "HelloAckCredit tag"
        );
    }

    #[test]
    fn v1_hello_still_accepted() {
        let m = Message::Hello {
            node: NodeId(4),
            version: MIN_VERSION,
        };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn negotiate_picks_highest_common_version() {
        assert_eq!(negotiate(1), 1);
        assert_eq!(negotiate(VERSION), VERSION);
        assert_eq!(negotiate(VERSION + 5), VERSION);
    }

    #[test]
    fn empty_batch_round_trip() {
        let m = Message::EventBatch {
            node: NodeId(3),
            seq: None,
            records: vec![],
        };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn batch_count_bound_enforced() {
        // Forge a batch header claiming too many records.
        let mut e = XdrEncoder::new();
        e.uint(2); // EventBatch tag
        e.uint(3); // node
        e.uint((MAX_BATCH_RECORDS + 1) as u32);
        assert!(Message::decode(e.as_bytes()).is_err());
    }

    #[test]
    fn sync_messages_round_trip() {
        for m in [
            Message::SyncPoll {
                round: 5,
                sample: 2,
                master_send: UtcMicros::from_micros(123),
            },
            Message::SyncReply {
                round: 5,
                sample: 2,
                master_send: UtcMicros::from_micros(123),
                slave_time: UtcMicros::from_micros(456),
            },
            Message::SyncAdjust {
                round: 5,
                advance_us: -42,
            },
            Message::Shutdown,
        ] {
            assert_eq!(Message::decode(&m.encode()).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut e = XdrEncoder::new();
        e.uint(77);
        assert_eq!(
            Message::decode(e.as_bytes()),
            Err(DecodeError::UnknownTag(77))
        );
    }

    #[test]
    fn heartbeat_round_trip_and_tag() {
        let m = Message::Heartbeat;
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
        // Tag 12 on the wire: v1/v2 decoders reject it, so heartbeats are
        // only sent once the connection has negotiated v3.
        assert_eq!(&m.encode()[..4], &[0, 0, 0, 12]);
    }

    #[test]
    fn decode_errors_are_typed() {
        let m = Message::Hello {
            node: NodeId(9),
            version: VERSION,
        };
        let mut bytes = m.encode();
        bytes[4] ^= 0xff;
        assert!(matches!(
            Message::decode(&bytes),
            Err(DecodeError::BadMagic(_))
        ));
        let mut bytes = m.encode();
        bytes[11] = 99;
        assert_eq!(
            Message::decode(&bytes),
            Err(DecodeError::UnsupportedVersion(99))
        );
        // And the conversion into the kernel-wide error type categorizes.
        let e: BriskError = DecodeError::UnknownTag(5).into();
        assert!(matches!(e, BriskError::Protocol(_)));
        let e: BriskError =
            DecodeError::Xdr(brisk_xdr::DecodeError::Trailing { remaining: 4 }).into();
        assert!(matches!(e, BriskError::Codec(_)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Message::Shutdown.encode();
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn truncated_frames_rejected() {
        let m = Message::EventBatch {
            node: NodeId(3),
            seq: Some(5),
            records: vec![rec(0, 1)],
        };
        let bytes = m.encode();
        for cut in [0, 3, 8, bytes.len() - 1] {
            assert!(Message::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn batch_wire_size_is_modest() {
        // 256 six-i32 records must stay near 256 * 56 bytes + small header.
        let records: Vec<EventRecord> = (0..256)
            .map(|i| {
                EventRecord::new(
                    NodeId(1),
                    SensorId(0),
                    EventTypeId(1),
                    i,
                    UtcMicros::from_micros(i as i64),
                    vec![Value::I32(0); 6],
                )
                .unwrap()
            })
            .collect();
        let m = Message::EventBatch {
            node: NodeId(1),
            seq: None,
            records,
        };
        let bytes = m.encode();
        assert_eq!(bytes.len(), 12 + 256 * 56);
    }

    #[test]
    fn peek_tag_reads_the_wire_tag() {
        let m = Message::EventBatch {
            node: NodeId(3),
            seq: Some(5),
            records: vec![rec(0, 1)],
        };
        let bytes = m.encode();
        assert_eq!(peek_tag(&bytes), Some(7));
        assert!(is_batch_tag(7) && is_batch_tag(2));
        assert!(!is_batch_tag(1) && !is_batch_tag(8));
        assert_eq!(peek_tag(&bytes[..3]), None);
        assert_eq!(peek_tag(&Message::Heartbeat.encode()), Some(12));
    }

    #[test]
    fn batch_view_matches_owned_decode() {
        for seq in [None, Some(u64::MAX - 7)] {
            let m = Message::EventBatch {
                node: NodeId(3),
                seq,
                records: (0..10).map(|i| rec(i, i as i64 * 100)).collect(),
            };
            let bytes = m.encode();
            let view = BatchView::parse(&bytes).unwrap();
            assert_eq!(view.node(), NodeId(3));
            assert_eq!(view.seq(), seq);
            assert_eq!(view.len(), 10);
            let Message::EventBatch { records, .. } = Message::decode(&bytes).unwrap() else {
                panic!("not a batch");
            };
            assert_eq!(view.materialize().unwrap(), records);
        }
    }

    #[test]
    fn batch_view_rejects_exactly_what_owned_decode_rejects() {
        let m = Message::EventBatch {
            node: NodeId(3),
            seq: Some(9),
            records: (0..4).map(|i| rec(i, i as i64)).collect(),
        };
        let bytes = m.encode();
        // Truncations.
        for cut in 0..bytes.len() {
            let owned = Message::decode(&bytes[..cut]).is_ok();
            let view = BatchView::parse(&bytes[..cut]).is_ok();
            assert_eq!(owned, view, "truncated at {cut}");
        }
        // Trailing bytes.
        let mut long = bytes.clone();
        long.extend_from_slice(&[0, 0, 0, 0]);
        assert!(BatchView::parse(&long).is_err());
        // Single-byte corruptions must agree bit-for-bit with the owned
        // path — the two decoders share one implementation and this pins
        // that property at the frame level.
        for i in 0..bytes.len() {
            for flip in [0x01, 0x80] {
                let mut b = bytes.clone();
                b[i] ^= flip;
                let owned = Message::decode(&b).is_ok();
                let view = BatchView::parse(&b).is_ok();
                assert_eq!(owned, view, "byte {i} flipped by {flip:#x}");
            }
        }
    }

    #[test]
    fn batch_view_rejects_non_batch_frames_and_bounds() {
        let hello = Message::Hello {
            node: NodeId(1),
            version: VERSION,
        }
        .encode();
        assert!(matches!(
            BatchView::parse(&hello),
            Err(DecodeError::UnknownTag(1))
        ));
        let mut e = XdrEncoder::new();
        e.uint(2);
        e.uint(3);
        e.uint((MAX_BATCH_RECORDS + 1) as u32);
        assert!(matches!(
            BatchView::parse(e.as_bytes()),
            Err(DecodeError::TooManyRecords { .. })
        ));
    }

    #[test]
    fn batch_view_records_borrow_the_frame() {
        let m = Message::EventBatch {
            node: NodeId(3),
            seq: None,
            records: vec![rec(1, 10)],
        };
        let bytes = m.encode();
        let view = BatchView::parse(&bytes).unwrap();
        let range = bytes.as_ptr_range();
        for rv in view.records() {
            let fields = rv.fields_bytes();
            assert!(range.contains(&fields.as_ptr()), "view copied the frame");
        }
    }
}
