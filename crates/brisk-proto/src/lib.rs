//! # brisk-proto — the BRISK transfer protocol messages
//!
//! The transfer protocol (TP) between an external sensor and the ISM is
//! XDR-based (§3.4). Each transport frame carries exactly one
//! [`Message`]; framing (length prefixes) is the transport's job
//! (`brisk-net`), encoding is this crate's.
//!
//! Message set:
//!
//! * [`Message::Hello`] — sent by the EXS when it connects; carries the
//!   protocol magic/version and the node id, which subsequent batches from
//!   this connection implicitly belong to.
//! * [`Message::HelloAck`] — *v2*: the ISM's reply to a v2 `Hello`,
//!   carrying the negotiated protocol version. Never sent to v1 peers
//!   (they would reject the unknown tag), so its absence is itself the
//!   "fall back to v1" signal.
//! * [`Message::EventBatch`] — a batch of event records. "The external
//!   sensor packages instrumentation data in XDR format with the
//!   meta-information header compressed" — each record body embeds its
//!   packed descriptor, see [`brisk_xdr::values`]. Under v2 the batch
//!   carries a per-node monotonic sequence number (`seq: Some(n)`, a
//!   distinct wire tag) so the ISM can acknowledge and deduplicate;
//!   `seq: None` encodes the v1 wire format.
//! * [`Message::BatchAck`] — *v2*: ISM→EXS cumulative acknowledgement:
//!   every sequenced batch with `seq <= ack.seq` has been handed to the
//!   ISM pipeline and may be dropped from the sender's retransmit window.
//!
//! ## Credit-based flow control (v3)
//!
//! A v3 ISM may grant a *credit budget* — the maximum number of records
//! the EXS may have unacknowledged in flight — in `HelloAck` and
//! re-advertise it on every `BatchAck` (absolute value, not a delta, so a
//! lost ack cannot strand credit). Credit rides on two *new* wire tags
//! (`HelloAckCredit`, `BatchAckCredit`) rather than extra fields on the
//! v2 tags, because decoders reject trailing bytes: a v2 peer keeps
//! receiving the exact v2 encodings (`credit: None`) and is none the
//! wiser. `credit: Some(0)` is valid and means "stop sending new batches
//! until replenished" — the EXS may still retransmit its unacknowledged
//! window.
//! * [`Message::SyncPoll`] / [`Message::SyncReply`] /
//!   [`Message::SyncAdjust`] — the clock-synchronization exchange (§3.3).
//!   The poll carries the master send time so the reply can echo it; the
//!   sample index lets the master average several exchanges per round.
//! * [`Message::Shutdown`] — orderly termination.
//!
//! ## Version negotiation
//!
//! `Hello` advertises the sender's version; the receiver accepts anything
//! in `MIN_VERSION..=VERSION` and the connection runs at
//! [`negotiate`]\(peer\) = `min(peer, VERSION)`. A v1 peer therefore
//! interoperates with a v3 ISM (plain unsequenced batches, no acks), a v2
//! peer gets acknowledged, replayable delivery without credit, and two v3
//! endpoints additionally get credit-based flow control — but only when
//! the ISM chooses to grant credit (`credit: None` on a v3 connection
//! falls back to v2 semantics).

#![deny(missing_docs)]
#![deny(unsafe_code)]

use brisk_core::{BriskError, EventRecord, NodeId, Result, UtcMicros};
use brisk_xdr::values::{decode_record_body, encode_record_body};
use brisk_xdr::{XdrDecoder, XdrEncoder};

/// Protocol magic: "BRSK".
pub const MAGIC: u32 = 0x4252_534B;

/// Protocol version implemented by this crate.
pub const VERSION: u32 = 3;

/// Oldest protocol version still accepted from peers.
pub const MIN_VERSION: u32 = 1;

/// The version a connection runs at given the peer's advertised version:
/// the highest both sides implement.
pub const fn negotiate(peer_version: u32) -> u32 {
    if peer_version < VERSION {
        peer_version
    } else {
        VERSION
    }
}

/// Maximum records accepted in one batch.
pub const MAX_BATCH_RECORDS: usize = 65_536;

/// Message discriminants on the wire. `EventBatchSeq`, `BatchAck` and
/// `HelloAck` are v2 additions; `HelloAckCredit` and `BatchAckCredit` are
/// the v3 credit-carrying variants of the latter two. Older decoders
/// reject unknown tags, so each is only sent once the peer is known to
/// speak the matching version.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
enum Tag {
    Hello = 1,
    EventBatch = 2,
    SyncPoll = 3,
    SyncReply = 4,
    SyncAdjust = 5,
    Shutdown = 6,
    EventBatchSeq = 7,
    BatchAck = 8,
    HelloAck = 9,
    HelloAckCredit = 10,
    BatchAckCredit = 11,
}

impl Tag {
    fn from_u32(v: u32) -> Result<Tag> {
        Ok(match v {
            1 => Tag::Hello,
            2 => Tag::EventBatch,
            3 => Tag::SyncPoll,
            4 => Tag::SyncReply,
            5 => Tag::SyncAdjust,
            6 => Tag::Shutdown,
            7 => Tag::EventBatchSeq,
            8 => Tag::BatchAck,
            9 => Tag::HelloAck,
            10 => Tag::HelloAckCredit,
            11 => Tag::BatchAckCredit,
            _ => return Err(BriskError::Protocol(format!("unknown message tag {v}"))),
        })
    }
}

/// One protocol message.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Connection preamble from the external sensor.
    Hello {
        /// Node this connection serves.
        node: NodeId,
        /// Protocol version spoken by the sender.
        version: u32,
    },
    /// The ISM's reply to a v2+ `Hello`: the negotiated protocol version
    /// and, on v3 connections with flow control enabled, the initial
    /// credit budget.
    HelloAck {
        /// Version the connection will run at (`negotiate(peer)`).
        version: u32,
        /// v3: maximum records the sender may have unacknowledged in
        /// flight. `None` (the v2 wire encoding) disables flow control.
        credit: Option<u64>,
    },
    /// A batch of event records from one node.
    EventBatch {
        /// Originating node (redundant with Hello; kept so a batch is
        /// self-describing for trace files and debugging).
        node: NodeId,
        /// Per-node monotonic batch sequence number. `Some(n)` encodes the
        /// v2 acknowledged-delivery wire format; `None` encodes the v1
        /// format (no ack expected, no dedup possible).
        seq: Option<u64>,
        /// The records, in per-sensor sequence order.
        records: Vec<EventRecord>,
    },
    /// ISM→EXS cumulative acknowledgement of sequenced batches (v2).
    BatchAck {
        /// Every batch with sequence number `<= seq` has been handed to
        /// the ISM pipeline.
        seq: u64,
        /// v3: replenished credit budget (absolute, replaces the previous
        /// grant). `None` (the v2 wire encoding) leaves flow control off.
        credit: Option<u64>,
    },
    /// Master→slave: "what time is it?" — sample `sample` of round `round`.
    SyncPoll {
        /// Synchronization round number.
        round: u64,
        /// Sample index within the round.
        sample: u32,
        /// Master clock at send time, echoed back in the reply.
        master_send: UtcMicros,
    },
    /// Slave→master reply to a poll.
    SyncReply {
        /// Round number echoed from the poll.
        round: u64,
        /// Sample index echoed from the poll.
        sample: u32,
        /// Master send time echoed from the poll.
        master_send: UtcMicros,
        /// Slave's corrected clock reading when the poll arrived.
        slave_time: UtcMicros,
    },
    /// Master→slave: advance your correction value.
    SyncAdjust {
        /// Round that produced this correction.
        round: u64,
        /// Microseconds to add to the slave's correction value.
        advance_us: i64,
    },
    /// Orderly shutdown notice (either direction).
    Shutdown,
}

impl Message {
    /// Encode into a transport frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = XdrEncoder::with_capacity(64);
        match self {
            Message::Hello { node, version } => {
                e.uint(Tag::Hello as u32);
                e.uint(MAGIC);
                e.uint(*version);
                e.uint(node.raw());
            }
            Message::HelloAck { version, credit } => match credit {
                Some(credit) => {
                    e.uint(Tag::HelloAckCredit as u32);
                    e.uint(*version);
                    e.uhyper(*credit);
                }
                None => {
                    e.uint(Tag::HelloAck as u32);
                    e.uint(*version);
                }
            },
            Message::EventBatch { node, seq, records } => {
                match seq {
                    Some(seq) => {
                        e.uint(Tag::EventBatchSeq as u32);
                        e.uint(node.raw());
                        e.uhyper(*seq);
                    }
                    None => {
                        e.uint(Tag::EventBatch as u32);
                        e.uint(node.raw());
                    }
                }
                e.uint(records.len() as u32);
                for r in records {
                    encode_record_body(r, &mut e);
                }
            }
            Message::BatchAck { seq, credit } => match credit {
                Some(credit) => {
                    e.uint(Tag::BatchAckCredit as u32);
                    e.uhyper(*seq);
                    e.uhyper(*credit);
                }
                None => {
                    e.uint(Tag::BatchAck as u32);
                    e.uhyper(*seq);
                }
            },
            Message::SyncPoll {
                round,
                sample,
                master_send,
            } => {
                e.uint(Tag::SyncPoll as u32);
                e.uhyper(*round);
                e.uint(*sample);
                e.hyper(master_send.as_micros());
            }
            Message::SyncReply {
                round,
                sample,
                master_send,
                slave_time,
            } => {
                e.uint(Tag::SyncReply as u32);
                e.uhyper(*round);
                e.uint(*sample);
                e.hyper(master_send.as_micros());
                e.hyper(slave_time.as_micros());
            }
            Message::SyncAdjust { round, advance_us } => {
                e.uint(Tag::SyncAdjust as u32);
                e.uhyper(*round);
                e.hyper(*advance_us);
            }
            Message::Shutdown => {
                e.uint(Tag::Shutdown as u32);
            }
        }
        e.into_bytes()
    }

    /// Decode a transport frame.
    pub fn decode(frame: &[u8]) -> Result<Message> {
        let mut d = XdrDecoder::new(frame);
        let tag = Tag::from_u32(d.uint()?)?;
        let msg = match tag {
            Tag::Hello => {
                let magic = d.uint()?;
                if magic != MAGIC {
                    return Err(BriskError::Protocol(format!(
                        "bad magic {magic:#x}, expected {MAGIC:#x}"
                    )));
                }
                let version = d.uint()?;
                if !(MIN_VERSION..=VERSION).contains(&version) {
                    return Err(BriskError::Protocol(format!(
                        "unsupported protocol version {version}"
                    )));
                }
                Message::Hello {
                    node: NodeId(d.uint()?),
                    version,
                }
            }
            Tag::HelloAck => Message::HelloAck {
                version: d.uint()?,
                credit: None,
            },
            Tag::HelloAckCredit => Message::HelloAck {
                version: d.uint()?,
                credit: Some(d.uhyper()?),
            },
            Tag::EventBatch | Tag::EventBatchSeq => {
                let node = NodeId(d.uint()?);
                let seq = match tag {
                    Tag::EventBatchSeq => Some(d.uhyper()?),
                    _ => None,
                };
                let count = d.uint()? as usize;
                if count > MAX_BATCH_RECORDS {
                    return Err(BriskError::Protocol(format!(
                        "batch of {count} records exceeds {MAX_BATCH_RECORDS}"
                    )));
                }
                let mut records = Vec::with_capacity(count.min(4096));
                for _ in 0..count {
                    records.push(decode_record_body(node, &mut d)?);
                }
                Message::EventBatch { node, seq, records }
            }
            Tag::BatchAck => Message::BatchAck {
                seq: d.uhyper()?,
                credit: None,
            },
            Tag::BatchAckCredit => Message::BatchAck {
                seq: d.uhyper()?,
                credit: Some(d.uhyper()?),
            },
            Tag::SyncPoll => Message::SyncPoll {
                round: d.uhyper()?,
                sample: d.uint()?,
                master_send: UtcMicros::from_micros(d.hyper()?),
            },
            Tag::SyncReply => Message::SyncReply {
                round: d.uhyper()?,
                sample: d.uint()?,
                master_send: UtcMicros::from_micros(d.hyper()?),
                slave_time: UtcMicros::from_micros(d.hyper()?),
            },
            Tag::SyncAdjust => Message::SyncAdjust {
                round: d.uhyper()?,
                advance_us: d.hyper()?,
            },
            Tag::Shutdown => Message::Shutdown,
        };
        d.finish()?;
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_core::{EventTypeId, SensorId, Value};

    fn rec(seq: u64, ts: i64) -> EventRecord {
        EventRecord::new(
            NodeId(3),
            SensorId(1),
            EventTypeId(7),
            seq,
            UtcMicros::from_micros(ts),
            vec![Value::I32(seq as i32), Value::Str(format!("r{seq}"))],
        )
        .unwrap()
    }

    #[test]
    fn hello_round_trip() {
        let m = Message::Hello {
            node: NodeId(9),
            version: VERSION,
        };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn hello_rejects_bad_magic_and_version() {
        let m = Message::Hello {
            node: NodeId(9),
            version: VERSION,
        };
        let mut bytes = m.encode();
        bytes[4] ^= 0xff; // clobber magic
        assert!(Message::decode(&bytes).is_err());

        let mut bytes = m.encode();
        bytes[11] = 99; // version -> 99
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn batch_round_trip() {
        let m = Message::EventBatch {
            node: NodeId(3),
            seq: None,
            records: (0..10).map(|i| rec(i, i as i64 * 100)).collect(),
        };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn sequenced_batch_round_trip() {
        let m = Message::EventBatch {
            node: NodeId(3),
            seq: Some(u64::MAX - 7),
            records: (0..10).map(|i| rec(i, i as i64 * 100)).collect(),
        };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn v2_control_messages_round_trip() {
        for m in [
            Message::HelloAck {
                version: VERSION,
                credit: None,
            },
            Message::BatchAck {
                seq: 42,
                credit: None,
            },
            Message::BatchAck {
                seq: 0,
                credit: None,
            },
        ] {
            assert_eq!(Message::decode(&m.encode()).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn v3_credit_messages_round_trip() {
        for m in [
            Message::HelloAck {
                version: VERSION,
                credit: Some(10_000),
            },
            Message::HelloAck {
                version: VERSION,
                credit: Some(0),
            },
            Message::BatchAck {
                seq: 42,
                credit: Some(u64::MAX),
            },
            Message::BatchAck {
                seq: 0,
                credit: Some(0),
            },
        ] {
            assert_eq!(Message::decode(&m.encode()).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn creditless_acks_use_the_v2_wire_tags() {
        // A credit-less ack must be byte-identical to what a v2 build
        // emits, or v2 peers would reject the frame as an unknown tag.
        let ack = Message::BatchAck {
            seq: 7,
            credit: None,
        };
        assert_eq!(&ack.encode()[..4], &[0, 0, 0, 8], "BatchAck tag");
        let hello_ack = Message::HelloAck {
            version: 2,
            credit: None,
        };
        assert_eq!(&hello_ack.encode()[..4], &[0, 0, 0, 9], "HelloAck tag");
        // And the credit-carrying forms use the new tags.
        let ack = Message::BatchAck {
            seq: 7,
            credit: Some(1),
        };
        assert_eq!(&ack.encode()[..4], &[0, 0, 0, 11], "BatchAckCredit tag");
        let hello_ack = Message::HelloAck {
            version: 3,
            credit: Some(1),
        };
        assert_eq!(
            &hello_ack.encode()[..4],
            &[0, 0, 0, 10],
            "HelloAckCredit tag"
        );
    }

    #[test]
    fn v1_hello_still_accepted() {
        let m = Message::Hello {
            node: NodeId(4),
            version: MIN_VERSION,
        };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn negotiate_picks_highest_common_version() {
        assert_eq!(negotiate(1), 1);
        assert_eq!(negotiate(VERSION), VERSION);
        assert_eq!(negotiate(VERSION + 5), VERSION);
    }

    #[test]
    fn empty_batch_round_trip() {
        let m = Message::EventBatch {
            node: NodeId(3),
            seq: None,
            records: vec![],
        };
        assert_eq!(Message::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn batch_count_bound_enforced() {
        // Forge a batch header claiming too many records.
        let mut e = XdrEncoder::new();
        e.uint(2); // EventBatch tag
        e.uint(3); // node
        e.uint((MAX_BATCH_RECORDS + 1) as u32);
        assert!(Message::decode(e.as_bytes()).is_err());
    }

    #[test]
    fn sync_messages_round_trip() {
        for m in [
            Message::SyncPoll {
                round: 5,
                sample: 2,
                master_send: UtcMicros::from_micros(123),
            },
            Message::SyncReply {
                round: 5,
                sample: 2,
                master_send: UtcMicros::from_micros(123),
                slave_time: UtcMicros::from_micros(456),
            },
            Message::SyncAdjust {
                round: 5,
                advance_us: -42,
            },
            Message::Shutdown,
        ] {
            assert_eq!(Message::decode(&m.encode()).unwrap(), m, "{m:?}");
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut e = XdrEncoder::new();
        e.uint(77);
        assert!(Message::decode(e.as_bytes()).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Message::Shutdown.encode();
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn truncated_frames_rejected() {
        let m = Message::EventBatch {
            node: NodeId(3),
            seq: Some(5),
            records: vec![rec(0, 1)],
        };
        let bytes = m.encode();
        for cut in [0, 3, 8, bytes.len() - 1] {
            assert!(Message::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn batch_wire_size_is_modest() {
        // 256 six-i32 records must stay near 256 * 56 bytes + small header.
        let records: Vec<EventRecord> = (0..256)
            .map(|i| {
                EventRecord::new(
                    NodeId(1),
                    SensorId(0),
                    EventTypeId(1),
                    i,
                    UtcMicros::from_micros(i as i64),
                    vec![Value::I32(0); 6],
                )
                .unwrap()
            })
            .collect();
        let m = Message::EventBatch {
            node: NodeId(1),
            seq: None,
            records,
        };
        let bytes = m.encode();
        assert_eq!(bytes.len(), 12 + 256 * 56);
    }
}
