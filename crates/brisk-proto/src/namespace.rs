//! Node-id namespacing for hierarchical relay trees.
//!
//! A relay ISM re-exports its merged subtree upstream as if it were a
//! single EXS. For the root to see a flat, collision-free node namespace,
//! each relay tier rewrites every node id (and every CRE correlation id,
//! so reason→conseq links keep pointing at each other) by shifting the
//! raw value left by [`NodePrefix::BITS`] and OR-ing in its own prefix:
//!
//! ```text
//! rewrite(n)       = (n << 8) | prefix          (prefix < 256)
//! tier2(tier1(n))  = (n << 16) | (p1 << 8) | p2
//! ```
//!
//! The low byte of a rewritten id therefore names the *last* relay the
//! record crossed, and stripping is exact: `strip` checks the low byte
//! and shifts back, so `strip(apply(n)) == n` always, and composition
//! across tiers round-trips tier by tier (outermost prefix strips
//! first). The rewrite is injective per tier — two distinct downstream
//! ids can never collide upstream — provided the pre-rewrite id fits in
//! the remaining bits, which [`NodePrefix::apply_node`] checks: a tree
//! deeper than `32 / BITS` tiers (or raw node ids ≥ 2^24 under one tier)
//! overflows and is rejected rather than silently aliased.
//!
//! Correlation ids are rewritten with the same scheme on their 64-bit
//! space (guard: raw id < 2^56 per tier). Correlations are assumed
//! subtree-local: a reason on one relay's subtree cannot name a conseq
//! on another's, because each subtree's ids land in disjoint upstream
//! ranges by construction.

use crate::DecodeError;
use brisk_core::{CorrelationId, EventRecord, NodeId, Value};
use std::fmt;

/// A relay's node-id namespace prefix (one tier of the tree).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodePrefix(u32);

/// Why a prefix rewrite could not be applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NamespaceError {
    /// The prefix value itself does not fit in [`NodePrefix::BITS`] bits.
    PrefixTooLarge(u32),
    /// A node id would overflow 32 bits once shifted.
    NodeOverflow(u32),
    /// A correlation id would overflow 64 bits once shifted.
    CorrelationOverflow(u64),
}

impl fmt::Display for NamespaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NamespaceError::PrefixTooLarge(p) => {
                write!(
                    f,
                    "node prefix {p} does not fit in {} bits",
                    NodePrefix::BITS
                )
            }
            NamespaceError::NodeOverflow(n) => {
                write!(
                    f,
                    "node id {n} too large to prefix (max {})",
                    NodePrefix::MAX_NODE
                )
            }
            NamespaceError::CorrelationOverflow(c) => {
                write!(
                    f,
                    "correlation id {c} too large to prefix (max {})",
                    NodePrefix::MAX_CORRELATION
                )
            }
        }
    }
}

impl std::error::Error for NamespaceError {}

impl From<NamespaceError> for brisk_core::BriskError {
    fn from(e: NamespaceError) -> Self {
        brisk_core::BriskError::Protocol(e.to_string())
    }
}

impl From<NamespaceError> for DecodeError {
    fn from(e: NamespaceError) -> Self {
        DecodeError::Record(e.to_string())
    }
}

impl NodePrefix {
    /// Bits one tier of prefix consumes.
    pub const BITS: u32 = 8;

    /// Largest raw node id that can pass through one rewrite tier.
    pub const MAX_NODE: u32 = (1 << (32 - Self::BITS)) - 1;

    /// Largest raw correlation id that can pass through one rewrite tier.
    pub const MAX_CORRELATION: u64 = (1 << (64 - Self::BITS)) - 1;

    /// Validate and wrap a prefix value (must fit in [`Self::BITS`] bits
    /// and be non-zero — prefix 0 would make rewritten ids
    /// indistinguishable from small unrewritten ones at the root).
    pub fn new(prefix: u32) -> Result<NodePrefix, NamespaceError> {
        if prefix == 0 || prefix >= (1 << Self::BITS) {
            return Err(NamespaceError::PrefixTooLarge(prefix));
        }
        Ok(NodePrefix(prefix))
    }

    /// The raw prefix value.
    pub fn raw(&self) -> u32 {
        self.0
    }

    /// The node id a relay with this prefix uses for *itself* on its
    /// upstream link: the bare prefix value. Downstream ids are shifted
    /// past [`Self::BITS`] bits, so the relay's own id can never collide
    /// with a rewritten subtree id (those always have a non-zero high
    /// part once shifted, while the bare prefix is < 2^BITS).
    pub fn relay_node(&self) -> NodeId {
        NodeId(self.0)
    }

    /// Rewrite one node id into this prefix's namespace.
    pub fn apply_node(&self, node: NodeId) -> Result<NodeId, NamespaceError> {
        if node.raw() > Self::MAX_NODE {
            return Err(NamespaceError::NodeOverflow(node.raw()));
        }
        Ok(NodeId((node.raw() << Self::BITS) | self.0))
    }

    /// Undo [`Self::apply_node`]. `None` when the id's low bits name a
    /// different prefix (the id did not come through this relay).
    pub fn strip_node(&self, node: NodeId) -> Option<NodeId> {
        if node.raw() & ((1 << Self::BITS) - 1) != self.0 {
            return None;
        }
        Some(NodeId(node.raw() >> Self::BITS))
    }

    /// Rewrite one correlation id into this prefix's namespace.
    pub fn apply_correlation(&self, id: CorrelationId) -> Result<CorrelationId, NamespaceError> {
        if id.raw() > Self::MAX_CORRELATION {
            return Err(NamespaceError::CorrelationOverflow(id.raw()));
        }
        Ok(CorrelationId((id.raw() << Self::BITS) | self.0 as u64))
    }

    /// Undo [`Self::apply_correlation`]. `None` when the low bits name a
    /// different prefix.
    pub fn strip_correlation(&self, id: CorrelationId) -> Option<CorrelationId> {
        if id.raw() & ((1 << Self::BITS) - 1) != self.0 as u64 {
            return None;
        }
        Some(CorrelationId(id.raw() >> Self::BITS))
    }

    /// Rewrite a record in place: its node id plus any `X_REASON` /
    /// `X_CONSEQ` correlation links, so CRE causality survives the tier
    /// intact. Sensor ids, event types, sequence numbers, timestamps and
    /// payload fields pass through untouched.
    pub fn rewrite_record(&self, rec: &mut EventRecord) -> Result<(), NamespaceError> {
        rec.node = self.apply_node(rec.node)?;
        for field in &mut rec.fields {
            match field {
                Value::Reason(id) => *id = self.apply_correlation(*id)?,
                Value::Conseq(id) => *id = self.apply_correlation(*id)?,
                _ => {}
            }
        }
        Ok(())
    }

    /// Undo [`Self::rewrite_record`]. `None` when any id in the record
    /// carries a different prefix.
    pub fn strip_record(&self, rec: &mut EventRecord) -> Option<()> {
        rec.node = self.strip_node(rec.node)?;
        for field in &mut rec.fields {
            match field {
                Value::Reason(id) => *id = self.strip_correlation(*id)?,
                Value::Conseq(id) => *id = self.strip_correlation(*id)?,
                _ => {}
            }
        }
        Some(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use brisk_core::{EventTypeId, SensorId, UtcMicros};

    fn rec(node: u32, reason: Option<u64>, conseq: Option<u64>) -> EventRecord {
        let mut fields = vec![Value::I32(7)];
        if let Some(r) = reason {
            fields.push(Value::Reason(CorrelationId(r)));
        }
        if let Some(c) = conseq {
            fields.push(Value::Conseq(CorrelationId(c)));
        }
        EventRecord::new(
            NodeId(node),
            SensorId(1),
            EventTypeId(2),
            3,
            UtcMicros::from_micros(100),
            fields,
        )
        .unwrap()
    }

    #[test]
    fn prefix_validates_range() {
        assert!(NodePrefix::new(0).is_err());
        assert!(NodePrefix::new(1).is_ok());
        assert!(NodePrefix::new(255).is_ok());
        assert!(NodePrefix::new(256).is_err());
    }

    #[test]
    fn node_round_trips_and_rejects_foreign_prefix() {
        let p = NodePrefix::new(7).unwrap();
        let q = NodePrefix::new(9).unwrap();
        let n = NodeId(1234);
        let rewritten = p.apply_node(n).unwrap();
        assert_eq!(rewritten, NodeId((1234 << 8) | 7));
        assert_eq!(p.strip_node(rewritten), Some(n));
        assert_eq!(q.strip_node(rewritten), None);
    }

    #[test]
    fn node_overflow_rejected() {
        let p = NodePrefix::new(1).unwrap();
        assert!(p.apply_node(NodeId(NodePrefix::MAX_NODE)).is_ok());
        assert_eq!(
            p.apply_node(NodeId(NodePrefix::MAX_NODE + 1)),
            Err(NamespaceError::NodeOverflow(NodePrefix::MAX_NODE + 1))
        );
    }

    #[test]
    fn correlation_round_trips() {
        let p = NodePrefix::new(31).unwrap();
        let id = CorrelationId(0xDEAD_BEEF);
        let rewritten = p.apply_correlation(id).unwrap();
        assert_eq!(p.strip_correlation(rewritten), Some(id));
        assert!(p
            .apply_correlation(CorrelationId(NodePrefix::MAX_CORRELATION + 1))
            .is_err());
    }

    #[test]
    fn two_tiers_compose_and_strip_in_order() {
        let inner = NodePrefix::new(3).unwrap();
        let outer = NodePrefix::new(5).unwrap();
        let n = NodeId(42);
        let once = inner.apply_node(n).unwrap();
        let twice = outer.apply_node(once).unwrap();
        assert_eq!(twice, NodeId((42 << 16) | (3 << 8) | 5));
        // Outermost prefix strips first.
        assert_eq!(outer.strip_node(twice), Some(once));
        assert_eq!(inner.strip_node(once), Some(n));
        // Wrong order fails loudly instead of aliasing.
        assert_eq!(inner.strip_node(twice), None);
    }

    #[test]
    fn record_rewrite_covers_node_and_correlations() {
        let p = NodePrefix::new(11).unwrap();
        let mut r = rec(9, Some(100), Some(200));
        let original = r.clone();
        p.rewrite_record(&mut r).unwrap();
        assert_eq!(r.node, NodeId((9 << 8) | 11));
        assert_eq!(r.reason_id(), Some(CorrelationId((100 << 8) | 11)));
        assert_eq!(r.conseq_id(), Some(CorrelationId((200 << 8) | 11)));
        // Non-correlation fields untouched.
        assert_eq!(r.fields[0], Value::I32(7));
        p.strip_record(&mut r).unwrap();
        assert_eq!(r, original);
    }

    #[test]
    fn relay_node_is_disjoint_from_rewritten_subtree() {
        let p = NodePrefix::new(200).unwrap();
        assert_eq!(p.relay_node(), NodeId(200));
        // The smallest rewritten id (node 1) is already ≥ 2^BITS.
        let smallest = p.apply_node(NodeId(1)).unwrap();
        assert!(smallest.raw() >= (1 << NodePrefix::BITS));
        // Node 0 rewrites to the bare prefix — same as the relay's own
        // id, which is why leaves use non-zero node ids (enforced where
        // nodes register, not here).
        assert_eq!(p.apply_node(NodeId(0)).unwrap(), p.relay_node());
    }
}
