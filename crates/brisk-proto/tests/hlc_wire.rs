//! `X_HLC` wire coverage: the hybrid-logical-clock stamp must survive
//! every batch wire format (v1 unsequenced, v2/v3 sequenced, relay-tier
//! multi-node) and the relay namespace rewrite, or causal ordering
//! silently degrades to the physical-timestamp heuristic downstream.

use brisk_core::prelude::*;
use brisk_proto::{Message, NodePrefix};

fn stamped_record(node: u32, seq: u64, physical: i64, logical: u32) -> EventRecord {
    EventRecord::builder(EventTypeId(7))
        .field(Value::I32(-5))
        .reason(CorrelationId(42))
        .hlc(HlcStamp::new(UtcMicros::from_micros(physical), logical))
        .build(
            NodeId(node),
            SensorId(1),
            seq,
            UtcMicros::from_micros(physical - 3),
        )
        .unwrap()
}

fn round_trip(msg: &Message) -> Message {
    Message::decode(&msg.encode()).expect("self-encoded frame decodes")
}

#[test]
fn hlc_survives_v1_unsequenced_batch() {
    let msg = Message::EventBatch {
        node: NodeId(3),
        seq: None,
        records: vec![stamped_record(3, 1, 2_000_000, 5)],
    };
    match round_trip(&msg) {
        Message::EventBatch { seq, records, .. } => {
            assert_eq!(seq, None);
            assert_eq!(
                records[0].hlc(),
                Some(HlcStamp::new(UtcMicros::from_micros(2_000_000), 5))
            );
        }
        other => panic!("expected batch, got {other:?}"),
    }
}

#[test]
fn hlc_survives_v2_sequenced_batch() {
    let msg = Message::EventBatch {
        node: NodeId(3),
        seq: Some(9),
        records: vec![
            stamped_record(3, 1, 2_000_000, 0),
            stamped_record(3, 2, 2_000_000, 1),
        ],
    };
    match round_trip(&msg) {
        Message::EventBatch { seq, records, .. } => {
            assert_eq!(seq, Some(9));
            let stamps: Vec<_> = records.iter().map(|r| r.hlc().unwrap()).collect();
            assert_eq!(stamps[0].logical, 0);
            assert_eq!(stamps[1].logical, 1);
            assert!(stamps[0] < stamps[1], "stamp order survives the wire");
        }
        other => panic!("expected batch, got {other:?}"),
    }
}

#[test]
fn hlc_survives_relay_multi_node_batch() {
    // Mixed-origin records force the relay-tier EventBatchMulti format.
    let msg = Message::EventBatch {
        node: NodeId(1),
        seq: Some(4),
        records: vec![
            stamped_record(17, 1, 2_000_000, 2),
            stamped_record(33, 1, 2_000_500, 0),
        ],
    };
    match round_trip(&msg) {
        Message::EventBatch { records, .. } => {
            assert_eq!(records[0].node, NodeId(17));
            assert_eq!(
                records[0].hlc(),
                Some(HlcStamp::new(UtcMicros::from_micros(2_000_000), 2))
            );
            assert_eq!(
                records[1].hlc(),
                Some(HlcStamp::new(UtcMicros::from_micros(2_000_500), 0))
            );
        }
        other => panic!("expected batch, got {other:?}"),
    }
}

#[test]
fn namespace_rewrite_passes_hlc_untouched() {
    let prefix = NodePrefix::new(5).unwrap();
    let mut rec = stamped_record(3, 1, 2_000_000, 7);
    let before = rec.hlc().unwrap();
    prefix.rewrite_record(&mut rec).unwrap();
    // Node and correlation ids moved into the prefixed namespace; the
    // causal stamp must not.
    assert_ne!(rec.node, NodeId(3));
    assert_ne!(rec.reason_id(), Some(CorrelationId(42)));
    assert_eq!(rec.hlc(), Some(before));
    // And the stamp also survives stripping back out.
    prefix.strip_record(&mut rec).unwrap();
    assert_eq!(rec.node, NodeId(3));
    assert_eq!(rec.hlc(), Some(before));
}

#[test]
fn rewritten_stamped_record_round_trips_the_wire() {
    // The full relay path: stamp, rewrite into the relay namespace, ship
    // in a multi-node batch, decode at the root — stamp intact.
    let prefix = NodePrefix::new(2).unwrap();
    let mut rec = stamped_record(3, 1, 2_000_000, 1);
    prefix.rewrite_record(&mut rec).unwrap();
    let other = stamped_record(200, 1, 2_000_100, 0);
    let msg = Message::EventBatch {
        node: prefix.relay_node(),
        seq: Some(1),
        records: vec![rec.clone(), other],
    };
    match round_trip(&msg) {
        Message::EventBatch { records, .. } => {
            assert_eq!(records[0], rec);
            assert_eq!(
                records[0].hlc(),
                Some(HlcStamp::new(UtcMicros::from_micros(2_000_000), 1))
            );
        }
        other => panic!("expected batch, got {other:?}"),
    }
}
