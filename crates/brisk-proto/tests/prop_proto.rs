//! Fuzz harness for the wire-message decoder: whatever bytes the network
//! delivers, `Message::decode` must return a typed error — never panic and
//! never allocate proportionally to an attacker-declared length.

use brisk_core::prelude::*;
use brisk_proto::{Message, MAX_BATCH_RECORDS, VERSION};
use proptest::prelude::*;

/// A pool of valid frames covering every message variant, so the mutation
/// tests start from realistic inputs rather than pure noise.
fn valid_frames() -> Vec<Vec<u8>> {
    let record = EventRecord::new(
        NodeId(3),
        SensorId(1),
        EventTypeId(7),
        42,
        UtcMicros::from_micros(1_000_000),
        vec![Value::I32(-5), Value::Str("x".into())],
    )
    .unwrap();
    [
        Message::Hello {
            node: NodeId(3),
            version: VERSION,
        },
        Message::HelloAck {
            version: VERSION,
            credit: Some(1024),
        },
        Message::EventBatch {
            node: NodeId(3),
            seq: Some(9),
            records: vec![record],
        },
        Message::BatchAck {
            seq: 9,
            credit: Some(512),
        },
        Message::SyncPoll {
            round: 2,
            sample: 1,
            master_send: UtcMicros::from_micros(5),
        },
        Message::SyncReply {
            round: 2,
            sample: 1,
            master_send: UtcMicros::from_micros(5),
            slave_time: UtcMicros::from_micros(6),
        },
        Message::SyncAdjust {
            round: 2,
            advance_us: -30,
        },
        Message::Shutdown,
        Message::Heartbeat,
    ]
    .iter()
    .map(Message::encode)
    .collect()
}

proptest! {
    /// Pure noise: decode must return Ok or Err, never panic.
    #[test]
    fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::decode(&bytes);
    }

    /// Single-byte corruption of a valid frame — the fault plane's
    /// `Corrupt` fault — must decode to Ok (the flip landed somewhere
    /// harmless) or a typed Err, never panic.
    #[test]
    fn decode_survives_flipped_byte(
        which in any::<usize>(),
        pos in any::<usize>(),
        xor in 1..=255u8,
    ) {
        let frames = valid_frames();
        let mut frame = frames[which % frames.len()].clone();
        if !frame.is_empty() {
            let pos = pos % frame.len();
            frame[pos] ^= xor;
        }
        let _ = Message::decode(&frame);
    }

    /// Truncation at every possible point — the fault plane's `Truncate`
    /// fault — must yield a typed error, never panic.
    #[test]
    fn decode_survives_truncation(which in any::<usize>(), cut in any::<usize>()) {
        let frames = valid_frames();
        let frame = &frames[which % frames.len()];
        let cut = cut % (frame.len() + 1);
        let _ = Message::decode(&frame[..cut]);
    }
}

/// A batch header declaring `u32::MAX` records must be rejected from the
/// header alone — before any proportional allocation.
#[test]
fn declared_length_bomb_is_rejected_without_allocation() {
    // Hand-build the smallest EventBatch prefix: tag, node, seq-flag,
    // seq, then a count far past MAX_BATCH_RECORDS with no body behind it.
    let valid = Message::EventBatch {
        node: NodeId(1),
        seq: Some(1),
        records: vec![],
    }
    .encode();
    let mut bomb = valid;
    let count_off = bomb.len() - 4; // trailing u32 record count
    bomb[count_off..].copy_from_slice(&u32::MAX.to_be_bytes());
    let err = Message::decode(&bomb).unwrap_err();
    assert!(
        err.to_string().contains(&MAX_BATCH_RECORDS.to_string()),
        "expected the record-count bound in the error, got: {err}"
    );
}
