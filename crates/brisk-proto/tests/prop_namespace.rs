//! Property tests for relay node-id namespacing: prefix rewrites of node
//! ids and CRE reason/conseq correlation links must round-trip through
//! the wire encode/decode path, and must compose across two relay tiers
//! exactly like nested shifts — no aliasing, no cross-prefix confusion.

use brisk_core::prelude::*;
use brisk_proto::{Message, NodePrefix};
use proptest::prelude::*;

/// A record whose ids stay within two tiers of rewrite headroom
/// (node < 2^16, correlation < 2^48), with optional reason/conseq links.
fn arb_record() -> impl Strategy<Value = EventRecord> {
    (
        (1u32..(1 << 16), 0u32..256, 1u32..64, 0u64..(1u64 << 32)),
        0i64..1_000_000_000,
        (any::<bool>(), 0u64..(1u64 << 48)),
        (any::<bool>(), 0u64..(1u64 << 48)),
        -1000i32..1000,
    )
        .prop_map(
            |(
                (node, sensor, ety, seq),
                ts,
                (has_reason, reason),
                (has_conseq, conseq),
                payload,
            )| {
                let mut fields = vec![Value::I32(payload)];
                if has_reason {
                    fields.push(Value::Reason(CorrelationId(reason)));
                }
                if has_conseq {
                    fields.push(Value::Conseq(CorrelationId(conseq)));
                }
                EventRecord::new(
                    NodeId(node),
                    SensorId(sensor),
                    EventTypeId(ety),
                    seq,
                    UtcMicros::from_micros(ts),
                    fields,
                )
                .unwrap()
            },
        )
}

fn arb_prefix() -> impl Strategy<Value = NodePrefix> {
    (1u32..256).prop_map(|p| NodePrefix::new(p).unwrap())
}

fn encode_decode(records: Vec<EventRecord>, seq: u64) -> Vec<EventRecord> {
    let node = records.first().map(|r| r.node).unwrap_or(NodeId(1));
    let frame = Message::EventBatch {
        node,
        seq: Some(seq),
        records,
    }
    .encode();
    match Message::decode(&frame).expect("rewritten batch must stay decodable") {
        Message::EventBatch { records, .. } => records,
        other => panic!("decoded to {other:?}"),
    }
}

proptest! {
    /// One tier: rewrite → encode → decode → strip restores the record
    /// bit-for-bit, and a foreign prefix refuses to strip it.
    #[test]
    fn rewrite_round_trips_through_the_wire(
        rec in arb_record(),
        prefix in arb_prefix(),
        other in arb_prefix(),
    ) {
        let original = rec.clone();
        let mut rewritten = rec;
        prefix.rewrite_record(&mut rewritten).unwrap();

        // Node and correlation ids all carry the prefix in their low byte.
        prop_assert_eq!(rewritten.node.raw() & 0xFF, prefix.raw());
        if let Some(id) = rewritten.reason_id() {
            prop_assert_eq!(id.raw() & 0xFF, prefix.raw() as u64);
        }
        if let Some(id) = rewritten.conseq_id() {
            prop_assert_eq!(id.raw() & 0xFF, prefix.raw() as u64);
        }

        let mut back = encode_decode(vec![rewritten], 1).pop().unwrap();
        if other != prefix {
            let mut probe = back.clone();
            prop_assert!(other.strip_record(&mut probe).is_none());
        }
        prop_assert!(prefix.strip_record(&mut back).is_some());
        prop_assert_eq!(back, original);
    }

    /// Two tiers compose: inner then outer rewrite equals a 16-bit shift
    /// with both prefixes packed, survives the wire, and strips back in
    /// outer-first order. A wrong-order strip fails instead of aliasing.
    #[test]
    fn two_tiers_compose_across_the_wire(
        rec in arb_record(),
        inner in arb_prefix(),
        outer in arb_prefix(),
    ) {
        let original = rec.clone();
        let mut r = rec;
        inner.rewrite_record(&mut r).unwrap();
        let after_inner = r.clone();
        outer.rewrite_record(&mut r).unwrap();

        // Packed-shift shape on the node id.
        let expected = (original.node.raw() << 16)
            | (inner.raw() << 8)
            | outer.raw();
        prop_assert_eq!(r.node.raw(), expected);

        let mut back = encode_decode(vec![r], 7).pop().unwrap();

        // Wrong order: inner cannot strip the outer tier unless the two
        // prefixes happen to be equal.
        if inner != outer {
            let mut probe = back.clone();
            prop_assert!(inner.strip_record(&mut probe).is_none());
        }

        prop_assert!(outer.strip_record(&mut back).is_some());
        prop_assert_eq!(&back, &after_inner);
        prop_assert!(inner.strip_record(&mut back).is_some());
        prop_assert_eq!(back, original);
    }

    /// A relay's merged batch mixes records from several downstream
    /// nodes under one header (the relay's own upstream identity). The
    /// encoder must pick the multi-node wire format, the decoder must
    /// restore every per-record node, and stripping must recover each
    /// original record — nothing may collapse to the header node.
    #[test]
    fn multi_node_relay_batches_round_trip(
        recs in proptest::collection::vec(arb_record(), 1..5),
        prefix in arb_prefix(),
    ) {
        let originals = recs.clone();
        let mut rewritten = recs;
        for r in &mut rewritten {
            prefix.rewrite_record(r).unwrap();
        }
        let mixed = rewritten.iter().any(|r| r.node != prefix.relay_node());

        let frame = Message::EventBatch {
            node: prefix.relay_node(),
            seq: Some(3),
            records: rewritten.clone(),
        }
        .encode();
        if mixed {
            // Tag 13 = EventBatchMulti, the per-record-node wire format.
            prop_assert_eq!(brisk_proto::peek_tag(&frame), Some(13));
        }
        let decoded = match Message::decode(&frame).expect("relay batch must decode") {
            Message::EventBatch { node, seq, records } => {
                prop_assert_eq!(node, prefix.relay_node());
                prop_assert_eq!(seq, Some(3));
                records
            }
            other => panic!("decoded to {other:?}"),
        };
        prop_assert_eq!(&decoded, &rewritten);
        for (mut back, original) in decoded.into_iter().zip(originals) {
            prop_assert!(prefix.strip_record(&mut back).is_some());
            prop_assert_eq!(back, original);
        }
    }

    /// Distinct downstream node ids never collide after rewrite, even
    /// across distinct prefixes (injectivity is what makes the root's
    /// namespace flat and collision-free).
    #[test]
    fn rewrite_is_injective(
        a in 1u32..(1 << 16),
        b in 1u32..(1 << 16),
        pa in arb_prefix(),
        pb in arb_prefix(),
    ) {
        let ra = pa.apply_node(NodeId(a)).unwrap();
        let rb = pb.apply_node(NodeId(b)).unwrap();
        if a != b || pa != pb {
            prop_assert_ne!(ra, rb);
        } else {
            prop_assert_eq!(ra, rb);
        }
    }
}
