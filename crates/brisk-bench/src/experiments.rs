//! The experiment implementations, one per evaluation item of §4.
//!
//! Every function prints one or more tables and returns nothing; the
//! `experiments` binary maps subcommands onto them. `quick` shrinks
//! durations for CI-style smoke runs.

use crate::rig::{blast_events, paced_events, six_i32_fields, start_ism, start_node};
use crate::table::{f, Table};
use brisk_clock::SystemClock;
use brisk_consumers::{LatencyTracker, SummaryStats};
use brisk_core::config::FrameGrowth;
use brisk_core::{
    EventTypeId, ExsConfig, IsmConfig, NodeId, SorterConfig, SyncConfig, UtcMicros, Value,
};
use brisk_lis::spawn_exs;
use brisk_net::{MemTransport, TcpTransport, Transport};
use brisk_ringbuf::RingSet;
use brisk_sim::{
    run_causal_experiment, run_sorting_experiment, CausalConfig, DelayModel, SortingConfig,
    SyncSimConfig, SyncSimulation,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// E1 — cost of one `NOTICE` (paper: 3.6–18.6 µs across platforms).
pub fn e1_notice_cost(quick: bool) {
    type ShapeFn = Box<dyn Fn(u64) -> Vec<Value>>;
    let iters: u64 = if quick { 50_000 } else { 500_000 };
    let shapes: Vec<(&str, ShapeFn)> = vec![
        ("0 fields", Box::new(|_| vec![])),
        ("2 x i32", Box::new(|i| vec![Value::I32(i as i32); 2])),
        ("6 x i32 (paper)", Box::new(six_i32_fields)),
        ("8 x i32", Box::new(|i| vec![Value::I32(i as i32); 8])),
        (
            "ts + str(16)",
            Box::new(|i| {
                vec![
                    Value::Ts(UtcMicros::from_micros(i as i64)),
                    Value::Str("abcdefgh12345678".into()),
                ]
            }),
        ),
        (
            "mixed 4",
            Box::new(|i| {
                vec![
                    Value::I64(i as i64),
                    Value::F64(i as f64),
                    Value::U8(i as u8),
                    Value::Bool(i % 2 == 0),
                ]
            }),
        ),
    ];

    let mut table = Table::new(&["record shape", "ns/notice", "us/notice", "Mev/s"]);
    for (name, make) in shapes {
        let rings = RingSet::new(NodeId(0), 1 << 22);
        let mut port = rings.register();
        // Dedicated drainer so the ring never fills.
        let stop = Arc::new(AtomicBool::new(false));
        let drainer = {
            let rings = Arc::clone(&rings);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut buf = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    buf.clear();
                    if rings.drain_into(4096, &mut buf).unwrap_or(0) == 0 {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let clock = SystemClock;
        let start = Instant::now();
        for i in 0..iters {
            // The full sensor path: clock read + record build + ring write.
            let _ = port.emit(EventTypeId(1), brisk_clock::Clock::now(&clock), make(i));
        }
        let elapsed = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        drainer.join().unwrap();
        let ns = elapsed.as_nanos() as f64 / iters as f64;
        table.row(&[name.to_string(), f(ns), f(ns / 1_000.0), f(1_000.0 / ns)]);
    }
    table.print("E1: CPU cost per NOTICE (paper: 3.6–18.6 µs on 1996-era CPUs)");
}

/// E2 — EXS CPU utilization at fixed event rates (paper: <1% up to
/// 38,000 ev/s).
pub fn e2_exs_utilization(quick: bool) {
    let duration = Duration::from_millis(if quick { 500 } else { 2_000 });
    let rates = [1_000.0, 10_000.0, 38_000.0, 80_000.0];
    let mut table = Table::new(&["target ev/s", "achieved ev/s", "EXS busy %", "dropped"]);
    for rate in rates {
        let t = MemTransport::new();
        let mut listener = t.listen("sink").unwrap();
        // Bare sink: consumes frames so the EXS is measured in isolation.
        let sink_stop = Arc::new(AtomicBool::new(false));
        let sink = {
            let stop = Arc::clone(&sink_stop);
            std::thread::spawn(move || {
                let mut conn = listener
                    .accept(Some(Duration::from_secs(5)))
                    .unwrap()
                    .unwrap();
                while !stop.load(Ordering::Relaxed) {
                    match conn.recv(Some(Duration::from_millis(20))) {
                        Ok(_) => {}
                        Err(_) => break,
                    }
                }
            })
        };
        let clock = Arc::new(SystemClock);
        let rings = RingSet::new(NodeId(1), 1 << 22);
        let exs = spawn_exs(
            NodeId(1),
            Arc::clone(&rings),
            clock.clone(),
            t.connect("sink").unwrap(),
            ExsConfig::default(),
        )
        .unwrap();
        let mut port = rings.register();
        let wall = Instant::now();
        let (emitted, dropped) = paced_events(&mut port, &SystemClock, rate, duration);
        let wall = wall.elapsed();
        std::thread::sleep(Duration::from_millis(60)); // let the EXS drain
        let stats = exs.stop().unwrap();
        sink_stop.store(true, Ordering::Relaxed);
        sink.join().unwrap();
        let busy_pct = 100.0 * stats.busy_nanos as f64 / wall.as_nanos() as f64;
        table.row(&[
            f(rate),
            f(emitted as f64 / wall.as_secs_f64()),
            f(busy_pct),
            dropped.to_string(),
        ]);
    }
    table.print("E2: EXS CPU utilization vs event rate (paper: <1% at 38k ev/s)");
}

/// E3 — maximum EXS→ISM event throughput (paper: 90,000 ev/s for 40-byte
/// records over 155 Mbps ATM).
pub fn e3_throughput(quick: bool) {
    let events: u64 = if quick { 50_000 } else { 400_000 };
    let mut table = Table::new(&["transport", "batch records", "events/s", "MB/s (wire)"]);
    for (tname, use_tcp) in [("mem", false), ("tcp-loopback", true)] {
        for batch in [16usize, 64, 256, 1024] {
            let mem;
            let tcp;
            let (transport, addr): (&dyn Transport, String) = if use_tcp {
                tcp = TcpTransport;
                (&tcp, "127.0.0.1:0".to_string())
            } else {
                mem = MemTransport::new();
                (&mem, "ism".to_string())
            };
            let ism_cfg = IsmConfig {
                sorter: SorterConfig {
                    initial_frame_us: 100,
                    min_frame_us: 100,
                    ..SorterConfig::default()
                },
                ..IsmConfig::default()
            };
            let ism = start_ism(transport, &addr, ism_cfg, SyncConfig::default()).unwrap();
            let exs_cfg = ExsConfig {
                max_batch_records: batch,
                max_batch_bytes: usize::MAX >> 1,
                ring_capacity: 1 << 22,
                ..ExsConfig::default()
            };
            let node = start_node(transport, ism.addr(), NodeId(1), exs_cfg).unwrap();
            let mut port = node.lis.register();
            let mut reader = ism.memory().reader_from_now();
            let start = Instant::now();
            let gen = std::thread::spawn(move || blast_events(&mut port, &SystemClock, events));
            let mut delivered: u64 = 0;
            let deadline = Instant::now() + Duration::from_secs(60);
            while delivered < events && Instant::now() < deadline {
                let (recs, missed) = reader.poll().unwrap();
                delivered += recs.len() as u64 + missed;
                if recs.is_empty() {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            let elapsed = start.elapsed();
            gen.join().unwrap();
            node.exs.stop().unwrap();
            ism.stop().unwrap();
            let rate = delivered as f64 / elapsed.as_secs_f64();
            // 56 wire bytes per six-i32 record body (see brisk-xdr tests).
            let mbps = rate * 56.0 / 1e6;
            table.row(&[tname.to_string(), batch.to_string(), f(rate), f(mbps)]);
        }
    }
    table.print("E3: max EXS→ISM throughput (paper: 90,000 ev/s @ 40 B/record)");
}

/// E4 — delivery latency vs the flush-timeout knob (paper: worst case
/// bounded by the 40 ms select timeout).
pub fn e4_latency(quick: bool) {
    let duration = Duration::from_millis(if quick { 600 } else { 2_000 });
    let mut table = Table::new(&["flush timeout", "p50 us", "p95 us", "p99 us", "max us"]);
    for flush_ms in [1u64, 5, 40] {
        let t = MemTransport::new();
        let ism_cfg = IsmConfig {
            sorter: SorterConfig {
                initial_frame_us: 100,
                min_frame_us: 100,
                max_frame_us: 1_000,
                ..SorterConfig::default()
            },
            ..IsmConfig::default()
        };
        let ism = start_ism(&t, "ism", ism_cfg, SyncConfig::default()).unwrap();
        let exs_cfg = ExsConfig {
            flush_timeout: Duration::from_millis(flush_ms),
            max_batch_records: 10_000, // only the timeout flushes
            max_batch_bytes: usize::MAX >> 1,
            ..ExsConfig::default()
        };
        let node = start_node(&t, "ism", NodeId(1), exs_cfg).unwrap();
        let mut port = node.lis.register();
        let mut reader = ism.memory().reader_from_now();
        let mut tracker = LatencyTracker::new();
        let gen =
            std::thread::spawn(move || paced_events(&mut port, &SystemClock, 200.0, duration));
        let deadline = Instant::now() + duration + Duration::from_millis(300);
        while Instant::now() < deadline {
            let (recs, _) = reader.poll().unwrap();
            let now = UtcMicros::now();
            for r in &recs {
                tracker.observe(r, now);
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        gen.join().unwrap();
        node.exs.stop().unwrap();
        ism.stop().unwrap();
        let s: SummaryStats = tracker.summary();
        table.row(&[
            format!("{flush_ms} ms"),
            f(s.p50),
            f(s.p95),
            f(s.p99),
            f(s.max),
        ]);
    }
    table.print("E4: delivery latency vs flush timeout (paper: worst case ≈ 40 ms select)");
}

/// E5 — ISM scalability: aggregate throughput vs number of EXS nodes
/// (paper: roughly constant up to 8 nodes; the ISM CPU is the bottleneck).
pub fn e5_scalability(quick: bool) {
    let per_node: u64 = if quick { 30_000 } else { 150_000 };
    let mut table = Table::new(&["EXS nodes", "aggregate ev/s", "per-node ev/s"]);
    for nodes in 1..=8usize {
        let t = MemTransport::new();
        let ism_cfg = IsmConfig {
            sorter: SorterConfig {
                initial_frame_us: 100,
                min_frame_us: 100,
                ..SorterConfig::default()
            },
            ..IsmConfig::default()
        };
        let ism = start_ism(&t, "ism", ism_cfg, SyncConfig::default()).unwrap();
        let mut reader = ism.memory().reader_from_now();
        let mut handles = Vec::new();
        let mut gens = Vec::new();
        for n in 0..nodes {
            let exs_cfg = ExsConfig {
                max_batch_records: 256,
                ring_capacity: 1 << 21,
                ..ExsConfig::default()
            };
            let node = start_node(&t, "ism", NodeId(n as u32), exs_cfg).unwrap();
            let mut port = node.lis.register();
            gens.push(std::thread::spawn(move || {
                blast_events(&mut port, &SystemClock, per_node)
            }));
            handles.push(node.exs);
        }
        let total = per_node * nodes as u64;
        let start = Instant::now();
        let mut delivered: u64 = 0;
        let deadline = Instant::now() + Duration::from_secs(120);
        while delivered < total && Instant::now() < deadline {
            let (recs, missed) = reader.poll().unwrap();
            delivered += recs.len() as u64 + missed;
            if recs.is_empty() {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
        let elapsed = start.elapsed();
        for g in gens {
            g.join().unwrap();
        }
        for h in handles {
            h.stop().unwrap();
        }
        ism.stop().unwrap();
        let rate = delivered as f64 / elapsed.as_secs_f64();
        table.row(&[nodes.to_string(), f(rate), f(rate / nodes as f64)]);
    }
    table.print("E5: ISM aggregate throughput vs #EXS (paper: ~constant, ISM-bound)");
}

/// E6 — clock-synchronization quality on the simulated cluster (paper: 8
/// EXS, 5 s polling, 10 min; within ~100–200 µs, disturbances push above).
pub fn e6_clock_sync(quick: bool) {
    let duration = Duration::from_secs(if quick { 120 } else { 600 });
    let mut table = Table::new(&[
        "scenario",
        "initial us",
        "max post-warmup us",
        "mean us",
        "% samples <200us",
        "rounds",
    ]);
    for (name, delay) in [
        ("quiet LAN", DelayModel::quiet_lan()),
        ("disturbed LAN", DelayModel::disturbed_lan()),
    ] {
        let cfg = SyncSimConfig {
            duration,
            delay,
            ..SyncSimConfig::default()
        };
        let r = SyncSimulation::new(cfg).run().unwrap();
        table.row(&[
            name.to_string(),
            r.initial_spread_us.to_string(),
            r.max_spread_after_warmup_us.to_string(),
            f(r.mean_spread_after_warmup_us),
            f(100.0 * r.fraction_under_200us),
            r.rounds.to_string(),
        ]);
    }
    table.print("E6: clock sync quality, 8 EXS, 5 s polling (paper: <200 µs most of the time)");
}

/// E7 — on-line sorting parameter study (paper: four parameters varied).
pub fn e7_sorting(quick: bool) {
    let events = if quick { 2_000 } else { 10_000 };
    let heavy_jitter = DelayModel {
        base_us: 100,
        jitter_us: 2_000,
        ..DelayModel::ideal()
    };
    let spiky = DelayModel {
        base_us: 100,
        jitter_us: 500,
        spike_probability: 0.05,
        spike_us: 8_000,
        ..DelayModel::ideal()
    };

    let base = |sorter: SorterConfig, delay: DelayModel| SortingConfig {
        nodes: 4,
        events_per_node: events,
        arrivals: brisk_sim::ArrivalProcess::Uniform {
            rate_hz: 1_000.0,
            jitter: 0.5,
        },
        delay,
        sorter,
        seed: 0x50_127,
    };
    let fixed = |t_us: i64| SorterConfig {
        initial_frame_us: t_us,
        min_frame_us: t_us,
        max_frame_us: t_us,
        decay_factor: 1.0,
        ..SorterConfig::default()
    };

    // (1) Fixed time frame T: the ordering/latency trade-off.
    let mut t1 = Table::new(&[
        "fixed T us",
        "inversion rate",
        "mean added lat us",
        "max added lat us",
    ]);
    for t_us in [0i64, 500, 2_000, 10_000] {
        let r = run_sorting_experiment(&base(fixed(t_us), heavy_jitter.clone())).unwrap();
        t1.row(&[
            t_us.to_string(),
            format!("{:.4}", r.inversion_rate),
            f(r.mean_added_latency_us),
            r.max_added_latency_us.to_string(),
        ]);
    }
    t1.print("E7a: fixed time frame — ordering vs latency trade-off");

    // (2) Growth policy under adaptive T.
    let mut t2 = Table::new(&[
        "growth policy",
        "inversion rate",
        "mean added lat us",
        "max T us",
    ]);
    for (name, growth) in [
        ("to-observed-lateness", FrameGrowth::ToObservedLateness),
        ("multiplicative x2", FrameGrowth::Multiplicative(2.0)),
        ("additive +1ms", FrameGrowth::Additive(1_000)),
    ] {
        // Multiplicative growth needs a non-zero seed (k*0 = 0 forever).
        let seed_frame = if matches!(growth, FrameGrowth::Multiplicative(_)) {
            50
        } else {
            0
        };
        let sorter = SorterConfig {
            initial_frame_us: seed_frame,
            min_frame_us: seed_frame,
            growth,
            decay_factor: 0.95,
            ..SorterConfig::default()
        };
        let r = run_sorting_experiment(&base(sorter, heavy_jitter.clone())).unwrap();
        t2.row(&[
            name.to_string(),
            format!("{:.4}", r.inversion_rate),
            f(r.mean_added_latency_us),
            r.max_frame_us.to_string(),
        ]);
    }
    t2.print("E7b: frame growth policy (paper recommends T = observed lateness)");

    // (3) Decay constant (T's half-life).
    let mut t3 = Table::new(&[
        "decay factor",
        "inversion rate",
        "mean added lat us",
        "final T us",
    ]);
    for decay in [0.5, 0.9, 0.99, 1.0] {
        let sorter = SorterConfig {
            initial_frame_us: 0,
            min_frame_us: 0,
            growth: FrameGrowth::ToObservedLateness,
            decay_factor: decay,
            decay_interval: Duration::from_millis(10),
            ..SorterConfig::default()
        };
        let r = run_sorting_experiment(&base(sorter, spiky.clone())).unwrap();
        t3.row(&[
            format!("{decay}"),
            format!("{:.4}", r.inversion_rate),
            f(r.mean_added_latency_us),
            r.final_frame_us.to_string(),
        ]);
    }
    t3.print("E7c: decay constant (paper: a large T half-life helps ordering)");

    // (4) Delay distribution.
    let mut t4 = Table::new(&[
        "delay model",
        "inversion rate",
        "mean added lat us",
        "max T us",
    ]);
    for (name, delay) in [
        ("quiet LAN", DelayModel::quiet_lan()),
        ("heavy jitter", heavy_jitter),
        ("spiky", spiky),
    ] {
        let sorter = SorterConfig {
            initial_frame_us: 0,
            min_frame_us: 0,
            growth: FrameGrowth::ToObservedLateness,
            decay_factor: 0.98,
            ..SorterConfig::default()
        };
        let r = run_sorting_experiment(&base(sorter, delay)).unwrap();
        t4.row(&[
            name.to_string(),
            format!("{:.4}", r.inversion_rate),
            f(r.mean_added_latency_us),
            r.max_frame_us.to_string(),
        ]);
    }
    t4.print("E7d: delay distribution under the adaptive frame");

    // (Scenario extension) Arrival process: the same sorter against the
    // paper's "very different instrumentation/experiment scenarios" (§2).
    use brisk_sim::ArrivalProcess;
    let mut t5 = Table::new(&[
        "arrival process",
        "inversion rate",
        "mean added lat us",
        "max T us",
    ]);
    let processes: Vec<(&str, ArrivalProcess)> = vec![
        (
            "uniform loop",
            ArrivalProcess::Uniform {
                rate_hz: 1_000.0,
                jitter: 0.0,
            },
        ),
        (
            "uniform jittered",
            ArrivalProcess::Uniform {
                rate_hz: 1_000.0,
                jitter: 0.5,
            },
        ),
        ("poisson", ArrivalProcess::Poisson { rate_hz: 1_000.0 }),
        (
            "bursty 64",
            ArrivalProcess::Bursty {
                rate_hz: 1_000.0,
                burst_size: 64,
                intra_gap_us: 5,
            },
        ),
        (
            "phased 10x",
            ArrivalProcess::Phased {
                rates_hz: vec![3_000.0, 300.0],
                phase_us: 200_000,
            },
        ),
    ];
    for (name, arrivals) in processes {
        let sorter = SorterConfig {
            initial_frame_us: 0,
            min_frame_us: 0,
            growth: FrameGrowth::ToObservedLateness,
            decay_factor: 0.98,
            ..SorterConfig::default()
        };
        let mut cfg = base(sorter, DelayModel::quiet_lan());
        cfg.arrivals = arrivals;
        let r = run_sorting_experiment(&cfg).unwrap();
        t5.row(&[
            name.to_string(),
            format!("{:.4}", r.inversion_rate),
            f(r.mean_added_latency_us),
            r.max_frame_us.to_string(),
        ]);
    }
    t5.print("E7e: arrival-process scenarios (extension)");
}

/// A1 — ablation: BRISK's modified Cristian vs the original algorithm.
pub fn a1_sync_ablation(quick: bool) {
    let duration = Duration::from_secs(if quick { 120 } else { 600 });
    let mut table = Table::new(&[
        "algorithm",
        "rounds to <200us",
        "max post-warmup us",
        "mean us",
        "total advance us",
    ]);
    for (name, original) in [
        ("BRISK (most-ahead ref)", false),
        ("original Cristian", true),
    ] {
        let cfg = SyncSimConfig {
            duration,
            sync: SyncConfig {
                original_cristian: original,
                ..SyncConfig::default()
            },
            ..SyncSimConfig::default()
        };
        let r = SyncSimulation::new(cfg.clone()).run().unwrap();
        // Rounds until the spread first stays below 200 µs.
        let period_us = cfg.sync.poll_period.as_micros() as i64;
        let converged_at = r
            .samples
            .iter()
            .find(|s| s.max_pairwise_us < 200)
            .map(|s| (s.t_us / period_us) + 1)
            .unwrap_or(-1);
        table.row(&[
            name.to_string(),
            converged_at.to_string(),
            r.max_spread_after_warmup_us.to_string(),
            f(r.mean_spread_after_warmup_us),
            r.total_advance_us.to_string(),
        ]);
    }
    table.print("A1: modified vs original Cristian (ablation)");
}

/// A2 — ablation: CRE tachyon repair on vs off.
pub fn a2_cre_ablation(quick: bool) {
    let exchanges = if quick { 500 } else { 5_000 };
    let mut table = Table::new(&[
        "CRE markers",
        "delivered",
        "visible tachyons",
        "repaired",
        "extra syncs",
    ]);
    for (name, marked) in [("on", true), ("off", false)] {
        let cfg = CausalConfig {
            exchanges,
            mark_causality: marked,
            ..CausalConfig::default()
        };
        let r = run_causal_experiment(&cfg).unwrap();
        table.row(&[
            name.to_string(),
            r.delivered.to_string(),
            r.visible_tachyons.to_string(),
            r.repaired_tachyons.to_string(),
            r.extra_sync_requests.to_string(),
        ]);
    }
    table.print("A2: causally-related-event repair (ablation)");
}

/// A3 — ablation: compressed vs naive record meta-information headers.
///
/// The TP sends each record's descriptor "with the meta-information header
/// compressed" (§3.4) — one nibble per field type — because "minimizing the
/// slack in instrumentation data messages is important". This ablation
/// quantifies the wire savings against the naive alternative (one XDR
/// unsigned int per field type, as a static-typing-free rpcgen encoding
/// would produce).
pub fn a3_header_compression(_quick: bool) {
    use brisk_core::{RecordDescriptor, ValueType};
    let shapes: Vec<(&str, Vec<ValueType>)> = vec![
        ("1 x i32", vec![ValueType::I32]),
        ("6 x i32 (paper)", vec![ValueType::I32; 6]),
        ("8 x i32", vec![ValueType::I32; 8]),
        (
            "mixed 5",
            vec![
                ValueType::Ts,
                ValueType::I32,
                ValueType::Str,
                ValueType::Reason,
                ValueType::F64,
            ],
        ),
    ];
    let mut table = Table::new(&[
        "record shape",
        "packed hdr B",
        "naive hdr B",
        "record wire B",
        "hdr overhead %",
        "naive overhead %",
    ]);
    for (name, types) in shapes {
        let desc = RecordDescriptor::new(types.clone()).unwrap();
        // Packed on the wire: descriptor opaque = 4 (len) + padded nibbles.
        let packed_wire = 4 + ((desc.packed_size() + 3) & !3);
        // Naive: count word + one uint per field type.
        let naive_wire = 4 + 4 * types.len();
        let rec = brisk_core::EventRecord::new(
            NodeId(0),
            brisk_core::SensorId(0),
            EventTypeId(0),
            0,
            UtcMicros::ZERO,
            types
                .iter()
                .map(|t| match t {
                    ValueType::I32 => Value::I32(0),
                    ValueType::Ts => Value::Ts(UtcMicros::ZERO),
                    ValueType::Str => Value::Str("abcdefgh".into()),
                    ValueType::Reason => Value::Reason(brisk_core::CorrelationId(0)),
                    ValueType::F64 => Value::F64(0.0),
                    _ => Value::I32(0),
                })
                .collect(),
        )
        .unwrap();
        let body = rec.xdr_payload_size();
        let naive_body = body - packed_wire + naive_wire;
        table.row(&[
            name.to_string(),
            packed_wire.to_string(),
            naive_wire.to_string(),
            body.to_string(),
            f(100.0 * packed_wire as f64 / body as f64),
            f(100.0 * naive_wire as f64 / naive_body as f64),
        ]);
    }
    table.print("A3: compressed vs naive meta-information header (ablation)");
}

/// Run every experiment.
pub fn run_all(quick: bool) {
    e1_notice_cost(quick);
    e2_exs_utilization(quick);
    e3_throughput(quick);
    e4_latency(quick);
    e5_scalability(quick);
    e6_clock_sync(quick);
    e7_sorting(quick);
    a1_sync_ablation(quick);
    a2_cre_ablation(quick);
    a3_header_compression(quick);
}
