//! CLI driver: regenerate the paper's evaluation tables.
//!
//! ```text
//! experiments <id>... [--quick]
//!   ids: e1 e2 e3 e4 e5 e6 e7 a1 a2 all
//! ```

use brisk_bench::experiments as x;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(String::as_str)
        .collect();
    if ids.is_empty() {
        eprintln!("usage: experiments <e1|e2|e3|e4|e5|e6|e7|a1|a2|a3|all>... [--quick]");
        std::process::exit(2);
    }
    println!(
        "BRISK experiment harness ({} mode)",
        if quick { "quick" } else { "full" }
    );
    for id in ids {
        match id {
            "e1" => x::e1_notice_cost(quick),
            "e2" => x::e2_exs_utilization(quick),
            "e3" => x::e3_throughput(quick),
            "e4" => x::e4_latency(quick),
            "e5" => x::e5_scalability(quick),
            "e6" => x::e6_clock_sync(quick),
            "e7" => x::e7_sorting(quick),
            "a1" => x::a1_sync_ablation(quick),
            "a2" => x::a2_cre_ablation(quick),
            "a3" => x::a3_header_compression(quick),
            "all" => x::run_all(quick),
            other => {
                eprintln!("unknown experiment id: {other}");
                std::process::exit(2);
            }
        }
    }
}
