//! # brisk-bench — experiment harness
//!
//! Regenerates every measurement in the paper's evaluation (§4). Each
//! experiment id maps to one function here and one subcommand of the
//! `experiments` binary; see DESIGN.md for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured results.
//!
//! ```text
//! cargo run --release -p brisk-bench --bin experiments -- all
//! cargo run --release -p brisk-bench --bin experiments -- e3 --quick
//! ```

#![deny(missing_docs)]

pub mod experiments;
pub mod rig;
pub mod table;

pub use table::Table;
