//! Minimal aligned-column table printer for experiment output.

/// A simple text table: header row plus data rows, columns padded to the
/// widest cell.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align purely numeric cells, left-align text.
                let numeric = !cell.is_empty()
                    && cell
                        .chars()
                        .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e'));
                if numeric {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

/// Format a float with thousands-free compact precision.
pub fn f(v: f64) -> String {
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["a-much-longer-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("short"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(12345.6), "12346");
        assert_eq!(f(99.94), "99.9");
        assert_eq!(f(1.23456), "1.235");
    }
}
