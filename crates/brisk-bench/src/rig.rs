//! Reusable pipeline rigs for the experiments: ISM + N instrumented nodes
//! over a chosen transport.

use brisk_clock::{Clock, SystemClock};
use brisk_core::{EventTypeId, ExsConfig, IsmConfig, NodeId, Result, SyncConfig, Value};
use brisk_ism::{IsmHandle, IsmServer};
use brisk_lis::{spawn_exs, ExsHandle, Lis};
use brisk_net::Transport;
use brisk_ringbuf::SensorPort;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Start an ISM server on `transport` at `addr` with the given knobs.
pub fn start_ism(
    transport: &dyn Transport,
    addr: &str,
    ism_cfg: IsmConfig,
    sync_cfg: SyncConfig,
) -> Result<IsmHandle> {
    let listener = transport.listen(addr)?;
    let server = IsmServer::new(ism_cfg, sync_cfg, Arc::new(SystemClock))?;
    server.spawn(listener)
}

/// One instrumented node: its LIS facade and its running EXS.
pub struct Node {
    /// Sensor-side facade.
    pub lis: Lis<SystemClock>,
    /// Running external sensor.
    pub exs: ExsHandle,
    /// Node id.
    pub node: NodeId,
}

/// Start a node connected to the ISM at `addr`.
pub fn start_node(
    transport: &dyn Transport,
    addr: &str,
    node: NodeId,
    cfg: ExsConfig,
) -> Result<Node> {
    let clock = Arc::new(SystemClock);
    let lis = Lis::new(node, Arc::clone(&clock), &cfg);
    let exs = spawn_exs(
        node,
        Arc::clone(lis.rings()),
        clock,
        transport.connect(addr)?,
        cfg,
    )?;
    Ok(Node { lis, exs, node })
}

/// Emit `count` six-integer records (the paper's workload) as fast as the
/// ring accepts them. Returns how many were accepted (vs dropped).
pub fn blast_events(port: &mut SensorPort, clock: &impl Clock, count: u64) -> u64 {
    let mut accepted = 0;
    for i in 0..count {
        let fields = six_i32_fields(i);
        loop {
            match port.emit(EventTypeId(1), clock.now(), fields.clone()) {
                Ok(true) => {
                    accepted += 1;
                    break;
                }
                Ok(false) => std::thread::yield_now(), // ring full: retry
                Err(_) => return accepted,
            }
        }
    }
    accepted
}

/// Emit records at a target rate for `duration`. Returns (emitted,
/// dropped).
pub fn paced_events(
    port: &mut SensorPort,
    clock: &impl Clock,
    rate_hz: f64,
    duration: Duration,
) -> (u64, u64) {
    let start = Instant::now();
    let interval = Duration::from_secs_f64(1.0 / rate_hz);
    let mut emitted = 0u64;
    let mut dropped = 0u64;
    let mut next = start;
    while start.elapsed() < duration {
        let now = Instant::now();
        if now < next {
            let wait = next - now;
            if wait > Duration::from_micros(100) {
                std::thread::sleep(wait - Duration::from_micros(50));
            }
            continue;
        }
        next += interval;
        match port.emit(EventTypeId(1), clock.now(), six_i32_fields(emitted)) {
            Ok(true) => emitted += 1,
            Ok(false) => dropped += 1,
            Err(_) => break,
        }
    }
    (emitted, dropped)
}

/// The paper's record shape: "six fields of type integer".
pub fn six_i32_fields(i: u64) -> Vec<Value> {
    vec![
        Value::I32(i as i32),
        Value::I32((i >> 8) as i32),
        Value::I32(1),
        Value::I32(2),
        Value::I32(3),
        Value::I32(4),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_net::MemTransport;

    #[test]
    fn rig_round_trips_events() {
        let t = MemTransport::new();
        let ism = start_ism(&t, "ism", IsmConfig::default(), SyncConfig::default()).unwrap();
        let mut reader = ism.memory().reader();
        let node = start_node(&t, "ism", NodeId(1), ExsConfig::default()).unwrap();
        let mut port = node.lis.register();
        let accepted = blast_events(&mut port, &SystemClock, 500);
        assert_eq!(accepted, 500);
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut total = 0;
        while total < 500 && Instant::now() < deadline {
            total += reader.poll().unwrap().0.len();
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(total, 500);
        node.exs.stop().unwrap();
        ism.stop().unwrap();
    }

    #[test]
    fn paced_generator_hits_rate_roughly() {
        let t = MemTransport::new();
        let ism = start_ism(&t, "ism", IsmConfig::default(), SyncConfig::default()).unwrap();
        let node = start_node(&t, "ism", NodeId(1), ExsConfig::default()).unwrap();
        let mut port = node.lis.register();
        let (emitted, dropped) =
            paced_events(&mut port, &SystemClock, 2_000.0, Duration::from_millis(500));
        assert!(dropped < emitted / 10, "dropped {dropped} of {emitted}");
        let rate = emitted as f64 / 0.5;
        assert!((1_000.0..3_000.0).contains(&rate), "rate {rate}");
        node.exs.stop().unwrap();
        ism.stop().unwrap();
    }
}
