//! E5 micro-benchmark: ISM pipeline cost per record as the number of
//! source nodes grows. The paper found the ISM's CPU demand to be the
//! bottleneck, with aggregate throughput roughly constant from 1 to 8
//! external sensors — i.e. per-record cost independent of fan-in.

use brisk_bench::rig::six_i32_fields;
use brisk_core::{EventRecord, EventTypeId, IsmConfig, NodeId, SensorId, SorterConfig, UtcMicros};
use brisk_ism::IsmCore;
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Pre-build per-node batches with interleaved timestamps.
fn make_batches(nodes: usize, per_node: usize) -> Vec<(usize, Vec<EventRecord>)> {
    let mut out = Vec::new();
    let batch_size = 256;
    for node in 0..nodes {
        let mut seq = 0u64;
        for chunk_start in (0..per_node).step_by(batch_size) {
            let records: Vec<EventRecord> = (chunk_start..(chunk_start + batch_size).min(per_node))
                .map(|i| {
                    let ts = (i * nodes + node) as i64; // interleaved across nodes
                    let r = EventRecord::new(
                        NodeId(node as u32),
                        SensorId(0),
                        EventTypeId(1),
                        seq,
                        UtcMicros::from_micros(ts),
                        six_i32_fields(seq),
                    )
                    .unwrap();
                    seq += 1;
                    r
                })
                .collect();
            out.push((node, records));
        }
    }
    out
}

fn bench_ism(c: &mut Criterion) {
    let per_node = 4_096;
    let mut group = c.benchmark_group("ism_pipeline");
    for nodes in [1usize, 2, 4, 8] {
        let total = (nodes * per_node) as u64;
        group.throughput(Throughput::Elements(total));
        group.bench_with_input(
            BenchmarkId::new("push_tick_drain", nodes),
            &nodes,
            |b, &nodes| {
                let batches = make_batches(nodes, per_node);
                b.iter_batched(
                    || {
                        let cfg = IsmConfig {
                            sorter: SorterConfig {
                                initial_frame_us: 1_000,
                                ..SorterConfig::default()
                            },
                            ..IsmConfig::default()
                        };
                        IsmCore::new(cfg).unwrap()
                    },
                    |mut core| {
                        let mut now = 0i64;
                        for (_, records) in &batches {
                            now += 50;
                            core.push_batch(records.clone(), UtcMicros::from_micros(now))
                                .unwrap();
                            core.tick(UtcMicros::from_micros(now)).unwrap();
                        }
                        black_box(core.drain_all().unwrap())
                    },
                    BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ism);
criterion_main!(benches);
