//! Zero-copy ingest cost and reactor saturation.
//!
//! Two experiments in one artifact:
//!
//! 1. **Paired decode cost** — identical pre-encoded `EventBatch` frames
//!    are run through four variants in adjacent slices of the same trial:
//!    the legacy owned decode (`Message::decode`), the reactor pump's
//!    validate-only pass (`BatchView::parse`), the manager's full
//!    materialize (`parse` + `materialize`), and the whole delivery
//!    baseline (materialize + `IsmCore::push_batch` + `tick`, i.e. the
//!    memory-only pipeline BENCH_store.json measures). Pairing cancels
//!    machine drift; the acceptance bar is that the zero-copy ingest
//!    decode (`view_materialize`) sustains ≥ 2× the records/s of the
//!    in-run delivery baseline — decode is no longer the bottleneck.
//!
//! 2. **Saturation curve** — a real `IsmServer` on TCP with a bounded
//!    reactor pool (2 threads, no per-connection threads, no tokio)
//!    serves 64 / 256 / 1024 concurrent EXS connections, each speaking
//!    the wire protocol (Hello then pre-encoded batches); the curve
//!    records end-to-end records/s into the memory buffer at each level.
//!
//! Set `BENCH_INGEST_JSON=<path>` to emit the machine-readable artifact
//! (`BENCH_ingest.json` at the repo root is generated this way).

use brisk_bench::rig::six_i32_fields;
use brisk_core::{EventRecord, EventTypeId, IsmConfig, NodeId, SensorId, SyncConfig, UtcMicros};
use brisk_ism::{IsmCore, IsmServer};
use brisk_net::{TcpTransport, Transport};
use brisk_proto::{BatchView, Message};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Records per `EventBatch` frame.
const BATCH: usize = 64;
/// Frames timed per variant per trial slice.
const FRAMES_PER_TRIAL: usize = 8;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in timings"));
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// Pre-encode `n` wire frames of `BATCH` records each for `node`.
fn encode_frames(node: NodeId, n: usize, ts_base: i64) -> Vec<Vec<u8>> {
    let mut seq = 0u64;
    (0..n)
        .map(|f| {
            let records: Vec<EventRecord> = (0..BATCH)
                .map(|i| {
                    seq += 1;
                    EventRecord::new(
                        node,
                        SensorId(0),
                        EventTypeId(1),
                        seq,
                        UtcMicros::from_micros(ts_base + (f * BATCH + i) as i64),
                        six_i32_fields(seq),
                    )
                    .unwrap()
                })
                .collect();
            Message::EventBatch {
                node,
                seq: None,
                records,
            }
            .encode()
        })
        .collect()
}

/// Paired decode-cost experiment: four variants over the same frames.
struct PairedResult {
    names: [&'static str; 4],
    medians_ns_per_record: [f64; 4],
}

fn run_paired(trials: usize, warmup: usize) -> PairedResult {
    let frames = encode_frames(NodeId(1), FRAMES_PER_TRIAL, 1_000_000_000);
    let mut core = IsmCore::new(IsmConfig::default()).unwrap();
    let mut now = 2_000_000_000i64;
    let mut samples: [Vec<f64>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];

    // The delivery baseline needs fresh timestamps every slice so the
    // sorter keeps releasing (monotone clock) — rebuild records from the
    // views but override ts, exactly once per slice, outside the other
    // variants' timed regions.
    let mut run_slice = |variant: usize, timed: bool| -> f64 {
        let start = Instant::now();
        match variant {
            0 => {
                for f in &frames {
                    black_box(Message::decode(f).unwrap());
                }
            }
            1 => {
                for f in &frames {
                    black_box(BatchView::parse(f).unwrap());
                }
            }
            2 => {
                for f in &frames {
                    black_box(BatchView::parse(f).unwrap().materialize().unwrap());
                }
            }
            _ => {
                for f in &frames {
                    let mut records = BatchView::parse(f).unwrap().materialize().unwrap();
                    for r in records.iter_mut() {
                        now += 1;
                        r.override_ts(UtcMicros::from_micros(now));
                    }
                    core.push_batch(records, UtcMicros::from_micros(now))
                        .unwrap();
                    let released = core.tick(UtcMicros::from_micros(now + 10_000_000)).unwrap();
                    black_box(released);
                }
            }
        }
        let ns = start.elapsed().as_nanos() as f64;
        if timed {
            ns / (FRAMES_PER_TRIAL * BATCH) as f64
        } else {
            0.0
        }
    };

    for _ in 0..warmup {
        for v in 0..4 {
            run_slice(v, false);
        }
    }
    for _ in 0..trials {
        for (v, s) in samples.iter_mut().enumerate() {
            let ns_per_record = run_slice(v, true);
            s.push(ns_per_record);
        }
    }

    PairedResult {
        names: [
            "decode_owned",
            "view_validate",
            "view_materialize",
            "deliver_baseline",
        ],
        medians_ns_per_record: [
            median(&samples[0]),
            median(&samples[1]),
            median(&samples[2]),
            median(&samples[3]),
        ],
    }
}

/// One point on the saturation curve: `conns` live EXS connections on a
/// bounded reactor pool, each replaying a pre-encoded batch `rounds`
/// times; returns end-to-end records/s into the memory buffer.
fn saturation_point(conns: usize, rounds: usize, reactor_threads: usize) -> f64 {
    let server = IsmServer::new(
        IsmConfig {
            pump_threads: reactor_threads,
            ..IsmConfig::default()
        },
        SyncConfig {
            poll_period: Duration::from_secs(600),
            ..SyncConfig::default()
        },
        Arc::new(brisk_clock::SystemClock),
    )
    .unwrap();
    let ism = server
        .spawn(TcpTransport.listen("127.0.0.1:0").unwrap())
        .unwrap();
    let addr = ism.addr().to_string();

    // v1 peers: no HelloAck, no acks — the client side never has to read,
    // so one sender thread can multiplex hundreds of connections.
    let mut clients = Vec::with_capacity(conns);
    for c in 0..conns {
        let node = NodeId(c as u32 + 1);
        let mut conn = TcpTransport.connect(&addr).unwrap();
        conn.send(&Message::Hello { node, version: 1 }.encode())
            .unwrap();
        let frame = encode_frames(node, 1, 1_000_000_000).remove(0);
        clients.push((conn, frame));
    }

    let total = (conns * rounds * BATCH) as u64;
    let start = Instant::now();
    // Interleave across connections so every socket is live at once: the
    // reactor sees `conns` concurrently-readable fds, not a sequential
    // parade. v1 batches carry no seq, so replaying one frame per round
    // is `rounds` distinct deliveries.
    for _ in 0..rounds {
        for (conn, frame) in clients.iter_mut() {
            conn.send(frame).unwrap();
        }
    }
    let deadline = Instant::now() + Duration::from_secs(120);
    while ism.memory().written() < total {
        assert!(
            Instant::now() < deadline,
            "saturation point stalled: {}/{total} records at {conns} conns",
            ism.memory().written()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let secs = start.elapsed().as_secs_f64();
    drop(clients);
    ism.stop().unwrap();
    total as f64 / secs
}

fn main() {
    let trials = env_usize("BENCH_INGEST_TRIALS", 300);
    let warmup = env_usize("BENCH_INGEST_WARMUP", 100);
    let rounds = env_usize("BENCH_INGEST_ROUNDS", 8);
    let reactor_threads = env_usize("BENCH_INGEST_REACTOR_THREADS", 2);

    let paired = run_paired(trials, warmup);
    for (name, med) in paired.names.iter().zip(paired.medians_ns_per_record.iter()) {
        println!(
            "bench ingest/{name} median {med:.1} ns/record {:.0} records/s",
            1e9 / med
        );
    }
    let ingest_rps = 1e9 / paired.medians_ns_per_record[2];
    let deliver_rps = 1e9 / paired.medians_ns_per_record[3];
    let speedup = ingest_rps / deliver_rps;
    let pass = speedup >= 2.0;
    println!(
        "ingest view_materialize vs deliver_baseline: {speedup:.1}x \
         ({trials} paired trials)  acceptance(>= 2x): {}",
        if pass { "PASS" } else { "FAIL" }
    );

    let levels = [64usize, 256, 1024];
    let mut curve = Vec::new();
    for &conns in &levels {
        let rps = saturation_point(conns, rounds, reactor_threads);
        println!(
            "bench ingest/saturation conns={conns} reactor_threads={reactor_threads} \
             {rps:.0} records/s"
        );
        curve.push((conns, rps));
    }

    if let Ok(path) = std::env::var("BENCH_INGEST_JSON") {
        let mut out = String::from("{\n");
        out.push_str("  \"artifact\": \"zero-copy ingest decode cost and reactor saturation\",\n");
        out.push_str(&format!(
            "  \"method\": \"cargo bench -p brisk-bench --bench ingest (paired interleaved \
             trials over identical pre-encoded {BATCH}-record frames: legacy Message::decode vs \
             BatchView::parse (pump validate) vs parse+materialize (manager decode) vs the full \
             memory-only delivery baseline; saturation: one IsmServer on TCP with a bounded \
             {reactor_threads}-thread poll reactor — no per-connection threads, no tokio — \
             serving N concurrent v1 EXS connections each sending {rounds} batches)\",\n"
        ));
        out.push_str(&format!("  \"trials\": {trials},\n"));
        out.push_str("  \"results\": [\n");
        for (i, (name, med)) in paired
            .names
            .iter()
            .zip(paired.medians_ns_per_record.iter())
            .enumerate()
        {
            out.push_str(&format!(
                "    {{\"bench\": \"ingest/{name}\", \"median_ns_per_record\": {med:.1}, \
                 \"records_per_sec\": {:.0}}}{}\n",
                1e9 / med,
                if i + 1 < paired.names.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"saturation\": [\n");
        for (i, (conns, rps)) in curve.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"connections\": {conns}, \"reactor_threads\": {reactor_threads}, \
                 \"records_per_sec\": {rps:.0}}}{}\n",
                if i + 1 < curve.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"summary\": {\n");
        out.push_str(&format!(
            "    \"view_materialize_records_per_sec\": {ingest_rps:.0},\n"
        ));
        out.push_str(&format!(
            "    \"deliver_baseline_records_per_sec\": {deliver_rps:.0},\n"
        ));
        out.push_str(&format!("    \"speedup_vs_deliver\": {speedup:.2},\n"));
        out.push_str(
            "    \"acceptance\": \"view_materialize >= 2x deliver_baseline records/s; \
             >= 1024 concurrent connections on a bounded reactor pool\",\n",
        );
        out.push_str(&format!("    \"pass\": {pass}\n"));
        out.push_str("  }\n}\n");
        std::fs::write(&path, out).expect("write BENCH_INGEST_JSON");
        println!("wrote {path}");
    }
}
