//! E1 micro-benchmark: cost of one `NOTICE` through the sensor path
//! (clock read + dynamic record build + ring-buffer publish).
//!
//! Paper reference: "The CPU time taken by an average [NOTICE] varied from
//! 3.6 to 18.6 microseconds on three different platforms" (§4).

use brisk_bench::rig::six_i32_fields;
use brisk_clock::{Clock, SystemClock};
use brisk_core::{EventTypeId, NodeId, UtcMicros, Value};
use brisk_ringbuf::RingSet;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn bench_notice(c: &mut Criterion) {
    let mut group = c.benchmark_group("notice_cost");
    group.throughput(Throughput::Elements(1));

    type ShapeFn = fn(u64) -> Vec<Value>;
    let shapes: Vec<(&str, ShapeFn)> = vec![
        ("six_i32_paper", six_i32_fields),
        ("empty", |_| vec![]),
        ("eight_i32", |i| vec![Value::I32(i as i32); 8]),
        ("ts_and_str", |i| {
            vec![
                Value::Ts(UtcMicros::from_micros(i as i64)),
                Value::Str("abcdefgh12345678".into()),
            ]
        }),
    ];
    for (name, make) in shapes {
        group.bench_function(name, |b| {
            let rings = RingSet::new(NodeId(0), 1 << 22);
            let mut port = rings.register();
            let clock = SystemClock;
            let mut drain_buf = Vec::new();
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let ok = port
                    .emit(EventTypeId(1), clock.now(), black_box(make(i)))
                    .unwrap();
                if !ok {
                    // Ring filled: drain it inline (amortized; rare).
                    drain_buf.clear();
                    rings.drain_into(usize::MAX, &mut drain_buf).unwrap();
                }
                black_box(ok)
            });
        });
    }

    // Field construction alone, to separate record-build cost from the
    // ring publish.
    group.bench_function("fields_only_six_i32", |b| {
        let mut i = 0u64;
        b.iter_batched(
            || {
                i += 1;
                i
            },
            |i| black_box(six_i32_fields(i)),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_notice);
criterion_main!(benches);
