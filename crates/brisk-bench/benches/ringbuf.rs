//! Micro-benchmarks for the sensor→EXS ring-buffer substrate: the raw
//! publish/consume cost that bounds E1's NOTICE figure from below.

use brisk_core::{EventTypeId, NodeId, SensorId, UtcMicros, Value};
use brisk_ringbuf::{ByteRing, RecordRing};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("byte_ring");
    group.throughput(Throughput::Elements(1));
    for size in [8usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("push_pop", size), &size, |b, &size| {
            let (mut p, mut cons) = ByteRing::with_capacity(1 << 16);
            let payload = vec![0xabu8; size];
            let mut out = Vec::new();
            b.iter(|| {
                assert!(p.push(black_box(&payload)));
                assert!(cons.pop(&mut out));
                black_box(out.len())
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("record_ring");
    group.throughput(Throughput::Elements(1));
    group.bench_function("emit_pop_six_i32", |b| {
        let (mut port, mut cons) = RecordRing::create(NodeId(0), SensorId(0), 1 << 16);
        let fields = vec![Value::I32(7); 6];
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            port.emit(
                EventTypeId(1),
                UtcMicros::from_micros(i as i64),
                black_box(fields.clone()),
            )
            .unwrap();
            black_box(cons.pop().unwrap())
        });
    });
    group.finish();

    // Cross-thread sustained throughput: producer and consumer pinned to
    // their own threads, measuring whole-pipe elements/second.
    let mut group = c.benchmark_group("byte_ring_cross_thread");
    group.sample_size(10);
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("pipe_100k_x32B", |b| {
        b.iter(|| {
            let (mut p, mut cons) = ByteRing::with_capacity(1 << 16);
            let producer = std::thread::spawn(move || {
                let payload = [0u8; 32];
                let mut sent = 0u32;
                while sent < 100_000 {
                    if p.push(&payload) {
                        sent += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            });
            let mut out = Vec::new();
            let mut got = 0u32;
            while got < 100_000 {
                if cons.pop(&mut out) {
                    got += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
            producer.join().unwrap();
            black_box(got)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_ring);
criterion_main!(benches);
