//! Self-instrumentation overhead: the notice path with telemetry bound
//! versus unbound, plus the raw metric primitives.
//!
//! The acceptance bar for the telemetry subsystem is that binding a
//! registry costs ≤ 10% on the emit hot path: the only per-notice work
//! is one relaxed `fetch_add` on the bound notice counter (ring state
//! is exported through computed sources read at snapshot time, so it
//! adds nothing per event).

use brisk_bench::rig::six_i32_fields;
use brisk_clock::{Clock, SystemClock};
use brisk_core::{EventTypeId, NodeId};
use brisk_ringbuf::RingSet;
use brisk_telemetry::{Counter, Gauge, Histogram, Registry};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_notice_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.throughput(Throughput::Elements(1));

    for (name, bind) in [("notice_unbound", false), ("notice_bound", true)] {
        group.bench_function(name, |b| {
            let rings = RingSet::new(NodeId(0), 1 << 22);
            let registry = Registry::new();
            let mut port = rings.register();
            if bind {
                rings.bind_telemetry(&registry);
                port.set_notice_counter(registry.counter("brisk_notices_total", "notices emitted"));
            }
            let clock = SystemClock;
            let mut drain_buf = Vec::new();
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let ok = port
                    .emit(EventTypeId(1), clock.now(), black_box(six_i32_fields(i)))
                    .unwrap();
                if !ok {
                    drain_buf.clear();
                    rings.drain_into(usize::MAX, &mut drain_buf).unwrap();
                }
                black_box(ok)
            });
        });
    }
    group.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_primitives");
    group.throughput(Throughput::Elements(1));
    group.bench_function("counter_inc", |b| {
        let counter = Counter::new();
        b.iter(|| counter.inc());
        black_box(counter.get());
    });
    group.bench_function("gauge_set", |b| {
        let gauge = Gauge::new();
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            gauge.set(black_box(i));
        });
    });
    group.bench_function("histogram_record", |b| {
        let hist = Histogram::new();
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 100_000;
            hist.record(black_box(i));
        });
        black_box(hist.snapshot());
    });
    group.finish();
}

criterion_group!(benches, bench_notice_paths, bench_primitives);
criterion_main!(benches);
