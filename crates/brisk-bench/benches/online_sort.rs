//! E7 micro-benchmarks: on-line sorter cost per record, and whole
//! sorting-experiment runs for the adaptive-frame variants.

use brisk_core::config::FrameGrowth;
use brisk_core::{EventRecord, EventTypeId, NodeId, SensorId, SorterConfig, UtcMicros};
use brisk_ism::OnlineSorter;
use brisk_sim::{run_sorting_experiment, DelayModel, SortingConfig};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn interleaved_records(sources: usize, total: usize) -> Vec<EventRecord> {
    (0..total)
        .map(|i| {
            let node = i % sources;
            EventRecord::new(
                NodeId(node as u32),
                SensorId(0),
                EventTypeId(1),
                (i / sources) as u64,
                UtcMicros::from_micros(i as i64 * 7),
                vec![],
            )
            .unwrap()
        })
        .collect()
}

fn bench_sorter(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_sorter");
    let total = 16_384;
    for sources in [1usize, 4, 16, 64] {
        group.throughput(Throughput::Elements(total as u64));
        group.bench_with_input(
            BenchmarkId::new("push_poll", sources),
            &sources,
            |b, &sources| {
                let records = interleaved_records(sources, total);
                b.iter_batched(
                    || records.clone(),
                    |records| {
                        let cfg = SorterConfig {
                            initial_frame_us: 100,
                            ..SorterConfig::default()
                        };
                        let mut sorter = OnlineSorter::new(cfg, 0).unwrap();
                        let mut released = 0usize;
                        for (i, rec) in records.into_iter().enumerate() {
                            let now = UtcMicros::from_micros(i as i64 * 7);
                            sorter.push(rec);
                            if i % 256 == 0 {
                                released += sorter.poll(now).len();
                            }
                        }
                        released += sorter.drain_all().len();
                        black_box(released)
                    },
                    BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("sorting_experiment");
    group.sample_size(10);
    for (name, decay) in [("fast_decay", 0.5f64), ("slow_decay", 0.99)] {
        group.bench_function(name, |b| {
            let cfg = SortingConfig {
                nodes: 4,
                events_per_node: 2_000,
                delay: DelayModel {
                    base_us: 100,
                    jitter_us: 2_000,
                    ..DelayModel::ideal()
                },
                sorter: SorterConfig {
                    initial_frame_us: 0,
                    min_frame_us: 0,
                    growth: FrameGrowth::ToObservedLateness,
                    decay_factor: decay,
                    ..SorterConfig::default()
                },
                ..SortingConfig::default()
            };
            b.iter(|| black_box(run_sorting_experiment(&cfg).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sorter);
criterion_main!(benches);
