//! Zone-map pruning effectiveness on the store query path: segments
//! touched by a narrow predicate versus a full scan over the same store.
//!
//! The acceptance bar for the query engine is that on a workload whose
//! activity is phased by node over time — each node's records landing in
//! their own run of segments, which is exactly what a staged experiment
//! or a rolling deployment produces — a single-node predicate reads at
//! most 1/5 of the store's segments. The zone maps carry exact node-id
//! sets and min/max timestamps, so the reduction is deterministic; the
//! timed trials exist to show the byte savings turn into wall-clock
//! savings, not to define the gate.
//!
//! Set `BENCH_QUERY_JSON=<path>` to emit the machine-readable artifact
//! (`BENCH_query.json` at the repo root is generated this way).

use brisk_core::{
    EventRecord, EventTypeId, FsyncPolicy, NodeId, SensorId, StoreConfig, UtcMicros, Value,
};
use brisk_store::{Predicate, QueryReport, StoreReader, StoreWriter};
use std::hint::black_box;
use std::path::Path;

/// Records written per node; nodes are written one after another so each
/// lands in its own run of 4 KiB segments.
const RECORDS_PER_NODE: u64 = 2_000;
const NODES: u32 = 8;

fn rec(node: u32, seq: u64) -> EventRecord {
    EventRecord::new(
        NodeId(node),
        SensorId(node * 10),
        EventTypeId(1),
        seq,
        UtcMicros::from_micros(seq as i64 * 10),
        vec![
            Value::U32(seq as u32),
            Value::U32((seq / 3) as u32),
            Value::I32(-(seq as i32)),
            Value::U32(node),
            Value::I32(7),
            Value::I32(11),
        ],
    )
    .expect("bench record")
}

fn build_store(dir: &Path) {
    let mut cfg = StoreConfig::at(dir.to_path_buf());
    cfg.segment_bytes = 4096;
    cfg.fsync = FsyncPolicy::Never;
    let mut w = StoreWriter::open(&cfg).expect("open store");
    let mut seq = 0u64;
    for node in 1..=NODES {
        for _ in 0..RECORDS_PER_NODE {
            w.append(&rec(node, seq)).expect("append");
            seq += 1;
        }
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in timings"));
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// Time one query (no cache on the reader, so every trial re-scans) and
/// return (micros, report).
fn timed_query(reader: &StoreReader, pred: &Predicate) -> (f64, QueryReport) {
    let start = std::time::Instant::now();
    let (hit, report) = reader.query(pred).expect("query");
    let us = start.elapsed().as_nanos() as f64 / 1_000.0;
    black_box(hit.records.len());
    (us, report)
}

fn main() {
    let trials = env_usize("BENCH_QUERY_TRIALS", 50);
    let warmup = env_usize("BENCH_QUERY_WARMUP", 5);

    let dir = std::env::temp_dir().join(format!("brisk-bench-query-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    build_store(&dir);
    let reader = StoreReader::open(&dir).expect("open reader");

    let narrow = Predicate::all().node(1);
    let full = Predicate::all();

    for _ in 0..warmup {
        timed_query(&reader, &narrow);
        timed_query(&reader, &full);
    }

    let mut narrow_us = Vec::with_capacity(trials);
    let mut full_us = Vec::with_capacity(trials);
    let mut report = QueryReport::default();
    for _ in 0..trials {
        let (us, r) = timed_query(&reader, &narrow);
        narrow_us.push(us);
        report = r;
        let (us, _) = timed_query(&reader, &full);
        full_us.push(us);
    }
    let _ = std::fs::remove_dir_all(&dir);

    let touched = report.segments_scanned;
    let total = report.segments_total;
    let reduction = total as f64 / (touched.max(1)) as f64;
    let pass = reduction >= 5.0;
    let narrow_med = median(&narrow_us);
    let full_med = median(&full_us);

    println!(
        "bench query_prune/narrow (node predicate) median {narrow_med:.1} us, \
         {touched}/{total} segments touched"
    );
    println!("bench query_prune/full_scan median {full_med:.1} us, {total}/{total} segments");
    println!(
        "query_prune 1-of-{NODES}-nodes predicate touches {touched} of {total} segments \
         ({reduction:.1}x reduction)  acceptance(>= 5x): {}",
        if pass { "PASS" } else { "FAIL" }
    );

    if let Ok(path) = std::env::var("BENCH_QUERY_JSON") {
        let mut out = String::from("{\n");
        out.push_str("  \"artifact\": \"zone-map segment pruning on the store query path\",\n");
        out.push_str(&format!(
            "  \"method\": \"cargo bench -p brisk-bench --bench query_prune ({NODES} nodes x \
             {RECORDS_PER_NODE} records phased into 4 KiB segments; a single-node predicate is \
             timed against a full scan over the same store and the QueryReport counts segments \
             pruned by the zoned sidecars; reduction = segments_total / segments_scanned)\",\n"
        ));
        out.push_str(&format!("  \"date\": \"{}\",\n", bench_date()));
        out.push_str(&format!("  \"trials\": {trials},\n"));
        out.push_str("  \"results\": [\n");
        out.push_str(&format!(
            "    {{\"bench\": \"query_prune/narrow\", \"median_us\": {narrow_med:.1}, \
             \"segments_touched\": {touched}, \"segments_total\": {total}, \
             \"segments_pruned\": {}}},\n",
            report.segments_pruned
        ));
        out.push_str(&format!(
            "    {{\"bench\": \"query_prune/full_scan\", \"median_us\": {full_med:.1}, \
             \"segments_touched\": {total}, \"segments_total\": {total}}}\n"
        ));
        out.push_str("  ],\n");
        out.push_str("  \"summary\": {\n");
        out.push_str(&format!("    \"segments_touched\": {touched},\n"));
        out.push_str(&format!("    \"segments_total\": {total},\n"));
        out.push_str(&format!("    \"reduction_factor\": {reduction:.1},\n"));
        out.push_str(&format!(
            "    \"narrow_over_full_time_ratio\": {:.2},\n",
            narrow_med / full_med
        ));
        out.push_str(
            "    \"acceptance\": \"single-node predicate touches <= 1/5 of the store's \
             segments\",\n",
        );
        out.push_str(&format!("    \"pass\": {pass}\n"));
        out.push_str("  }\n}\n");
        std::fs::write(&path, out).expect("write BENCH_QUERY_JSON");
        println!("wrote {path}");
    }
}

/// UTC date for the artifact, without a chrono dependency.
fn bench_date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    // Days-to-civil conversion (Howard Hinnant's algorithm).
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
