//! Pipeline-tracing overhead on the notice hot path: records/s through
//! `SensorPort::emit` with no trace sampler versus a 1-in-128 sampler.
//!
//! The acceptance bar for the tracing subsystem is that production-grade
//! sampling (1-in-128) costs ≤ 5% on the emit path: the per-notice work
//! is one relaxed `fetch_add` plus a modulo in `TraceSampler::sample`,
//! and only every 128th record pays for the `TraceContext` allocation
//! and the extra `X_TRACE` bytes copied into the ring.
//!
//! Like `store_sink`, this is a *paired* benchmark: the variants are
//! timed in adjacent slices of the same trial and the overhead is the
//! median of per-trial time ratios, which cancels the machine drift that
//! makes unpaired runs on a shared host vary by more than the 5% bar.
//!
//! Set `BENCH_TRACE_JSON=<path>` to emit the machine-readable artifact
//! (`BENCH_trace.json` at the repo root is generated this way).

use brisk_bench::rig::six_i32_fields;
use brisk_clock::{Clock, SystemClock};
use brisk_core::{EventTypeId, NodeId, TraceConfig};
use brisk_ringbuf::{RingSet, SensorPort};
use brisk_telemetry::TraceSampler;
use std::hint::black_box;
use std::sync::Arc;

/// Emits timed per trial slice. Small enough that a slice never fills the
/// 4 MiB ring: the drain runs *between* timed slices, so the timed region
/// is the emit path itself — which is all the sampler can slow down.
const EMITS_PER_TRIAL: usize = 2_048;
/// The production sampling rate under test.
const SAMPLE_EVERY: u32 = 128;

struct Variant {
    name: &'static str,
    rings: Arc<RingSet>,
    port: SensorPort,
    drain_buf: Vec<brisk_core::EventRecord>,
    samples: Vec<f64>,
}

impl Variant {
    fn new(name: &'static str, trace: TraceConfig) -> Self {
        let rings = RingSet::new(NodeId(0), 1 << 22);
        let mut port = rings.register();
        if trace.enabled() {
            port.set_trace_sampler(Arc::new(TraceSampler::with_seed(
                trace.sample_every,
                0x5eed,
            )));
        }
        Variant {
            name,
            rings,
            port,
            drain_buf: Vec::new(),
            samples: Vec::new(),
        }
    }

    /// Time one slice of emits; record ns/record. The ring drain between
    /// slices is untimed — on a real node the EXS does it on another core.
    fn run_trial(&mut self, clock: &SystemClock, i: &mut u64) {
        let start = std::time::Instant::now();
        for _ in 0..EMITS_PER_TRIAL {
            *i += 1;
            let ok = self
                .port
                .emit(EventTypeId(1), clock.now(), black_box(six_i32_fields(*i)))
                .unwrap();
            black_box(ok);
        }
        let ns = start.elapsed().as_nanos() as f64;
        self.samples.push(ns / EMITS_PER_TRIAL as f64);
        self.drain_buf.clear();
        self.rings
            .drain_into(usize::MAX, &mut self.drain_buf)
            .unwrap();
    }
}

fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in timings"));
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// Median of per-trial `num[i] / den[i]` ratios.
fn median_ratio(num: &[f64], den: &[f64]) -> f64 {
    let ratios: Vec<f64> = num.iter().zip(den).map(|(n, d)| n / d).collect();
    median(&ratios)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let trials = env_usize("BENCH_TRACE_TRIALS", 600);
    let warmup = env_usize("BENCH_TRACE_WARMUP", 200);

    let clock = SystemClock;
    let mut variants = [
        Variant::new("notice_untraced", TraceConfig::default()),
        Variant::new("notice_sampled_1_in_128", TraceConfig::every(SAMPLE_EVERY)),
    ];

    let mut i = 0u64;
    for v in &mut variants {
        for _ in 0..warmup {
            v.run_trial(&clock, &mut i);
        }
        v.samples.clear();
    }
    for _ in 0..trials {
        for v in &mut variants {
            v.run_trial(&clock, &mut i);
        }
    }

    let meds: Vec<f64> = variants.iter().map(|v| median(&v.samples)).collect();
    for (n, v) in variants.iter().enumerate() {
        println!(
            "bench trace_overhead/{} median {:.1} ns/record {:.0} records/s",
            v.name,
            meds[n],
            1e9 / meds[n]
        );
    }
    let overhead_pct = (median_ratio(&variants[1].samples, &variants[0].samples) - 1.0) * 100.0;
    let pass = overhead_pct <= 5.0;
    println!(
        "trace_overhead 1-in-{SAMPLE_EVERY} sampling vs untraced: {overhead_pct:+.1}%  \
         ({trials} paired trials, median of per-trial ratios)  \
         acceptance(<= 5%): {}",
        if pass { "PASS" } else { "FAIL" }
    );

    if let Ok(path) = std::env::var("BENCH_TRACE_JSON") {
        let mut out = String::from("{\n");
        out.push_str("  \"artifact\": \"pipeline-tracing overhead on the notice hot path\",\n");
        out.push_str(&format!(
            "  \"method\": \"cargo bench -p brisk-bench --bench trace_overhead (paired \
             interleaved trials; per-trial slices of {EMITS_PER_TRIAL} SensorPort::emit calls \
             with the ring drained between timed slices; overhead = median of per-trial \
             sampled/untraced time ratios, cancelling machine drift; the sampled variant runs \
             a 1-in-{SAMPLE_EVERY} TraceSampler so one record in {SAMPLE_EVERY} carries an \
             X_TRACE context into the ring)\",\n"
        ));
        out.push_str(&format!("  \"date\": \"{}\",\n", bench_date()));
        out.push_str(&format!("  \"trials\": {trials},\n"));
        out.push_str("  \"results\": [\n");
        for (n, v) in variants.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"bench\": \"trace_overhead/{}\", \"median_ns_per_record\": {:.1}, \
                 \"records_per_sec\": {:.0}}}{}\n",
                v.name,
                meds[n],
                1e9 / meds[n],
                if n + 1 < variants.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"summary\": {\n");
        out.push_str(&format!(
            "    \"untraced_median_ns_per_record\": {:.1},\n",
            meds[0]
        ));
        out.push_str(&format!(
            "    \"sampled_median_ns_per_record\": {:.1},\n",
            meds[1]
        ));
        out.push_str(&format!("    \"overhead_pct\": {overhead_pct:.1},\n"));
        out.push_str(&format!(
            "    \"acceptance\": \"1-in-{SAMPLE_EVERY} sampling overhead <= 5% on the emit path\",\n"
        ));
        out.push_str(&format!("    \"pass\": {pass}\n"));
        out.push_str("  }\n}\n");
        std::fs::write(&path, out).expect("write BENCH_TRACE_JSON");
        println!("wrote {path}");
    }
}

/// UTC date for the artifact, without a chrono dependency.
fn bench_date() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    // Days-to-civil conversion (Howard Hinnant's algorithm).
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
