//! Causal-ordering overhead on the ISM delivery path: records/s through
//! `push_batch` + `tick` with the default physical-timestamp discipline
//! versus `OrderMode::Causal` fed `X_HLC`-stamped records.
//!
//! The acceptance bar for the causal plane is ≤ 10% versus physical
//! ordering on the `store_sink` workload shape (64-record batches of
//! 6-field events through an in-memory `IsmCore`): the per-record work
//! causal mode adds on this path is the receive-side stamp observation,
//! the HLC comparison in the CRE switch, and the stamp-keyed sorter
//! ordering. Producer-side stamp *generation* is a per-node EXS cost
//! (one `Hlc::tick` + one field append per record, paid at the leaf),
//! so batches are built — and stamped — outside the timed region here,
//! exactly as a relay or root ISM would receive them off the wire.
//!
//! Like `store_sink`, this is a *paired* benchmark: both variants are
//! timed in adjacent slices of the same trial and the overhead is the
//! median of per-trial time ratios, which cancels the slow machine drift
//! that makes unpaired runs on a shared host vary by more than the bar.
//!
//! Set `BENCH_CAUSAL_JSON=<path>` to emit the machine-readable artifact
//! (`BENCH_causal.json` at the repo root is generated this way).

use brisk_bench::rig::six_i32_fields;
use brisk_clock::Hlc;
use brisk_core::{EventRecord, EventTypeId, IsmConfig, NodeId, OrderMode, SensorId, UtcMicros};
use brisk_ism::IsmCore;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Records per `push_batch` call — the `store_sink` shape.
const BATCH: usize = 64;
static BATCHES_PER_TRIAL: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(4);

fn batches_per_trial() -> usize {
    BATCHES_PER_TRIAL.load(std::sync::atomic::Ordering::Relaxed)
}

/// One pipeline under test. The causal variant's input records carry
/// `X_HLC` stamps from a producer-side [`Hlc`], attached while the batch
/// is built (untimed), as an EXS would have done before the wire.
struct Variant {
    name: &'static str,
    core: IsmCore,
    hlc: Option<Arc<Hlc>>,
    ts: i64,
    seq: u64,
    samples: Vec<f64>,
}

impl Variant {
    fn new(name: &'static str, order_mode: OrderMode) -> Self {
        let cfg = IsmConfig {
            order_mode,
            ..IsmConfig::default()
        };
        Variant {
            name,
            core: IsmCore::new(cfg).unwrap(),
            hlc: (order_mode == OrderMode::Causal).then(Hlc::new),
            ts: 1_000_000_000,
            seq: 0,
            samples: Vec::new(),
        }
    }

    /// Build one batch the way the wire would deliver it (stamped when
    /// the variant is causal). Untimed.
    fn build_batch(&mut self) -> Vec<EventRecord> {
        (0..BATCH)
            .map(|_| {
                self.ts += 1;
                self.seq += 1;
                let mut rec = EventRecord::new(
                    NodeId(1),
                    SensorId(0),
                    EventTypeId(1),
                    self.seq,
                    UtcMicros::from_micros(self.ts),
                    six_i32_fields(self.seq),
                )
                .unwrap();
                if let Some(hlc) = &self.hlc {
                    rec.set_hlc(hlc.tick(UtcMicros::from_micros(self.ts)));
                }
                rec
            })
            .collect()
    }

    /// Push one batch and tick far enough that the sorter releases it.
    fn run_batch(&mut self, records: Vec<EventRecord>) {
        let now = UtcMicros::from_micros(self.ts);
        self.core.push_batch(records, now).unwrap();
        let released = self
            .core
            .tick(UtcMicros::from_micros(self.ts + 10_000_000))
            .unwrap();
        black_box(released);
    }

    /// Time one slice of `batches_per_trial()` batches; record ns/record.
    fn run_trial(&mut self) {
        let batches = batches_per_trial();
        let prebuilt: Vec<Vec<EventRecord>> = (0..batches).map(|_| self.build_batch()).collect();
        let start = Instant::now();
        for records in prebuilt {
            self.run_batch(records);
        }
        let ns = start.elapsed().as_nanos() as f64;
        self.samples.push(ns / (batches * BATCH) as f64);
    }
}

fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in timings"));
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// Median of per-trial `num[i] / den[i]` ratios.
fn median_ratio(num: &[f64], den: &[f64]) -> f64 {
    let ratios: Vec<f64> = num.iter().zip(den).map(|(n, d)| n / d).collect();
    median(&ratios)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let trials = env_usize("BENCH_CAUSAL_TRIALS", 400);
    let warmup = env_usize("BENCH_CAUSAL_WARMUP", 200);
    BATCHES_PER_TRIAL.store(
        env_usize("BENCH_CAUSAL_BATCHES", 4),
        std::sync::atomic::Ordering::Relaxed,
    );

    let mut variants = [
        Variant::new("deliver_physical", OrderMode::Physical),
        Variant::new("deliver_causal_hlc", OrderMode::Causal),
    ];

    for v in &mut variants {
        for _ in 0..warmup {
            let records = v.build_batch();
            v.run_batch(records);
        }
    }
    for _ in 0..trials {
        for v in &mut variants {
            v.run_trial();
        }
    }

    let meds: Vec<f64> = variants.iter().map(|v| median(&v.samples)).collect();
    let means: Vec<f64> = variants
        .iter()
        .map(|v| v.samples.iter().sum::<f64>() / v.samples.len() as f64)
        .collect();
    for (i, v) in variants.iter().enumerate() {
        println!(
            "bench causal_overhead/{} median {:.1} ns/record (mean {:.1}) {:.0} records/s",
            v.name,
            meds[i],
            means[i],
            1e9 / meds[i]
        );
    }
    let overhead = (median_ratio(&variants[1].samples, &variants[0].samples) - 1.0) * 100.0;
    let pass = overhead <= 10.0;
    println!(
        "causal_overhead vs physical: {overhead:+.1}%  ({trials} paired trials, median of \
         per-trial ratios)  acceptance(causal <= 10%): {}",
        if pass { "PASS" } else { "FAIL" }
    );

    if let Ok(path) = std::env::var("BENCH_CAUSAL_JSON") {
        let mut out = String::from("{\n");
        out.push_str(
            "  \"artifact\": \"causal (HLC) ordering overhead on the ISM delivery path\",\n",
        );
        out.push_str(&format!(
            "  \"method\": \"cargo bench -p brisk-bench --bench causal_overhead (paired \
             interleaved trials; per-trial slices of {}x64-record batches through IsmCore \
             push_batch+tick; the causal variant receives X_HLC-stamped records and runs the \
             plane in OrderMode::Causal, so the timed region covers the receive-side stamp \
             observation, the CRE stamp comparison, and stamp-keyed sorting — batches are \
             built and stamped untimed, as the wire would deliver them; overhead = median of \
             per-trial causal/physical time ratios)\",\n",
            batches_per_trial()
        ));
        out.push_str(&format!("  \"trials\": {trials},\n"));
        out.push_str("  \"results\": [\n");
        for (i, v) in variants.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"bench\": \"causal_overhead/{}\", \"median_ns_per_record\": {:.1}, \
                 \"mean_ns_per_record\": {:.1}, \"records_per_sec\": {:.0}}}{}\n",
                v.name,
                meds[i],
                means[i],
                1e9 / meds[i],
                if i + 1 < variants.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"summary\": {\n");
        out.push_str(&format!(
            "    \"physical_median_ns_per_record\": {:.1},\n",
            meds[0]
        ));
        out.push_str(&format!(
            "    \"causal_median_ns_per_record\": {:.1},\n",
            meds[1]
        ));
        out.push_str(&format!("    \"overhead_pct\": {overhead:.1},\n"));
        out.push_str("    \"acceptance\": \"causal-mode overhead <= 10% vs physical ordering\",\n");
        out.push_str(&format!("    \"pass\": {pass}\n"));
        out.push_str("  }\n}\n");
        std::fs::write(&path, out).expect("write BENCH_CAUSAL_JSON");
        println!("wrote {path}");
    }
}
