//! E6/A1 micro-benchmarks: cost of one synchronization round's planning,
//! and of a full simulated round including network flight times.

use brisk_clock::SkewSample;
use brisk_core::{NodeId, SyncConfig, UtcMicros};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn samples_for(node: u32, skew: i64, n: usize) -> Vec<(NodeId, SkewSample)> {
    (0..n)
        .map(|i| {
            (
                NodeId(node),
                SkewSample {
                    t_master_send: UtcMicros::from_micros(i as i64 * 1_000),
                    t_slave: UtcMicros::from_micros(i as i64 * 1_000 + 150 + skew),
                    t_master_recv: UtcMicros::from_micros(i as i64 * 1_000 + 300),
                },
            )
        })
        .collect()
}

fn bench_sync(c: &mut Criterion) {
    let mut group = c.benchmark_group("clock_sync");
    for nodes in [2usize, 8, 32, 128] {
        group.bench_with_input(
            BenchmarkId::new("plan_round", nodes),
            &nodes,
            |b, &nodes| {
                b.iter(|| {
                    let mut master = brisk_clock::SyncMaster::new(SyncConfig::default()).unwrap();
                    master.begin_round();
                    for n in 0..nodes {
                        for (node, s) in samples_for(n as u32, (n as i64 * 37) % 900, 4) {
                            master.add_sample(node, s);
                        }
                    }
                    black_box(master.finish_round().unwrap())
                });
            },
        );
    }
    group.bench_function("full_sim_round_8_nodes", |b| {
        b.iter(|| {
            let cfg = brisk_sim::SyncSimConfig {
                nodes: 8,
                duration: Duration::from_secs(6), // exactly one round
                ..brisk_sim::SyncSimConfig::default()
            };
            black_box(brisk_sim::SyncSimulation::new(cfg).run().unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_sync);
criterion_main!(benches);
