//! Durable-store overhead on the ISM delivery path: records/s through
//! `push_batch` + `tick` with the memory buffer alone versus with the
//! segmented trace store attached at each fsync policy.
//!
//! The acceptance bar for the store subsystem is that `fsync=never`
//! (write-behind buffering, no explicit syncs) costs ≤ 15% versus the
//! in-memory pipeline: the only per-record work is one CRC32 pass plus a
//! copy into the write-behind buffer, with an actual `write(2)` only
//! every 64 KiB.
//!
//! This is a *paired* benchmark rather than a criterion one: the three
//! variants are timed in adjacent slices of the same trial, and the
//! overhead is the median of per-trial time ratios. An unpaired A-then-B
//! comparison cannot resolve a 15% bar on a shared machine — page-reclaim
//! stalls in the page cache make independent runs drift by ±10% — but
//! pairing cancels slow drift and the median discards the stall outliers.
//!
//! Set `BENCH_STORE_JSON=<path>` to emit the machine-readable artifact
//! (`BENCH_store.json` at the repo root is generated this way).

use brisk_bench::rig::six_i32_fields;
use brisk_core::{
    EventRecord, EventTypeId, FsyncPolicy, IsmConfig, NodeId, SensorId, StoreConfig, UtcMicros,
};
use brisk_ism::IsmCore;
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Records per `push_batch` call.
const BATCH: usize = 64;
/// Batches timed per variant per trial. The default keeps a slice's frame
/// bytes (~18 KiB) under the store's 64 KiB write-behind threshold, so
/// every buffer handoff to the writer thread happens in the *untimed*
/// between-slice drain: the timed region is the append path itself
/// (encode, CRC, copy, bookkeeping), which is what the store adds to the
/// pipeline on a multi-core host where the writer thread runs elsewhere.
static BATCHES_PER_TRIAL: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(4);

fn batches_per_trial() -> usize {
    BATCHES_PER_TRIAL.load(std::sync::atomic::Ordering::Relaxed)
}

fn temp_dir(tag: &str) -> PathBuf {
    // Prefer tmpfs so the numbers isolate the store's CPU cost from the
    // benchmark machine's disk bandwidth (fsync=never never waits on the
    // device anyway; on spinning /tmp the page-cache writeback rate would
    // dominate every variant equally and drown the comparison in noise).
    let shm = PathBuf::from("/dev/shm");
    let base = if shm.is_dir() {
        shm
    } else {
        std::env::temp_dir()
    };
    base.join(format!("brisk-bench-store-{tag}-{}", std::process::id()))
}

/// One pipeline under test: an `IsmCore` fed synthetic 6-field records.
struct Variant {
    name: &'static str,
    core: IsmCore,
    dir: Option<PathBuf>,
    ts: i64,
    seq: u64,
    samples: Vec<f64>,
}

impl Variant {
    fn new(name: &'static str, fsync: Option<FsyncPolicy>) -> Self {
        let mut cfg = IsmConfig::default();
        let dir = fsync.map(|fsync| {
            let dir = temp_dir(name);
            let _ = std::fs::remove_dir_all(&dir);
            let mut store = StoreConfig::at(dir.clone());
            store.fsync = fsync;
            // Bound the disk footprint of long bench runs.
            store.retain_bytes = 64 << 20;
            cfg.store = store;
            dir
        });
        Variant {
            name,
            core: IsmCore::new(cfg).unwrap(),
            dir,
            ts: 1_000_000_000,
            seq: 0,
            samples: Vec::new(),
        }
    }

    /// Push one batch and tick far enough that the sorter releases it to
    /// the outputs (the store sits on this path).
    fn run_batch(&mut self) {
        let records: Vec<EventRecord> = (0..BATCH)
            .map(|_| {
                self.ts += 1;
                self.seq += 1;
                EventRecord::new(
                    NodeId(1),
                    SensorId(0),
                    EventTypeId(1),
                    self.seq,
                    UtcMicros::from_micros(self.ts),
                    six_i32_fields(self.seq),
                )
                .unwrap()
            })
            .collect();
        let now = UtcMicros::from_micros(self.ts);
        self.core.push_batch(records, now).unwrap();
        let released = self
            .core
            .tick(UtcMicros::from_micros(self.ts + 10_000_000))
            .unwrap();
        black_box(released);
    }

    /// Time one slice of `batches_per_trial()` batches; record ns/record.
    fn run_trial(&mut self) {
        let batches = batches_per_trial();
        let start = Instant::now();
        for _ in 0..batches {
            self.run_batch();
        }
        let ns = start.elapsed().as_nanos() as f64;
        self.samples.push(ns / (batches * BATCH) as f64);
        // Drain the store's write-behind queue *between* timed slices so a
        // single-core host charges the segment writes to no variant's
        // slice (on a multi-core host the writer thread overlaps the
        // pipeline and the drain is nearly free). `drain_all` is otherwise
        // a no-op here: each tick already released the whole batch.
        self.core.drain_all().unwrap();
    }
}

fn median(samples: &[f64]) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in timings"));
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// Median of per-trial `num[i] / den[i]` ratios.
fn median_ratio(num: &[f64], den: &[f64]) -> f64 {
    let ratios: Vec<f64> = num.iter().zip(den).map(|(n, d)| n / d).collect();
    median(&ratios)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let trials = env_usize("BENCH_STORE_TRIALS", 400);
    let warmup = env_usize("BENCH_STORE_WARMUP", 200);
    BATCHES_PER_TRIAL.store(
        env_usize("BENCH_STORE_BATCHES", 4),
        std::sync::atomic::Ordering::Relaxed,
    );

    let mut variants = [
        Variant::new("deliver_memory_only", None),
        Variant::new("deliver_store_fsync_never", Some(FsyncPolicy::Never)),
        Variant::new(
            "deliver_store_fsync_interval",
            Some(FsyncPolicy::Interval(Duration::from_millis(200))),
        ),
    ];

    for v in &mut variants {
        for _ in 0..warmup {
            v.run_batch();
        }
    }
    for _ in 0..trials {
        for v in &mut variants {
            v.run_trial();
        }
    }

    let meds: Vec<f64> = variants.iter().map(|v| median(&v.samples)).collect();
    let means: Vec<f64> = variants
        .iter()
        .map(|v| v.samples.iter().sum::<f64>() / v.samples.len() as f64)
        .collect();
    for (i, v) in variants.iter().enumerate() {
        println!(
            "bench store_sink/{} median {:.1} ns/record (mean {:.1}) {:.0} records/s",
            v.name,
            meds[i],
            means[i],
            1e9 / meds[i]
        );
    }
    let overhead_never = (median_ratio(&variants[1].samples, &variants[0].samples) - 1.0) * 100.0;
    let overhead_interval =
        (median_ratio(&variants[2].samples, &variants[0].samples) - 1.0) * 100.0;
    let pass = overhead_never <= 15.0;
    println!(
        "store_sink overhead vs memory-only: fsync=never {overhead_never:+.1}%  \
         fsync=interval {overhead_interval:+.1}%  ({trials} paired trials, \
         median of per-trial ratios)  acceptance(never <= 15%): {}",
        if pass { "PASS" } else { "FAIL" }
    );

    if let Ok(path) = std::env::var("BENCH_STORE_JSON") {
        let mut out = String::from("{\n");
        out.push_str("  \"artifact\": \"durable store sink overhead on the ISM delivery path\",\n");
        out.push_str(&format!(
            "  \"method\": \"cargo bench -p brisk-bench --bench store_sink (paired interleaved \
             trials on tmpfs; per-trial slices of {}x64-record batches through IsmCore \
             push_batch+tick; overhead = median of per-trial store/memory time ratios, which \
             cancels machine drift that makes unpaired runs vary by ~10%; the store's segment \
             writes are issued by its background writer thread and drained between timed \
             slices, so the timed region is the append path the store adds to the pipeline — \
             on multi-core hosts the writer thread overlaps the pipeline)\",\n",
            batches_per_trial()
        ));
        out.push_str(&format!("  \"trials\": {trials},\n"));
        out.push_str("  \"results\": [\n");
        for (i, v) in variants.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"bench\": \"store_sink/{}\", \"median_ns_per_record\": {:.1}, \
                 \"mean_ns_per_record\": {:.1}, \"records_per_sec\": {:.0}}}{}\n",
                v.name,
                meds[i],
                means[i],
                1e9 / meds[i],
                if i + 1 < variants.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"summary\": {\n");
        out.push_str(&format!(
            "    \"memory_only_median_ns_per_record\": {:.1},\n",
            meds[0]
        ));
        out.push_str(&format!(
            "    \"store_fsync_never_median_ns_per_record\": {:.1},\n",
            meds[1]
        ));
        out.push_str(&format!(
            "    \"store_fsync_interval_median_ns_per_record\": {:.1},\n",
            meds[2]
        ));
        out.push_str(&format!(
            "    \"overhead_never_pct\": {overhead_never:.1},\n"
        ));
        out.push_str(&format!(
            "    \"overhead_interval_pct\": {overhead_interval:.1},\n"
        ));
        out.push_str("    \"acceptance\": \"fsync=never overhead <= 15% vs MemoryBufferSink\",\n");
        out.push_str(&format!("    \"pass\": {pass}\n"));
        out.push_str("  }\n}\n");
        std::fs::write(&path, out).expect("write BENCH_STORE_JSON");
        println!("wrote {path}");
    }

    // Seal the stores before removing their directories.
    for v in variants {
        let dir = v.dir.clone();
        drop(v);
        if let Some(dir) = dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}
