//! E3 micro-benchmarks: the transfer protocol's encode/decode cost per
//! batch size, which bounds the achievable EXS→ISM event throughput.
//!
//! Paper reference: "the maximum throughput achieved between an EXS and
//! ISM was 90,000 events per second" with 40-byte XDR records (§4).

use brisk_bench::rig::six_i32_fields;
use brisk_core::{EventRecord, EventTypeId, NodeId, SensorId, UtcMicros};
use brisk_proto::Message;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn batch(n: usize) -> Message {
    Message::EventBatch {
        node: NodeId(1),
        seq: None,
        records: (0..n as u64)
            .map(|i| {
                EventRecord::new(
                    NodeId(1),
                    SensorId(0),
                    EventTypeId(1),
                    i,
                    UtcMicros::from_micros(i as i64),
                    six_i32_fields(i),
                )
                .unwrap()
            })
            .collect(),
    }
}

fn bench_transfer(c: &mut Criterion) {
    let mut group = c.benchmark_group("transfer_protocol");
    for n in [16usize, 64, 256, 1024] {
        let msg = batch(n);
        let encoded = msg.encode();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("encode", n), &msg, |b, msg| {
            b.iter(|| black_box(msg.encode()));
        });
        group.bench_with_input(BenchmarkId::new("decode", n), &encoded, |b, bytes| {
            b.iter(|| black_box(Message::decode(bytes).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("round_trip", n), &msg, |b, msg| {
            b.iter(|| {
                let bytes = msg.encode();
                black_box(Message::decode(&bytes).unwrap())
            });
        });
    }
    group.finish();

    // Native encoding (ring-buffer / memory-buffer path) for comparison.
    let mut group = c.benchmark_group("native_encoding");
    let rec = EventRecord::new(
        NodeId(1),
        SensorId(0),
        EventTypeId(1),
        7,
        UtcMicros::from_micros(7),
        six_i32_fields(7),
    )
    .unwrap();
    group.throughput(Throughput::Elements(1));
    group.bench_function("encode_six_i32", |b| {
        let mut buf = Vec::with_capacity(128);
        b.iter(|| {
            buf.clear();
            brisk_core::binenc::encode_record(black_box(&rec), &mut buf);
            black_box(buf.len())
        });
    });
    let mut buf = Vec::new();
    brisk_core::binenc::encode_record(&rec, &mut buf);
    group.bench_function("decode_six_i32", |b| {
        b.iter(|| black_box(brisk_core::binenc::decode_record(&buf).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_transfer);
criterion_main!(benches);
