//! Property-based tests for the telemetry histogram.

use brisk_telemetry::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// Buckets partition the input: the total count equals the number of
    /// recorded values, and cumulative bucket counts are monotone.
    #[test]
    fn bucket_counts_partition_input(values in proptest::collection::vec(any::<u64>(), 0..200)) {
        let s = hist_of(&values);
        prop_assert_eq!(s.count(), values.len() as u64);
        let mut cum = 0u64;
        let mut prev = 0u64;
        for &b in &s.buckets {
            cum = cum.saturating_add(b);
            prop_assert!(cum >= prev, "cumulative counts must be monotone");
            prev = cum;
        }
        prop_assert_eq!(cum, values.len() as u64);
        if let Some(&m) = values.iter().max() {
            prop_assert_eq!(s.max, m);
        }
    }

    /// Quantiles are ordered and bounded: p50 <= p95 <= p99 <= max, and
    /// every quantile is at least the true minimum's bucket floor.
    #[test]
    fn quantile_bounds(values in proptest::collection::vec(0u64..1_000_000_000, 1..300)) {
        let s = hist_of(&values);
        let (p50, p95, p99) = (s.p50(), s.p95(), s.p99());
        prop_assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        prop_assert!(p95 <= p99, "p95 {p95} > p99 {p99}");
        prop_assert!(p99 <= s.max, "p99 {p99} > max {}", s.max);
        // A log2 bucket estimate never undershoots by more than 2x the
        // true quantile's bucket floor; cheap sanity: p50 is at least
        // the true minimum.
        let true_min = *values.iter().min().unwrap();
        prop_assert!(p50 >= true_min / 2, "p50 {p50} below min/2 ({true_min})");
    }

    /// Merging snapshots is associative and agrees with recording the
    /// concatenated inputs directly.
    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..100),
        b in proptest::collection::vec(any::<u64>(), 0..100),
        c in proptest::collection::vec(any::<u64>(), 0..100),
    ) {
        let (sa, sb, sc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let left = sa.merge(&sb).merge(&sc);
        let right = sa.merge(&sb.merge(&sc));
        prop_assert_eq!(&left, &right);

        // Merge == record-all (modulo saturation, which vec inputs of
        // this size cannot hit in buckets/count — sum may saturate).
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        let direct = hist_of(&all);
        prop_assert_eq!(left.buckets, direct.buckets);
        prop_assert_eq!(left.max, direct.max);
        prop_assert_eq!(left.count(), direct.count());
    }

    /// Merging with an empty snapshot is the identity.
    #[test]
    fn merge_identity(values in proptest::collection::vec(any::<u64>(), 0..100)) {
        let s = hist_of(&values);
        let empty = HistogramSnapshot::default();
        prop_assert_eq!(&s.merge(&empty), &s);
        prop_assert_eq!(&empty.merge(&s), &s);
    }
}
