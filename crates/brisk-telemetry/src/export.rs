//! Exposition: Prometheus text format, JSON, and a tiny scrape endpoint.

use crate::metrics::HISTOGRAM_BUCKETS;
use crate::registry::{Registry, SampleValue, TelemetrySnapshot};
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

fn label_str(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Inclusive upper edge of histogram bucket `i`, rendered for `le=`.
fn le_of(i: usize) -> String {
    if i >= HISTOGRAM_BUCKETS - 1 {
        "+Inf".to_string()
    } else if i == 0 {
        "0".to_string()
    } else {
        ((1u64 << i) - 1).to_string()
    }
}

impl TelemetrySnapshot {
    /// Render the snapshot in the Prometheus text exposition format:
    /// one `# TYPE` line per metric name, one sample line per series
    /// (histograms expand to cumulative `_bucket`/`_sum`/`_count`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: Vec<&str> = Vec::new();
        for s in &self.samples {
            if !typed.contains(&s.name.as_str()) {
                typed.push(&s.name);
                let kind = match s.value {
                    SampleValue::Counter(_) => "counter",
                    SampleValue::Gauge(_) => "gauge",
                    SampleValue::Histogram(_) => "histogram",
                };
                if !s.help.is_empty() {
                    let _ = writeln!(out, "# HELP {} {}", s.name, s.help);
                }
                let _ = writeln!(out, "# TYPE {} {kind}", s.name);
            }
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", s.name, label_str(&s.labels, None));
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v}", s.name, label_str(&s.labels, None));
                }
                SampleValue::Histogram(h) => {
                    let mut cum = 0u64;
                    let top = h.buckets.iter().rposition(|&c| c != 0).unwrap_or(0).max(1);
                    for (i, &c) in h.buckets.iter().enumerate() {
                        cum = cum.saturating_add(c);
                        // Skip interior empty buckets above the data;
                        // cumulative counts stay valid.
                        if i > top && i < HISTOGRAM_BUCKETS - 1 {
                            continue;
                        }
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cum}",
                            s.name,
                            label_str(&s.labels, Some(("le", le_of(i))))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        s.name,
                        label_str(&s.labels, None),
                        h.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        s.name,
                        label_str(&s.labels, None),
                        h.count()
                    );
                }
            }
        }
        out
    }

    /// Render the snapshot as a JSON document (no external deps: the
    /// format is flat and hand-written).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\"metrics\":[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\",\"labels\":{{", esc(&s.name));
            for (j, (k, v)) in s.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", esc(k), esc(v));
            }
            out.push_str("},");
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = write!(out, "\"type\":\"counter\",\"value\":{v}");
                }
                SampleValue::Gauge(v) => {
                    let _ = write!(out, "\"type\":\"gauge\",\"value\":{v}");
                }
                SampleValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"type\":\"histogram\",\"count\":{},\"sum\":{},\"max\":{},\
                         \"mean\":{:.2},\"p50\":{},\"p95\":{},\"p99\":{}",
                        h.count(),
                        h.sum,
                        h.max,
                        h.mean(),
                        h.p50(),
                        h.p95(),
                        h.p99()
                    );
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Handle to a running [`serve_prometheus`] endpoint.
pub struct StatsServer {
    /// Address actually bound (useful with port 0).
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl StatsServer {
    /// The bound listen address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the accept loop awake.
        let _ = std::net::TcpStream::connect(self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for StatsServer {
    fn drop(&mut self) {
        if self.join.is_some() {
            self.shutdown();
        }
    }
}

/// Extra endpoints for [`serve_stats`]: path → `(content type, body
/// producer)`. Lets pipeline components publish views the telemetry
/// crate cannot know about (quarantine forensics, trace exemplars,
/// readiness summaries) without growing its dependency surface.
#[derive(Default)]
pub struct RouteTable {
    routes: Vec<Route>,
}

/// One registered route: `(path, content type, body producer)`.
type Route = (String, String, Box<dyn Fn() -> String + Send + Sync>);

impl RouteTable {
    /// Empty table.
    pub fn new() -> Self {
        RouteTable::default()
    }

    /// Register `path` (e.g. `"/quarantine"`) served as `content_type`
    /// with a body produced per request. Registered routes take
    /// precedence over the built-ins, so `/healthz` can be upgraded from
    /// bare liveness to a readiness summary.
    pub fn add(
        mut self,
        path: &str,
        content_type: &str,
        body: impl Fn() -> String + Send + Sync + 'static,
    ) -> Self {
        self.routes
            .push((path.to_string(), content_type.to_string(), Box::new(body)));
        self
    }

    fn find(&self, path: &str) -> Option<(&str, &(dyn Fn() -> String + Send + Sync))> {
        self.routes
            .iter()
            .find(|(p, _, _)| p == path)
            .map(|(_, ct, f)| (ct.as_str(), f.as_ref()))
    }
}

/// Extract the request path from the first HTTP request line in `buf`
/// (`GET /metrics HTTP/1.0`), dropping any query string. Unparseable
/// requests default to `/metrics` — a bare scraper should keep working.
fn request_path(buf: &[u8]) -> String {
    let text = String::from_utf8_lossy(buf);
    let line = text.lines().next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let (Some(_method), Some(target)) = (parts.next(), parts.next()) else {
        return "/metrics".to_string();
    };
    let path = target.split('?').next().unwrap_or(target);
    if path.starts_with('/') {
        path.to_string()
    } else {
        "/metrics".to_string()
    }
}

fn http_response(status: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

/// Serve the stats endpoint over HTTP/1.0 on `addr` (port 0 picks a free
/// port), routing by request path:
///
/// * `/metrics` (or `/`) — Prometheus text exposition of `registry`;
/// * `/json` — the same snapshot as a JSON document;
/// * `/healthz` — liveness JSON (process up + flight-recorder counters);
/// * `/flight` — the global [`crate::flight`] recorder's recent events;
/// * any path in `routes` — the registered producer (checked first);
/// * anything else — `404`.
pub fn serve_stats(
    addr: impl ToSocketAddrs,
    registry: Arc<Registry>,
    routes: RouteTable,
) -> std::io::Result<StatsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("brisk-stats".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut conn) = conn else { continue };
                // Read the request line; ignore errors — a scraper that
                // hangs up early is not our problem.
                let _ = conn.set_read_timeout(Some(std::time::Duration::from_millis(200)));
                let mut buf = [0u8; 1024];
                let n = conn.read(&mut buf).unwrap_or(0);
                let path = request_path(&buf[..n]);
                let resp = if let Some((ct, body)) = routes.find(&path) {
                    http_response("200 OK", ct, &body())
                } else {
                    match path.as_str() {
                        "/metrics" | "/" => http_response(
                            "200 OK",
                            "text/plain; version=0.0.4",
                            &registry.snapshot().to_prometheus(),
                        ),
                        "/json" => http_response(
                            "200 OK",
                            "application/json",
                            &registry.snapshot().to_json(),
                        ),
                        "/healthz" => {
                            let f = crate::trace::flight();
                            let body = format!(
                                "{{\"status\":\"ok\",\"flight_recorded\":{},\
                                 \"flight_contended\":{}}}",
                                f.recorded(),
                                f.contended()
                            );
                            http_response("200 OK", "application/json", &body)
                        }
                        "/flight" => http_response(
                            "200 OK",
                            "application/json",
                            &crate::trace::flight().to_json(),
                        ),
                        _ => http_response("404 Not Found", "text/plain", "not found\n"),
                    }
                };
                let _ = conn.write_all(resp.as_bytes());
            }
        })?;
    Ok(StatsServer {
        addr: local,
        stop,
        join: Some(join),
    })
}

/// Serve `registry` with the built-in routes only. Kept as the
/// historical entry point; see [`serve_stats`] for the route map.
pub fn serve_prometheus(
    addr: impl ToSocketAddrs,
    registry: Arc<Registry>,
) -> std::io::Result<StatsServer> {
    serve_stats(addr, registry, RouteTable::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::io::{Read, Write};

    fn get(addr: std::net::SocketAddr, path: &str) -> String {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    fn scrape(addr: std::net::SocketAddr) -> String {
        get(addr, "/metrics")
    }

    #[test]
    fn prometheus_text_shape() {
        let r = Registry::new();
        r.counter_with("brisk_frames_total", "frames", &[("dir", "in")])
            .add(3);
        r.counter_with("brisk_frames_total", "frames", &[("dir", "out")])
            .add(4);
        r.gauge("brisk_depth", "depth").set(-2);
        let h = r.histogram("brisk_lat_us", "latency");
        h.record(3);
        h.record(100);
        let text = r.snapshot().to_prometheus();

        // One TYPE line per metric name.
        assert_eq!(text.matches("# TYPE brisk_frames_total counter").count(), 1);
        assert_eq!(text.matches("# TYPE brisk_depth gauge").count(), 1);
        assert_eq!(text.matches("# TYPE brisk_lat_us histogram").count(), 1);
        assert!(text.contains("brisk_frames_total{dir=\"in\"} 3"));
        assert!(text.contains("brisk_frames_total{dir=\"out\"} 4"));
        assert!(text.contains("brisk_depth -2"));
        assert!(text.contains("brisk_lat_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("brisk_lat_us_sum 103"));
        assert!(text.contains("brisk_lat_us_count 2"));

        // One sample line per series: no duplicated (name, labels).
        let mut seen = HashSet::new();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let series = line.rsplit_once(' ').unwrap().0.to_string();
            assert!(seen.insert(series.clone()), "duplicate series {series}");
        }
    }

    #[test]
    fn json_is_wellformed_enough() {
        let r = Registry::new();
        r.counter("a_total", "").add(1);
        r.histogram("h_us", "").record(7);
        let js = r.snapshot().to_json();
        assert!(js.starts_with("{\"metrics\":["));
        assert!(js.contains("\"type\":\"counter\",\"value\":1"));
        assert!(js.contains("\"p99\":7"));
        assert_eq!(js.matches('{').count(), js.matches('}').count());
    }

    #[test]
    fn scrape_endpoint_serves_registry() {
        let r = Registry::new();
        r.counter("brisk_up_total", "liveness").add(1);
        let srv = serve_prometheus("127.0.0.1:0", Arc::clone(&r)).unwrap();
        let resp = scrape(srv.addr());
        assert!(resp.starts_with("HTTP/1.0 200 OK"));
        assert!(resp.contains("text/plain"));
        assert!(resp.contains("# TYPE brisk_up_total counter"));
        assert!(resp.contains("brisk_up_total 1"));
        // Scrapes see fresh values.
        r.counter("brisk_up_total", "liveness").add(5);
        assert!(scrape(srv.addr()).contains("brisk_up_total 6"));
        srv.stop();
    }

    #[test]
    fn request_path_parsing() {
        assert_eq!(request_path(b"GET /json HTTP/1.0\r\n\r\n"), "/json");
        assert_eq!(request_path(b"GET /flight?n=5 HTTP/1.1\r\n"), "/flight");
        assert_eq!(request_path(b""), "/metrics");
        assert_eq!(request_path(b"garbage"), "/metrics");
    }

    #[test]
    fn routes_by_path() {
        let r = Registry::new();
        r.counter("brisk_routed_total", "").add(2);
        let srv = serve_prometheus("127.0.0.1:0", Arc::clone(&r)).unwrap();

        let metrics = get(srv.addr(), "/metrics");
        assert!(metrics.contains("200 OK"));
        assert!(metrics.contains("brisk_routed_total 2"));
        // Bare `/` stays a valid scrape target.
        assert!(get(srv.addr(), "/").contains("brisk_routed_total 2"));

        let json = get(srv.addr(), "/json");
        assert!(json.contains("application/json"));
        assert!(json.contains("\"name\":\"brisk_routed_total\""));

        let health = get(srv.addr(), "/healthz");
        assert!(health.contains("200 OK"));
        assert!(health.contains("\"status\":\"ok\""));

        let flight = get(srv.addr(), "/flight");
        assert!(flight.contains("200 OK"));
        assert!(flight.contains("\"events\":["));

        let missing = get(srv.addr(), "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"));
        srv.stop();
    }

    #[test]
    fn extra_routes_take_precedence() {
        let r = Registry::new();
        let routes = RouteTable::new()
            .add("/quarantine", "application/json", || "{\"q\":1}".into())
            .add("/healthz", "application/json", || {
                "{\"status\":\"ok\",\"ready\":true}".into()
            });
        let srv = serve_stats("127.0.0.1:0", Arc::clone(&r), routes).unwrap();
        assert!(get(srv.addr(), "/quarantine").contains("{\"q\":1}"));
        assert!(get(srv.addr(), "/healthz").contains("\"ready\":true"));
        // Built-ins still work alongside.
        assert!(get(srv.addr(), "/metrics").contains("200 OK"));
        srv.stop();
    }
}
