//! Stage spans timed on caller-supplied clocks.

use crate::metrics::Histogram;

/// Times one pass through a pipeline stage into a [`Histogram`] of
/// microseconds.
///
/// The timer never reads a wall clock itself: both endpoints are
/// microsecond stamps supplied by the caller from whatever `Clock` the
/// component was built with. Under `SimClock` the recorded latencies
/// are exactly the simulated ones (deterministic, reproducible); under
/// `SystemClock` they are real. See DESIGN.md, "Telemetry and time".
#[must_use = "a StageTimer records nothing until stop() is called"]
pub struct StageTimer<'a> {
    hist: &'a Histogram,
    start_us: i64,
}

impl<'a> StageTimer<'a> {
    /// Begin a span at `now_us`.
    pub fn start(hist: &'a Histogram, now_us: i64) -> Self {
        StageTimer {
            hist,
            start_us: now_us,
        }
    }

    /// End the span at `now_us`, recording the elapsed microseconds
    /// (clamped at zero if the clock stepped backwards). Returns the
    /// recorded value.
    pub fn stop(self, now_us: i64) -> u64 {
        let elapsed = now_us.saturating_sub(self.start_us).max(0) as u64;
        self.hist.record(elapsed);
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_elapsed_on_stop() {
        let h = Histogram::new();
        let t = StageTimer::start(&h, 1_000);
        assert_eq!(t.stop(1_250), 250);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.max, 250);
    }

    #[test]
    fn backwards_clock_clamps() {
        let h = Histogram::new();
        assert_eq!(StageTimer::start(&h, 500).stop(400), 0);
        assert_eq!(h.snapshot().max, 0);
    }
}
