//! Metric naming, registration and atomic snapshots.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Label set: `(key, value)` pairs attached to a series.
type Labels = Vec<(String, String)>;

enum Source {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    /// Computed counter: read from existing state at snapshot time.
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    /// Computed gauge: read from existing state at snapshot time.
    GaugeFn(Box<dyn Fn() -> i64 + Send + Sync>),
}

struct Family {
    name: String,
    help: String,
    labels: Labels,
    source: Source,
}

/// Names and owns every metric series; the one place a whole-pipeline
/// [`TelemetrySnapshot`] can be taken from.
///
/// Registration takes a mutex (cold path); the returned `Arc` handles
/// are lock-free on the hot path. Registering the same `(name, labels)`
/// twice returns the existing handle, so components surviving a
/// reconnect keep accumulating into the same series.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// New empty registry (typically wrapped in an `Arc`).
    pub fn new() -> Arc<Registry> {
        Arc::new(Registry::default())
    }

    fn find_existing(&self, name: &str, labels: &[(String, String)]) -> Option<usize> {
        let fams = self.families.lock().unwrap_or_else(|e| e.into_inner());
        fams.iter()
            .position(|f| f.name == name && f.labels == labels)
    }

    fn own_labels(labels: &[(&str, &str)]) -> Labels {
        labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    /// Register (or fetch) a counter with no labels.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch) a labeled counter.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let labels = Self::own_labels(labels);
        let mut fams = self.families.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(f) = fams.iter().find(|f| f.name == name && f.labels == labels) {
            if let Source::Counter(c) = &f.source {
                return Arc::clone(c);
            }
        }
        let c = Arc::new(Counter::new());
        fams.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            source: Source::Counter(Arc::clone(&c)),
        });
        c
    }

    /// Register (or fetch) a gauge with no labels.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Register (or fetch) a labeled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let labels = Self::own_labels(labels);
        let mut fams = self.families.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(f) = fams.iter().find(|f| f.name == name && f.labels == labels) {
            if let Source::Gauge(g) = &f.source {
                return Arc::clone(g);
            }
        }
        let g = Arc::new(Gauge::new());
        fams.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            source: Source::Gauge(Arc::clone(&g)),
        });
        g
    }

    /// Register (or fetch) a histogram with no labels.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Register (or fetch) a labeled histogram.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let labels = Self::own_labels(labels);
        let mut fams = self.families.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(f) = fams.iter().find(|f| f.name == name && f.labels == labels) {
            if let Source::Histogram(h) = &f.source {
                return Arc::clone(h);
            }
        }
        let h = Arc::new(Histogram::new());
        fams.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            source: Source::Histogram(Arc::clone(&h)),
        });
        h
    }

    /// Adopt an existing histogram into the registry (for components
    /// that own their histogram and record into it off-registry).
    pub fn register_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        h: &Arc<Histogram>,
    ) {
        let labels = Self::own_labels(labels);
        if self.find_existing(name, &labels).is_some() {
            return;
        }
        let mut fams = self.families.lock().unwrap_or_else(|e| e.into_inner());
        fams.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            source: Source::Histogram(Arc::clone(h)),
        });
    }

    /// Register a computed counter: `f` is called at snapshot time and
    /// must be monotonic (e.g. reads an existing atomic total).
    pub fn counter_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        let labels = Self::own_labels(labels);
        if self.find_existing(name, &labels).is_some() {
            return;
        }
        let mut fams = self.families.lock().unwrap_or_else(|e| e.into_inner());
        fams.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            source: Source::CounterFn(Box::new(f)),
        });
    }

    /// Register a computed gauge: `f` is called at snapshot time.
    pub fn gauge_fn(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        f: impl Fn() -> i64 + Send + Sync + 'static,
    ) {
        let labels = Self::own_labels(labels);
        if self.find_existing(name, &labels).is_some() {
            return;
        }
        let mut fams = self.families.lock().unwrap_or_else(|e| e.into_inner());
        fams.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            source: Source::GaugeFn(Box::new(f)),
        });
    }

    /// Read every registered series at once.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let fams = self.families.lock().unwrap_or_else(|e| e.into_inner());
        let samples = fams
            .iter()
            .map(|f| Sample {
                name: f.name.clone(),
                help: f.help.clone(),
                labels: f.labels.clone(),
                value: match &f.source {
                    Source::Counter(c) => SampleValue::Counter(c.get()),
                    Source::Gauge(g) => SampleValue::Gauge(g.get()),
                    Source::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                    Source::CounterFn(f) => SampleValue::Counter(f()),
                    Source::GaugeFn(f) => SampleValue::Gauge(f()),
                },
            })
            .collect();
        TelemetrySnapshot { samples }
    }
}

/// One observed series value.
///
/// The histogram variant dominates the enum's size, but snapshots are
/// built once per scrape and dropped; boxing would add indirection on
/// every quantile read for no measurable win.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
pub enum SampleValue {
    /// Monotonic total.
    Counter(u64),
    /// Instantaneous level.
    Gauge(i64),
    /// Full distribution.
    Histogram(HistogramSnapshot),
}

/// One series: name, labels and the value read at snapshot time.
#[derive(Clone, Debug)]
pub struct Sample {
    /// Metric name (Prometheus-safe snake case by convention).
    pub name: String,
    /// Help text for exposition.
    pub help: String,
    /// Label pairs distinguishing series of the same name.
    pub labels: Vec<(String, String)>,
    /// The observed value.
    pub value: SampleValue,
}

/// A point-in-time copy of every registered series.
#[derive(Clone, Debug, Default)]
pub struct TelemetrySnapshot {
    /// All series, in registration order.
    pub samples: Vec<Sample>,
}

impl TelemetrySnapshot {
    /// All samples with the given metric name.
    pub fn all(&self, name: &str) -> impl Iterator<Item = &Sample> {
        let name = name.to_string();
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// Sum of every counter series with this name (all label variants).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.all(name)
            .filter_map(|s| match &s.value {
                SampleValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Value of the counter series with this name and exact labels.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.all(name)
            .find(|s| {
                s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels)
                        .all(|((k, v), (lk, lv))| k == lk && v == lv)
            })
            .and_then(|s| match &s.value {
                SampleValue::Counter(v) => Some(*v),
                _ => None,
            })
    }

    /// First gauge series with this name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.all(name).find_map(|s| match &s.value {
            SampleValue::Gauge(v) => Some(*v),
            _ => None,
        })
    }

    /// Merge of every histogram series with this name.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let mut acc: Option<HistogramSnapshot> = None;
        for s in self.all(name) {
            if let SampleValue::Histogram(h) = &s.value {
                acc = Some(match acc {
                    Some(a) => a.merge(h),
                    None => h.clone(),
                });
            }
        }
        acc
    }

    /// Human-readable aligned table (for `--stats` dumps).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            let mut name = s.name.clone();
            if !s.labels.is_empty() {
                let lbls: Vec<String> = s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                let _ = write!(name, "{{{}}}", lbls.join(","));
            }
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "{name:<58} {v:>14}");
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "{name:<58} {v:>14}");
                }
                SampleValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{name:<58} n={} mean={:.1} p50={} p95={} p99={} max={}",
                        h.count(),
                        h.mean(),
                        h.p50(),
                        h.p95(),
                        h.p99(),
                        h.max
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        let r = Registry::new();
        let a = r.counter_with("x_total", "", &[("node", "1")]);
        let b = r.counter_with("x_total", "", &[("node", "1")]);
        a.inc();
        b.inc();
        assert_eq!(
            r.snapshot().counter_labeled("x_total", &[("node", "1")]),
            Some(2)
        );
        // Distinct labels are distinct series.
        let c = r.counter_with("x_total", "", &[("node", "2")]);
        c.add(5);
        assert_eq!(r.snapshot().counter_total("x_total"), 7);
    }

    #[test]
    fn computed_sources_read_live_state() {
        let r = Registry::new();
        let state = Arc::new(Counter::new());
        let s2 = Arc::clone(&state);
        r.gauge_fn("depth", "", &[], move || s2.get() as i64);
        state.add(9);
        assert_eq!(r.snapshot().gauge("depth"), Some(9));
    }

    #[test]
    fn histogram_lookup_merges_labels() {
        let r = Registry::new();
        r.histogram_with("lat_us", "", &[("node", "1")]).record(10);
        r.histogram_with("lat_us", "", &[("node", "2")]).record(20);
        let h = r.snapshot().histogram("lat_us").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max, 20);
    }
}
