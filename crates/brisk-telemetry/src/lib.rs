//! Self-instrumentation for the BRISK pipeline.
//!
//! BRISK is an instrumentation system; this crate lets it observe
//! *itself*. It provides a lock-free metrics layer shared by every
//! pipeline stage (LIS → EXS → ISM):
//!
//! * [`Counter`] / [`Gauge`] — single atomic cells;
//! * [`Histogram`] — log₂-bucketed atomic histogram with p50/p95/p99/max
//!   readout and mergeable snapshots;
//! * [`StageTimer`] — a span that times a pipeline stage on *caller
//!   supplied* microsecond timestamps, so the same code is deterministic
//!   under `SimClock` and truthful under `SystemClock`;
//! * [`Registry`] — names and labels metrics, and produces an atomic
//!   [`TelemetrySnapshot`] of every series at once;
//! * exporters — Prometheus text exposition
//!   ([`TelemetrySnapshot::to_prometheus`]), a JSON document
//!   ([`TelemetrySnapshot::to_json`]), an aligned human table
//!   ([`TelemetrySnapshot::render_table`]), and a tiny scrape endpoint
//!   ([`serve_prometheus`]).
//!
//! The hot-path cost of an instrumented stage is one or two relaxed
//! atomic RMWs; everything heavier (quantiles, rendering) happens at
//! snapshot time on the reader's thread.
//!
//! The [`trace`] module adds per-record self-tracing support: the
//! [`TraceSampler`] deciding which records carry an `X_TRACE` context,
//! [`StageLatencies`] histograms with exemplar trace-ids, and the
//! always-on [`FlightRecorder`] ring of recent structured events fed by
//! the [`flight_log!`] macro and dumped on panic.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod export;
mod metrics;
mod registry;
mod timer;
pub mod trace;

pub use export::{serve_prometheus, serve_stats, RouteTable, StatsServer};
pub use metrics::{
    bucket_of, bucket_upper, Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS,
};
pub use registry::{Registry, Sample, SampleValue, TelemetrySnapshot};
pub use timer::StageTimer;
pub use trace::{
    flight, install_flight_panic_hook, now_us, set_flight_capacity, splitmix64, ExemplarHistogram,
    FlightEvent, FlightLevel, FlightRecorder, StageLatencies, TraceSampler,
};
