//! Self-tracing observability: the trace sampler, per-stage latency
//! histograms with exemplar trace-ids, and the always-on flight recorder.
//!
//! This module deliberately works on *plain integers* (trace ids as `u64`,
//! stage codes as `u8`, timestamps as `i64` microseconds): `brisk-telemetry`
//! sits below `brisk-core` in the dependency order, so the typed
//! `TraceContext` lives there and the pipeline translates at the call
//! sites.
//!
//! Three pieces:
//!
//! * [`TraceSampler`] — decides, one-in-N per emitted record, whether a
//!   `NOTICE` gets an `X_TRACE` context, and mints SplitMix64 trace ids.
//! * [`StageLatencies`] — log₂ histograms of per-stage spans keyed by
//!   `(from, to)` stage pair, each bucket remembering an *exemplar*
//!   trace-id so a slow bucket can be turned into a concrete waterfall.
//! * [`FlightRecorder`] + [`flight_log!`](crate::flight_log) — a fixed-size
//!   lossy ring of recent structured events (quarantines, evictions,
//!   credit stalls, sheds, reconnects…), dumped on panic and served at
//!   `/flight` on the stats endpoint.

use crate::metrics::{bucket_of, bucket_upper, Histogram, HISTOGRAM_BUCKETS};
use crate::registry::Registry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// SplitMix64 mixing function: a high-quality 64-bit bijection, used both
/// to mint trace ids and by tests that need deterministic id streams.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Decides which emitted records carry a trace context.
///
/// Sampling is a shared counter: every call to [`TraceSampler::sample`]
/// increments it and every N-th call fires, so a steady stream yields an
/// unbiased 1-in-N regardless of which sensor port the records come from.
/// Ids are SplitMix64 outputs over a seeded counter — unique per sampler
/// lifetime and non-zero by construction (tools treat 0 as "no trace").
#[derive(Debug)]
pub struct TraceSampler {
    every: u64,
    calls: AtomicU64,
    id_state: AtomicU64,
    /// Samples that *fired* but could not be attached (record already at
    /// the field limit). Kept here so ports can account for them without
    /// another registry dependency.
    full_skips: AtomicU64,
}

impl TraceSampler {
    /// Sampler firing one in every `every` calls; `0` never fires.
    /// The seed is drawn from the wall clock so concurrent processes mint
    /// disjoint id streams.
    pub fn new(every: u32) -> Self {
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed);
        TraceSampler::with_seed(every, seed)
    }

    /// Sampler with an explicit id seed (deterministic tests).
    pub fn with_seed(every: u32, seed: u64) -> Self {
        TraceSampler {
            every: every as u64,
            calls: AtomicU64::new(0),
            id_state: AtomicU64::new(seed),
            full_skips: AtomicU64::new(0),
        }
    }

    /// Sampling enabled at all?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.every != 0
    }

    /// Count one emitted record; returns a fresh non-zero trace id when
    /// this record should carry a context.
    #[inline]
    pub fn sample(&self) -> Option<u64> {
        if self.every == 0 {
            return None;
        }
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(self.every) {
            return None;
        }
        let s = self.id_state.fetch_add(1, Ordering::Relaxed);
        Some(splitmix64(s).max(1))
    }

    /// Record that a fired sample could not be attached (field limit).
    #[inline]
    pub fn note_full_skip(&self) {
        self.full_skips.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples dropped because the record was already at the field limit.
    pub fn full_skips(&self) -> u64 {
        self.full_skips.load(Ordering::Relaxed)
    }

    /// Total records offered to the sampler.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

/// One stage-pair span histogram plus a per-bucket exemplar trace-id.
///
/// The exemplar is "last writer wins" per bucket — enough to hand a tool
/// *one* concrete trace id living in a slow bucket, which is all a
/// waterfall needs.
#[derive(Debug)]
pub struct ExemplarHistogram {
    hist: Arc<Histogram>,
    exemplars: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for ExemplarHistogram {
    fn default() -> Self {
        ExemplarHistogram {
            hist: Arc::new(Histogram::new()),
            exemplars: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
        }
    }
}

impl ExemplarHistogram {
    /// New, empty histogram.
    pub fn new() -> Self {
        ExemplarHistogram::default()
    }

    /// The underlying histogram (shareable with a [`Registry`]).
    pub fn histogram(&self) -> &Arc<Histogram> {
        &self.hist
    }

    /// Record a span and stamp its bucket's exemplar.
    #[inline]
    pub fn record_with_exemplar(&self, v: u64, trace_id: u64) {
        self.hist.record(v);
        if trace_id != 0 {
            self.exemplars[bucket_of(v)].store(trace_id, Ordering::Relaxed);
        }
    }

    /// Exemplar trace id for bucket `i`, if one was recorded.
    pub fn exemplar(&self, i: usize) -> Option<u64> {
        match self.exemplars[i].load(Ordering::Relaxed) {
            0 => None,
            id => Some(id),
        }
    }

    /// The exemplar from the highest occupied bucket — the slowest
    /// recorded span with a known trace id.
    pub fn slowest_exemplar(&self) -> Option<(u64, u64)> {
        for i in (0..HISTOGRAM_BUCKETS).rev() {
            if let Some(id) = self.exemplar(i) {
                return Some((bucket_upper(i), id));
            }
        }
        None
    }
}

/// Registry of per-stage-pair span histograms, keyed by `(from, to)`
/// stage codes. The delivering thread feeds it by walking consecutive
/// trace stamps; scrape-side consumers read the exemplars as JSON.
pub struct StageLatencies {
    registry: Arc<Registry>,
    pairs: Mutex<HashMap<(u8, u8), Arc<ExemplarHistogram>>>,
}

impl StageLatencies {
    /// New set registering its histograms into `registry` as
    /// `brisk_trace_stage_us{from=..,to=..}`.
    pub fn new(registry: Arc<Registry>) -> Self {
        StageLatencies {
            registry,
            pairs: Mutex::new(HashMap::new()),
        }
    }

    /// Record one span between two named stages for `trace_id`.
    pub fn observe(
        &self,
        from: (u8, &'static str),
        to: (u8, &'static str),
        span_us: u64,
        trace_id: u64,
    ) {
        let mut pairs = self.pairs.lock().unwrap_or_else(|e| e.into_inner());
        let eh = pairs.entry((from.0, to.0)).or_insert_with(|| {
            let eh = Arc::new(ExemplarHistogram::new());
            self.registry.register_histogram(
                "brisk_trace_stage_us",
                "per-stage pipeline latency of traced records",
                &[("from", from.1), ("to", to.1)],
                eh.histogram(),
            );
            eh
        });
        eh.record_with_exemplar(span_us, trace_id);
    }

    /// Snapshot of every pair's exemplars as a JSON document:
    /// `{"stages":[{"from":..,"to":..,"exemplars":[{"le":..,"trace_id":..}]}]}`.
    ///
    /// Stage codes are rendered through `name`, supplied by the caller so
    /// this crate needs no knowledge of the stage enum.
    pub fn exemplars_json(&self, name: impl Fn(u8) -> &'static str) -> String {
        use std::fmt::Write as _;
        let pairs = self.pairs.lock().unwrap_or_else(|e| e.into_inner());
        let mut keys: Vec<(u8, u8)> = pairs.keys().copied().collect();
        keys.sort_unstable();
        let mut out = String::from("{\"stages\":[");
        for (i, key) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let eh = &pairs[key];
            let _ = write!(
                out,
                "{{\"from\":\"{}\",\"to\":\"{}\",\"exemplars\":[",
                name(key.0),
                name(key.1)
            );
            let mut first = true;
            for b in 0..HISTOGRAM_BUCKETS {
                if let Some(id) = eh.exemplar(b) {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    let _ = write!(
                        out,
                        "{{\"le\":{},\"trace_id\":\"{id:016x}\"}}",
                        bucket_upper(b)
                    );
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// The slowest exemplar across every stage pair: `(span upper bound,
    /// trace id)`. What a tool wants when asked "show me a slow one".
    pub fn slowest_exemplar(&self) -> Option<(u64, u64)> {
        let pairs = self.pairs.lock().unwrap_or_else(|e| e.into_inner());
        pairs
            .values()
            .filter_map(|eh| eh.slowest_exemplar())
            .max_by_key(|&(le, _)| le)
    }
}

/// Severity of a flight-recorder event, most severe first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum FlightLevel {
    /// Data loss or protocol failure.
    Error = 0,
    /// Degradation the pipeline absorbed (shed, eviction, stall).
    Warn = 1,
    /// Notable state change (reconnect, rotation).
    Info = 2,
    /// Chatty diagnostics, off by default.
    Debug = 3,
}

impl FlightLevel {
    /// Stable lowercase name.
    pub const fn name(self) -> &'static str {
        match self {
            FlightLevel::Error => "error",
            FlightLevel::Warn => "warn",
            FlightLevel::Info => "info",
            FlightLevel::Debug => "debug",
        }
    }

    fn parse(s: &str) -> Option<FlightLevel> {
        match s {
            "error" => Some(FlightLevel::Error),
            "warn" => Some(FlightLevel::Warn),
            "info" => Some(FlightLevel::Info),
            "debug" => Some(FlightLevel::Debug),
            _ => None,
        }
    }
}

/// One recorded flight event.
#[derive(Clone, Debug)]
pub struct FlightEvent {
    /// Global sequence number (defines replay order).
    pub seq: u64,
    /// Wall-clock microseconds since the UNIX epoch.
    pub ts_us: i64,
    /// Severity.
    pub level: FlightLevel,
    /// Originating component, dotted (`"ism.pump"`, `"store"`).
    pub component: &'static str,
    /// Event kind slug (`"quarantine"`, `"evict"`, `"credit_stall"`).
    pub kind: &'static str,
    /// Preformatted human detail.
    pub detail: String,
}

/// Per-component level filter parsed from a `BRISK_LOG`-style spec:
/// a comma list of `level` (global default) and `component=level`
/// (longest-prefix match wins), e.g. `info,ism.pump=debug,store=warn`.
#[derive(Debug)]
struct LevelFilter {
    default: FlightLevel,
    by_prefix: Vec<(String, FlightLevel)>,
}

impl LevelFilter {
    fn parse(spec: &str) -> LevelFilter {
        let mut default = FlightLevel::Info;
        let mut by_prefix = Vec::new();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            match part.split_once('=') {
                None => {
                    if let Some(l) = FlightLevel::parse(part) {
                        default = l;
                    }
                }
                Some((comp, lvl)) => {
                    if let Some(l) = FlightLevel::parse(lvl.trim()) {
                        by_prefix.push((comp.trim().to_string(), l));
                    }
                }
            }
        }
        // Longest prefix first so `ism.pump=debug` beats `ism=warn`.
        by_prefix.sort_by_key(|(p, _)| std::cmp::Reverse(p.len()));
        LevelFilter { default, by_prefix }
    }

    fn max_level(&self, component: &str) -> FlightLevel {
        self.by_prefix
            .iter()
            .find(|(p, _)| component.starts_with(p.as_str()))
            .map(|&(_, l)| l)
            .unwrap_or(self.default)
    }
}

/// A fixed-size, lossy ring of recent structured events.
///
/// Writers claim a slot with one `fetch_add` and fill it under a
/// per-slot `try_lock`; a writer that loses the (rare) race for a slot
/// drops its event and bumps `contended` rather than block a pipeline
/// thread. Readers lock slots briefly to snapshot.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightEvent>>>,
    cursor: AtomicU64,
    contended: AtomicU64,
    /// First sequence number not yet emitted by [`FlightRecorder::dump_new`]
    /// — the panic hook's at-most-once watermark.
    dumped: AtomicU64,
    filter: LevelFilter,
}

impl FlightRecorder {
    /// Recorder holding the last `size` events, filtered per `spec`
    /// (a comma list of `level` and `component=level`, longest prefix
    /// wins; empty spec means `info`).
    pub fn with_spec(size: usize, spec: &str) -> Self {
        let size = size.max(8);
        FlightRecorder {
            slots: (0..size).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            dumped: AtomicU64::new(0),
            filter: LevelFilter::parse(spec),
        }
    }

    /// Recorder with the level spec taken from the `BRISK_LOG`
    /// environment variable (default `info`).
    pub fn new(size: usize) -> Self {
        let spec = std::env::var("BRISK_LOG").unwrap_or_default();
        FlightRecorder::with_spec(size, &spec)
    }

    /// Number of event slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Would an event at `level` from `component` be recorded? Check
    /// this *before* formatting the detail string.
    #[inline]
    pub fn enabled(&self, level: FlightLevel, component: &str) -> bool {
        level <= self.filter.max_level(component)
    }

    /// Record one event (unconditionally; pair with [`Self::enabled`]).
    pub fn record(
        &self,
        level: FlightLevel,
        component: &'static str,
        kind: &'static str,
        detail: String,
    ) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        self.write_slot(FlightEvent {
            seq,
            ts_us: now_us(),
            level,
            component,
            kind,
            detail,
        });
    }

    /// Fill the ring slot owned by `ev.seq`. A slot is only ever replaced
    /// by a *newer* sequence number: a writer delayed between claiming its
    /// seq and reaching the slot must not clobber an event a full ring lap
    /// ahead of it (that would hand readers a stale slot that then jumps
    /// backwards in replay order). Split out of [`Self::record`] so tests
    /// can inject an out-of-order writer deterministically.
    fn write_slot(&self, ev: FlightEvent) {
        let slot = &self.slots[(ev.seq % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut s) => match s.as_ref() {
                Some(existing) if existing.seq > ev.seq => {
                    // Lost a full lap to a faster writer: the event is
                    // dropped, like a contended one.
                    self.contended.fetch_add(1, Ordering::Relaxed);
                }
                _ => *s = Some(ev),
            },
            Err(_) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Total events ever offered (including overwritten and contended).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Events dropped to slot contention.
    pub fn contended(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let mut out: Vec<FlightEvent> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// JSON rendering for the `/flight` endpoint.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\")
                .replace('"', "\\\"")
                .replace('\n', "\\n")
        }
        let events = self.snapshot();
        let mut out = String::from("{\"events\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"ts_us\":{},\"level\":\"{}\",\"component\":\"{}\",\
                 \"kind\":\"{}\",\"detail\":\"{}\"}}",
                e.seq,
                e.ts_us,
                e.level.name(),
                esc(e.component),
                esc(e.kind),
                esc(&e.detail)
            );
        }
        let _ = write!(
            out,
            "],\"recorded\":{},\"contended\":{}}}",
            self.recorded(),
            self.contended()
        );
        out
    }

    /// Human rendering of the events not yet dumped this way, advancing
    /// the watermark so repeated calls (a multi-thread panic storm hits
    /// the hook once per panicking thread) emit each entry at most once.
    pub fn dump_new(&self) -> String {
        use std::fmt::Write as _;
        let events = self.snapshot();
        let next = events.last().map(|e| e.seq + 1).unwrap_or(0);
        let from = self.dumped.fetch_max(next, Ordering::AcqRel);
        let mut out = String::new();
        for e in events.iter().filter(|e| e.seq >= from) {
            let _ = writeln!(
                out,
                "#{:<6} {:>16}us {:5} {:<12} {:<14} {}",
                e.seq,
                e.ts_us,
                e.level.name(),
                e.component,
                e.kind,
                e.detail
            );
        }
        out
    }

    /// Human rendering, one line per event (`/flight`, `brisk-trace`).
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in self.snapshot() {
            let _ = writeln!(
                out,
                "#{:<6} {:>16}us {:5} {:<12} {:<14} {}",
                e.seq,
                e.ts_us,
                e.level.name(),
                e.component,
                e.kind,
                e.detail
            );
        }
        out
    }
}

/// Wall-clock microseconds since the UNIX epoch — the flight recorder's
/// timebase (diagnostics want real time even in simulated pipelines).
pub fn now_us() -> i64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros() as i64)
        .unwrap_or(0)
}

static GLOBAL_FLIGHT: OnceLock<Arc<FlightRecorder>> = OnceLock::new();
static GLOBAL_FLIGHT_SIZE: AtomicUsize = AtomicUsize::new(256);
static PANIC_HOOK_INSTALLED: AtomicU8 = AtomicU8::new(0);

/// Set the size the global recorder will be created with. Only effective
/// before the first [`flight`] call (the ring is not resizable).
pub fn set_flight_capacity(size: usize) {
    GLOBAL_FLIGHT_SIZE.store(size.max(8), Ordering::Relaxed);
}

/// The process-wide flight recorder, created on first use with the
/// capacity from [`set_flight_capacity`] (default 256) and the level
/// spec from `BRISK_LOG`.
pub fn flight() -> &'static Arc<FlightRecorder> {
    GLOBAL_FLIGHT.get_or_init(|| {
        Arc::new(FlightRecorder::new(
            GLOBAL_FLIGHT_SIZE.load(Ordering::Relaxed),
        ))
    })
}

/// Install a panic hook that dumps the global flight recorder to stderr
/// (chaining the previously installed hook). Idempotent.
pub fn install_flight_panic_hook() {
    if PANIC_HOOK_INSTALLED.swap(1, Ordering::SeqCst) != 0 {
        return;
    }
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        prev(info);
        let rec = flight();
        eprintln!(
            "--- flight recorder ({} events, {} recorded) ---",
            rec.snapshot().len(),
            rec.recorded()
        );
        // `dump_new`, not `dump`: concurrent panics each fire the hook and
        // must not replay entries an earlier panic already printed.
        eprint!("{}", rec.dump_new());
        eprintln!("--- end flight recorder ---");
    }));
}

/// Leveled structured logging into the global [`flight`] recorder.
///
/// `flight_log!(Warn, "ism.sorter", "shed", "dropped {n} records")` —
/// the detail is only formatted when the component's level filter admits
/// the event, so disabled levels cost one atomic-free filter check.
#[macro_export]
macro_rules! flight_log {
    ($level:ident, $component:expr, $kind:expr, $($arg:tt)*) => {{
        let __rec = $crate::flight();
        if __rec.enabled($crate::FlightLevel::$level, $component) {
            __rec.record(
                $crate::FlightLevel::$level,
                $component,
                $kind,
                format!($($arg)*),
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_stable_and_bijective_enough() {
        // Known-answer check keeps the id stream stable across releases.
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            assert!(seen.insert(splitmix64(i)));
        }
    }

    #[test]
    fn sampler_fires_one_in_n() {
        let s = TraceSampler::with_seed(4, 7);
        let fired: Vec<bool> = (0..16).map(|_| s.sample().is_some()).collect();
        assert_eq!(fired.iter().filter(|&&f| f).count(), 4);
        assert!(fired[0], "first record always sampled");
        assert_eq!(s.calls(), 16);
    }

    #[test]
    fn sampler_off_and_every_one() {
        let off = TraceSampler::with_seed(0, 1);
        assert!(!off.enabled());
        assert!((0..100).all(|_| off.sample().is_none()));
        let all = TraceSampler::with_seed(1, 1);
        assert!((0..100).all(|_| all.sample().is_some()));
    }

    #[test]
    fn sampler_ids_unique_and_nonzero() {
        let s = TraceSampler::with_seed(1, 99);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = s.sample().unwrap();
            assert_ne!(id, 0);
            assert!(seen.insert(id));
        }
    }

    #[test]
    fn exemplar_histogram_remembers_slow_ids() {
        let eh = ExemplarHistogram::new();
        eh.record_with_exemplar(3, 0xaaa);
        eh.record_with_exemplar(1000, 0xbbb);
        eh.record_with_exemplar(900, 0xccc); // same bucket as 1000: last wins
        assert_eq!(eh.exemplar(bucket_of(3)), Some(0xaaa));
        assert_eq!(eh.exemplar(bucket_of(1000)), Some(0xccc));
        let (le, id) = eh.slowest_exemplar().unwrap();
        assert_eq!(id, 0xccc);
        assert!(le >= 1000);
        // Zero trace ids never become exemplars.
        eh.record_with_exemplar(1 << 20, 0);
        assert_eq!(eh.exemplar(bucket_of(1 << 20)), None);
    }

    #[test]
    fn stage_latencies_register_and_render() {
        let r = Registry::new();
        let sl = StageLatencies::new(Arc::clone(&r));
        sl.observe((0, "notice"), (1, "exs_scoop"), 50, 0xdead);
        sl.observe((0, "notice"), (1, "exs_scoop"), 70, 0xbeef);
        sl.observe((1, "exs_scoop"), (2, "batch_send"), 5000, 0xf00d);
        let snap = r.snapshot();
        let h = snap.histogram("brisk_trace_stage_us").unwrap();
        assert_eq!(h.count(), 3);
        let js = sl.exemplars_json(|c| match c {
            0 => "notice",
            1 => "exs_scoop",
            _ => "batch_send",
        });
        assert!(js.contains("\"from\":\"notice\""), "{js}");
        assert!(js.contains(&format!("{:016x}", 0xf00du64)), "{js}");
        let (le, id) = sl.slowest_exemplar().unwrap();
        assert_eq!(id, 0xf00d);
        assert!(le >= 5000);
    }

    #[test]
    fn level_filter_prefix_match() {
        let f = LevelFilter::parse("warn,ism.pump=debug,ism=error");
        assert_eq!(f.max_level("store"), FlightLevel::Warn);
        assert_eq!(f.max_level("ism.pump"), FlightLevel::Debug);
        assert_eq!(f.max_level("ism.sorter"), FlightLevel::Error);
        let default = LevelFilter::parse("");
        assert_eq!(default.max_level("anything"), FlightLevel::Info);
    }

    #[test]
    fn recorder_keeps_recent_events_in_order() {
        let rec = FlightRecorder::with_spec(8, "debug");
        for i in 0..20 {
            rec.record(FlightLevel::Info, "test", "tick", format!("event {i}"));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.len(), 8);
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
        assert_eq!(rec.recorded(), 20);
        assert!(snap.iter().all(|e| e.detail.starts_with("event ")));
    }

    #[test]
    fn recorder_filters_by_level() {
        let rec = FlightRecorder::with_spec(8, "warn");
        assert!(rec.enabled(FlightLevel::Error, "x"));
        assert!(rec.enabled(FlightLevel::Warn, "x"));
        assert!(!rec.enabled(FlightLevel::Info, "x"));
        assert!(!rec.enabled(FlightLevel::Debug, "x"));
    }

    #[test]
    fn recorder_json_and_dump_render() {
        let rec = FlightRecorder::with_spec(8, "debug");
        rec.record(
            FlightLevel::Warn,
            "ism.sorter",
            "shed",
            "dropped 3 \"old\" records".into(),
        );
        let js = rec.to_json();
        assert!(js.contains("\"kind\":\"shed\""), "{js}");
        assert!(js.contains("\\\"old\\\""), "{js}");
        assert!(js.contains("\"recorded\":1"), "{js}");
        assert_eq!(js.matches('{').count(), js.matches('}').count());
        let dump = rec.dump();
        assert!(dump.contains("ism.sorter"), "{dump}");
        assert!(dump.contains("shed"), "{dump}");
    }

    #[test]
    fn recorder_concurrent_writers_never_lose_structure() {
        let rec = Arc::new(FlightRecorder::with_spec(32, "debug"));
        let mut joins = Vec::new();
        for t in 0..4 {
            let rec = Arc::clone(&rec);
            joins.push(std::thread::spawn(move || {
                for i in 0..500 {
                    rec.record(FlightLevel::Info, "test", "tick", format!("{t}:{i}"));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(rec.recorded(), 2000);
        let snap = rec.snapshot();
        assert!(snap.len() <= 32);
        // Sequences are unique and sorted.
        let seqs: Vec<u64> = snap.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(seqs, sorted);
    }

    #[test]
    fn delayed_writer_cannot_clobber_a_newer_lap() {
        let rec = FlightRecorder::with_spec(8, "debug");
        // One full lap plus one: slot 0 now holds seq 8.
        for i in 0..9 {
            rec.record(FlightLevel::Info, "test", "tick", format!("event {i}"));
        }
        // A writer that claimed seq 0 before the wrap finally reaches its
        // slot. It must be dropped, not overwrite the newer event.
        rec.write_slot(FlightEvent {
            seq: 0,
            ts_us: now_us(),
            level: FlightLevel::Info,
            component: "test",
            kind: "tick",
            detail: "stale".into(),
        });
        let snap = rec.snapshot();
        assert!(
            snap.iter().all(|e| e.detail != "stale"),
            "stale lap must not surface: {snap:?}"
        );
        assert!(
            snap.iter().any(|e| e.seq == 8),
            "the newer lap's event must survive: {snap:?}"
        );
        assert_eq!(rec.contended(), 1, "the displaced write counts as dropped");
    }

    #[test]
    fn reader_racing_wrapping_writers_sees_no_torn_or_stale_slot() {
        use std::sync::atomic::AtomicBool;
        let rec = Arc::new(FlightRecorder::with_spec(8, "debug"));
        let stop = Arc::new(AtomicBool::new(false));
        let mut joins = Vec::new();
        // Writers wrap the 8-slot ring hundreds of times, each tagging
        // component and detail consistently so a torn slot (fields mixed
        // from two writes) is detectable.
        for t in 0..3 {
            let rec = Arc::clone(&rec);
            let comp: &'static str = ["w0", "w1", "w2"][t];
            joins.push(std::thread::spawn(move || {
                for i in 0..2000 {
                    rec.record(FlightLevel::Info, comp, "tick", format!("{comp}:{i}"));
                }
            }));
        }
        // Reader races the wrap: every snapshot must be internally
        // consistent and per-slot sequences must never move backwards.
        let reader = {
            let rec = Arc::clone(&rec);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut high = vec![0u64; rec.capacity()];
                while !stop.load(Ordering::Relaxed) {
                    let snap = rec.snapshot();
                    let mut prev = None;
                    for e in &snap {
                        assert!(e.detail.starts_with(e.component), "torn slot: {e:?}");
                        assert!(prev.is_none_or(|p| p < e.seq), "duplicate/unsorted seq");
                        prev = Some(e.seq);
                        let slot = (e.seq % rec.capacity() as u64) as usize;
                        assert!(
                            e.seq >= high[slot],
                            "slot {slot} went backwards: {} after {}",
                            e.seq,
                            high[slot]
                        );
                        high[slot] = e.seq;
                    }
                }
            })
        };
        for j in joins {
            j.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
        assert_eq!(rec.recorded(), 6000);
    }

    #[test]
    fn dump_new_emits_each_entry_at_most_once() {
        let rec = FlightRecorder::with_spec(8, "debug");
        for i in 0..3 {
            rec.record(FlightLevel::Warn, "test", "boom", format!("event {i}"));
        }
        let first = rec.dump_new();
        assert_eq!(first.lines().count(), 3, "{first}");
        // A second panic must not replay what the first already printed.
        assert_eq!(rec.dump_new(), "", "entries dumped twice");
        rec.record(FlightLevel::Warn, "test", "boom", "event 3".into());
        let third = rec.dump_new();
        assert_eq!(third.lines().count(), 1, "{third}");
        assert!(third.contains("event 3"), "{third}");
        // The full rendering for /flight is unaffected by the watermark.
        assert_eq!(rec.dump().lines().count(), 4);
    }

    #[test]
    fn global_flight_and_macro() {
        // The global recorder is shared test-wide; just verify the macro
        // records through it and levels gate formatting.
        crate::flight_log!(Warn, "test.global", "probe", "n={}", 7);
        let found = flight()
            .snapshot()
            .iter()
            .any(|e| e.component == "test.global" && e.detail == "n=7");
        assert!(found);
    }
}
