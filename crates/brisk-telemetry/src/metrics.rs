//! The three metric primitives: counter, gauge, histogram.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of log₂ buckets in a [`Histogram`].
///
/// Bucket 0 holds the value `0`; bucket `i` (1..=63) holds values in
/// `[2^(i-1), 2^i)`. The last bucket's upper edge is `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An atomic gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A lock-free log₂-bucketed histogram of `u64` observations.
///
/// Recording is one relaxed `fetch_add` on the bucket plus relaxed
/// updates of `sum` and `max`; reading is a [`HistogramSnapshot`] that
/// can estimate quantiles and merge with other snapshots.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`, with
/// everything `>= 2^62` collapsed into the final bucket. Public so
/// exemplar tracking (`crate::trace`) can address the same buckets.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper edge of bucket `i`.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// New, empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a microsecond span given start/end stamps; negative spans
    /// (clock corrections mid-span) clamp to zero rather than wrap.
    #[inline]
    pub fn record_span_us(&self, start_us: i64, end_us: i64) {
        self.record(end_us.saturating_sub(start_us).max(0) as u64);
    }

    /// Consistent-enough point-in-time copy of the whole histogram.
    ///
    /// Individual bucket loads are relaxed; a snapshot taken while
    /// writers are active may be off by in-flight observations, which is
    /// the usual contract for lock-free metrics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Mean observation, or 0 with no data.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) as the upper edge of the
    /// bucket containing that rank, clamped to the observed maximum.
    ///
    /// The clamp guarantees `quantile(a) <= quantile(b) <= max` for
    /// `a <= b`, which downstream monitoring relies on.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// p50 shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// p95 shorthand.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// p99 shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge two snapshots (e.g. the same stage on two nodes).
    ///
    /// Saturating addition keeps the operation associative: the merged
    /// value is `min(Σ, u64::MAX)` regardless of grouping.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = self.clone();
        for (b, o) in out.buckets.iter_mut().zip(&other.buckets) {
            *b = b.saturating_add(*o);
        }
        out.sum = out.sum.saturating_add(other.sum);
        out.max = out.max.max(other.max);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every value lands in a bucket whose upper edge is >= it.
        for v in [0u64, 1, 2, 3, 255, 256, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(bucket_upper(b) >= v, "v={v} bucket={b}");
        }
    }

    #[test]
    fn quantiles_bounded_by_max() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(5);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.max, 5);
        assert_eq!(s.p50(), 5, "upper edge (7) must clamp to max");
        assert!(s.p50() <= s.p95() && s.p95() <= s.p99() && s.p99() <= s.max);
    }

    #[test]
    fn quantiles_spread() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert!(s.p50() >= 500 && s.p50() <= 1023, "p50={}", s.p50());
        assert!(s.p99() >= 990, "p99={}", s.p99());
        assert_eq!(s.quantile(1.0), 1000);
        assert!((s.mean() - 500.5).abs() < 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(1);
        b.record(1000);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count(), 2);
        assert_eq!(m.sum, 1001);
        assert_eq!(m.max, 1000);
    }

    #[test]
    fn record_span_clamps_negative() {
        let h = Histogram::new();
        h.record_span_us(100, 40);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.max, 0);
    }
}
