//! # brisk-sim — deterministic simulation substrate
//!
//! The paper's distributed evaluation ran on "Sun Ultra-1 workstations …
//! within a 155 Mbps local ATM network" (§4). That testbed is replaced by a
//! virtual-time simulation: per-node [`brisk_clock::SimClock`]s with
//! independent drift, a parameterized one-way [`net::DelayModel`] with
//! jitter and *disturbance windows* ("times when disturbances of various
//! sources in the LAN interfered"), and drivers that run the real BRISK
//! algorithms — [`brisk_clock::sync`] and [`brisk_ism::IsmCore`] — against
//! them. Every run is seeded, hence exactly reproducible.
//!
//! * [`cluster::SyncSimulation`] — experiment E6/A1: N drifting slave
//!   clocks synchronized by the master over a noisy network; records the
//!   pairwise skew spread over time.
//! * [`streams`] — experiment E7: multi-node event streams with artificial
//!   delivery delays pushed through the on-line sorter; measures the
//!   ordering/latency trade-off.
//! * [`causal`] — experiment A2: a causal ping-pong workload with badly
//!   skewed clocks; measures consumer-visible tachyons with CRE repair on
//!   and off.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod causal;
pub mod cluster;
pub mod net;
pub mod scenario;
pub mod streams;
pub mod topology;

pub use causal::{run_causal_experiment, CausalConfig, CausalReport};
pub use cluster::{SyncSimConfig, SyncSimReport, SyncSimulation};
pub use net::DelayModel;
pub use scenario::ArrivalProcess;
pub use streams::{run_sorting_experiment, SortingConfig, SortingReport};
pub use topology::{RelayTree, TreeConfig};
