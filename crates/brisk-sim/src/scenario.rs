//! Workload scenarios: synthetic event-arrival processes.
//!
//! "Different parallel/distributed applications may require very different
//! instrumentation/experiment scenarios, and the IS should be able to
//! support them" (§2). This module provides the arrival-process generators
//! the experiments draw workloads from — uniform-with-jitter (the paper's
//! "simple looping applications"), Poisson, bursty, and phased — all
//! seeded and deterministic.

use rand::rngs::StdRng;
use rand::Rng;

/// An event-arrival process: generates inter-arrival gaps in microseconds.
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Fixed mean spacing with uniform jitter: gaps in
    /// `mean × [1−jitter, 1+jitter]`. `jitter = 0` is a strict loop — the
    /// paper's evaluation workload.
    Uniform {
        /// Events per second.
        rate_hz: f64,
        /// Jitter fraction in `[0, 1)`.
        jitter: f64,
    },
    /// Memoryless arrivals (exponential gaps) at the given mean rate.
    Poisson {
        /// Events per second.
        rate_hz: f64,
    },
    /// `burst_size` back-to-back events (spaced `intra_gap_us`), then a
    /// pause so the long-run rate matches `rate_hz`.
    Bursty {
        /// Long-run events per second.
        rate_hz: f64,
        /// Events per burst.
        burst_size: u32,
        /// Spacing inside a burst (µs).
        intra_gap_us: i64,
    },
    /// Alternating phases of different rates (e.g. compute/communicate),
    /// each lasting `phase_us`.
    Phased {
        /// Rates cycled through, one per phase (events per second).
        rates_hz: Vec<f64>,
        /// Phase length (µs).
        phase_us: i64,
    },
}

impl ArrivalProcess {
    /// Generate `count` creation timestamps (µs), starting after t = 0.
    pub fn generate(&self, rng: &mut StdRng, count: usize) -> Vec<i64> {
        let mut out = Vec::with_capacity(count);
        let mut t = 0f64;
        match self {
            ArrivalProcess::Uniform { rate_hz, jitter } => {
                let mean = 1e6 / rate_hz.max(1e-9);
                let jitter = jitter.clamp(0.0, 0.999);
                for _ in 0..count {
                    let factor = if jitter == 0.0 {
                        1.0
                    } else {
                        rng.gen_range(1.0 - jitter..1.0 + jitter)
                    };
                    t += mean * factor;
                    out.push(t as i64);
                }
            }
            ArrivalProcess::Poisson { rate_hz } => {
                let mean = 1e6 / rate_hz.max(1e-9);
                for _ in 0..count {
                    // Inverse-CDF exponential sampling.
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    t += -mean * u.ln();
                    out.push(t as i64);
                }
            }
            ArrivalProcess::Bursty {
                rate_hz,
                burst_size,
                intra_gap_us,
            } => {
                let burst_size = (*burst_size).max(1) as usize;
                let burst_period = burst_size as f64 * 1e6 / rate_hz.max(1e-9);
                let mut burst_start = 0f64;
                let mut produced = 0usize;
                while produced < count {
                    for k in 0..burst_size.min(count - produced) {
                        out.push((burst_start + (k as i64 * intra_gap_us) as f64) as i64);
                    }
                    produced += burst_size.min(count - produced);
                    burst_start += burst_period;
                }
                out.truncate(count);
            }
            ArrivalProcess::Phased { rates_hz, phase_us } => {
                assert!(!rates_hz.is_empty(), "at least one phase rate");
                let phase_us = (*phase_us).max(1) as f64;
                let mut phase = 0usize;
                let mut phase_end = phase_us;
                for _ in 0..count {
                    let rate = rates_hz[phase % rates_hz.len()].max(1e-9);
                    t += 1e6 / rate;
                    while t >= phase_end {
                        phase += 1;
                        phase_end += phase_us;
                    }
                    out.push(t as i64);
                }
            }
        }
        out
    }

    /// The process's long-run mean rate (events per second).
    pub fn mean_rate_hz(&self) -> f64 {
        match self {
            ArrivalProcess::Uniform { rate_hz, .. } => *rate_hz,
            ArrivalProcess::Poisson { rate_hz } => *rate_hz,
            ArrivalProcess::Bursty { rate_hz, .. } => *rate_hz,
            ArrivalProcess::Phased { rates_hz, .. } => {
                // Harmonic mean: phases have equal durations, so the rate
                // averages over time, weighted by events ∝ rate.
                rates_hz.iter().sum::<f64>() / rates_hz.len() as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rate_of(ts: &[i64]) -> f64 {
        let span = (*ts.last().unwrap() - ts[0]) as f64 / 1e6;
        (ts.len() - 1) as f64 / span
    }

    fn gaps(ts: &[i64]) -> Vec<i64> {
        ts.windows(2).map(|w| w[1] - w[0]).collect()
    }

    #[test]
    fn uniform_hits_rate_and_is_monotone() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = ArrivalProcess::Uniform {
            rate_hz: 1_000.0,
            jitter: 0.5,
        };
        let ts = p.generate(&mut rng, 10_000);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        let r = rate_of(&ts);
        assert!((900.0..1_100.0).contains(&r), "rate {r}");
    }

    #[test]
    fn uniform_zero_jitter_is_exact_loop() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = ArrivalProcess::Uniform {
            rate_hz: 500.0,
            jitter: 0.0,
        };
        let ts = p.generate(&mut rng, 100);
        let g = gaps(&ts);
        assert!(g.iter().all(|&x| x == 2_000), "strict 2 ms spacing: {g:?}");
    }

    #[test]
    fn poisson_rate_and_variability() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = ArrivalProcess::Poisson { rate_hz: 2_000.0 };
        let ts = p.generate(&mut rng, 50_000);
        let r = rate_of(&ts);
        assert!((1_900.0..2_100.0).contains(&r), "rate {r}");
        // Coefficient of variation of exponential gaps ≈ 1.
        let g = gaps(&ts);
        let mean = g.iter().sum::<i64>() as f64 / g.len() as f64;
        let var = g
            .iter()
            .map(|&x| (x as f64 - mean) * (x as f64 - mean))
            .sum::<f64>()
            / g.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((0.9..1.1).contains(&cv), "CV {cv}");
    }

    #[test]
    fn bursty_long_run_rate_holds() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = ArrivalProcess::Bursty {
            rate_hz: 1_000.0,
            burst_size: 50,
            intra_gap_us: 5,
        };
        let ts = p.generate(&mut rng, 10_000);
        let r = rate_of(&ts);
        assert!((900.0..1_150.0).contains(&r), "rate {r}");
        // Gap distribution must be bimodal: tiny within bursts, large between.
        let g = gaps(&ts);
        let tiny = g.iter().filter(|&&x| x <= 5).count();
        let large = g.iter().filter(|&&x| x > 10_000).count();
        assert!(tiny > g.len() * 8 / 10);
        assert!(large > 0);
    }

    #[test]
    fn phased_alternates_rates() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = ArrivalProcess::Phased {
            rates_hz: vec![10_000.0, 100.0],
            phase_us: 100_000, // 100 ms phases
        };
        let ts = p.generate(&mut rng, 5_000);
        // Count events in the first fast phase vs the first slow phase.
        let fast = ts.iter().filter(|&&t| t < 100_000).count();
        let slow = ts
            .iter()
            .filter(|&&t| (100_000..200_000).contains(&t))
            .count();
        assert!(fast > slow * 10, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = ArrivalProcess::Poisson { rate_hz: 1_000.0 };
        let a = p.generate(&mut StdRng::seed_from_u64(9), 100);
        let b = p.generate(&mut StdRng::seed_from_u64(9), 100);
        let c = p.generate(&mut StdRng::seed_from_u64(10), 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_rate_reported() {
        assert_eq!(
            ArrivalProcess::Uniform {
                rate_hz: 5.0,
                jitter: 0.1
            }
            .mean_rate_hz(),
            5.0
        );
        assert_eq!(
            ArrivalProcess::Phased {
                rates_hz: vec![100.0, 300.0],
                phase_us: 1
            }
            .mean_rate_hz(),
            200.0
        );
    }
}
