//! One-way message delay model for the simulated LAN.

use brisk_core::UtcMicros;
use rand::rngs::StdRng;
use rand::Rng;

/// A parameterized one-way delay distribution with optional periodic
/// *disturbance windows* during which latency inflates — modelling the
/// paper's "disturbances of various sources in the LAN" that degraded
/// clock-sync quality past 200 µs.
#[derive(Clone, Debug, PartialEq)]
pub struct DelayModel {
    /// Minimum one-way delay (µs).
    pub base_us: i64,
    /// Uniform jitter added on top: `[0, jitter_us]` (µs).
    pub jitter_us: i64,
    /// Probability of a queuing spike on any message.
    pub spike_probability: f64,
    /// Spike magnitude (µs), uniform in `[0, spike_us]`.
    pub spike_us: i64,
    /// Disturbance window period (µs); 0 disables disturbances.
    pub disturbance_period_us: i64,
    /// Disturbance window length (µs) at the start of each period.
    pub disturbance_len_us: i64,
    /// Extra delay (µs), uniform in `[0, disturbance_extra_us]`, applied to
    /// messages sent inside a disturbance window.
    pub disturbance_extra_us: i64,
}

impl DelayModel {
    /// A quiet LAN: ~150 µs ± 50 µs, rare small spikes. Matches the
    /// "light working conditions" of the paper's evaluation.
    pub fn quiet_lan() -> Self {
        DelayModel {
            base_us: 150,
            jitter_us: 50,
            spike_probability: 0.01,
            spike_us: 500,
            disturbance_period_us: 0,
            disturbance_len_us: 0,
            disturbance_extra_us: 0,
        }
    }

    /// A LAN with periodic disturbances: every 60 s (simulated), a 5 s
    /// window inflates delays by up to 2 ms.
    pub fn disturbed_lan() -> Self {
        DelayModel {
            disturbance_period_us: 60_000_000,
            disturbance_len_us: 5_000_000,
            disturbance_extra_us: 2_000,
            ..Self::quiet_lan()
        }
    }

    /// An ideal zero-delay network (useful to isolate algorithmic effects).
    pub fn ideal() -> Self {
        DelayModel {
            base_us: 0,
            jitter_us: 0,
            spike_probability: 0.0,
            spike_us: 0,
            disturbance_period_us: 0,
            disturbance_len_us: 0,
            disturbance_extra_us: 0,
        }
    }

    /// True if `now` falls inside a disturbance window.
    pub fn disturbed_at(&self, now: UtcMicros) -> bool {
        if self.disturbance_period_us <= 0 || self.disturbance_len_us <= 0 {
            return false;
        }
        now.as_micros().rem_euclid(self.disturbance_period_us) < self.disturbance_len_us
    }

    /// Draw a one-way delay for a message sent at `now`.
    pub fn sample(&self, rng: &mut StdRng, now: UtcMicros) -> i64 {
        let mut d = self.base_us;
        if self.jitter_us > 0 {
            d += rng.gen_range(0..=self.jitter_us);
        }
        if self.spike_probability > 0.0 && rng.gen_bool(self.spike_probability.min(1.0)) {
            d += rng.gen_range(0..=self.spike_us.max(1));
        }
        if self.disturbed_at(now) && self.disturbance_extra_us > 0 {
            d += rng.gen_range(0..=self.disturbance_extra_us);
        }
        d.max(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ideal_model_is_zero() {
        let m = DelayModel::ideal();
        let mut rng = StdRng::seed_from_u64(1);
        for t in [0i64, 1_000, 1_000_000] {
            assert_eq!(m.sample(&mut rng, UtcMicros::from_micros(t)), 0);
        }
    }

    #[test]
    fn quiet_lan_within_bounds() {
        let m = DelayModel::quiet_lan();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let d = m.sample(&mut rng, UtcMicros::ZERO);
            assert!((150..=150 + 50 + 500).contains(&d), "delay {d}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let m = DelayModel::disturbed_lan();
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100)
                .map(|i| m.sample(&mut rng, UtcMicros::from_micros(i * 1_000)))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn disturbance_windows_are_periodic() {
        let m = DelayModel::disturbed_lan();
        assert!(m.disturbed_at(UtcMicros::from_micros(0)));
        assert!(m.disturbed_at(UtcMicros::from_micros(4_999_999)));
        assert!(!m.disturbed_at(UtcMicros::from_micros(5_000_000)));
        assert!(!m.disturbed_at(UtcMicros::from_micros(59_999_999)));
        assert!(m.disturbed_at(UtcMicros::from_micros(60_000_000)));
    }

    #[test]
    fn disturbance_inflates_mean_delay() {
        let m = DelayModel::disturbed_lan();
        let mut rng = StdRng::seed_from_u64(3);
        let inside: i64 = (0..2_000)
            .map(|_| m.sample(&mut rng, UtcMicros::from_micros(1_000)))
            .sum();
        let outside: i64 = (0..2_000)
            .map(|_| m.sample(&mut rng, UtcMicros::from_micros(10_000_000)))
            .sum();
        assert!(
            inside > outside + 100_000,
            "disturbed mean must be clearly higher: {inside} vs {outside}"
        );
    }
}
