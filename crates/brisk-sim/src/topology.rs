//! Relay-tree topology builder: wire up a root ISM and a tier of relay
//! ISMs over one in-memory transport in a few lines.
//!
//! The e2e suite (and any experiment that wants a merge tree) needs the
//! same scaffolding every time: a root server, N relay servers whose
//! merged streams re-export upstream under distinct namespace prefixes,
//! and per-link fault planes for chaos runs. [`RelayTree::build`] owns
//! that plumbing; leaves stay the caller's business — connect an EXS (or
//! a hand-rolled client) to [`RelayTree::connect_to_relay`] and the
//! records arrive at the root under [`RelayTree::global_node`].
//!
//! Shutdown order matters in a tree: relays must stop first (each flush
//! drains its send window upstream), the root last. [`RelayTree::stop`]
//! encodes that.

use brisk_core::{IsmConfig, NodeId, Result, SyncConfig};
use brisk_ism::{IsmHandle, IsmReport, IsmServer, RelayConfig, UpstreamExporter};
use brisk_net::{Connection, FaultSpec, FaultStats, FaultingConnection, MemTransport, Transport};
use brisk_proto::NodePrefix;
use brisk_telemetry::Registry;
use std::collections::HashMap;
use std::sync::Arc;

/// Shape and knobs of a two-tier relay tree.
#[derive(Clone)]
pub struct TreeConfig {
    /// Relay count; relay `i` gets namespace prefix `i + 1`.
    pub relays: usize,
    /// Server knobs for the root ISM.
    pub root: IsmConfig,
    /// Server knobs for every relay ISM.
    pub relay: IsmConfig,
    /// Upstream-link knobs template; the prefix field is overridden per
    /// relay. `None` uses [`RelayConfig`] defaults.
    pub link: Option<RelayConfig>,
    /// Clock-sync knobs for every tier's master.
    pub sync: SyncConfig,
    /// Seeded fault planes injected on specific relays' *upstream* links
    /// (relay index → spec). Faults on leaf links are the caller's to
    /// wrap around the connection [`RelayTree::connect_to_relay`] hands
    /// back.
    pub upstream_faults: HashMap<usize, FaultSpec>,
}

impl TreeConfig {
    /// A tree of `relays` relays with default knobs everywhere.
    pub fn new(relays: usize) -> TreeConfig {
        TreeConfig {
            relays,
            root: IsmConfig::default(),
            relay: IsmConfig::default(),
            link: None,
            sync: SyncConfig::default(),
            upstream_faults: HashMap::new(),
        }
    }
}

/// A running two-tier relay tree: one root ISM and `relays` relay ISMs,
/// each re-exporting its merged stream to the root under its own
/// namespace prefix.
pub struct RelayTree {
    transport: Arc<MemTransport>,
    root: Option<IsmHandle>,
    relays: Vec<IsmHandle>,
    /// Registry per relay (index-aligned), always bound so relay-tier
    /// telemetry is observable in tests.
    relay_registries: Vec<Arc<Registry>>,
    root_registry: Arc<Registry>,
    /// Fault-plane counters per faulted upstream link (relay index).
    fault_stats: HashMap<usize, Arc<FaultStats>>,
}

impl RelayTree {
    /// Spin up the tree on a fresh in-memory transport. The root listens
    /// on `"root"`, relay `i` on `"relay-i"`.
    pub fn build(cfg: TreeConfig) -> Result<RelayTree> {
        let transport = MemTransport::new();
        let clock = Arc::new(brisk_clock::SystemClock);

        let root_registry = Registry::new();
        let mut root_server =
            IsmServer::new(cfg.root.clone(), cfg.sync.clone(), clock.clone() as _)?;
        root_server.bind_telemetry(&root_registry);
        let root = root_server.spawn(transport.listen("root")?)?;

        let mut relays = Vec::with_capacity(cfg.relays);
        let mut relay_registries = Vec::with_capacity(cfg.relays);
        let mut fault_stats = HashMap::new();
        for i in 0..cfg.relays {
            let prefix = NodePrefix::new(i as u32 + 1)?;
            let mut link = match &cfg.link {
                Some(template) => {
                    let mut l = template.clone();
                    l.prefix = prefix;
                    l
                }
                None => RelayConfig::new(prefix),
            };
            link.prefix = prefix;
            let t = Arc::clone(&transport);
            let fault = cfg.upstream_faults.get(&i).cloned();
            let stats = fault.as_ref().map(|_| {
                let s = FaultStats::new();
                fault_stats.insert(i, Arc::clone(&s));
                s
            });
            let connect: Box<dyn Fn() -> Result<Box<dyn Connection>> + Send> =
                Box::new(move || {
                    let raw = t.connect("root")?;
                    Ok(match (&fault, &stats) {
                        (Some(spec), Some(stats)) => {
                            FaultingConnection::wrap(raw, *spec, i as u64, Arc::clone(stats))
                        }
                        _ => raw,
                    })
                });
            let mut server =
                IsmServer::new(cfg.relay.clone(), cfg.sync.clone(), clock.clone() as _)?;
            let registry = Registry::new();
            server.bind_telemetry(&registry);
            server.set_upstream(UpstreamExporter::new(link, connect));
            relays.push(server.spawn(transport.listen(&format!("relay-{i}"))?)?);
            relay_registries.push(registry);
        }
        Ok(RelayTree {
            transport,
            root: Some(root),
            relays,
            relay_registries,
            root_registry,
            fault_stats,
        })
    }

    /// The tree's transport (e.g. to wrap extra fault planes around leaf
    /// links).
    pub fn transport(&self) -> &Arc<MemTransport> {
        &self.transport
    }

    /// Dial relay `i` — what a leaf EXS under that relay connects to.
    pub fn connect_to_relay(&self, i: usize) -> Result<Box<dyn Connection>> {
        self.transport.connect(&format!("relay-{i}"))
    }

    /// The in-memory listen name of relay `i` (for callers that manage
    /// their own connections, e.g. supervised EXS reconnect factories).
    pub fn relay_name(i: usize) -> String {
        format!("relay-{i}")
    }

    /// The root ISM handle (memory buffer, quarantine, telemetry hooks).
    pub fn root(&self) -> &IsmHandle {
        self.root.as_ref().expect("root alive until stop()")
    }

    /// Relay `i`'s ISM handle.
    pub fn relay(&self, i: usize) -> &IsmHandle {
        &self.relays[i]
    }

    /// Relay count.
    pub fn len(&self) -> usize {
        self.relays.len()
    }

    /// Is the tree relay-less?
    pub fn is_empty(&self) -> bool {
        self.relays.is_empty()
    }

    /// The root server's telemetry registry.
    pub fn root_registry(&self) -> &Arc<Registry> {
        &self.root_registry
    }

    /// Relay `i`'s telemetry registry (carries the `brisk_relay_*`
    /// series for its upstream link).
    pub fn relay_registry(&self, i: usize) -> &Arc<Registry> {
        &self.relay_registries[i]
    }

    /// Fault-plane counters of relay `i`'s upstream link, when faulted.
    pub fn upstream_fault_stats(&self, i: usize) -> Option<&Arc<FaultStats>> {
        self.fault_stats.get(&i)
    }

    /// The node id the *root* sees for `leaf` under relay `i`: the
    /// relay's prefix rewrite applied once.
    pub fn global_node(i: usize, leaf: NodeId) -> NodeId {
        NodeId((leaf.raw() << NodePrefix::BITS) | (i as u32 + 1))
    }

    /// Stop the whole tree leaf-ward-first — every relay flushes its
    /// send window upstream before the root stops — and return
    /// `(root report, relay reports)`.
    pub fn stop(mut self) -> Result<(IsmReport, Vec<IsmReport>)> {
        let mut relay_reports = Vec::with_capacity(self.relays.len());
        for relay in self.relays.drain(..) {
            relay_reports.push(relay.stop()?);
        }
        let root = self
            .root
            .take()
            .expect("stop() consumes the tree once")
            .stop()?;
        Ok((root, relay_reports))
    }
}
