//! Simulated cluster for the clock-synchronization experiments (E6, A1).

use crate::net::DelayModel;
use brisk_clock::{
    Clock, CorrectedClock, SimClock, SimTimeSource, SkewSample, SyncMaster, SyncSlave,
};
use brisk_core::{NodeId, Result, SyncConfig, UtcMicros};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of one synchronization simulation run.
#[derive(Clone, Debug)]
pub struct SyncSimConfig {
    /// Number of slave (EXS) nodes. The paper used 8.
    pub nodes: usize,
    /// Simulated duration. The paper ran 10 minutes.
    pub duration: Duration,
    /// Synchronization knobs (poll period, damping, algorithm variant).
    pub sync: SyncConfig,
    /// One-way network delay model.
    pub delay: DelayModel,
    /// Initial clock offsets drawn uniformly from `[-max, max]` µs.
    pub max_offset_us: i64,
    /// Clock drifts drawn uniformly from `[-max, max]` ppm.
    pub max_drift_ppm: f64,
    /// How often the pairwise spread is sampled.
    pub sample_interval: Duration,
    /// RNG seed; equal seeds give identical runs.
    pub seed: u64,
}

impl Default for SyncSimConfig {
    fn default() -> Self {
        SyncSimConfig {
            nodes: 8,
            duration: Duration::from_secs(600),
            sync: SyncConfig::default(),
            delay: DelayModel::quiet_lan(),
            max_offset_us: 1_000,
            // Workstation crystal oscillators are good to a few ppm; ±10
            // keeps worst-case relative drift at 20 ppm (100 µs per 5 s
            // round), consistent with the paper staying within ~200 µs.
            max_drift_ppm: 10.0,
            sample_interval: Duration::from_secs(1),
            seed: 0x00B1_215C,
        }
    }
}

/// One spread sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpreadSample {
    /// Simulated time (µs).
    pub t_us: i64,
    /// Maximum pairwise difference of the corrected slave clocks (µs).
    pub max_pairwise_us: i64,
    /// Whether the sample fell inside a disturbance window.
    pub disturbed: bool,
}

/// Result of one run.
#[derive(Clone, Debug, Default)]
pub struct SyncSimReport {
    /// Spread over time.
    pub samples: Vec<SpreadSample>,
    /// Completed rounds.
    pub rounds: u64,
    /// Corrections applied across all rounds.
    pub corrections: u64,
    /// Sum of all advances (µs) — the "small positive drift" cost of the
    /// BRISK variant.
    pub total_advance_us: i64,
    /// Spread before the first round (µs).
    pub initial_spread_us: i64,
    /// Largest spread after the warm-up period (first 3 rounds).
    pub max_spread_after_warmup_us: i64,
    /// Mean spread after warm-up (µs).
    pub mean_spread_after_warmup_us: f64,
    /// Fraction of post-warm-up samples with spread under 200 µs — the
    /// paper's headline number ("most of the time under 200 microseconds").
    pub fraction_under_200us: f64,
}

/// The simulation driver.
pub struct SyncSimulation {
    cfg: SyncSimConfig,
}

impl SyncSimulation {
    /// New simulation.
    pub fn new(cfg: SyncSimConfig) -> Self {
        SyncSimulation { cfg }
    }

    /// Run to completion, returning the report.
    pub fn run(&self) -> Result<SyncSimReport> {
        let cfg = &self.cfg;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let src = SimTimeSource::new();
        let master_clock = SimClock::new(src.clone(), 0, 0.0, 1);
        let mut master = SyncMaster::new(cfg.sync.clone())?;

        let clocks: Vec<Arc<CorrectedClock<SimClock>>> = (0..cfg.nodes)
            .map(|_| {
                let offset = rng.gen_range(-cfg.max_offset_us..=cfg.max_offset_us);
                let drift = rng.gen_range(-cfg.max_drift_ppm..=cfg.max_drift_ppm);
                CorrectedClock::new(SimClock::new(src.clone(), offset, drift, 1))
            })
            .collect();
        let mut slaves: Vec<SyncSlave<SimClock>> = clocks
            .iter()
            .map(|c| SyncSlave::new(Arc::clone(c)))
            .collect();

        let spread = |clocks: &[Arc<CorrectedClock<SimClock>>]| -> i64 {
            let readings: Vec<i64> = clocks.iter().map(|c| c.now().as_micros()).collect();
            readings.iter().max().unwrap() - readings.iter().min().unwrap()
        };

        let mut report = SyncSimReport {
            initial_spread_us: spread(&clocks),
            ..SyncSimReport::default()
        };

        let end_us = cfg.duration.as_micros() as i64;
        let sample_us = cfg.sample_interval.as_micros() as i64;
        let period_us = cfg.sync.poll_period.as_micros() as i64;
        let mut next_sample = 0i64;
        let mut next_round = period_us; // first round after one poll period
        let warmup_rounds = 3;

        while src.now().as_micros() < end_us {
            let now = src.now().as_micros();
            if next_sample <= next_round {
                // Advance to the sampling instant.
                if next_sample > now {
                    src.advance_to(UtcMicros::from_micros(next_sample));
                }
                let s = SpreadSample {
                    t_us: src.now().as_micros(),
                    max_pairwise_us: spread(&clocks),
                    disturbed: cfg.delay.disturbed_at(src.now()),
                };
                if report.rounds >= warmup_rounds {
                    report.max_spread_after_warmup_us =
                        report.max_spread_after_warmup_us.max(s.max_pairwise_us);
                }
                report.samples.push(s);
                next_sample += sample_us;
            } else {
                if next_round > now {
                    src.advance_to(UtcMicros::from_micros(next_round));
                }
                self.run_round(
                    &src,
                    &master_clock,
                    &mut master,
                    &mut slaves,
                    &mut rng,
                    &mut report,
                )?;
                next_round += period_us;
            }
        }

        let post: Vec<&SpreadSample> = report
            .samples
            .iter()
            .filter(|s| s.t_us >= warmup_rounds as i64 * period_us)
            .collect();
        if !post.is_empty() {
            report.mean_spread_after_warmup_us =
                post.iter().map(|s| s.max_pairwise_us as f64).sum::<f64>() / post.len() as f64;
            report.fraction_under_200us =
                post.iter().filter(|s| s.max_pairwise_us < 200).count() as f64 / post.len() as f64;
        }
        Ok(report)
    }

    /// Execute one synchronization round at the current simulated time.
    #[allow(clippy::too_many_arguments)]
    fn run_round(
        &self,
        src: &SimTimeSource,
        master_clock: &SimClock,
        master: &mut SyncMaster,
        slaves: &mut [SyncSlave<SimClock>],
        rng: &mut StdRng,
        report: &mut SyncSimReport,
    ) -> Result<()> {
        master.begin_round();
        for (i, slave) in slaves.iter().enumerate() {
            for _ in 0..master.samples_per_slave() {
                let t0 = master_clock.now();
                src.advance_by(self.cfg.delay.sample(rng, src.now())); // poll flight
                let ts = slave.on_poll();
                src.advance_by(self.cfg.delay.sample(rng, src.now())); // reply flight
                let t1 = master_clock.now();
                master.add_sample(
                    NodeId(i as u32),
                    SkewSample {
                        t_master_send: t0,
                        t_slave: ts,
                        t_master_recv: t1,
                    },
                );
            }
        }
        let outcome = master.finish_round()?;
        for c in &outcome.corrections {
            // Adjustment delivery also crosses the network.
            src.advance_by(self.cfg.delay.sample(rng, src.now()));
            slaves[c.node.raw() as usize].on_adjust(c.advance_us);
            report.corrections += 1;
            report.total_advance_us += c.advance_us;
        }
        report.rounds += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SyncSimConfig {
        SyncSimConfig {
            nodes: 8,
            duration: Duration::from_secs(120),
            delay: DelayModel::quiet_lan(),
            ..SyncSimConfig::default()
        }
    }

    #[test]
    fn brisk_sync_converges_under_quiet_lan() {
        let report = SyncSimulation::new(quick_cfg()).run().unwrap();
        assert!(report.rounds >= 20, "rounds: {}", report.rounds);
        assert!(report.initial_spread_us > 500);
        assert!(
            report.max_spread_after_warmup_us < 500,
            "max post-warmup spread {} µs",
            report.max_spread_after_warmup_us
        );
        assert!(report.fraction_under_200us > 0.8);
    }

    #[test]
    fn corrections_are_positive_for_brisk_variant() {
        let report = SyncSimulation::new(quick_cfg()).run().unwrap();
        assert!(report.corrections > 0);
        assert!(report.total_advance_us >= 0, "BRISK only advances clocks");
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = SyncSimulation::new(quick_cfg()).run().unwrap();
        let b = SyncSimulation::new(quick_cfg()).run().unwrap();
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.total_advance_us, b.total_advance_us);
        let mut other = quick_cfg();
        other.seed ^= 1;
        let c = SyncSimulation::new(other).run().unwrap();
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn original_cristian_also_converges() {
        let mut cfg = quick_cfg();
        cfg.sync.original_cristian = true;
        let report = SyncSimulation::new(cfg).run().unwrap();
        assert!(report.max_spread_after_warmup_us < 500);
    }

    #[test]
    fn disturbances_degrade_spread() {
        let mut quiet = quick_cfg();
        quiet.duration = Duration::from_secs(300);
        let mut noisy = quiet.clone();
        noisy.delay = DelayModel::disturbed_lan();
        let q = SyncSimulation::new(quiet).run().unwrap();
        let n = SyncSimulation::new(noisy).run().unwrap();
        assert!(
            n.max_spread_after_warmup_us > q.max_spread_after_warmup_us,
            "disturbed {} µs must exceed quiet {} µs",
            n.max_spread_after_warmup_us,
            q.max_spread_after_warmup_us
        );
    }

    #[test]
    fn without_sync_clocks_drift_apart() {
        // Degenerate control: poll period longer than the run = no rounds.
        let mut cfg = quick_cfg();
        cfg.sync.poll_period = Duration::from_secs(10_000);
        cfg.duration = Duration::from_secs(120);
        let report = SyncSimulation::new(cfg).run().unwrap();
        assert_eq!(report.rounds, 0);
        let last = report.samples.last().unwrap();
        assert!(
            last.max_pairwise_us >= report.initial_spread_us,
            "drift must widen the spread"
        );
    }
}
