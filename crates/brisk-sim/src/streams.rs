//! On-line-sorting experiment driver (E7).
//!
//! "The on-line sorting algorithm was evaluated using streams of
//! artificially delayed event records, and by varying four quantitative and
//! qualitative parameters" (§4). The four parameters map onto
//! [`SortingConfig`]: the initial time frame, the growth policy, the decay
//! constant, and the delivery-delay distribution.

use crate::net::DelayModel;
use crate::scenario::ArrivalProcess;
use brisk_core::{EventRecord, EventTypeId, NodeId, Result, SensorId, SorterConfig, UtcMicros};
use brisk_ism::OnlineSorter;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of one sorting experiment run.
#[derive(Clone, Debug)]
pub struct SortingConfig {
    /// Number of event-producing nodes.
    pub nodes: usize,
    /// Events generated per node.
    pub events_per_node: usize,
    /// Event-creation process per node (experiment scenario knob).
    pub arrivals: ArrivalProcess,
    /// Delivery-delay distribution (experiment parameter 4).
    pub delay: DelayModel,
    /// Sorter knobs (experiment parameters 1–3: initial frame, growth
    /// policy, decay constant).
    pub sorter: SorterConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SortingConfig {
    fn default() -> Self {
        SortingConfig {
            nodes: 4,
            events_per_node: 5_000,
            arrivals: ArrivalProcess::Uniform {
                rate_hz: 1_000.0,
                jitter: 0.5,
            },
            delay: DelayModel::quiet_lan(),
            sorter: SorterConfig::default(),
            seed: 0x50_127,
        }
    }
}

/// Result of one sorting experiment run.
#[derive(Clone, Debug, Default)]
pub struct SortingReport {
    /// Records delivered to the consumer.
    pub delivered: u64,
    /// Adjacent out-of-order pairs at the consumer.
    pub inversions: u64,
    /// Inversion rate (inversions / adjacent pairs).
    pub inversion_rate: f64,
    /// Mean sorter-added latency: release time − arrival time (µs).
    pub mean_added_latency_us: f64,
    /// Maximum sorter-added latency (µs).
    pub max_added_latency_us: i64,
    /// Mean end-to-end latency: release time − creation time (µs).
    pub mean_end_latency_us: f64,
    /// Time frame `T` when the run ended (µs).
    pub final_frame_us: i64,
    /// Largest `T` reached (µs).
    pub max_frame_us: i64,
    /// Sorter inversions (frame growth triggers; differs from consumer
    /// inversions only through forced releases).
    pub sorter_inversions: u64,
}

/// One in-flight event.
struct Arrival {
    at_us: i64,
    rec: EventRecord,
}

/// Run one sorting experiment.
pub fn run_sorting_experiment(cfg: &SortingConfig) -> Result<SortingReport> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Generate creation times per node, then delivery arrivals.
    let mut arrivals: Vec<Arrival> = Vec::with_capacity(cfg.nodes * cfg.events_per_node);
    let mut creation_of = std::collections::HashMap::new();
    for node in 0..cfg.nodes {
        let creation_times = cfg.arrivals.generate(&mut rng, cfg.events_per_node);
        for (seq, &t) in creation_times.iter().enumerate() {
            let created = UtcMicros::from_micros(t);
            let delay = cfg.delay.sample(&mut rng, created);
            let rec = EventRecord::new(
                NodeId(node as u32),
                SensorId(0),
                EventTypeId(1),
                seq as u64,
                created,
                vec![],
            )?;
            creation_of.insert((node as u32, seq as u64), created.as_micros());
            arrivals.push(Arrival {
                at_us: created.as_micros() + delay,
                rec,
            });
        }
    }
    arrivals.sort_by_key(|a| a.at_us);

    let mut sorter = OnlineSorter::new(cfg.sorter.clone(), 0)?;
    let mut report = SortingReport::default();
    let mut last_ts: Option<UtcMicros> = None;
    let mut added_sum = 0f64;
    let mut end_sum = 0f64;
    let mut arrival_of = std::collections::HashMap::new();

    let mut consume =
        |records: Vec<EventRecord>,
         now_us: i64,
         report: &mut SortingReport,
         arrival_of: &std::collections::HashMap<(u32, u64), i64>| {
            for rec in records {
                report.delivered += 1;
                if let Some(last) = last_ts {
                    if rec.ts < last {
                        report.inversions += 1;
                    }
                }
                last_ts = Some(rec.ts);
                let key = (rec.node.raw(), rec.seq);
                let arrived = arrival_of[&key];
                let added = now_us - arrived;
                report.max_added_latency_us = report.max_added_latency_us.max(added);
                added_sum += added as f64;
                end_sum += (now_us - creation_of[&key]) as f64;
            }
        };

    for arrival in &arrivals {
        arrival_of.insert((arrival.rec.node.raw(), arrival.rec.seq), arrival.at_us);
    }
    for arrival in arrivals {
        let now = UtcMicros::from_micros(arrival.at_us);
        sorter.push(arrival.rec);
        let released = sorter.poll(now);
        report.max_frame_us = report.max_frame_us.max(sorter.frame_us());
        consume(released, arrival.at_us, &mut report, &arrival_of);
    }
    // Final flush at a time far enough past the last arrival.
    let end = arrival_of.values().copied().max().unwrap_or(0) + cfg.sorter.max_frame_us + 1;
    let released = sorter.poll(UtcMicros::from_micros(end));
    consume(released, end, &mut report, &arrival_of);
    let leftovers = sorter.drain_all();
    consume(leftovers, end, &mut report, &arrival_of);

    report.final_frame_us = sorter.frame_us();
    report.sorter_inversions = sorter.stats().inversions;
    if report.delivered > 1 {
        report.inversion_rate = report.inversions as f64 / (report.delivered - 1) as f64;
        report.mean_added_latency_us = added_sum / report.delivered as f64;
        report.mean_end_latency_us = end_sum / report.delivered as f64;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_core::config::FrameGrowth;

    fn base() -> SortingConfig {
        SortingConfig {
            nodes: 4,
            events_per_node: 2_000,
            ..SortingConfig::default()
        }
    }

    #[test]
    fn all_events_are_delivered_exactly_once() {
        let cfg = base();
        let r = run_sorting_experiment(&cfg).unwrap();
        assert_eq!(r.delivered, (cfg.nodes * cfg.events_per_node) as u64);
    }

    #[test]
    fn zero_frame_no_decay_yields_inversions_under_jitter() {
        let mut cfg = base();
        cfg.sorter.initial_frame_us = 0;
        cfg.sorter.min_frame_us = 0;
        cfg.sorter.max_frame_us = 0; // adaptive growth disabled
        cfg.sorter.decay_factor = 1.0;
        cfg.delay = DelayModel {
            base_us: 100,
            jitter_us: 2_000, // jitter far above inter-event spacing
            ..DelayModel::ideal()
        };
        let r = run_sorting_experiment(&cfg).unwrap();
        assert!(r.inversions > 0, "no buffering must leak disorder");
        assert_eq!(r.max_added_latency_us, 0, "T=0 adds no latency");
    }

    #[test]
    fn large_fixed_frame_eliminates_inversions_at_latency_cost() {
        let mut cfg = base();
        cfg.sorter.initial_frame_us = 10_000; // far above max delay jitter
        cfg.sorter.min_frame_us = 10_000;
        cfg.sorter.max_frame_us = 10_000;
        cfg.sorter.decay_factor = 1.0;
        let r = run_sorting_experiment(&cfg).unwrap();
        assert_eq!(r.inversions, 0);
        assert!(r.mean_added_latency_us > 1_000.0);
    }

    #[test]
    fn adaptive_frame_reduces_inversions_vs_no_frame() {
        let delay = DelayModel {
            base_us: 100,
            jitter_us: 2_000,
            ..DelayModel::ideal()
        };
        let mut none = base();
        none.delay = delay.clone();
        none.sorter.initial_frame_us = 0;
        none.sorter.min_frame_us = 0;
        none.sorter.max_frame_us = 0;
        none.sorter.decay_factor = 1.0;

        let mut adaptive = base();
        adaptive.delay = delay;
        adaptive.sorter.initial_frame_us = 0;
        adaptive.sorter.min_frame_us = 0;
        adaptive.sorter.growth = FrameGrowth::ToObservedLateness;
        adaptive.sorter.decay_factor = 0.98;

        let r_none = run_sorting_experiment(&none).unwrap();
        let r_adaptive = run_sorting_experiment(&adaptive).unwrap();
        assert!(
            r_adaptive.inversion_rate < r_none.inversion_rate / 2.0,
            "adaptive {} vs none {}",
            r_adaptive.inversion_rate,
            r_none.inversion_rate
        );
        assert!(r_adaptive.max_frame_us > 0, "frame must have grown");
    }

    #[test]
    fn slower_decay_orders_better_than_fast_decay() {
        // The paper: "a small exponent constant for reducing T (i.e. a
        // large T's half-life) helps" in non-latency-critical settings.
        let delay = DelayModel {
            base_us: 100,
            jitter_us: 3_000,
            spike_probability: 0.05,
            spike_us: 5_000,
            ..DelayModel::ideal()
        };
        let mk = |decay: f64| {
            let mut cfg = base();
            cfg.delay = delay.clone();
            cfg.sorter.initial_frame_us = 0;
            cfg.sorter.min_frame_us = 0;
            cfg.sorter.decay_factor = decay;
            cfg.sorter.decay_interval = std::time::Duration::from_millis(10);
            cfg
        };
        let fast = run_sorting_experiment(&mk(0.5)).unwrap();
        let slow = run_sorting_experiment(&mk(0.99)).unwrap();
        assert!(
            slow.inversion_rate <= fast.inversion_rate,
            "slow decay {} must not be worse than fast decay {}",
            slow.inversion_rate,
            fast.inversion_rate
        );
        assert!(
            slow.mean_added_latency_us >= fast.mean_added_latency_us,
            "the price of slow decay is latency"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = base();
        let a = run_sorting_experiment(&cfg).unwrap();
        let b = run_sorting_experiment(&cfg).unwrap();
        assert_eq!(a.inversions, b.inversions);
        assert_eq!(a.mean_added_latency_us, b.mean_added_latency_us);
    }
}
