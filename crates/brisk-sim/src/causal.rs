//! Causal ping-pong experiment (A2): tachyon repair on/off.
//!
//! Two nodes exchange request/response messages. Node B's clock runs
//! behind node A's by more than the message latency, so B's *consequence*
//! records carry timestamps earlier than their *reason* records — tachyons
//! (§3.6). With CRE markers enabled the ISM repairs them by overriding
//! timestamps; without markers the consumer sees causality violations.

use brisk_core::{
    CorrelationId, EventRecord, EventTypeId, IsmConfig, NodeId, Result, SensorId, UtcMicros, Value,
};
use brisk_ism::IsmCore;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of one causal experiment run.
#[derive(Clone, Debug)]
pub struct CausalConfig {
    /// Number of request/response exchanges.
    pub exchanges: usize,
    /// Node B clock offset relative to node A (µs; negative = behind).
    pub clock_offset_us: i64,
    /// One-way message latency between the nodes (µs).
    pub message_delay_us: i64,
    /// Mean spacing between exchanges (µs).
    pub spacing_us: i64,
    /// Whether events carry `X_REASON`/`X_CONSEQ` markers (CRE repair on).
    pub mark_causality: bool,
    /// ISM pipeline knobs.
    pub ism: IsmConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CausalConfig {
    fn default() -> Self {
        CausalConfig {
            exchanges: 1_000,
            clock_offset_us: -500, // B half a millisecond behind A
            message_delay_us: 100, // messages much faster than the skew
            spacing_us: 1_000,
            mark_causality: true,
            ism: IsmConfig::default(),
            seed: 0xCA_05A1,
        }
    }
}

/// Result of one causal experiment run.
#[derive(Clone, Debug, Default)]
pub struct CausalReport {
    /// Records the consumer received.
    pub delivered: u64,
    /// Consequence records whose timestamp is not after their reason's, as
    /// seen by the consumer (causality violations that survived).
    pub visible_tachyons: u64,
    /// Tachyons the CRE matcher repaired.
    pub repaired_tachyons: u64,
    /// Extra synchronization rounds the core requested.
    pub extra_sync_requests: u64,
}

/// Run one causal ping-pong experiment.
pub fn run_causal_experiment(cfg: &CausalConfig) -> Result<CausalReport> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut core = IsmCore::new(cfg.ism.clone())?;
    let mut reader = core.memory().reader();
    let mut report = CausalReport::default();

    let mut t_true = 0i64; // true time, µs
    for i in 0..cfg.exchanges {
        let id = CorrelationId(i as u64);
        t_true += rng.gen_range(1..=cfg.spacing_us.max(1));

        // Node A sends a request: reason event stamped with A's clock
        // (A's clock == true time).
        let reason_fields = if cfg.mark_causality {
            vec![Value::Reason(id), Value::I32(i as i32)]
        } else {
            vec![Value::I32(i as i32)]
        };
        let reason = EventRecord::new(
            NodeId(0),
            SensorId(0),
            EventTypeId(1),
            i as u64,
            UtcMicros::from_micros(t_true),
            reason_fields,
        )?;

        // Node B receives it `message_delay` later and records the
        // consequence with B's skewed clock.
        let recv_true = t_true + cfg.message_delay_us;
        let conseq_fields = if cfg.mark_causality {
            vec![Value::Conseq(id), Value::I32(i as i32)]
        } else {
            vec![Value::I32(i as i32)]
        };
        let conseq = EventRecord::new(
            NodeId(1),
            SensorId(0),
            EventTypeId(2),
            i as u64,
            UtcMicros::from_micros(recv_true + cfg.clock_offset_us),
            conseq_fields,
        )?;

        // Batches arrive at the ISM a little after each event.
        let now = UtcMicros::from_micros(recv_true + cfg.message_delay_us);
        core.push_batch(vec![reason], now)?;
        core.push_batch(vec![conseq], now)?;
        if core.take_extra_sync_request() {
            report.extra_sync_requests += 1;
        }
        core.tick(now)?;
        t_true = recv_true;
    }
    core.drain_all()?;

    // Consumer-side check: for each exchange, did the response appear to
    // precede the request?
    let (records, _missed) = reader.poll()?;
    let idx_of = |rec: &EventRecord| -> i32 {
        rec.fields
            .iter()
            .find_map(|f| match f {
                Value::I32(v) => Some(*v),
                _ => None,
            })
            .expect("exchange index field")
    };
    // Two passes: the check must be order-independent because an unrepaired
    // tachyonic consequence is (correctly) sorted BEFORE its reason.
    let mut reason_ts = std::collections::HashMap::new();
    for rec in &records {
        report.delivered += 1;
        if rec.event_type == EventTypeId(1) {
            reason_ts.insert(idx_of(rec), rec.ts);
        }
    }
    for rec in &records {
        if rec.event_type == EventTypeId(2) {
            if let Some(&rts) = reason_ts.get(&idx_of(rec)) {
                if rec.ts <= rts {
                    report.visible_tachyons += 1;
                }
            }
        }
    }
    report.repaired_tachyons = core.cre_stats().tachyons_repaired;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cre_on_repairs_all_tachyons() {
        let cfg = CausalConfig::default();
        let r = run_causal_experiment(&cfg).unwrap();
        assert_eq!(r.delivered, 2 * cfg.exchanges as u64);
        assert_eq!(r.visible_tachyons, 0, "CRE must repair every tachyon");
        assert!(r.repaired_tachyons as usize >= cfg.exchanges / 2);
        assert!(r.extra_sync_requests > 0);
    }

    #[test]
    fn cre_off_leaks_tachyons() {
        let cfg = CausalConfig {
            mark_causality: false,
            ..CausalConfig::default()
        };
        let r = run_causal_experiment(&cfg).unwrap();
        assert_eq!(r.delivered, 2 * cfg.exchanges as u64);
        assert!(
            r.visible_tachyons as usize > cfg.exchanges / 2,
            "unmarked events must expose causality violations: {}",
            r.visible_tachyons
        );
        assert_eq!(r.repaired_tachyons, 0);
    }

    #[test]
    fn well_synchronized_clocks_need_no_repair() {
        let cfg = CausalConfig {
            clock_offset_us: 0,
            ..CausalConfig::default()
        };
        let r = run_causal_experiment(&cfg).unwrap();
        assert_eq!(r.visible_tachyons, 0);
        assert_eq!(r.repaired_tachyons, 0, "no tachyons to repair");
        assert_eq!(r.extra_sync_requests, 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = CausalConfig::default();
        let a = run_causal_experiment(&cfg).unwrap();
        let b = run_causal_experiment(&cfg).unwrap();
        assert_eq!(a.repaired_tachyons, b.repaired_tachyons);
    }
}
