//! Higher-level monitoring methods built on the event-based kernel.
//!
//! The paper positions BRISK as a kernel able to "emulate other
//! methods/techniques (e.g., a hybrid monitoring approach for tracing or
//! profiling) by a software, event-based monitoring approach" (§2). This
//! module is that emulation layer:
//!
//! * [`Scope`] — tracing/profiling: RAII enter/exit event pairs with an
//!   elapsed-time field, from which `brisk-consumers`' profile builder
//!   reconstructs per-scope call counts and durations.
//! * [`CounterSensor`] — sampled counters: local accumulation with periodic
//!   snapshot events, trading temporal resolution for intrusion (the
//!   classic hybrid-monitoring trick of keeping counts in memory and
//!   draining them on a clock).
//! * [`SensorGate`] — dynamic monitoring control: tools can enable or
//!   disable event types at run time without touching the application,
//!   supporting the "users can only specify what to monitor" goal.

use brisk_clock::Clock;
use brisk_core::{EventTypeId, UtcMicros, Value};
use brisk_ringbuf::SensorPort;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Field-0 discriminator for records emitted by this module.
pub mod kind {
    /// Scope entry.
    pub const ENTER: u8 = 1;
    /// Scope exit (carries the elapsed time).
    pub const EXIT: u8 = 2;
    /// Counter snapshot (carries the running value and the delta since the
    /// previous snapshot).
    pub const COUNTER: u8 = 3;
}

/// RAII tracing scope: emits an `ENTER` record on creation and an `EXIT`
/// record (with elapsed microseconds) on drop.
///
/// ```
/// use brisk_clock::SystemClock;
/// use brisk_core::{EventTypeId, ExsConfig, NodeId};
/// use brisk_lis::{profiling::Scope, Lis};
/// use std::sync::Arc;
///
/// let lis = Lis::new(NodeId(0), Arc::new(SystemClock), &ExsConfig::default());
/// let mut port = lis.register();
/// {
///     let _scope = Scope::enter(&mut port, &**lis.clock(), EventTypeId(7), 42);
///     // ... the instrumented region ...
/// } // EXIT emitted here
/// ```
pub struct Scope<'p, C: Clock + ?Sized> {
    port: &'p mut SensorPort,
    clock: &'p C,
    event_type: EventTypeId,
    scope_id: u64,
    entered_at: UtcMicros,
}

impl<'p, C: Clock + ?Sized> Scope<'p, C> {
    /// Enter a scope, emitting the `ENTER` record. `scope_id` correlates
    /// the pair; use anything unique per activation (loop index, request
    /// id, …).
    pub fn enter(
        port: &'p mut SensorPort,
        clock: &'p C,
        event_type: EventTypeId,
        scope_id: u64,
    ) -> Self {
        let entered_at = clock.now();
        let _ = port.emit(
            event_type,
            entered_at,
            vec![Value::U8(kind::ENTER), Value::U64(scope_id)],
        );
        Scope {
            port,
            clock,
            event_type,
            scope_id,
            entered_at,
        }
    }

    /// Time spent in the scope so far.
    pub fn elapsed_us(&self) -> i64 {
        self.clock.now().micros_since(self.entered_at)
    }
}

impl<C: Clock + ?Sized> Drop for Scope<'_, C> {
    fn drop(&mut self) {
        let now = self.clock.now();
        let elapsed = now.micros_since(self.entered_at);
        let _ = self.port.emit(
            self.event_type,
            now,
            vec![
                Value::U8(kind::EXIT),
                Value::U64(self.scope_id),
                Value::I64(elapsed),
            ],
        );
    }
}

/// A sampled counter: cheap local increments, one snapshot event per
/// flush interval.
pub struct CounterSensor {
    event_type: EventTypeId,
    value: u64,
    delta: u64,
    flush_every_us: i64,
    last_flush: Option<UtcMicros>,
    snapshots: u64,
}

impl CounterSensor {
    /// New counter flushing a snapshot at most every `flush_every`.
    pub fn new(event_type: EventTypeId, flush_every: Duration) -> Self {
        CounterSensor {
            event_type,
            value: 0,
            delta: 0,
            flush_every_us: flush_every.as_micros() as i64,
            last_flush: None,
            snapshots: 0,
        }
    }

    /// Current running value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Snapshot events emitted so far.
    pub fn snapshots(&self) -> u64 {
        self.snapshots
    }

    /// Add `delta`; emits a snapshot if the flush interval has elapsed.
    /// Returns `true` if a snapshot record was emitted.
    pub fn add(&mut self, port: &mut SensorPort, clock: &impl Clock, delta: u64) -> bool {
        self.value += delta;
        self.delta += delta;
        let now = clock.now();
        let due = match self.last_flush {
            None => true,
            Some(last) => now.micros_since(last) >= self.flush_every_us,
        };
        if due {
            self.flush_at(port, now)
        } else {
            false
        }
    }

    /// Force a snapshot now (e.g. at shutdown).
    pub fn flush(&mut self, port: &mut SensorPort, clock: &impl Clock) -> bool {
        let now = clock.now();
        self.flush_at(port, now)
    }

    fn flush_at(&mut self, port: &mut SensorPort, now: UtcMicros) -> bool {
        let published = port
            .emit(
                self.event_type,
                now,
                vec![
                    Value::U8(kind::COUNTER),
                    Value::U64(self.value),
                    Value::U64(self.delta),
                ],
            )
            .unwrap_or(false);
        self.last_flush = Some(now);
        self.delta = 0;
        self.snapshots += 1;
        published
    }
}

/// Run-time monitoring switchboard: one enable bit per event type
/// (0..=63), plus a default for higher ids. Cheap enough to consult on
/// every `notice!`; shared between the application and control tools.
pub struct SensorGate {
    mask: AtomicU64,
    /// Bit 0: default for event types >= 64.
    high_default: AtomicU64,
}

impl SensorGate {
    /// New gate with everything enabled.
    pub fn all_enabled() -> Arc<Self> {
        Arc::new(SensorGate {
            mask: AtomicU64::new(u64::MAX),
            high_default: AtomicU64::new(1),
        })
    }

    /// New gate with everything disabled.
    pub fn all_disabled() -> Arc<Self> {
        Arc::new(SensorGate {
            mask: AtomicU64::new(0),
            high_default: AtomicU64::new(0),
        })
    }

    /// Enable one event type.
    pub fn enable(&self, ty: EventTypeId) {
        if ty.raw() < 64 {
            self.mask.fetch_or(1 << ty.raw(), Ordering::Relaxed);
        } else {
            self.high_default.store(1, Ordering::Relaxed);
        }
    }

    /// Disable one event type.
    pub fn disable(&self, ty: EventTypeId) {
        if ty.raw() < 64 {
            self.mask.fetch_and(!(1 << ty.raw()), Ordering::Relaxed);
        } else {
            self.high_default.store(0, Ordering::Relaxed);
        }
    }

    /// Should events of this type be emitted right now?
    #[inline]
    pub fn permits(&self, ty: EventTypeId) -> bool {
        if ty.raw() < 64 {
            self.mask.load(Ordering::Relaxed) & (1 << ty.raw()) != 0
        } else {
            self.high_default.load(Ordering::Relaxed) != 0
        }
    }
}

/// A [`notice!`](crate::notice) that first consults a [`SensorGate`];
/// returns `false` without touching the clock or the ring when the event
/// type is disabled.
#[macro_export]
macro_rules! notice_gated {
    ($gate:expr, $port:expr, $clock:expr, $event_type:expr $(, $field:expr)* $(,)?) => {{
        let __ty = $event_type;
        if $gate.permits(__ty) {
            $crate::notice!($port, $clock, __ty $(, $field)*)
        } else {
            false
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Lis;
    use brisk_clock::{SimClock, SimTimeSource};
    use brisk_core::{ExsConfig, NodeId};

    fn sim_lis() -> (Lis<SimClock>, SimTimeSource) {
        let src = SimTimeSource::new();
        let clock = Arc::new(SimClock::new(src.clone(), 0, 0.0, 1));
        (Lis::new(NodeId(0), clock, &ExsConfig::default()), src)
    }

    #[test]
    fn scope_emits_matched_pair_with_elapsed() {
        let (lis, src) = sim_lis();
        let mut port = lis.register();
        {
            let scope = Scope::enter(&mut port, &**lis.clock(), EventTypeId(5), 99);
            src.advance_by(1_234);
            assert_eq!(scope.elapsed_us(), 1_234);
        }
        let mut out = Vec::new();
        lis.rings().drain_into(10, &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].fields[0], Value::U8(kind::ENTER));
        assert_eq!(out[0].fields[1], Value::U64(99));
        assert_eq!(out[1].fields[0], Value::U8(kind::EXIT));
        assert_eq!(out[1].fields[1], Value::U64(99));
        assert_eq!(out[1].fields[2], Value::I64(1_234));
        assert_eq!(out[1].ts.micros_since(out[0].ts), 1_234);
    }

    #[test]
    fn nested_scopes_via_separate_ids() {
        let (lis, src) = sim_lis();
        let mut outer_port = lis.register();
        let mut inner_port = lis.register();
        {
            let _outer = Scope::enter(&mut outer_port, &**lis.clock(), EventTypeId(1), 1);
            src.advance_by(10);
            {
                let _inner = Scope::enter(&mut inner_port, &**lis.clock(), EventTypeId(2), 2);
                src.advance_by(5);
            }
            src.advance_by(10);
        }
        let mut out = Vec::new();
        lis.rings().drain_into(10, &mut out).unwrap();
        assert_eq!(out.len(), 4);
        let exit_elapsed: Vec<i64> = out
            .iter()
            .filter(|r| r.fields[0] == Value::U8(kind::EXIT))
            .map(|r| r.fields[2].as_i64().unwrap())
            .collect();
        assert!(exit_elapsed.contains(&5));
        assert!(exit_elapsed.contains(&25));
    }

    #[test]
    fn counter_snapshots_on_interval() {
        let (lis, src) = sim_lis();
        let mut port = lis.register();
        let mut counter = CounterSensor::new(EventTypeId(9), Duration::from_millis(10));
        assert!(counter.add(&mut port, &**lis.clock(), 1)); // first add flushes
        for _ in 0..100 {
            src.advance_by(100); // 0.1 ms steps: below the interval
            counter.add(&mut port, &**lis.clock(), 1);
        }
        assert_eq!(counter.value(), 101);
        let mut out = Vec::new();
        lis.rings().drain_into(usize::MAX, &mut out).unwrap();
        // 100 * 0.1ms = 10 ms elapsed → first flush + one more.
        assert_eq!(out.len() as u64, counter.snapshots());
        assert!(out.len() < 10, "snapshots must be sparse: {}", out.len());
        // The final snapshot's running value + validity of delta split.
        let last = out.last().unwrap();
        assert_eq!(last.fields[0], Value::U8(kind::COUNTER));
        let total: i64 = out.iter().map(|r| r.fields[2].as_i64().unwrap()).sum();
        let last_value = last.fields[1].as_i64().unwrap();
        assert_eq!(total, last_value, "deltas sum to the running value");
    }

    #[test]
    fn counter_forced_flush() {
        let (lis, _src) = sim_lis();
        let mut port = lis.register();
        let mut counter = CounterSensor::new(EventTypeId(9), Duration::from_secs(3600));
        counter.add(&mut port, &**lis.clock(), 5);
        counter.add(&mut port, &**lis.clock(), 7); // within interval: no event
        counter.flush(&mut port, &**lis.clock());
        let mut out = Vec::new();
        lis.rings().drain_into(usize::MAX, &mut out).unwrap();
        assert_eq!(out.len(), 2); // first add + forced flush
        assert_eq!(out[1].fields[1], Value::U64(12));
        assert_eq!(out[1].fields[2], Value::U64(7));
    }

    #[test]
    fn gate_controls_emission() {
        let (lis, _src) = sim_lis();
        let mut port = lis.register();
        let gate = SensorGate::all_enabled();
        assert!(notice_gated!(gate, port, lis.clock(), EventTypeId(3), 1i32));
        gate.disable(EventTypeId(3));
        assert!(!notice_gated!(
            gate,
            port,
            lis.clock(),
            EventTypeId(3),
            2i32
        ));
        assert!(notice_gated!(gate, port, lis.clock(), EventTypeId(4), 3i32));
        gate.enable(EventTypeId(3));
        assert!(notice_gated!(gate, port, lis.clock(), EventTypeId(3), 4i32));
        let mut out = Vec::new();
        lis.rings().drain_into(usize::MAX, &mut out).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r.fields[0] != Value::I32(2)));
    }

    #[test]
    fn gate_high_event_types_use_default() {
        let gate = SensorGate::all_enabled();
        assert!(gate.permits(EventTypeId(1_000)));
        gate.disable(EventTypeId(1_000));
        assert!(
            !gate.permits(EventTypeId(2_000)),
            "high ids share the default"
        );
        assert!(gate.permits(EventTypeId(3)), "low ids unaffected");
        gate.enable(EventTypeId(5_000));
        assert!(gate.permits(EventTypeId(1_000)));
    }

    #[test]
    fn all_disabled_gate_blocks_everything() {
        let gate = SensorGate::all_disabled();
        assert!(!gate.permits(EventTypeId(0)));
        assert!(!gate.permits(EventTypeId(63)));
        assert!(!gate.permits(EventTypeId(64)));
        gate.enable(EventTypeId(2));
        assert!(gate.permits(EventTypeId(2)));
        assert!(!gate.permits(EventTypeId(3)));
    }
}
