//! Batching and latency control (§3.4, Fig. 1).
//!
//! "Events of interest … may together form large volumes of instrumentation
//! data … On the other hand, in time-critical applications … it may be
//! desired that important events be delivered to a central place as soon as
//! possible. Clearly, these two requirements are in contradiction." (§2)
//!
//! The [`Batcher`] resolves the contradiction with knobs: a batch is
//! flushed when it reaches `max_batch_records` records or
//! `max_batch_bytes` encoded bytes (throughput mode), or when its oldest
//! record has waited `flush_timeout` (latency mode). The EXS main loop
//! drives it with the current time, so the same logic runs under real and
//! simulated clocks.

use brisk_core::{EventRecord, ExsConfig, UtcMicros};
use std::collections::VecDeque;

/// Why a batch was emitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// The record-count knob tripped.
    Records,
    /// The encoded-size knob tripped.
    Bytes,
    /// The oldest buffered record hit the flush timeout.
    Timeout,
    /// An explicit flush (shutdown, or a caller forcing latency).
    Forced,
}

/// Accumulates records and decides when to emit a batch.
#[derive(Debug)]
pub struct Batcher {
    cfg: ExsConfig,
    pending: Vec<EventRecord>,
    pending_bytes: usize,
    oldest_enqueued_at: Option<UtcMicros>,
    batches_emitted: u64,
    records_emitted: u64,
}

impl Batcher {
    /// New batcher with the given knobs.
    pub fn new(cfg: ExsConfig) -> Self {
        let cap = cfg.max_batch_records;
        Batcher {
            cfg,
            pending: Vec::with_capacity(cap),
            pending_bytes: 0,
            oldest_enqueued_at: None,
            batches_emitted: 0,
            records_emitted: 0,
        }
    }

    /// Number of records currently buffered.
    pub fn pending_records(&self) -> usize {
        self.pending.len()
    }

    /// Estimated wire size of the buffered records.
    pub fn pending_bytes(&self) -> usize {
        self.pending_bytes
    }

    /// Batches emitted so far.
    pub fn batches_emitted(&self) -> u64 {
        self.batches_emitted
    }

    /// Records emitted so far.
    pub fn records_emitted(&self) -> u64 {
        self.records_emitted
    }

    /// Add a record (stamped as arriving at `now`). Returns a full batch if
    /// one of the size knobs tripped.
    pub fn push(
        &mut self,
        rec: EventRecord,
        now: UtcMicros,
    ) -> Option<(Vec<EventRecord>, FlushReason)> {
        self.pending_bytes += rec.xdr_payload_size();
        self.pending.push(rec);
        if self.oldest_enqueued_at.is_none() {
            self.oldest_enqueued_at = Some(now);
        }
        if self.pending.len() >= self.cfg.max_batch_records {
            return Some((self.take(), FlushReason::Records));
        }
        if self.pending_bytes >= self.cfg.max_batch_bytes {
            return Some((self.take(), FlushReason::Bytes));
        }
        None
    }

    /// Check the latency knob: if the oldest buffered record has waited at
    /// least `flush_timeout`, emit what we have.
    pub fn poll_timeout(&mut self, now: UtcMicros) -> Option<(Vec<EventRecord>, FlushReason)> {
        let oldest = self.oldest_enqueued_at?;
        let waited = now.micros_since(oldest);
        if waited >= self.cfg.flush_timeout.as_micros() as i64 {
            Some((self.take(), FlushReason::Timeout))
        } else {
            None
        }
    }

    /// Time until the latency knob would trip, if anything is pending; the
    /// EXS uses it to size its blocking waits.
    pub fn time_to_deadline(&self, now: UtcMicros) -> Option<i64> {
        let oldest = self.oldest_enqueued_at?;
        Some(self.cfg.flush_timeout.as_micros() as i64 - now.micros_since(oldest))
    }

    /// Unconditionally emit everything buffered (may be empty).
    pub fn flush(&mut self) -> Option<(Vec<EventRecord>, FlushReason)> {
        if self.pending.is_empty() {
            return None;
        }
        Some((self.take(), FlushReason::Forced))
    }

    fn take(&mut self) -> Vec<EventRecord> {
        self.pending_bytes = 0;
        self.oldest_enqueued_at = None;
        self.batches_emitted += 1;
        self.records_emitted += self.pending.len() as u64;
        std::mem::take(&mut self.pending)
    }
}

/// Bounded retransmit window for acknowledged batch delivery (protocol
/// v2). The EXS assigns every outgoing batch a per-node monotonic sequence
/// number and keeps a copy here until the ISM's cumulative [`BatchAck`]
/// covers it; after a reconnect the supervisor replays whatever is still
/// unacked so an abrupt disconnect loses nothing.
///
/// The window is bounded: pushing into a full window evicts the oldest
/// unacked batch (returned to the caller so it can be counted as lost)
/// rather than blocking the node's instrumentation.
///
/// [`BatchAck`]: brisk_proto::Message::BatchAck
#[derive(Clone, Debug)]
pub struct SendWindow {
    next_seq: u64,
    unacked: VecDeque<(u64, Vec<EventRecord>)>,
    capacity: usize,
}

impl SendWindow {
    /// New window retaining at most `capacity` unacked batches.
    pub fn new(capacity: usize) -> Self {
        SendWindow {
            next_seq: 1,
            unacked: VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
        }
    }

    /// Sequence number the next pushed batch will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Unacked batches currently held.
    pub fn depth(&self) -> usize {
        self.unacked.len()
    }

    /// Total records across the unacked batches — the sender's in-flight
    /// count against a credit budget (protocol v3 flow control).
    pub fn unacked_records(&self) -> u64 {
        self.unacked.iter().map(|(_, b)| b.len() as u64).sum()
    }

    /// Assign the next sequence number to `records`, retain a copy for
    /// replay, and return `(seq, evicted)` where `evicted` is the batch
    /// pushed out of a full window (its records are lost to replay).
    pub fn push(&mut self, records: Vec<EventRecord>) -> (u64, Option<Vec<EventRecord>>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let evicted = if self.unacked.len() >= self.capacity {
            self.unacked.pop_front().map(|(_, b)| b)
        } else {
            None
        };
        self.unacked.push_back((seq, records));
        (seq, evicted)
    }

    /// Apply a cumulative ack: drop every batch with `seq <= acked`.
    /// Returns how many batches were released.
    pub fn ack(&mut self, acked: u64) -> usize {
        let before = self.unacked.len();
        while matches!(self.unacked.front(), Some((s, _)) if *s <= acked) {
            self.unacked.pop_front();
        }
        before - self.unacked.len()
    }

    /// The unacked batches in sequence order, for replay after a reconnect.
    pub fn iter_unacked(&self) -> impl Iterator<Item = (u64, &Vec<EventRecord>)> {
        self.unacked.iter().map(|(s, b)| (*s, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_core::{EventTypeId, NodeId, SensorId, Value};
    use std::time::Duration;

    fn rec(seq: u64) -> EventRecord {
        EventRecord::new(
            NodeId(1),
            SensorId(0),
            EventTypeId(1),
            seq,
            UtcMicros::from_micros(seq as i64),
            vec![Value::I32(0); 6],
        )
        .unwrap()
    }

    fn cfg(records: usize, bytes: usize, timeout_ms: u64) -> ExsConfig {
        ExsConfig {
            max_batch_records: records,
            max_batch_bytes: bytes,
            flush_timeout: Duration::from_millis(timeout_ms),
            ..ExsConfig::default()
        }
    }

    #[test]
    fn record_count_knob_trips() {
        let mut b = Batcher::new(cfg(3, 1 << 20, 40));
        let now = UtcMicros::ZERO;
        assert!(b.push(rec(0), now).is_none());
        assert!(b.push(rec(1), now).is_none());
        let (batch, reason) = b.push(rec(2), now).unwrap();
        assert_eq!(batch.len(), 3);
        assert_eq!(reason, FlushReason::Records);
        assert_eq!(b.pending_records(), 0);
        assert_eq!(b.batches_emitted(), 1);
        assert_eq!(b.records_emitted(), 3);
    }

    #[test]
    fn byte_knob_trips() {
        // Each six-i32 record is 56 XDR bytes; 100 bytes → 2 records.
        let mut b = Batcher::new(cfg(1000, 100, 40));
        let now = UtcMicros::ZERO;
        assert!(b.push(rec(0), now).is_none());
        let (batch, reason) = b.push(rec(1), now).unwrap();
        assert_eq!(reason, FlushReason::Bytes);
        assert_eq!(batch.len(), 2);
        assert_eq!(b.pending_bytes(), 0);
    }

    #[test]
    fn timeout_knob_trips_on_oldest_record() {
        let mut b = Batcher::new(cfg(1000, 1 << 20, 40));
        let t0 = UtcMicros::ZERO;
        b.push(rec(0), t0);
        // 30 ms later: not yet.
        assert!(b.poll_timeout(t0 + Duration::from_millis(30)).is_none());
        b.push(rec(1), t0 + Duration::from_millis(30));
        // 41 ms after the FIRST record: trips even though the second is young.
        let (batch, reason) = b.poll_timeout(t0 + Duration::from_millis(41)).unwrap();
        assert_eq!(reason, FlushReason::Timeout);
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn timeout_resets_after_flush() {
        let mut b = Batcher::new(cfg(1000, 1 << 20, 40));
        let t0 = UtcMicros::ZERO;
        b.push(rec(0), t0);
        b.poll_timeout(t0 + Duration::from_millis(50)).unwrap();
        // New record restarts the deadline.
        b.push(rec(1), t0 + Duration::from_millis(60));
        assert!(b.poll_timeout(t0 + Duration::from_millis(90)).is_none());
        assert!(b.poll_timeout(t0 + Duration::from_millis(100)).is_some());
    }

    #[test]
    fn empty_batcher_never_times_out() {
        let mut b = Batcher::new(cfg(10, 1 << 20, 40));
        assert!(b.poll_timeout(UtcMicros::from_secs(100)).is_none());
        assert!(b.time_to_deadline(UtcMicros::ZERO).is_none());
        assert!(b.flush().is_none());
    }

    #[test]
    fn time_to_deadline_counts_down() {
        let mut b = Batcher::new(cfg(10, 1 << 20, 40));
        let t0 = UtcMicros::ZERO;
        b.push(rec(0), t0);
        assert_eq!(b.time_to_deadline(t0), Some(40_000));
        assert_eq!(
            b.time_to_deadline(t0 + Duration::from_millis(15)),
            Some(25_000)
        );
        assert_eq!(
            b.time_to_deadline(t0 + Duration::from_millis(45)),
            Some(-5_000)
        );
    }

    #[test]
    fn forced_flush_emits_partial_batch() {
        let mut b = Batcher::new(cfg(10, 1 << 20, 40));
        b.push(rec(0), UtcMicros::ZERO);
        let (batch, reason) = b.flush().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(reason, FlushReason::Forced);
        assert!(b.flush().is_none());
    }

    #[test]
    fn send_window_acks_cumulatively() {
        let mut w = SendWindow::new(8);
        assert_eq!(w.next_seq(), 1);
        for i in 0..5u64 {
            let (seq, evicted) = w.push(vec![rec(i)]);
            assert_eq!(seq, i + 1);
            assert!(evicted.is_none());
        }
        assert_eq!(w.depth(), 5);
        assert_eq!(w.unacked_records(), 5);
        assert_eq!(w.ack(3), 3);
        assert_eq!(w.depth(), 2);
        assert_eq!(w.unacked_records(), 2);
        let seqs: Vec<u64> = w.iter_unacked().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![4, 5]);
        // Re-acking is idempotent; acking past the end clears everything.
        assert_eq!(w.ack(3), 0);
        assert_eq!(w.ack(100), 2);
        assert_eq!(w.depth(), 0);
        // Sequence numbers keep growing after acks.
        assert_eq!(w.push(vec![rec(9)]).0, 6);
    }

    #[test]
    fn send_window_evicts_oldest_when_full() {
        let mut w = SendWindow::new(2);
        assert!(w.push(vec![rec(1)]).1.is_none());
        assert!(w.push(vec![rec(2)]).1.is_none());
        let (seq, evicted) = w.push(vec![rec(3)]);
        assert_eq!(seq, 3);
        let evicted = evicted.expect("oldest batch evicted");
        assert_eq!(evicted[0].seq, 1);
        assert_eq!(w.depth(), 2);
        let seqs: Vec<u64> = w.iter_unacked().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![2, 3]);
    }

    #[test]
    fn batches_preserve_order() {
        let mut b = Batcher::new(cfg(4, 1 << 20, 40));
        let mut emitted = Vec::new();
        for i in 0..10 {
            if let Some((batch, _)) = b.push(rec(i), UtcMicros::ZERO) {
                emitted.extend(batch);
            }
        }
        if let Some((batch, _)) = b.flush() {
            emitted.extend(batch);
        }
        let seqs: Vec<u64> = emitted.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }
}
