//! # brisk-lis — the local instrumentation server
//!
//! One LIS runs on each node of the target system (§3.1, §3.2). It has two
//! halves:
//!
//! * **Internal sensors** — the instrumentation points inside the
//!   application. The original's cpp `NOTICE` macros become the
//!   [`notice!`] macro, which samples the clock, builds a dynamically-typed
//!   record and writes it to the node's shared ring buffer without ever
//!   blocking. The paper's "utility tool … to create custom NOTICE macros
//!   having user-defined field types" (an on-demand partial evaluation of
//!   the sensors) becomes the [`define_notice!`] macro, which generates a
//!   monomorphic, statically-typed emit function.
//! * **The external sensor (EXS)** — [`exs::ExternalSensor`], a separate
//!   thread (the original used a separate, lower-priority process) that
//!   drains the ring buffers, adds the clock-sync correction value to every
//!   timestamp, batches records under the latency-control knobs
//!   ([`brisk_core::ExsConfig`]) and ships batches to the ISM over the
//!   transfer protocol. It also answers clock-sync polls and applies
//!   adjustments (the sync *slave* role).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod batch;
pub mod exs;
pub mod profiling;
pub mod sensor;
pub mod supervisor;

pub use batch::{Batcher, FlushReason};
pub use exs::{spawn_exs, ExsHandle, ExsStats, ExsTelemetry, ExternalSensor};
pub use profiling::{CounterSensor, Scope, SensorGate};
pub use sensor::Lis;
pub use supervisor::{spawn_exs_supervised, SupervisedExsHandle, SupervisorConfig};
