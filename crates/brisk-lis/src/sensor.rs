//! Internal sensors: the `notice!` macro family and the per-node LIS
//! registration facade.

use brisk_clock::Clock;
use brisk_core::{ExsConfig, NodeId, SensorId};
use brisk_ringbuf::{RingSet, SensorPort};
use brisk_telemetry::TraceSampler;
use std::sync::Arc;

/// Per-node facade bundling the ring set and the clock used by sensors.
///
/// Instrumented code holds a [`SensorPort`] (one per thread) created via
/// [`Lis::register`] and fires [`crate::notice!`] on it.
pub struct Lis<C: Clock> {
    rings: Arc<RingSet>,
    clock: Arc<C>,
}

impl<C: Clock> Lis<C> {
    /// Create the LIS facade for `node`, sizing rings per `cfg`. When the
    /// `trace` knob enables sampling, every sensor registered afterwards
    /// shares one node-wide [`TraceSampler`] and 1-in-N notices carry an
    /// `X_TRACE` context from birth.
    pub fn new(node: NodeId, clock: Arc<C>, cfg: &ExsConfig) -> Self {
        let rings = RingSet::new(node, cfg.ring_capacity);
        if cfg.trace.enabled() {
            rings.set_trace_sampler(Arc::new(TraceSampler::new(cfg.trace.sample_every)));
        }
        Lis { rings, clock }
    }

    /// The node's ring set (the EXS drains this).
    pub fn rings(&self) -> &Arc<RingSet> {
        &self.rings
    }

    /// The clock sensors sample (raw local time; the EXS applies the
    /// correction value later, per §3.2).
    pub fn clock(&self) -> &Arc<C> {
        &self.clock
    }

    /// Register a new internal sensor (typically one per instrumented
    /// thread).
    pub fn register(&self) -> SensorPort {
        self.rings.register()
    }

    /// Register a sensor with an explicit id.
    pub fn register_with_id(&self, sensor: SensorId) -> SensorPort {
        self.rings.register_with_id(sensor)
    }
}

/// Fire an event notification: the Rust `NOTICE` macro (§3.2).
///
/// ```
/// use brisk_core::{EventTypeId, NodeId, ExsConfig, UtcMicros};
/// use brisk_clock::SystemClock;
/// use brisk_lis::{notice, Lis};
/// use std::sync::Arc;
///
/// let lis = Lis::new(NodeId(0), Arc::new(SystemClock), &ExsConfig::default());
/// let mut port = lis.register();
/// // Up to eight dynamically-typed fields.
/// let published = notice!(port, lis.clock(), EventTypeId(1), 42i32, "phase-a", 2.5f64);
/// assert!(published);
/// ```
///
/// Expansion cost is one clock read, one record construction and one ring
/// write; on overflow the record is dropped, never blocking the caller.
/// Returns `true` if the record was published.
#[macro_export]
macro_rules! notice {
    ($port:expr, $clock:expr, $event_type:expr $(, $field:expr)* $(,)?) => {{
        let __ts = $crate::sensor::__clock_now(&$clock);
        let __fields: ::std::vec::Vec<::brisk_core::Value> =
            ::std::vec![$(::brisk_core::Value::from($field)),*];
        match $port.emit($event_type, __ts, __fields) {
            Ok(published) => published,
            Err(_) => false,
        }
    }};
}

/// Generate a specialized, statically-typed notice function — the
/// equivalent of the paper's custom-NOTICE-macro generator utility.
///
/// ```
/// use brisk_core::{EventTypeId, NodeId, ExsConfig};
/// use brisk_clock::SystemClock;
/// use brisk_lis::{define_notice, Lis};
/// use std::sync::Arc;
///
/// define_notice! {
///     /// Work-item completion event.
///     pub fn notice_work_done(items: i32, elapsed_us: i64, queue: &str);
/// }
///
/// let lis = Lis::new(NodeId(0), Arc::new(SystemClock), &ExsConfig::default());
/// let mut port = lis.register();
/// notice_work_done(&mut port, &*lis.clock(), EventTypeId(3), 10, 2500, "rx");
/// ```
///
/// The generated function takes `(&mut SensorPort, &impl Clock,
/// EventTypeId, <your fields>)` and returns `bool` (published or dropped).
#[macro_export]
macro_rules! define_notice {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident : $ty:ty),* $(,)?);) => {
        $(#[$meta])*
        #[inline]
        $vis fn $name(
            port: &mut ::brisk_ringbuf::SensorPort,
            clock: &impl ::brisk_clock::Clock,
            event_type: ::brisk_core::EventTypeId,
            $($arg: $ty),*
        ) -> bool {
            let ts = ::brisk_clock::Clock::now(clock);
            let fields: ::std::vec::Vec<::brisk_core::Value> =
                ::std::vec![$(::brisk_core::Value::from($arg)),*];
            match port.emit(event_type, ts, fields) {
                Ok(published) => published,
                Err(_) => false,
            }
        }
    };
}

/// Implementation detail of [`notice!`]: reads a clock through any level of
/// reference/`Arc` indirection.
#[doc(hidden)]
pub fn __clock_now<C: Clock + ?Sized>(clock: &C) -> brisk_core::UtcMicros {
    clock.now()
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // single-knob mutation is the point of these tests
mod tests {
    use super::*;
    use brisk_clock::{SimClock, SimTimeSource};
    use brisk_core::{CorrelationId, EventTypeId, UtcMicros, Value};

    fn sim_lis() -> (Lis<SimClock>, SimTimeSource) {
        let src = SimTimeSource::new();
        let clock = Arc::new(SimClock::new(src.clone(), 0, 0.0, 1));
        (Lis::new(NodeId(4), clock, &ExsConfig::default()), src)
    }

    #[test]
    fn notice_publishes_with_sampled_clock() {
        let (lis, src) = sim_lis();
        let mut port = lis.register();
        src.advance_by(777);
        assert!(notice!(port, lis.clock(), EventTypeId(2), 5i32, "tag"));
        let mut out = Vec::new();
        lis.rings().drain_into(10, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].ts, UtcMicros::from_micros(777));
        assert_eq!(out[0].event_type, EventTypeId(2));
        assert_eq!(out[0].fields, vec![Value::I32(5), Value::Str("tag".into())]);
        assert_eq!(out[0].node, NodeId(4));
    }

    #[test]
    fn notice_supports_zero_fields_and_trailing_comma() {
        let (lis, _src) = sim_lis();
        let mut port = lis.register();
        assert!(notice!(port, lis.clock(), EventTypeId(1)));
        assert!(notice!(port, lis.clock(), EventTypeId(1), 1u8,));
        let mut out = Vec::new();
        lis.rings().drain_into(10, &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[0].fields.is_empty());
    }

    #[test]
    fn notice_system_types_via_values() {
        let (lis, _src) = sim_lis();
        let mut port = lis.register();
        assert!(notice!(
            port,
            lis.clock(),
            EventTypeId(9),
            Value::Reason(CorrelationId(31)),
            Value::Ts(UtcMicros::from_micros(5)),
        ));
        let mut out = Vec::new();
        lis.rings().drain_into(10, &mut out).unwrap();
        assert_eq!(out[0].reason_id(), Some(CorrelationId(31)));
    }

    define_notice! {
        /// Test-only specialized sensor.
        pub fn notice_pair(a: i32, b: f64);
    }

    #[test]
    fn define_notice_generates_typed_emitter() {
        let (lis, src) = sim_lis();
        let mut port = lis.register();
        src.advance_by(10);
        assert!(notice_pair(
            &mut port,
            &**lis.clock(),
            EventTypeId(8),
            3,
            0.5
        ));
        let mut out = Vec::new();
        lis.rings().drain_into(10, &mut out).unwrap();
        assert_eq!(out[0].fields, vec![Value::I32(3), Value::F64(0.5)]);
        assert_eq!(out[0].ts.as_micros(), 10);
    }

    #[test]
    fn trace_knob_installs_node_wide_sampler() {
        let src = SimTimeSource::new();
        let clock = Arc::new(SimClock::new(src.clone(), 0, 0.0, 1));
        let mut cfg = ExsConfig::default();
        cfg.trace = brisk_core::TraceConfig::every(1);
        let lis = Lis::new(NodeId(2), clock, &cfg);
        let mut port = lis.register();
        assert!(notice!(port, lis.clock(), EventTypeId(1), 1i32));
        let mut out = Vec::new();
        lis.rings().drain_into(10, &mut out).unwrap();
        assert!(
            out[0].trace().is_some(),
            "1-in-1 sampling traces everything"
        );

        // Default config: tracing off, no sampler, no X_TRACE field.
        let clock = Arc::new(SimClock::new(src, 0, 0.0, 1));
        let lis = Lis::new(NodeId(3), clock, &ExsConfig::default());
        assert!(lis.rings().trace_sampler().is_none());
        let mut port = lis.register();
        assert!(notice!(port, lis.clock(), EventTypeId(1), 1i32));
        out.clear();
        lis.rings().drain_into(10, &mut out).unwrap();
        assert!(out[0].trace().is_none());
    }

    #[test]
    fn notice_returns_false_on_full_ring() {
        let src = SimTimeSource::new();
        let clock = Arc::new(SimClock::new(src.clone(), 0, 0.0, 1));
        let mut cfg = ExsConfig::default();
        cfg.ring_capacity = 1024; // tiny: fills quickly
        let lis = Lis::new(NodeId(1), clock, &cfg);
        let mut port = lis.register();
        let mut dropped = false;
        for _ in 0..200 {
            if !notice!(port, lis.clock(), EventTypeId(1), 0i64, 0i64, 0i64) {
                dropped = true;
                break;
            }
        }
        assert!(dropped);
    }
}
