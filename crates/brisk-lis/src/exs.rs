//! The external sensor (EXS).
//!
//! "The memory is read by an external sensor, which runs as another process
//! on the same node and may be assigned a lower priority" (§3.1). The EXS:
//!
//! 1. drains the node's sensor rings,
//! 2. adds the clock-sync *correction value* to every timestamp (§3.2),
//! 3. batches records under the latency-control knobs and ships batches to
//!    the ISM over the transfer protocol (§3.4),
//! 4. acts as the clock-sync *slave*: answers `SyncPoll`s with its corrected
//!    time and applies `SyncAdjust`s to the correction value (§3.3).
//!
//! When there is nothing to do, the EXS parks in a short timed `recv` on
//! its ISM connection — the "waiting select system call" the paper
//! identifies as the worst-case latency contributor (§4): an event arriving
//! right after the EXS goes to sleep waits out the poll interval, and a
//! partial batch waits out the flush timeout.
//!
//! All EXS *deadlines* (the flush timeout in particular) are measured on
//! the node's clock, not on wall time, so the whole component is
//! deterministic under a simulated clock. The flip side: a simulated clock
//! that stops advancing freezes those deadlines — tests and examples that
//! drive a `SimClock` must keep advancing it (or call the handle's `stop`,
//! which force-flushes) for timeout flushes to fire.

use crate::batch::{Batcher, FlushReason, SendWindow};
use brisk_clock::{Clock, CorrectedClock, Hlc};
use brisk_core::{BriskError, EventRecord, ExsConfig, NodeId, Result, TraceStage};
use brisk_net::Connection;
use brisk_proto::Message;
use brisk_ringbuf::RingSet;
use brisk_telemetry::{Histogram, Registry, StageTimer};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counters the EXS maintains while running.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExsStats {
    /// Records drained from sensor rings.
    pub records_drained: u64,
    /// Records sent to the ISM.
    pub records_sent: u64,
    /// Batches sent.
    pub batches_sent: u64,
    /// Batches flushed by the record-count knob.
    pub flush_records: u64,
    /// Batches flushed by the byte-size knob.
    pub flush_bytes: u64,
    /// Batches flushed by the latency timeout.
    pub flush_timeout: u64,
    /// Batches flushed explicitly (shutdown).
    pub flush_forced: u64,
    /// Sync polls answered.
    pub sync_replies: u64,
    /// Sync adjustments applied.
    pub adjustments: u64,
    /// Sync adjustments ignored because `sync_disabled` is set (chaos
    /// plane: the node's clock is deliberately left to drift).
    pub sync_ignored: u64,
    /// Cumulative `BatchAck`s received from the ISM (v2 delivery).
    pub acks_received: u64,
    /// Batches replayed from the retransmit window after a reconnect.
    pub batches_retransmitted: u64,
    /// Unacked batches evicted from a full retransmit window (lost to
    /// replay; delivery degraded to v1 semantics for those records).
    pub window_evicted: u64,
    /// Ring scoops deferred because the ISM's credit budget was spent
    /// (protocol v3 flow control); backpressure is parked in the rings.
    pub credit_deferrals: u64,
    /// Liveness heartbeats sent to the ISM (protocol v3, idle links only).
    pub heartbeats_sent: u64,
    /// `HelloAck`s received (one per successfully established connection).
    pub hello_acks: u64,
    /// Inbound control frames that failed to decode and were skipped.
    pub decode_errors: u64,
    /// Nanoseconds spent doing work (excludes waiting); the E2 utilization
    /// numerator.
    pub busy_nanos: u64,
    /// Loop iterations executed.
    pub iterations: u64,
}

/// Shared atomic backing for [`ExsStats`] plus the EXS's stage
/// histograms. Lives in an `Arc` so a telemetry registry (and the
/// spawning thread, via [`ExsHandle`]) can observe a live EXS without
/// locking: every field is a relaxed atomic the EXS thread bumps in
/// place of the old plain-struct counters.
#[derive(Debug, Default)]
pub struct ExsTelemetry {
    records_drained: AtomicU64,
    records_sent: AtomicU64,
    batches_sent: AtomicU64,
    flush_records: AtomicU64,
    flush_bytes: AtomicU64,
    flush_timeout: AtomicU64,
    flush_forced: AtomicU64,
    sync_replies: AtomicU64,
    adjustments: AtomicU64,
    sync_ignored: AtomicU64,
    acks_received: AtomicU64,
    batches_retransmitted: AtomicU64,
    window_evicted: AtomicU64,
    credit_deferrals: AtomicU64,
    heartbeats_sent: AtomicU64,
    hello_acks: AtomicU64,
    decode_errors: AtomicU64,
    /// Current retransmit-window occupancy (batches), mirrored from the
    /// EXS thread so a registry gauge can observe it without locking.
    window_depth: AtomicU64,
    /// Remaining credit (granted budget − unacked in-flight records),
    /// mirrored from the EXS thread; 0 while credit is off.
    credit_balance: AtomicI64,
    busy_nanos: AtomicU64,
    iterations: AtomicU64,
    /// Per-step drain+batch latency in µs, on the node's clock (so it is
    /// deterministic under `SimClock`).
    drain_us: Arc<Histogram>,
    /// Records per emitted batch.
    batch_records: Arc<Histogram>,
    /// Ack lag: unacked batches still in the window when each ack lands.
    ack_lag: Arc<Histogram>,
}

impl ExsTelemetry {
    /// Materialize the plain [`ExsStats`] view from the atomics.
    pub fn stats(&self) -> ExsStats {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ExsStats {
            records_drained: ld(&self.records_drained),
            records_sent: ld(&self.records_sent),
            batches_sent: ld(&self.batches_sent),
            flush_records: ld(&self.flush_records),
            flush_bytes: ld(&self.flush_bytes),
            flush_timeout: ld(&self.flush_timeout),
            flush_forced: ld(&self.flush_forced),
            sync_replies: ld(&self.sync_replies),
            adjustments: ld(&self.adjustments),
            sync_ignored: ld(&self.sync_ignored),
            acks_received: ld(&self.acks_received),
            batches_retransmitted: ld(&self.batches_retransmitted),
            window_evicted: ld(&self.window_evicted),
            credit_deferrals: ld(&self.credit_deferrals),
            heartbeats_sent: ld(&self.heartbeats_sent),
            hello_acks: ld(&self.hello_acks),
            decode_errors: ld(&self.decode_errors),
            busy_nanos: ld(&self.busy_nanos),
            iterations: ld(&self.iterations),
        }
    }

    /// `HelloAck`s received so far. A supervisor watches this across a
    /// reconnect: only a grown count proves the ISM answered the new
    /// `Hello`, which is the signal that may reset the backoff (a bare
    /// TCP connect can succeed against a dead-but-listening peer).
    pub fn hello_acks(&self) -> u64 {
        self.hello_acks.load(Ordering::Relaxed)
    }

    /// The drain-latency histogram (µs per step of drain+batch work).
    pub fn drain_us(&self) -> &Histogram {
        &self.drain_us
    }

    /// The batch-size histogram (records per emitted batch).
    pub fn batch_records(&self) -> &Histogram {
        &self.batch_records
    }

    /// Register every EXS series with `registry`, labeled by node:
    /// `brisk_exs_*_total` counters (flushes labeled by `reason`), the
    /// `brisk_exs_drain_us` latency histogram and the
    /// `brisk_exs_batch_records` size histogram.
    pub fn bind(self: &Arc<Self>, node: NodeId, registry: &Registry) {
        type Field = fn(&ExsTelemetry) -> &AtomicU64;
        let n = node.0.to_string();
        let counters: [(&str, &str, Field); 15] = [
            (
                "brisk_exs_records_drained_total",
                "Records drained from sensor rings",
                |t| &t.records_drained,
            ),
            (
                "brisk_exs_records_sent_total",
                "Records shipped to the ISM",
                |t| &t.records_sent,
            ),
            (
                "brisk_exs_batches_sent_total",
                "Batches shipped to the ISM",
                |t| &t.batches_sent,
            ),
            ("brisk_exs_sync_replies_total", "Sync polls answered", |t| {
                &t.sync_replies
            }),
            (
                "brisk_exs_adjustments_total",
                "Clock adjustments applied",
                |t| &t.adjustments,
            ),
            (
                "brisk_exs_sync_ignored_total",
                "Clock adjustments ignored (sync disabled on this node)",
                |t| &t.sync_ignored,
            ),
            (
                "brisk_exs_acks_total",
                "Batch acknowledgements received from the ISM",
                |t| &t.acks_received,
            ),
            (
                "brisk_exs_batches_retransmitted_total",
                "Batches replayed from the retransmit window after reconnect",
                |t| &t.batches_retransmitted,
            ),
            (
                "brisk_exs_window_evicted_total",
                "Unacked batches evicted from a full retransmit window",
                |t| &t.window_evicted,
            ),
            (
                "brisk_exs_credit_deferred_total",
                "Ring scoops deferred waiting for ISM credit",
                |t| &t.credit_deferrals,
            ),
            (
                "brisk_exs_heartbeats_sent_total",
                "Liveness heartbeats sent to the ISM on idle links",
                |t| &t.heartbeats_sent,
            ),
            (
                "brisk_exs_hello_acks_total",
                "HelloAcks received (established connections)",
                |t| &t.hello_acks,
            ),
            (
                "brisk_exs_decode_errors_total",
                "Inbound control frames that failed to decode and were skipped",
                |t| &t.decode_errors,
            ),
            (
                "brisk_exs_busy_nanos_total",
                "Nanoseconds spent working",
                |t| &t.busy_nanos,
            ),
            ("brisk_exs_iterations_total", "EXS loop iterations", |t| {
                &t.iterations
            }),
        ];
        for (name, help, get) in counters {
            let me = Arc::clone(self);
            registry.counter_fn(name, help, &[("node", &n)], move || {
                get(&me).load(Ordering::Relaxed)
            });
        }
        let reasons: [(&str, Field); 4] = [
            ("records", |t| &t.flush_records),
            ("bytes", |t| &t.flush_bytes),
            ("timeout", |t| &t.flush_timeout),
            ("forced", |t| &t.flush_forced),
        ];
        for (reason, get) in reasons {
            let me = Arc::clone(self);
            registry.counter_fn(
                "brisk_exs_flush_total",
                "Batch flushes by triggering knob",
                &[("node", &n), ("reason", reason)],
                move || get(&me).load(Ordering::Relaxed),
            );
        }
        // Histograms are owned here (the EXS records into them whether
        // or not a registry is attached); the registry adopts the Arcs.
        registry.register_histogram(
            "brisk_exs_drain_us",
            "Per-step drain+batch latency on the node clock",
            &[("node", &n)],
            &self.drain_us,
        );
        registry.register_histogram(
            "brisk_exs_batch_records",
            "Records per emitted batch",
            &[("node", &n)],
            &self.batch_records,
        );
        registry.register_histogram(
            "brisk_exs_ack_lag_batches",
            "Unacked batches still windowed when each ack landed",
            &[("node", &n)],
            &self.ack_lag,
        );
        let me = Arc::clone(self);
        registry.gauge_fn(
            "brisk_exs_retransmit_window_depth",
            "Sent-but-unacked batches held for replay",
            &[("node", &n)],
            move || me.window_depth.load(Ordering::Relaxed) as i64,
        );
        let me = Arc::clone(self);
        registry.gauge_fn(
            "brisk_exs_credit_balance",
            "Granted credit minus unacked in-flight records (0 while credit is off)",
            &[("node", &n)],
            move || me.credit_balance.load(Ordering::Relaxed),
        );
    }
}

/// What one [`ExternalSensor::step`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExsStep {
    /// Work was done (records moved or messages handled).
    Busy,
    /// Nothing to do; the step waited.
    Idle,
    /// The ISM asked us to shut down (orderly `Shutdown` message).
    Shutdown,
    /// The connection dropped without an orderly shutdown.
    Disconnected,
}

/// The external sensor: one per node.
pub struct ExternalSensor {
    node: NodeId,
    rings: Arc<RingSet>,
    clock: Arc<CorrectedClock<Arc<dyn Clock>>>,
    conn: Box<dyn Connection>,
    cfg: ExsConfig,
    batcher: Batcher,
    shared: Arc<ExsTelemetry>,
    drain_buf: Vec<EventRecord>,
    /// Retransmit window for v2 acknowledged delivery. `Some` from
    /// construction (this EXS speaks v2 optimistically); dropped to `None`
    /// only if the ISM negotiates the connection down to v1, where no acks
    /// will ever arrive and windowed copies would be dead weight.
    window: Option<SendWindow>,
    /// Credit budget granted by the ISM (protocol v3): the maximum number
    /// of unacked records this EXS may have in flight. `None` = no flow
    /// control (v1/v2 peer, or credit disabled on the ISM). The ISM
    /// re-advertises the budget absolutely on `HelloAck` and every
    /// `BatchAck`.
    credit: Option<u64>,
    /// The protocol version the ISM confirmed in its `HelloAck`; `None`
    /// until one arrives. Heartbeats (a v3 tag) are sent only once this
    /// proves the peer can decode them.
    negotiated: Option<u32>,
    /// Monotonically accumulated raw-clock µs, the heartbeat pacing
    /// basis. Forward progress of the raw node clock accrues here;
    /// backward jumps (a stepped or faulted clock) contribute nothing,
    /// so a misbehaving clock can neither stall heartbeats for the size
    /// of the jump nor flood them. Sync corrections never touch it —
    /// pacing reads the *raw* clock, which also keeps it deterministic
    /// under simulation.
    pacing_us: i64,
    /// Last raw-clock reading, to derive forward deltas for `pacing_us`.
    pacing_raw_us: i64,
    /// Value of `pacing_us` at the last frame sent, for heartbeat pacing.
    last_send_us: i64,
    /// Hybrid logical clock, ticked per record at scoop time when
    /// `cfg.stamp_hlc` is set (the stamp rides as `X_HLC`).
    hlc: Arc<Hlc>,
    /// Undecodable inbound control frames this incarnation; past
    /// [`CONTROL_ERROR_BUDGET`] the connection is treated as broken.
    control_errors: u32,
    /// True while a credit stall is in progress, so the flight recorder
    /// sees one event per stall instead of one per deferred step.
    credit_stalled: bool,
}

/// Undecodable inbound control frames an EXS skips before declaring the
/// connection corrupt. Mirrors the ISM-side protocol error budget.
const CONTROL_ERROR_BUDGET: u32 = 8;

impl ExternalSensor {
    /// Connect-side constructor: sends the `Hello` preamble immediately.
    ///
    /// `raw_clock` is the same clock the node's sensors sample; the EXS
    /// wraps it with the correction value it maintains.
    pub fn new(
        node: NodeId,
        rings: Arc<RingSet>,
        raw_clock: Arc<dyn Clock>,
        conn: Box<dyn Connection>,
        cfg: ExsConfig,
    ) -> Result<Self> {
        Self::with_telemetry(node, rings, raw_clock, conn, cfg, Arc::default())
    }

    /// Like [`ExternalSensor::new`], but accumulating into an existing
    /// telemetry backing. The supervisor uses this so counters keep
    /// growing across reconnect incarnations instead of resetting.
    pub fn with_telemetry(
        node: NodeId,
        rings: Arc<RingSet>,
        raw_clock: Arc<dyn Clock>,
        conn: Box<dyn Connection>,
        cfg: ExsConfig,
        shared: Arc<ExsTelemetry>,
    ) -> Result<Self> {
        cfg.validate()?;
        let window = SendWindow::new(cfg.retransmit_window_batches);
        Self::with_window(node, rings, raw_clock, conn, cfg, shared, window)
    }

    /// Like [`ExternalSensor::with_telemetry`], but resuming from a
    /// retransmit window carried over from a previous incarnation: after
    /// the `Hello` preamble every still-unacked batch is replayed (in
    /// sequence order, ahead of new traffic) so an abrupt disconnect loses
    /// nothing. The ISM deduplicates by `(node, seq)`, so replaying batches
    /// it already processed is harmless.
    pub fn with_window(
        node: NodeId,
        rings: Arc<RingSet>,
        raw_clock: Arc<dyn Clock>,
        mut conn: Box<dyn Connection>,
        cfg: ExsConfig,
        shared: Arc<ExsTelemetry>,
        window: SendWindow,
    ) -> Result<Self> {
        cfg.validate()?;
        conn.send(
            &Message::Hello {
                node,
                version: brisk_proto::VERSION,
            }
            .encode(),
        )?;
        let clock = CorrectedClock::new(raw_clock);
        let pacing_raw_us = clock.raw_now().as_micros();
        let mut exs = ExternalSensor {
            node,
            rings,
            clock,
            conn,
            batcher: Batcher::new(cfg.clone()),
            cfg,
            shared,
            drain_buf: Vec::with_capacity(512),
            window: Some(window),
            credit: None,
            negotiated: None,
            pacing_us: 0,
            pacing_raw_us,
            last_send_us: 0,
            hlc: Hlc::new(),
            control_errors: 0,
            credit_stalled: false,
        };
        // Replay deliberately ignores credit: those records were already
        // granted in-flight by the previous connection, and holding them
        // back would stall recovery behind acks that cannot arrive yet.
        exs.replay_unacked()?;
        Ok(exs)
    }

    /// The credit budget currently granted by the ISM, if any.
    pub fn credit(&self) -> Option<u64> {
        self.credit
    }

    /// Seed the credit budget (supervisor carry-over): between a
    /// reconnect's `Hello` and the new `HelloAck`, the previous grant
    /// keeps pacing the scoop instead of allowing an unbounded burst. The
    /// next `HelloAck` overwrites this with the connection's real grant.
    pub fn set_credit(&mut self, credit: Option<u64>) {
        self.credit = credit;
        self.update_credit_balance();
    }

    /// True when flow control permits scooping new records out of the
    /// rings: credit is off, or in-flight records are under budget. An
    /// empty window always passes — even a zero grant can only stop *new*
    /// traffic while something is in flight, never deadlock the sender
    /// (progress guarantee: at least one batch may always be outstanding).
    fn credit_open(&self) -> bool {
        match (self.credit, &self.window) {
            (Some(c), Some(w)) => w.depth() == 0 || w.unacked_records() < c,
            _ => true,
        }
    }

    /// Mirror the spendable balance into telemetry.
    fn update_credit_balance(&self) {
        let bal = match (self.credit, &self.window) {
            (Some(c), Some(w)) => c as i64 - w.unacked_records() as i64,
            _ => 0,
        };
        self.shared.credit_balance.store(bal, Ordering::Relaxed);
    }

    /// Replay every unacked batch from the window. Counts replays but not
    /// `records_sent`/`batches_sent` — those were counted on first send.
    fn replay_unacked(&mut self) -> Result<()> {
        let Some(w) = &self.window else {
            return Ok(());
        };
        let frames: Vec<Vec<u8>> = w
            .iter_unacked()
            .map(|(seq, records)| {
                Message::EventBatch {
                    node: self.node,
                    seq: Some(seq),
                    records: records.clone(),
                }
                .encode()
            })
            .collect();
        let replayed = frames.len() as u64;
        for frame in frames {
            self.conn.send(&frame)?;
        }
        self.shared
            .batches_retransmitted
            .fetch_add(replayed, Ordering::Relaxed);
        self.shared.window_depth.store(replayed, Ordering::Relaxed);
        Ok(())
    }

    /// Tear the EXS apart, keeping its retransmit window (and the
    /// sequence-number stream) so a supervisor can carry both into the
    /// next incarnation. `None` if the connection was negotiated to v1.
    ///
    /// A partial batch still sitting in the batcher would die with this
    /// incarnation; it is folded into the window (unsent) so the next
    /// incarnation's replay delivers it.
    pub fn into_window(mut self) -> Option<SendWindow> {
        if self.window.is_some() {
            if let Some((batch, _reason)) = self.batcher.flush() {
                self.stash_batch(batch);
            }
        }
        self.window
    }

    /// Retain a batch in the retransmit window without sending it (the
    /// connection is already gone); the next incarnation replays it.
    fn stash_batch(&mut self, records: Vec<EventRecord>) {
        if let Some(w) = &mut self.window {
            let (_seq, evicted) = w.push(records);
            if evicted.is_some() {
                self.shared.window_evicted.fetch_add(1, Ordering::Relaxed);
            }
            self.shared
                .window_depth
                .store(w.depth() as u64, Ordering::Relaxed);
        }
    }

    /// The node this EXS serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// This EXS's hybrid logical clock (stamps records when
    /// `cfg.stamp_hlc` is set; always safe to observe).
    pub fn hlc(&self) -> &Arc<Hlc> {
        &self.hlc
    }

    /// Advance and read the monotonic heartbeat-pacing clock: forward
    /// raw-clock progress accrues, backward jumps are dropped. Correct
    /// regardless of call frequency — a stale `pacing_raw_us` just means
    /// the next call accounts the whole span at once.
    fn pacing_now_us(&mut self) -> i64 {
        let raw = self.clock.raw_now().as_micros();
        let delta = raw.saturating_sub(self.pacing_raw_us);
        self.pacing_raw_us = raw;
        if delta > 0 {
            self.pacing_us = self.pacing_us.saturating_add(delta);
        }
        self.pacing_us
    }

    /// The corrected clock (shared view; records are stamped with raw time
    /// by sensors and shifted by this clock's correction on the way out).
    pub fn corrected_clock(&self) -> &Arc<CorrectedClock<Arc<dyn Clock>>> {
        &self.clock
    }

    /// Counters so far.
    pub fn stats(&self) -> ExsStats {
        self.shared.stats()
    }

    /// The shared telemetry backing (clone the `Arc` to observe this EXS
    /// from another thread, or call [`ExsTelemetry::bind`] on it).
    pub fn telemetry(&self) -> &Arc<ExsTelemetry> {
        &self.shared
    }

    /// Register this EXS's series with a telemetry registry.
    pub fn bind_telemetry(&self, registry: &Registry) {
        self.shared.bind(self.node, registry);
    }

    /// Run one iteration: drain, batch, ship, answer control traffic.
    pub fn step(&mut self) -> Result<ExsStep> {
        let work_start = Instant::now();
        self.shared.iterations.fetch_add(1, Ordering::Relaxed);

        // 0. Flow control: with the ISM's credit budget spent, leave new
        //    records parked in the rings (where overruns land on the
        //    rings' own drop accounting) instead of piling them into the
        //    batcher and window. Acks received below reopen the tap.
        let paused = !self.credit_open();
        if paused {
            self.shared.credit_deferrals.fetch_add(1, Ordering::Relaxed);
            // Only the stall's leading edge lands in the flight recorder;
            // the per-step counter tracks its duration.
            if !self.credit_stalled {
                self.credit_stalled = true;
                brisk_telemetry::flight_log!(
                    Warn,
                    "exs",
                    "credit_stall",
                    "node {} deferring ring scoop: credit budget {:?} spent",
                    self.node,
                    self.credit
                );
            }
        } else {
            self.credit_stalled = false;
        }

        // 1. Drain sensor rings and apply the correction value. The span
        //    is timed on the node's clock so it is meaningful (and
        //    deterministic) under simulation.
        let drain_hist = Arc::clone(&self.shared.drain_us);
        let drain_timer = StageTimer::start(&drain_hist, self.clock.now().as_micros());
        // The *effective* correction: while a slew is smearing a backward
        // adjustment, records get the partially applied value, matching
        // the clock the later trace stamps read.
        let correction = self.clock.effective_correction_us();
        self.drain_buf.clear();
        let drained = if paused {
            0
        } else {
            self.rings
                .drain_into(self.cfg.max_batch_records * 2, &mut self.drain_buf)?
        };
        self.shared
            .records_drained
            .fetch_add(drained as u64, Ordering::Relaxed);
        let now = self.clock.now();
        let mut pending = std::mem::take(&mut self.drain_buf);
        // A disconnect mid-scoop must not drop the records already pulled
        // out of the rings: once the send fails, keep pushing the rest of
        // the scoop through the batcher and stash every flushed batch in
        // the retransmit window (unsent), where the next incarnation's
        // replay picks it up. Without a window (v1 peer) the old
        // fail-fast loss semantics stand.
        let mut disconnect: Option<BriskError> = None;
        let mut fatal: Option<BriskError> = None;
        for mut rec in pending.drain(..) {
            rec.apply_correction(correction);
            // After the correction: scoop time and every later stamp are
            // on the synchronized clock, only the notice stamp was shifted.
            rec.stamp_trace(TraceStage::ExsScoop, now);
            if self.cfg.stamp_hlc {
                rec.set_hlc(self.hlc.tick(now));
            }
            if let Some((batch, reason)) = self.batcher.push(rec, now) {
                if disconnect.is_some() {
                    self.stash_batch(batch);
                } else if let Err(e) = self.send_batch(batch, reason) {
                    if e.is_disconnect() && self.window.is_some() {
                        disconnect = Some(e);
                    } else {
                        fatal = Some(e);
                        break;
                    }
                }
            }
        }
        self.drain_buf = pending; // keep the allocation (workhorse buffer)
        if let Some(e) = fatal.or(disconnect) {
            return Err(e);
        }

        // 2. Latency control: flush a stale partial batch. Deferred while
        //    credit is spent — the flush would put more records in flight.
        if !paused {
            if let Some((batch, reason)) = self.batcher.poll_timeout(self.clock.now()) {
                self.send_batch(batch, reason)?;
            }
        }
        // 2b. Liveness: on an idle v3 connection, send a heartbeat so the
        //     ISM can tell a quiet node from a silently dead one (TCP
        //     alone reports nothing for minutes).
        self.maybe_heartbeat()?;
        drain_timer.stop(self.clock.now().as_micros());

        // 3. Control traffic. When busy, poll without blocking; when idle,
        //    this wait is the EXS's sleep (bounded by the idle knob and by
        //    the batch deadline so a partial batch cannot oversleep).
        //    While credit-paused the deadline clamp is skipped — nothing
        //    may flush anyway, and the sleep is what lets acks arrive.
        let busy = drained > 0;
        let wait = if busy {
            Duration::ZERO
        } else if paused {
            self.cfg.idle_sleep
        } else {
            let mut w = self.cfg.idle_sleep;
            if let Some(dl) = self.batcher.time_to_deadline(self.clock.now()) {
                let dl = Duration::from_micros(dl.max(0) as u64);
                w = w.min(dl.max(Duration::from_micros(1)));
            }
            w
        };
        self.shared
            .busy_nanos
            .fetch_add(work_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let msg = match self.conn.recv(Some(wait)) {
            // An undecodable control frame (corrupted wire) is counted
            // and skipped rather than fatal — up to a budget, past which
            // the connection is declared broken so the supervisor can
            // rebuild it.
            Ok(Some(frame)) => match Message::decode(&frame) {
                Ok(msg) => Some(msg),
                Err(e) => {
                    self.control_errors += 1;
                    self.shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                    if self.control_errors > CONTROL_ERROR_BUDGET {
                        return Err(e.into());
                    }
                    None
                }
            },
            Ok(None) => None,
            Err(e) if e.is_disconnect() => return Ok(ExsStep::Disconnected),
            Err(e) => return Err(e),
        };
        if let Some(msg) = msg {
            let handle_start = Instant::now();
            let outcome = self.handle_control(msg)?;
            self.shared
                .busy_nanos
                .fetch_add(handle_start.elapsed().as_nanos() as u64, Ordering::Relaxed);
            if outcome == ExsStep::Shutdown {
                return Ok(ExsStep::Shutdown);
            }
            return Ok(ExsStep::Busy);
        }
        Ok(if busy { ExsStep::Busy } else { ExsStep::Idle })
    }

    /// Send a [`Message::Heartbeat`] when the connection has been
    /// send-idle for a full `heartbeat_interval`. Gated on a `HelloAck`
    /// that negotiated v3 (older peers cannot decode the tag) and on a
    /// non-zero interval (zero disables). Any frame sent resets the
    /// pacing, so heartbeats only ever ride an otherwise-quiet link.
    fn maybe_heartbeat(&mut self) -> Result<()> {
        if self.cfg.heartbeat_interval.is_zero() || self.negotiated.is_none_or(|v| v < 3) {
            return Ok(());
        }
        let now_us = self.pacing_now_us();
        let interval_us = self.cfg.heartbeat_interval.as_micros() as i64;
        if now_us.saturating_sub(self.last_send_us) >= interval_us {
            self.conn.send(&Message::Heartbeat.encode())?;
            self.last_send_us = now_us;
            self.shared.heartbeats_sent.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn handle_control(&mut self, msg: Message) -> Result<ExsStep> {
        match msg {
            Message::SyncPoll {
                round,
                sample,
                master_send,
            } => {
                // Reply with the *corrected* local time: slaves converge on
                // each other through their corrections.
                let reply = Message::SyncReply {
                    round,
                    sample,
                    master_send,
                    slave_time: self.clock.now(),
                };
                self.conn.send(&reply.encode())?;
                self.last_send_us = self.pacing_now_us();
                self.shared.sync_replies.fetch_add(1, Ordering::Relaxed);
                Ok(ExsStep::Busy)
            }
            Message::SyncAdjust { advance_us, .. } => {
                if self.cfg.sync_disabled {
                    // Chaos plane: the node deliberately refuses sync and
                    // lets its clock run wherever the fault takes it.
                    self.shared.sync_ignored.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.clock.adjust(advance_us);
                    self.shared.adjustments.fetch_add(1, Ordering::Relaxed);
                }
                Ok(ExsStep::Busy)
            }
            Message::HelloAck { version, credit } => {
                // The ISM told us which protocol version the connection
                // actually runs at. Anything below v2 means no acks will
                // ever come: drop the window and fall back to the old
                // fire-and-forget delivery.
                if version < 2 {
                    self.window = None;
                    self.shared.window_depth.store(0, Ordering::Relaxed);
                }
                // The HelloAck is authoritative for the connection's flow
                // control: `None` clears any budget carried over from a
                // previous incarnation.
                self.credit = credit;
                self.update_credit_balance();
                self.negotiated = Some(version);
                self.shared.hello_acks.fetch_add(1, Ordering::Relaxed);
                Ok(ExsStep::Busy)
            }
            Message::BatchAck { seq, credit } => {
                if let Some(w) = &mut self.window {
                    w.ack(seq);
                    let depth = w.depth() as u64;
                    self.shared.window_depth.store(depth, Ordering::Relaxed);
                    self.shared.ack_lag.record(depth);
                }
                // A grant piggybacked on the ack re-advertises the budget
                // absolutely; a plain (v2-style) ack leaves it untouched.
                if credit.is_some() {
                    self.credit = credit;
                }
                self.update_credit_balance();
                self.shared.acks_received.fetch_add(1, Ordering::Relaxed);
                Ok(ExsStep::Busy)
            }
            Message::Shutdown => Ok(ExsStep::Shutdown),
            other => Err(BriskError::Protocol(format!(
                "unexpected message at EXS: {other:?}"
            ))),
        }
    }

    fn send_batch(&mut self, mut records: Vec<EventRecord>, reason: FlushReason) -> Result<()> {
        let n = records.len() as u64;
        let send_ts = self.clock.now();
        for rec in records.iter_mut() {
            rec.stamp_trace(TraceStage::BatchSend, send_ts);
        }
        let seq = match &mut self.window {
            Some(w) => {
                let (seq, evicted) = w.push(records.clone());
                if evicted.is_some() {
                    self.shared.window_evicted.fetch_add(1, Ordering::Relaxed);
                }
                self.shared
                    .window_depth
                    .store(w.depth() as u64, Ordering::Relaxed);
                Some(seq)
            }
            None => None,
        };
        let msg = Message::EventBatch {
            node: self.node,
            seq,
            records,
        };
        self.conn.send(&msg.encode())?;
        self.last_send_us = self.pacing_now_us();
        self.update_credit_balance();
        self.shared.records_sent.fetch_add(n, Ordering::Relaxed);
        self.shared.batches_sent.fetch_add(1, Ordering::Relaxed);
        self.shared.batch_records.record(n);
        let reason_counter = match reason {
            FlushReason::Records => &self.shared.flush_records,
            FlushReason::Bytes => &self.shared.flush_bytes,
            FlushReason::Timeout => &self.shared.flush_timeout,
            FlushReason::Forced => &self.shared.flush_forced,
        };
        reason_counter.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Run until `stop` is raised or the ISM shuts us down. Flushes pending
    /// records and sends `Shutdown` on the way out. Returns final stats.
    pub fn run(mut self, stop: &AtomicBool) -> Result<ExsStats> {
        while !stop.load(Ordering::Relaxed) {
            match self.step()? {
                ExsStep::Shutdown | ExsStep::Disconnected => break,
                ExsStep::Busy | ExsStep::Idle => {}
            }
        }
        self.finish()
    }

    /// Orderly teardown: drain the rings, flush everything buffered and
    /// send `Shutdown`, so no accepted record is lost. Consumes the EXS
    /// and returns its final stats.
    pub fn finish(mut self) -> Result<ExsStats> {
        self.drain_buf.clear();
        let correction = self.clock.effective_correction_us();
        self.rings.drain_into(usize::MAX, &mut self.drain_buf)?;
        // The final drain counts too: without this, records that only
        // leave the rings during teardown would vanish from the drained
        // total while still showing up in records_sent.
        self.shared
            .records_drained
            .fetch_add(self.drain_buf.len() as u64, Ordering::Relaxed);
        let now = self.clock.now();
        let pending = std::mem::take(&mut self.drain_buf);
        for mut rec in pending {
            rec.apply_correction(correction);
            rec.stamp_trace(TraceStage::ExsScoop, now);
            if self.cfg.stamp_hlc {
                rec.set_hlc(self.hlc.tick(now));
            }
            if let Some((batch, reason)) = self.batcher.push(rec, now) {
                self.send_batch(batch, reason)?;
            }
        }
        if let Some((batch, reason)) = self.batcher.flush() {
            self.send_batch(batch, reason)?;
        }
        let _ = self.conn.send(&Message::Shutdown.encode());
        Ok(self.shared.stats())
    }
}

/// Handle to an EXS running on its own thread.
pub struct ExsHandle {
    stop: Arc<AtomicBool>,
    clock: Arc<CorrectedClock<Arc<dyn Clock>>>,
    node: NodeId,
    shared: Arc<ExsTelemetry>,
    join: std::thread::JoinHandle<Result<ExsStats>>,
}

impl ExsHandle {
    /// The EXS's corrected clock (e.g. to observe the correction value).
    pub fn corrected_clock(&self) -> &Arc<CorrectedClock<Arc<dyn Clock>>> {
        &self.clock
    }

    /// Live counters of the running EXS (no need to stop it).
    pub fn stats_now(&self) -> ExsStats {
        self.shared.stats()
    }

    /// The shared telemetry backing of the running EXS.
    pub fn telemetry(&self) -> &Arc<ExsTelemetry> {
        &self.shared
    }

    /// Register the running EXS's series with a telemetry registry.
    pub fn bind_telemetry(&self, registry: &Registry) {
        self.shared.bind(self.node, registry);
    }

    /// Signal the EXS to stop.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Signal and wait for the EXS; returns its final stats.
    pub fn stop(self) -> Result<ExsStats> {
        self.stop.store(true, Ordering::Relaxed);
        self.join
            .join()
            .map_err(|_| BriskError::Sync("EXS thread panicked".into()))?
    }
}

/// Spawn an EXS on a dedicated thread (the usual deployment: "runs as
/// another process on the same node", here a thread).
pub fn spawn_exs(
    node: NodeId,
    rings: Arc<RingSet>,
    raw_clock: Arc<dyn Clock>,
    conn: Box<dyn Connection>,
    cfg: ExsConfig,
) -> Result<ExsHandle> {
    let exs = ExternalSensor::new(node, rings, raw_clock, conn, cfg)?;
    let clock = Arc::clone(exs.corrected_clock());
    let shared = Arc::clone(exs.telemetry());
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name(format!("brisk-exs-{node}"))
        .spawn(move || exs.run(&stop2))
        .map_err(BriskError::Io)?;
    Ok(ExsHandle {
        stop,
        clock,
        node,
        shared,
        join,
    })
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // single-knob mutation is the point of these tests
mod tests {
    use super::*;
    use brisk_clock::{SimClock, SimTimeSource, SystemClock};
    use brisk_core::{EventTypeId, UtcMicros, Value};
    use brisk_net::{LinkModel, MemTransport, Transport};

    struct Rig {
        exs: ExternalSensor,
        ism_side: Box<dyn Connection>,
        src: SimTimeSource,
        rings: Arc<RingSet>,
    }

    fn rig(cfg: ExsConfig, clock_offset: i64) -> Rig {
        let t = MemTransport::with_model(LinkModel::ideal());
        let mut l = t.listen("ism").unwrap();
        let conn = t.connect("ism").unwrap();
        let ism_side = l.accept(Some(Duration::from_secs(1))).unwrap().unwrap();
        let src = SimTimeSource::new();
        let raw: Arc<dyn Clock> = Arc::new(SimClock::new(src.clone(), clock_offset, 0.0, 1));
        let rings = RingSet::new(NodeId(7), cfg.ring_capacity);
        let exs = ExternalSensor::new(NodeId(7), Arc::clone(&rings), raw, conn, cfg).unwrap();
        Rig {
            exs,
            ism_side,
            src,
            rings,
        }
    }

    fn recv_msg(conn: &mut Box<dyn Connection>) -> Message {
        let frame = conn.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        Message::decode(&frame).unwrap()
    }

    #[test]
    fn hello_is_sent_on_connect() {
        let mut r = rig(ExsConfig::default(), 0);
        assert_eq!(
            recv_msg(&mut r.ism_side),
            Message::Hello {
                node: NodeId(7),
                version: brisk_proto::VERSION
            }
        );
        let _ = &r.exs;
    }

    #[test]
    fn records_flow_and_get_corrected() {
        let mut cfg = ExsConfig::default();
        cfg.max_batch_records = 2;
        let mut r = rig(cfg, 0);
        recv_msg(&mut r.ism_side); // hello

        // Apply a known correction, then emit records with raw timestamps.
        r.exs.corrected_clock().adjust(1_000);
        let mut port = r.rings.register();
        r.src.advance_by(50);
        port.emit(
            EventTypeId(1),
            UtcMicros::from_micros(50),
            vec![Value::I32(1)],
        )
        .unwrap();
        port.emit(
            EventTypeId(1),
            UtcMicros::from_micros(51),
            vec![Value::I32(2)],
        )
        .unwrap();

        r.exs.step().unwrap();
        match recv_msg(&mut r.ism_side) {
            Message::EventBatch { node, seq, records } => {
                assert_eq!(node, NodeId(7));
                assert_eq!(seq, Some(1)); // v2 by default: first batch is seq 1
                assert_eq!(records.len(), 2);
                assert_eq!(records[0].ts, UtcMicros::from_micros(1_050));
                assert_eq!(records[1].ts, UtcMicros::from_micros(1_051));
            }
            other => panic!("expected batch, got {other:?}"),
        }
        assert_eq!(r.exs.stats().records_sent, 2);
        assert_eq!(r.exs.stats().flush_records, 1);
    }

    #[test]
    fn trace_stamps_accumulate_through_scoop_and_send() {
        use brisk_telemetry::TraceSampler;
        let mut cfg = ExsConfig::default();
        cfg.max_batch_records = 1;
        let mut r = rig(cfg, 0);
        recv_msg(&mut r.ism_side); // hello
        r.rings
            .set_trace_sampler(Arc::new(TraceSampler::with_seed(1, 9)));
        r.exs.corrected_clock().adjust(1_000);
        let mut port = r.rings.register();
        r.src.advance_by(50);
        port.emit(
            EventTypeId(1),
            UtcMicros::from_micros(50),
            vec![Value::I32(1)],
        )
        .unwrap();
        r.src.advance_by(25); // scoop happens later than the notice
        r.exs.step().unwrap();
        match recv_msg(&mut r.ism_side) {
            Message::EventBatch { records, .. } => {
                let ctx = records[0].trace().expect("sampled record carries X_TRACE");
                let stages: Vec<TraceStage> = ctx.stamps().iter().map(|(s, _)| *s).collect();
                assert_eq!(
                    stages,
                    vec![
                        TraceStage::Notice,
                        TraceStage::ExsScoop,
                        TraceStage::BatchSend
                    ]
                );
                // The notice stamp was shifted by the correction along with
                // the header ts; later stamps read the corrected clock.
                assert_eq!(ctx.stamps()[0].1, records[0].ts);
                assert_eq!(ctx.stamps()[0].1, UtcMicros::from_micros(1_050));
                assert_eq!(ctx.stamps()[1].1, UtcMicros::from_micros(1_075));
                let times: Vec<i64> = ctx.stamps().iter().map(|(_, t)| t.as_micros()).collect();
                assert!(times.windows(2).all(|w| w[0] <= w[1]), "monotonic stamps");
            }
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn partial_batch_flushes_on_timeout() {
        let mut cfg = ExsConfig::default();
        cfg.max_batch_records = 100;
        cfg.flush_timeout = Duration::from_millis(40);
        let mut r = rig(cfg, 0);
        recv_msg(&mut r.ism_side); // hello

        let mut port = r.rings.register();
        port.emit(EventTypeId(1), UtcMicros::ZERO, vec![]).unwrap();
        r.exs.step().unwrap(); // drains; batch stays partial
        assert_eq!(r.exs.stats().batches_sent, 0);

        r.src.advance_by(41_000); // 41 ms of sim time
        r.exs.step().unwrap();
        match recv_msg(&mut r.ism_side) {
            Message::EventBatch { records, .. } => assert_eq!(records.len(), 1),
            other => panic!("expected batch, got {other:?}"),
        }
        assert_eq!(r.exs.stats().flush_timeout, 1);
    }

    #[test]
    fn sync_poll_answered_with_corrected_time() {
        let mut r = rig(ExsConfig::default(), 500);
        recv_msg(&mut r.ism_side); // hello
        r.exs.corrected_clock().adjust(-200);
        r.src.advance_by(1_000);
        r.ism_side
            .send(
                &Message::SyncPoll {
                    round: 3,
                    sample: 1,
                    master_send: UtcMicros::from_micros(42),
                }
                .encode(),
            )
            .unwrap();
        r.exs.step().unwrap();
        match recv_msg(&mut r.ism_side) {
            Message::SyncReply {
                round,
                sample,
                master_send,
                slave_time,
            } => {
                assert_eq!(round, 3);
                assert_eq!(sample, 1);
                assert_eq!(master_send, UtcMicros::from_micros(42));
                // raw = 1000 + 500 offset, correction −200 → 1300.
                assert_eq!(slave_time, UtcMicros::from_micros(1_300));
            }
            other => panic!("expected reply, got {other:?}"),
        }
        assert_eq!(r.exs.stats().sync_replies, 1);
    }

    #[test]
    fn sync_adjust_moves_correction() {
        let mut r = rig(ExsConfig::default(), 0);
        recv_msg(&mut r.ism_side);
        r.ism_side
            .send(
                &Message::SyncAdjust {
                    round: 1,
                    advance_us: 777,
                }
                .encode(),
            )
            .unwrap();
        r.exs.step().unwrap();
        assert_eq!(r.exs.corrected_clock().correction_us(), 777);
        assert_eq!(r.exs.stats().adjustments, 1);
    }

    #[test]
    fn shutdown_message_stops_step() {
        let mut r = rig(ExsConfig::default(), 0);
        recv_msg(&mut r.ism_side);
        r.ism_side.send(&Message::Shutdown.encode()).unwrap();
        assert_eq!(r.exs.step().unwrap(), ExsStep::Shutdown);
    }

    #[test]
    fn unexpected_message_is_protocol_error() {
        let mut r = rig(ExsConfig::default(), 0);
        recv_msg(&mut r.ism_side);
        r.ism_side
            .send(
                &Message::Hello {
                    node: NodeId(1),
                    version: brisk_proto::VERSION,
                }
                .encode(),
            )
            .unwrap();
        assert!(r.exs.step().is_err());
    }

    #[test]
    fn run_flushes_pending_records_on_stop() {
        let t = MemTransport::new();
        let mut l = t.listen("ism").unwrap();
        let conn = t.connect("ism").unwrap();
        let mut ism_side = l.accept(Some(Duration::from_secs(1))).unwrap().unwrap();
        let rings = RingSet::new(NodeId(1), 1 << 20);
        let mut port = rings.register();
        for i in 0..5 {
            port.emit(EventTypeId(1), UtcMicros::from_micros(i), vec![])
                .unwrap();
        }
        let handle = spawn_exs(
            NodeId(1),
            rings,
            Arc::new(SystemClock),
            conn,
            ExsConfig::default(),
        )
        .unwrap();
        // Give the EXS a moment to drain, then stop it.
        std::thread::sleep(Duration::from_millis(20));
        let stats = handle.stop().unwrap();
        assert_eq!(stats.records_drained, 5);
        assert_eq!(stats.records_sent, 5);

        // ISM side sees hello, one batch (possibly several), then Shutdown.
        let mut seen_records = 0;
        loop {
            match recv_msg(&mut ism_side) {
                Message::Hello { .. } => {}
                Message::EventBatch { records, .. } => seen_records += records.len(),
                Message::Shutdown => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seen_records, 5);
    }

    #[test]
    fn finish_accounts_records_drained_during_teardown() {
        // Records that only leave the rings in finish()'s force-flush
        // must land in records_drained (and the forced-flush counter).
        let mut cfg = ExsConfig::default();
        cfg.max_batch_records = 100; // nothing flushes by size
        let r = rig(cfg, 0);
        let mut ism_side = r.ism_side;
        recv_msg(&mut ism_side); // hello
        let mut port = r.rings.register();
        for i in 0..7 {
            port.emit(EventTypeId(1), UtcMicros::from_micros(i), vec![])
                .unwrap();
        }
        // No step() at all: everything drains inside finish().
        let stats = r.exs.finish().unwrap();
        assert_eq!(stats.records_drained, 7);
        assert_eq!(stats.records_sent, 7);
        assert_eq!(stats.flush_forced, 1);
        match recv_msg(&mut ism_side) {
            Message::EventBatch { records, .. } => assert_eq!(records.len(), 7),
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn telemetry_bind_exports_exs_series() {
        use brisk_telemetry::Registry;
        let mut cfg = ExsConfig::default();
        cfg.max_batch_records = 2;
        let mut r = rig(cfg, 0);
        recv_msg(&mut r.ism_side); // hello
        let registry = Registry::new();
        r.exs.bind_telemetry(&registry);

        let mut port = r.rings.register();
        r.src.advance_by(10);
        for i in 0..4 {
            port.emit(EventTypeId(1), UtcMicros::from_micros(i), vec![])
                .unwrap();
        }
        r.exs.step().unwrap();

        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_labeled("brisk_exs_records_drained_total", &[("node", "7")]),
            Some(4)
        );
        assert_eq!(snap.counter_total("brisk_exs_records_sent_total"), 4);
        assert_eq!(
            snap.counter_labeled(
                "brisk_exs_flush_total",
                &[("node", "7"), ("reason", "records")]
            ),
            Some(2)
        );
        let batch_hist = snap.histogram("brisk_exs_batch_records").unwrap();
        assert_eq!(batch_hist.count(), 2);
        assert_eq!(batch_hist.max, 2);
        // Drain latency recorded once per step (0 µs under a frozen SimClock).
        assert_eq!(snap.histogram("brisk_exs_drain_us").unwrap().count(), 1);
    }

    fn emit_n(rings: &Arc<RingSet>, n: u64) {
        let mut port = rings.register();
        for i in 0..n {
            port.emit(EventTypeId(1), UtcMicros::from_micros(i as i64), vec![])
                .unwrap();
        }
    }

    #[test]
    fn batch_ack_releases_window() {
        let mut cfg = ExsConfig::default();
        cfg.max_batch_records = 1;
        let mut r = rig(cfg, 0);
        recv_msg(&mut r.ism_side); // hello
        emit_n(&r.rings, 3);
        r.src.advance_by(10);
        r.exs.step().unwrap(); // drain cap is 2·max_batch_records per step
        r.exs.step().unwrap();
        assert_eq!(r.exs.stats().batches_sent, 3);
        // All three batches are unacked and windowed.
        let w = r.exs.window.as_ref().unwrap();
        assert_eq!(w.depth(), 3);

        // Cumulative ack for seq 2 releases the first two.
        r.ism_side
            .send(
                &Message::BatchAck {
                    seq: 2,
                    credit: None,
                }
                .encode(),
            )
            .unwrap();
        r.exs.step().unwrap();
        assert_eq!(r.exs.window.as_ref().unwrap().depth(), 1);
        assert_eq!(r.exs.stats().acks_received, 1);
    }

    #[test]
    fn hello_ack_v1_downgrades_to_unsequenced() {
        let mut cfg = ExsConfig::default();
        cfg.max_batch_records = 1;
        let mut r = rig(cfg, 0);
        recv_msg(&mut r.ism_side); // hello
        r.ism_side
            .send(
                &Message::HelloAck {
                    version: 1,
                    credit: None,
                }
                .encode(),
            )
            .unwrap();
        r.exs.step().unwrap();
        assert!(r.exs.window.is_none());

        emit_n(&r.rings, 1);
        r.src.advance_by(10);
        r.exs.step().unwrap();
        match recv_msg(&mut r.ism_side) {
            Message::EventBatch { seq, .. } => assert_eq!(seq, None),
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn carried_window_replays_unacked_batches() {
        let mut cfg = ExsConfig::default();
        cfg.max_batch_records = 1;
        let mut r = rig(cfg.clone(), 0);
        let shared = Arc::clone(r.exs.telemetry());
        recv_msg(&mut r.ism_side); // hello
        emit_n(&r.rings, 2);
        r.src.advance_by(10);
        r.exs.step().unwrap();
        recv_msg(&mut r.ism_side); // batch 1
        recv_msg(&mut r.ism_side); // batch 2
                                   // Ack only the first; the second stays unacked.
        r.ism_side
            .send(
                &Message::BatchAck {
                    seq: 1,
                    credit: None,
                }
                .encode(),
            )
            .unwrap();
        r.exs.step().unwrap();
        let window = r.exs.into_window().unwrap();
        assert_eq!(window.depth(), 1);
        assert_eq!(window.next_seq(), 3);

        // New incarnation over a fresh connection, carrying the window.
        let t = MemTransport::new();
        let mut l = t.listen("ism2").unwrap();
        let conn = t.connect("ism2").unwrap();
        let mut ism2 = l.accept(Some(Duration::from_secs(1))).unwrap().unwrap();
        let raw: Arc<dyn Clock> = Arc::new(SystemClock);
        let exs2 = ExternalSensor::with_window(
            NodeId(7),
            RingSet::new(NodeId(7), cfg.ring_capacity),
            raw,
            conn,
            cfg,
            shared,
            window,
        )
        .unwrap();
        match recv_msg(&mut ism2) {
            Message::Hello { node, version } => {
                assert_eq!(node, NodeId(7));
                assert_eq!(version, brisk_proto::VERSION);
            }
            other => panic!("expected hello, got {other:?}"),
        }
        // The unacked batch (seq 2) is replayed right after Hello.
        match recv_msg(&mut ism2) {
            Message::EventBatch { seq, records, .. } => {
                assert_eq!(seq, Some(2));
                assert_eq!(records.len(), 1);
            }
            other => panic!("expected replayed batch, got {other:?}"),
        }
        let stats = exs2.stats();
        assert_eq!(stats.batches_retransmitted, 1);
        // Replays are not re-counted as fresh sends.
        assert_eq!(stats.batches_sent, 2);
    }

    #[test]
    fn credit_exhaustion_defers_scooping_until_replenished() {
        let mut cfg = ExsConfig::default();
        cfg.max_batch_records = 1;
        cfg.idle_sleep = Duration::from_millis(1);
        let mut r = rig(cfg, 0);
        recv_msg(&mut r.ism_side); // hello
                                   // The ISM grants a budget of 2 in-flight records.
        r.ism_side
            .send(
                &Message::HelloAck {
                    version: 3,
                    credit: Some(2),
                }
                .encode(),
            )
            .unwrap();
        r.exs.step().unwrap();
        assert_eq!(r.exs.credit(), Some(2));

        emit_n(&r.rings, 3);
        r.src.advance_by(10);
        r.exs.step().unwrap(); // scoops 2 (the per-step drain cap), sends 2
        assert_eq!(r.exs.stats().batches_sent, 2);
        let drained_before = r.exs.stats().records_drained;
        // Budget spent (2 unacked records): the third record must stay in
        // the ring, counted as a deferral.
        r.exs.step().unwrap();
        assert_eq!(r.exs.stats().records_drained, drained_before);
        assert!(r.exs.stats().credit_deferrals >= 1);
        assert_eq!(r.exs.stats().batches_sent, 2);

        // An ack replenishes the budget and reopens the tap.
        r.ism_side
            .send(
                &Message::BatchAck {
                    seq: 2,
                    credit: Some(2),
                }
                .encode(),
            )
            .unwrap();
        r.exs.step().unwrap(); // consumes the ack
        r.exs.step().unwrap(); // scoops the parked record
        assert_eq!(r.exs.stats().batches_sent, 3);
        assert_eq!(r.exs.stats().records_drained, drained_before + 1);
    }

    #[test]
    fn hello_ack_overwrites_carried_credit() {
        let mut r = rig(ExsConfig::default(), 0);
        recv_msg(&mut r.ism_side); // hello
        r.exs.set_credit(Some(99)); // as the supervisor would after reconnect
        assert_eq!(r.exs.credit(), Some(99));
        // The connection's real HelloAck carries no grant: credit is off.
        r.ism_side
            .send(
                &Message::HelloAck {
                    version: 2,
                    credit: None,
                }
                .encode(),
            )
            .unwrap();
        r.exs.step().unwrap();
        assert_eq!(r.exs.credit(), None);
    }

    #[test]
    fn credit_telemetry_exports_balance_and_deferrals() {
        use brisk_telemetry::Registry;
        let mut cfg = ExsConfig::default();
        cfg.max_batch_records = 1;
        cfg.idle_sleep = Duration::from_millis(1);
        let mut r = rig(cfg, 0);
        recv_msg(&mut r.ism_side); // hello
        let registry = Registry::new();
        r.exs.bind_telemetry(&registry);
        r.ism_side
            .send(
                &Message::HelloAck {
                    version: 3,
                    credit: Some(2),
                }
                .encode(),
            )
            .unwrap();
        r.exs.step().unwrap();
        emit_n(&r.rings, 3);
        r.src.advance_by(10);
        r.exs.step().unwrap(); // spends the whole budget
        r.exs.step().unwrap(); // defers
        let snap = registry.snapshot();
        assert_eq!(snap.gauge("brisk_exs_credit_balance"), Some(0));
        assert!(snap.counter_total("brisk_exs_credit_deferred_total") >= 1);
    }

    #[test]
    fn full_window_evicts_oldest_and_counts_it() {
        let mut cfg = ExsConfig::default();
        cfg.max_batch_records = 1;
        cfg.retransmit_window_batches = 2;
        let mut r = rig(cfg, 0);
        recv_msg(&mut r.ism_side); // hello
        emit_n(&r.rings, 3); // three unacked batches into a window of two
        r.src.advance_by(10);
        r.exs.step().unwrap(); // drain cap is 2·max_batch_records per step
        r.exs.step().unwrap();
        let stats = r.exs.stats();
        assert_eq!(stats.batches_sent, 3);
        assert_eq!(stats.window_evicted, 1);
        assert_eq!(r.exs.window.as_ref().unwrap().depth(), 2);
    }

    #[test]
    fn heartbeat_sent_on_idle_v3_link() {
        let mut cfg = ExsConfig::default();
        cfg.heartbeat_interval = Duration::from_millis(100);
        let mut r = rig(cfg, 0);
        recv_msg(&mut r.ism_side); // hello
                                   // No HelloAck yet: idle time passes, no heartbeat (the peer may
                                   // be v1 and unable to decode the tag).
        r.src.advance_by(150_000);
        r.exs.step().unwrap();
        assert!(r
            .ism_side
            .recv(Some(Duration::from_millis(20)))
            .unwrap()
            .is_none());
        // v3 negotiated: the next idle interval produces a heartbeat.
        r.ism_side
            .send(
                &Message::HelloAck {
                    version: 3,
                    credit: None,
                }
                .encode(),
            )
            .unwrap();
        r.exs.step().unwrap();
        r.src.advance_by(150_000);
        r.exs.step().unwrap();
        assert_eq!(recv_msg(&mut r.ism_side), Message::Heartbeat);
        assert_eq!(r.exs.stats().heartbeats_sent, 1);
        assert_eq!(r.exs.stats().hello_acks, 1);
        // Without further idle time no extra heartbeat is sent.
        r.exs.step().unwrap();
        assert!(r
            .ism_side
            .recv(Some(Duration::from_millis(20)))
            .unwrap()
            .is_none());
    }

    #[test]
    fn v2_connection_never_heartbeats() {
        let mut cfg = ExsConfig::default();
        cfg.heartbeat_interval = Duration::from_millis(50);
        let mut r = rig(cfg, 0);
        recv_msg(&mut r.ism_side); // hello
        r.ism_side
            .send(
                &Message::HelloAck {
                    version: 2,
                    credit: None,
                }
                .encode(),
            )
            .unwrap();
        r.exs.step().unwrap();
        r.src.advance_by(500_000);
        r.exs.step().unwrap();
        assert!(
            r.ism_side
                .recv(Some(Duration::from_millis(20)))
                .unwrap()
                .is_none(),
            "a v2 peer cannot decode the Heartbeat tag"
        );
        assert_eq!(r.exs.stats().heartbeats_sent, 0);
    }

    #[test]
    fn heartbeat_pacing_survives_backward_clock_step() {
        use brisk_clock::FaultClock;
        // A node whose raw clock steps backward by 10 s must not stall
        // heartbeats for those 10 s (corrected-clock pacing would: the
        // elapsed-since-last-send computation goes negative until the
        // clock climbs back past its old reading).
        let t = MemTransport::with_model(LinkModel::ideal());
        let mut l = t.listen("ism").unwrap();
        let conn = t.connect("ism").unwrap();
        let mut ism_side = l.accept(Some(Duration::from_secs(1))).unwrap().unwrap();
        let src = SimTimeSource::new();
        let sim: Arc<dyn Clock> = Arc::new(SimClock::new(src.clone(), 0, 0.0, 1));
        let fault = FaultClock::new(sim, 0, 0.0);
        let raw: Arc<dyn Clock> = Arc::clone(&fault) as Arc<dyn Clock>;
        let mut cfg = ExsConfig::default();
        cfg.heartbeat_interval = Duration::from_millis(100);
        let rings = RingSet::new(NodeId(7), cfg.ring_capacity);
        let mut exs = ExternalSensor::new(NodeId(7), rings, raw, conn, cfg).unwrap();
        recv_msg(&mut ism_side); // hello
        ism_side
            .send(
                &Message::HelloAck {
                    version: 3,
                    credit: None,
                }
                .encode(),
            )
            .unwrap();
        exs.step().unwrap();
        src.advance_by(150_000);
        exs.step().unwrap();
        assert_eq!(recv_msg(&mut ism_side), Message::Heartbeat);
        assert_eq!(exs.stats().heartbeats_sent, 1);

        // The clock steps back 10 s. The next step rebases the pacing
        // clock without sending a spurious heartbeat...
        fault.step_by(-10_000_000);
        exs.step().unwrap();
        assert_eq!(exs.stats().heartbeats_sent, 1);
        // ...and one more idle interval of *forward* progress produces
        // the next heartbeat on schedule, stall-free.
        src.advance_by(150_000);
        exs.step().unwrap();
        assert_eq!(recv_msg(&mut ism_side), Message::Heartbeat);
        assert_eq!(exs.stats().heartbeats_sent, 2);
    }

    #[test]
    fn stamp_hlc_attaches_monotone_stamps_at_scoop() {
        let mut cfg = ExsConfig::default();
        cfg.max_batch_records = 2;
        cfg.stamp_hlc = true;
        let mut r = rig(cfg, 0);
        recv_msg(&mut r.ism_side); // hello
        let mut port = r.rings.register();
        r.src.advance_by(50);
        port.emit(
            EventTypeId(1),
            UtcMicros::from_micros(50),
            vec![Value::I32(1)],
        )
        .unwrap();
        port.emit(
            EventTypeId(1),
            UtcMicros::from_micros(50),
            vec![Value::I32(2)],
        )
        .unwrap();
        r.exs.step().unwrap();
        match recv_msg(&mut r.ism_side) {
            Message::EventBatch { records, .. } => {
                let a = records[0].hlc().expect("first record carries X_HLC");
                let b = records[1].hlc().expect("second record carries X_HLC");
                // Both scooped at the same corrected instant: the physical
                // component ties and the logical counter breaks it.
                assert_eq!(a.physical, UtcMicros::from_micros(50));
                assert_eq!(b.physical, UtcMicros::from_micros(50));
                assert!(a < b, "scoop order is preserved in the stamps");
                assert_eq!(b.logical, a.logical + 1);
            }
            other => panic!("expected batch, got {other:?}"),
        }
    }

    #[test]
    fn sync_disabled_ignores_sync_adjust() {
        let mut cfg = ExsConfig::default();
        cfg.sync_disabled = true;
        let mut r = rig(cfg, 0);
        recv_msg(&mut r.ism_side); // hello
        r.ism_side
            .send(
                &Message::SyncAdjust {
                    round: 1,
                    advance_us: 777,
                }
                .encode(),
            )
            .unwrap();
        r.exs.step().unwrap();
        assert_eq!(r.exs.corrected_clock().correction_us(), 0);
        assert_eq!(r.exs.stats().adjustments, 0);
        assert_eq!(r.exs.stats().sync_ignored, 1);
    }

    #[test]
    fn zero_interval_disables_heartbeats() {
        let mut cfg = ExsConfig::default();
        cfg.heartbeat_interval = Duration::ZERO;
        let mut r = rig(cfg, 0);
        recv_msg(&mut r.ism_side); // hello
        r.ism_side
            .send(
                &Message::HelloAck {
                    version: 3,
                    credit: None,
                }
                .encode(),
            )
            .unwrap();
        r.exs.step().unwrap();
        r.src.advance_by(10_000_000);
        r.exs.step().unwrap();
        assert_eq!(r.exs.stats().heartbeats_sent, 0);
    }

    #[test]
    fn garbage_control_frames_are_skipped_within_budget() {
        let mut r = rig(ExsConfig::default(), 0);
        recv_msg(&mut r.ism_side); // hello
                                   // Up to the budget, undecodable frames are counted and skipped.
        for _ in 0..CONTROL_ERROR_BUDGET {
            r.ism_side.send(&[0xba, 0xad]).unwrap();
            r.exs.step().unwrap();
        }
        assert_eq!(r.exs.stats().decode_errors, CONTROL_ERROR_BUDGET as u64);
        // The EXS is still fully functional: a sync poll gets answered.
        r.ism_side
            .send(
                &Message::SyncPoll {
                    round: 1,
                    sample: 0,
                    master_send: UtcMicros::from_micros(1),
                }
                .encode(),
            )
            .unwrap();
        r.exs.step().unwrap();
        assert!(matches!(
            recv_msg(&mut r.ism_side),
            Message::SyncReply { .. }
        ));
        // One past the budget: the connection is declared broken.
        r.ism_side.send(&[0xff]).unwrap();
        assert!(r.exs.step().is_err());
    }

    #[test]
    fn idle_steps_report_idle() {
        let mut r = rig(ExsConfig::default(), 0);
        recv_msg(&mut r.ism_side);
        assert_eq!(r.exs.step().unwrap(), ExsStep::Idle);
        assert!(r.exs.stats().iterations >= 1);
    }
}
