//! Supervised external sensor: automatic reconnection.
//!
//! "An off-the-shelf distributed IS that is robust, portable and flexible
//! would benefit both designers and users" (§1). The plain
//! [`crate::spawn_exs`] terminates when its ISM connection dies; the
//! supervisor keeps the node's instrumentation alive across manager
//! restarts and network blips: it reconnects with exponential backoff,
//! re-sends the `Hello` preamble, and **carries the clock-sync correction
//! value over** to the new incarnation so the node does not fall back to
//! raw, unsynchronized time while the master re-converges.
//!
//! Delivery semantics across an abrupt disconnect (protocol v2): the EXS
//! keeps every sent-but-unacked batch in a bounded retransmit window, the
//! supervisor carries that window into the new incarnation (alongside the
//! clock correction), and the unacked batches are **replayed** right after
//! the re-`Hello` — so nothing handed to the dead connection is lost. The
//! ISM deduplicates replays by `(node, seq)`, making delivery to the sinks
//! exactly-once. Two degraded edges remain: a peer that negotiates the
//! connection down to v1 gets the old fire-and-forget semantics (no acks,
//! no replay), and a retransmit window that overflows (`ExsConfig::
//! retransmit_window_batches` unacked batches outstanding) evicts its
//! oldest batch, which is then beyond replay — both are surfaced through
//! telemetry rather than hidden.

use crate::batch::SendWindow;
use crate::exs::{ExsStats, ExsStep, ExsTelemetry, ExternalSensor};
use brisk_clock::Clock;
use brisk_core::{BriskError, ExsConfig, NodeId, Result};
use brisk_net::Connection;
use brisk_ringbuf::RingSet;
use brisk_telemetry::Registry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Reconnection policy.
///
/// Backoff uses *decorrelated jitter*: each failed attempt sleeps a
/// uniformly random duration in `[initial_backoff, 3 × previous]`, capped
/// at `max_backoff`. Pure doubling would synchronize the whole fleet —
/// after an ISM restart every node's EXS observes the disconnect in the
/// same instant and would retry on the same deterministic schedule,
/// hammering the recovering manager in lockstep. The jitter spreads
/// those retries; the per-node RNG seed keeps any one node's schedule
/// reproducible.
///
/// The backoff resets to `initial_backoff` only once the ISM answers a
/// `Hello` with a `HelloAck` — a bare TCP connect proves only that
/// something is listening, not that the manager is actually serving
/// (e.g. an accept loop whose manager thread is wedged).
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// First reconnect delay; grows with decorrelated jitter per
    /// consecutive failure.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Give up after this many consecutive failed connection attempts
    /// (`None` = retry forever).
    pub max_consecutive_failures: Option<u32>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(5),
            max_consecutive_failures: None,
        }
    }
}

/// Aggregate statistics across all incarnations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisedStats {
    /// Combined EXS counters.
    pub exs: ExsStats,
    /// How many times a connection was (re-)established.
    pub connects: u64,
    /// How many abrupt disconnects were survived.
    pub reconnects: u64,
}

/// Factory producing a fresh connection to the ISM.
pub type ConnectFn = Box<dyn Fn() -> Result<Box<dyn Connection>> + Send>;

/// Next reconnect delay under decorrelated jitter:
/// `min(max, U(initial, 3 × prev))`. Monotone doubling synchronizes
/// reconnect storms across a fleet that lost its ISM at the same
/// instant; the random draw decorrelates them while keeping the same
/// expected growth rate.
fn next_backoff(rng: &mut StdRng, prev: Duration, sup: &SupervisorConfig) -> Duration {
    let lo = sup.initial_backoff.as_micros() as u64;
    let cap = (sup.max_backoff.as_micros() as u64).max(lo);
    let hi = (prev.as_micros() as u64).saturating_mul(3).clamp(lo, cap);
    Duration::from_micros(rng.gen_range(lo..=hi))
}

/// Handle to a supervised EXS.
pub struct SupervisedExsHandle {
    stop: Arc<AtomicBool>,
    connects: Arc<AtomicU64>,
    node: NodeId,
    shared: Arc<ExsTelemetry>,
    join: std::thread::JoinHandle<Result<SupervisedStats>>,
}

impl SupervisedExsHandle {
    /// Connections established so far (1 = never reconnected).
    pub fn connects(&self) -> u64 {
        self.connects.load(Ordering::Relaxed)
    }

    /// Live aggregate counters across all incarnations so far.
    pub fn stats_now(&self) -> SupervisedStats {
        let connects = self.connects.load(Ordering::Relaxed);
        SupervisedStats {
            exs: self.shared.stats(),
            connects,
            reconnects: connects.saturating_sub(1),
        }
    }

    /// Register this supervised EXS with a telemetry registry: all the
    /// per-incarnation EXS series (shared across restarts) plus
    /// `brisk_exs_connects_total` and `brisk_exs_reconnects_total`.
    pub fn bind_telemetry(&self, registry: &Registry) {
        self.shared.bind(self.node, registry);
        let n = self.node.0.to_string();
        let c = Arc::clone(&self.connects);
        registry.counter_fn(
            "brisk_exs_connects_total",
            "ISM connections established by the supervised EXS",
            &[("node", &n)],
            move || c.load(Ordering::Relaxed),
        );
        let c = Arc::clone(&self.connects);
        registry.counter_fn(
            "brisk_exs_reconnects_total",
            "Supervisor restarts after an abrupt disconnect",
            &[("node", &n)],
            move || c.load(Ordering::Relaxed).saturating_sub(1),
        );
    }

    /// Signal and wait; returns aggregate stats.
    pub fn stop(self) -> Result<SupervisedStats> {
        self.stop.store(true, Ordering::Relaxed);
        self.join
            .join()
            .map_err(|_| BriskError::Sync("supervised EXS thread panicked".into()))?
    }
}

/// Spawn a supervised EXS. `connect` is invoked for the initial connection
/// and after every disconnect.
pub fn spawn_exs_supervised(
    node: NodeId,
    rings: Arc<RingSet>,
    raw_clock: Arc<dyn Clock>,
    connect: ConnectFn,
    cfg: ExsConfig,
    sup: SupervisorConfig,
) -> Result<SupervisedExsHandle> {
    cfg.validate()?;
    let stop = Arc::new(AtomicBool::new(false));
    let connects = Arc::new(AtomicU64::new(0));
    let shared = Arc::new(ExsTelemetry::default());
    let stop2 = Arc::clone(&stop);
    let connects2 = Arc::clone(&connects);
    let shared2 = Arc::clone(&shared);
    let join = std::thread::Builder::new()
        .name(format!("brisk-exs-sup-{node}"))
        .spawn(move || {
            supervise(
                node, rings, raw_clock, connect, cfg, sup, stop2, connects2, shared2,
            )
        })
        .map_err(BriskError::Io)?;
    Ok(SupervisedExsHandle {
        stop,
        connects,
        node,
        shared,
        join,
    })
}

#[allow(clippy::too_many_arguments)]
fn supervise(
    node: NodeId,
    rings: Arc<RingSet>,
    raw_clock: Arc<dyn Clock>,
    connect: ConnectFn,
    cfg: ExsConfig,
    sup: SupervisorConfig,
    stop: Arc<AtomicBool>,
    connects: Arc<AtomicU64>,
    shared: Arc<ExsTelemetry>,
) -> Result<SupervisedStats> {
    // Every incarnation accumulates into the one shared telemetry
    // backing, so EXS counters are totals across restarts and a bound
    // registry keeps observing the live EXS through reconnects.
    let mut stats = SupervisedStats::default();
    // Correction value survives reconnects.
    let carried_correction = AtomicI64::new(0);
    // Retransmit window survives reconnects too: unacked batches in here
    // are replayed on the next connection. `None` once the peer negotiates
    // down to v1 (or before the first connection).
    let mut carried_window: Option<SendWindow> = None;
    // The last credit grant also carries over, so the gap between the
    // reconnect's Hello and the new HelloAck stays paced by the old
    // budget instead of allowing an unbounded burst. The new HelloAck
    // overwrites it authoritatively.
    let mut carried_credit: Option<u64> = None;
    let mut backoff = sup.initial_backoff;
    let mut consecutive_failures = 0u32;
    // Per-node jitter stream: nodes decorrelate from each other while one
    // node's retry schedule stays reproducible.
    let mut rng = StdRng::seed_from_u64(0x9e37_79b9_7f4a_7c15 ^ u64::from(node.0));

    /// How one incarnation ended.
    enum IncarnationEnd {
        /// Orderly stop (local stop flag or ISM `Shutdown`): exit for good.
        Stop,
        /// Abrupt disconnect: reconnect, replaying the carried window.
        Reconnect(Option<SendWindow>),
        /// Unrecoverable error.
        Fatal(BriskError),
    }

    /// Sleep `d` in small slices, bailing early when `stop` is raised;
    /// returns `true` if the stop flag cut the sleep short.
    fn sleep_interruptible(stop: &AtomicBool, d: Duration) -> bool {
        let deadline = std::time::Instant::now() + d;
        while std::time::Instant::now() < deadline {
            if stop.load(Ordering::Relaxed) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        false
    }

    'lifetime: while !stop.load(Ordering::Relaxed) {
        // Snapshot before the attempt: only a *grown* count after the
        // incarnation proves the ISM answered this connection's Hello.
        let acks_before = shared.hello_acks();
        // Establish (or re-establish) the connection.
        let attempt = connect().and_then(|conn| {
            match carried_window.take() {
                // Carry the retransmit window over; `with_window` replays the
                // unacked batches right after the Hello preamble.
                Some(w) => ExternalSensor::with_window(
                    node,
                    Arc::clone(&rings),
                    Arc::clone(&raw_clock),
                    conn,
                    cfg.clone(),
                    Arc::clone(&shared),
                    w.clone(),
                )
                .map_err(|e| (e, Some(w))),
                None => ExternalSensor::with_telemetry(
                    node,
                    Arc::clone(&rings),
                    Arc::clone(&raw_clock),
                    conn,
                    cfg.clone(),
                    Arc::clone(&shared),
                )
                .map_err(|e| (e, None)),
            } // a failed handshake/replay must not lose the window
            .map_err(|(e, w)| {
                carried_window = w;
                e
            })
        });
        let mut exs = match attempt {
            Ok(exs) => exs,
            Err(e) if e.is_disconnect() || matches!(e, BriskError::Io(_)) => {
                consecutive_failures += 1;
                if let Some(max) = sup.max_consecutive_failures {
                    if consecutive_failures >= max {
                        return Err(BriskError::Io(std::io::Error::new(
                            std::io::ErrorKind::ConnectionRefused,
                            format!("gave up after {consecutive_failures} attempts"),
                        )));
                    }
                }
                // Interruptible backoff.
                if sleep_interruptible(&stop, backoff) {
                    break 'lifetime;
                }
                backoff = next_backoff(&mut rng, backoff, &sup);
                continue;
            }
            Err(e) => return Err(e),
        };
        // A successful TCP connect proves only that *something* is listening
        // on the port; the backoff resets further down, once the incarnation
        // shows a HelloAck arrived.
        consecutive_failures = 0;
        exs.set_credit(carried_credit);
        exs.corrected_clock()
            .set_correction(carried_correction.load(Ordering::Relaxed));
        connects.fetch_add(1, Ordering::Relaxed);
        stats.connects += 1;
        if stats.connects > 1 {
            stats.reconnects += 1;
            brisk_telemetry::flight_log!(
                Warn,
                "exs.supervisor",
                "reconnect",
                "node {node} reconnected to ISM (incarnation {}, replaying window)",
                stats.connects
            );
        }

        // Drive the incarnation.
        let end = loop {
            if stop.load(Ordering::Relaxed) {
                // Orderly stop: flush and exit for good.
                carried_correction.store(exs.corrected_clock().correction_us(), Ordering::Relaxed);
                // A connection that dies during the final flush is fine;
                // the counters land in `shared` either way.
                let _ = exs.finish();
                break IncarnationEnd::Stop;
            }
            match exs.step() {
                Ok(ExsStep::Shutdown) => {
                    // The ISM asked us to stop — honour it, do not reconnect.
                    carried_correction
                        .store(exs.corrected_clock().correction_us(), Ordering::Relaxed);
                    let _ = exs.finish();
                    break IncarnationEnd::Stop;
                }
                Ok(ExsStep::Disconnected) => {
                    carried_correction
                        .store(exs.corrected_clock().correction_us(), Ordering::Relaxed);
                    carried_credit = exs.credit();
                    break IncarnationEnd::Reconnect(exs.into_window());
                }
                Ok(_) => {}
                Err(e) if e.is_disconnect() => {
                    carried_correction
                        .store(exs.corrected_clock().correction_us(), Ordering::Relaxed);
                    carried_credit = exs.credit();
                    break IncarnationEnd::Reconnect(exs.into_window());
                }
                Err(e) => break IncarnationEnd::Fatal(e),
            }
        };
        match end {
            IncarnationEnd::Stop => break 'lifetime,
            IncarnationEnd::Reconnect(w) => {
                carried_window = w;
                if shared.hello_acks() > acks_before {
                    // The ISM answered our Hello, so the link genuinely
                    // worked this incarnation: start the next retry gently.
                    backoff = sup.initial_backoff;
                } else {
                    // Connected but died before the handshake completed —
                    // the ISM is up yet unhealthy (or a fault plane is
                    // chewing the preamble). Treat it like a connect
                    // failure: pause, then widen the retry window. It does
                    // not count toward `max_consecutive_failures`, which
                    // tracks hard connect refusals only.
                    if sleep_interruptible(&stop, backoff) {
                        break 'lifetime;
                    }
                    backoff = next_backoff(&mut rng, backoff, &sup);
                }
            }
            IncarnationEnd::Fatal(e) => return Err(e),
        }
    }
    stats.exs = shared.stats();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brisk_clock::SystemClock;
    use brisk_core::{EventTypeId, UtcMicros, Value};
    use brisk_net::{MemTransport, Transport};
    use brisk_proto::Message;

    /// A hand-rolled "ISM" that accepts connections one at a time and can
    /// kill them, counting the records received across connections.
    fn recv_records(
        conn: &mut Box<dyn Connection>,
        budget: Duration,
    ) -> (usize, bool /* disconnected */) {
        let deadline = std::time::Instant::now() + budget;
        let mut n = 0;
        while std::time::Instant::now() < deadline {
            match conn.recv(Some(Duration::from_millis(10))) {
                Ok(Some(frame)) => {
                    if let Ok(Message::EventBatch { records, .. }) = Message::decode(&frame) {
                        n += records.len();
                    }
                }
                Ok(None) => {}
                Err(_) => return (n, true),
            }
        }
        (n, false)
    }

    #[test]
    fn survives_server_side_disconnect() {
        let t = MemTransport::new();
        let mut listener = t.listen("ism").unwrap();
        let rings = RingSet::new(NodeId(1), 1 << 20);
        let mut port = rings.register();
        let t2 = Arc::clone(&t);
        let handle = spawn_exs_supervised(
            NodeId(1),
            Arc::clone(&rings),
            Arc::new(SystemClock),
            Box::new(move || t2.connect("ism")),
            ExsConfig {
                flush_timeout: Duration::from_millis(5),
                ..ExsConfig::default()
            },
            SupervisorConfig::default(),
        )
        .unwrap();

        // First connection: receive some records, then kill it.
        let mut conn1 = listener
            .accept(Some(Duration::from_secs(5)))
            .unwrap()
            .unwrap();
        for i in 0..50 {
            port.emit(EventTypeId(1), UtcMicros::now(), vec![Value::I32(i)])
                .unwrap();
        }
        let (got1, _) = recv_records(&mut conn1, Duration::from_millis(300));
        assert!(got1 > 0, "first connection must carry records");
        drop(conn1); // abrupt server-side disconnect

        // The supervisor must reconnect…
        let mut conn2 = listener
            .accept(Some(Duration::from_secs(5)))
            .unwrap()
            .unwrap();
        // …re-send Hello…
        let frame = conn2.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        assert!(matches!(
            Message::decode(&frame).unwrap(),
            Message::Hello {
                node: NodeId(1),
                ..
            }
        ));
        // …and keep delivering new records.
        for i in 50..80 {
            port.emit(EventTypeId(1), UtcMicros::now(), vec![Value::I32(i)])
                .unwrap();
        }
        let (got2, _) = recv_records(&mut conn2, Duration::from_millis(300));
        assert!(got2 > 0, "records must flow on the new connection");

        assert_eq!(handle.connects(), 2);
        let stats = handle.stop().unwrap();
        assert_eq!(stats.connects, 2);
        assert_eq!(stats.reconnects, 1);
    }

    #[test]
    fn correction_value_carries_across_reconnect() {
        let t = MemTransport::new();
        let mut listener = t.listen("ism").unwrap();
        let rings = RingSet::new(NodeId(1), 1 << 20);
        let t2 = Arc::clone(&t);
        let handle = spawn_exs_supervised(
            NodeId(1),
            rings,
            Arc::new(SystemClock),
            Box::new(move || t2.connect("ism")),
            ExsConfig::default(),
            SupervisorConfig::default(),
        )
        .unwrap();

        let mut conn1 = listener
            .accept(Some(Duration::from_secs(5)))
            .unwrap()
            .unwrap();
        let _hello = conn1.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        // Adjust the slave's correction, then kill the connection.
        conn1
            .send(
                &Message::SyncAdjust {
                    round: 1,
                    advance_us: 12_345,
                }
                .encode(),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(50));
        drop(conn1);

        let mut conn2 = listener
            .accept(Some(Duration::from_secs(5)))
            .unwrap()
            .unwrap();
        let _hello = conn2.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        // Poll the new incarnation: its reply must include the carried
        // correction (clock reads now + 12_345 ± scheduling slack).
        let before = UtcMicros::now();
        conn2
            .send(
                &Message::SyncPoll {
                    round: 2,
                    sample: 0,
                    master_send: before,
                }
                .encode(),
            )
            .unwrap();
        let reply = loop {
            let frame = conn2.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
            if let Message::SyncReply { slave_time, .. } = Message::decode(&frame).unwrap() {
                break slave_time;
            }
        };
        let skew = reply.micros_since(UtcMicros::now());
        assert!(
            (8_000..=12_345).contains(&skew),
            "slave clock must be ~12.3 ms ahead (carried correction), got {skew}"
        );
        handle.stop().unwrap();
    }

    #[test]
    fn gives_up_after_max_failures() {
        let rings = RingSet::new(NodeId(1), 1 << 20);
        let handle = spawn_exs_supervised(
            NodeId(1),
            rings,
            Arc::new(SystemClock),
            Box::new(|| {
                Err(BriskError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "nobody home",
                )))
            }),
            ExsConfig::default(),
            SupervisorConfig {
                initial_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(2),
                max_consecutive_failures: Some(3),
            },
        )
        .unwrap();
        // Give the thread time to burn its three attempts (1 + 2 ms
        // backoff) before asking it to stop.
        std::thread::sleep(Duration::from_millis(200));
        let err = handle.stop().unwrap_err();
        assert!(err.to_string().contains("gave up"));
    }

    #[test]
    fn next_backoff_is_bounded_and_deterministic() {
        let sup = SupervisorConfig {
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            max_consecutive_failures: None,
        };
        let mut rng = StdRng::seed_from_u64(42);
        let mut prev = sup.initial_backoff;
        for _ in 0..1000 {
            let next = next_backoff(&mut rng, prev, &sup);
            assert!(next >= sup.initial_backoff, "below floor: {next:?}");
            assert!(next <= sup.max_backoff, "above cap: {next:?}");
            assert!(
                next <= (prev * 3).max(sup.initial_backoff),
                "grew faster than 3×: {prev:?} → {next:?}"
            );
            prev = next;
        }
        // Same seed → identical sequence, so a flaky reconnect storm can be
        // replayed exactly.
        let (mut a, mut b) = (StdRng::seed_from_u64(7), StdRng::seed_from_u64(7));
        let (mut pa, mut pb) = (sup.initial_backoff, sup.initial_backoff);
        for _ in 0..64 {
            pa = next_backoff(&mut a, pa, &sup);
            pb = next_backoff(&mut b, pb, &sup);
            assert_eq!(pa, pb);
        }
    }

    #[test]
    fn backoff_resets_only_after_hello_ack() {
        // Two supervised runs against hand-rolled ISMs that kill every
        // connection shortly after accepting it. The only difference: one
        // acknowledges the Hello first. With a large initial backoff the
        // no-ack run must pay the backoff between incarnations, while the
        // acked run reconnects promptly each time.
        fn run(ack: bool) -> Duration {
            let t = MemTransport::new();
            let mut listener = t.listen("ism").unwrap();
            let rings = RingSet::new(NodeId(1), 1 << 20);
            let t2 = Arc::clone(&t);
            let handle = spawn_exs_supervised(
                NodeId(1),
                rings,
                Arc::new(SystemClock),
                Box::new(move || t2.connect("ism")),
                ExsConfig::default(),
                SupervisorConfig {
                    initial_backoff: Duration::from_millis(250),
                    max_backoff: Duration::from_secs(2),
                    max_consecutive_failures: None,
                },
            )
            .unwrap();
            let start = std::time::Instant::now();
            for _ in 0..2 {
                let mut conn = listener
                    .accept(Some(Duration::from_secs(10)))
                    .unwrap()
                    .unwrap();
                let _hello = conn.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
                if ack {
                    conn.send(
                        &Message::HelloAck {
                            version: 3,
                            credit: None,
                        }
                        .encode(),
                    )
                    .unwrap();
                    // Give the EXS a step to process the ack before the kill.
                    std::thread::sleep(Duration::from_millis(50));
                }
                drop(conn);
            }
            let _conn3 = listener
                .accept(Some(Duration::from_secs(10)))
                .unwrap()
                .unwrap();
            let elapsed = start.elapsed();
            handle.stop().ok();
            elapsed
        }
        let with_ack = run(true);
        let without_ack = run(false);
        // No HelloAck → two backoff pauses of ≥ 250 ms each before the
        // third connection shows up.
        assert!(
            without_ack >= Duration::from_millis(450),
            "pre-ack deaths must keep (and grow) the backoff, got {without_ack:?}"
        );
        assert!(
            with_ack < without_ack,
            "acked incarnations must reconnect faster ({with_ack:?} vs {without_ack:?})"
        );
    }

    #[test]
    fn orderly_ism_shutdown_is_honoured_not_retried() {
        let t = MemTransport::new();
        let mut listener = t.listen("ism").unwrap();
        let rings = RingSet::new(NodeId(1), 1 << 20);
        let t2 = Arc::clone(&t);
        let handle = spawn_exs_supervised(
            NodeId(1),
            rings,
            Arc::new(SystemClock),
            Box::new(move || t2.connect("ism")),
            ExsConfig::default(),
            SupervisorConfig::default(),
        )
        .unwrap();
        let mut conn = listener
            .accept(Some(Duration::from_secs(5)))
            .unwrap()
            .unwrap();
        let _hello = conn.recv(Some(Duration::from_secs(1))).unwrap().unwrap();
        conn.send(&Message::Shutdown.encode()).unwrap();
        // The supervisor must exit on its own, without a reconnect attempt.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while handle.connects() < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            listener
                .accept(Some(Duration::from_millis(100)))
                .unwrap()
                .is_none(),
            "no reconnect after an orderly shutdown"
        );
        let stats = handle.stop().unwrap();
        assert_eq!(stats.connects, 1);
        assert_eq!(stats.reconnects, 0);
    }
}
