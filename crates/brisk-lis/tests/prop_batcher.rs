//! Property-based tests for the EXS batcher (batching / latency control).

use brisk_core::{EventRecord, EventTypeId, ExsConfig, NodeId, SensorId, UtcMicros, Value};
use brisk_lis::{Batcher, FlushReason};
use proptest::prelude::*;
use std::time::Duration;

fn rec(seq: u64, payload: usize) -> EventRecord {
    EventRecord::new(
        NodeId(0),
        SensorId(0),
        EventTypeId(1),
        seq,
        UtcMicros::from_micros(seq as i64),
        vec![Value::Bytes(vec![0u8; payload])],
    )
    .unwrap()
}

fn cfg(max_records: usize, max_bytes: usize, timeout_us: u64) -> ExsConfig {
    ExsConfig {
        max_batch_records: max_records,
        max_batch_bytes: max_bytes,
        flush_timeout: Duration::from_micros(timeout_us),
        ..ExsConfig::default()
    }
}

proptest! {
    /// Conservation and order: every pushed record appears in exactly one
    /// emitted batch, in push order, regardless of knob values and the
    /// interleaving of timeout polls.
    #[test]
    fn conservation_and_fifo(
        payloads in proptest::collection::vec(0usize..200, 1..100),
        max_records in 1usize..32,
        max_bytes in 64usize..4_096,
        timeout_us in 1u64..10_000,
        poll_every in 1usize..8,
    ) {
        let mut b = Batcher::new(cfg(max_records, max_bytes, timeout_us));
        let mut emitted: Vec<EventRecord> = Vec::new();
        for (i, &p) in payloads.iter().enumerate() {
            let now = UtcMicros::from_micros(i as i64 * 100);
            if let Some((batch, _)) = b.push(rec(i as u64, p), now) {
                emitted.extend(batch);
            }
            if i % poll_every == 0 {
                if let Some((batch, reason)) = b.poll_timeout(now) {
                    prop_assert_eq!(reason, FlushReason::Timeout);
                    emitted.extend(batch);
                }
            }
        }
        if let Some((batch, reason)) = b.flush() {
            prop_assert_eq!(reason, FlushReason::Forced);
            emitted.extend(batch);
        }
        prop_assert_eq!(emitted.len(), payloads.len());
        for (i, r) in emitted.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64, "batches must preserve order");
        }
        prop_assert_eq!(b.pending_records(), 0);
        prop_assert_eq!(b.records_emitted(), payloads.len() as u64);
    }

    /// The record-count knob is a hard bound: no emitted batch exceeds it
    /// (the byte knob can emit smaller batches, never larger ones).
    #[test]
    fn batch_size_bounded(
        count in 1usize..300,
        max_records in 1usize..64,
    ) {
        let mut b = Batcher::new(cfg(max_records, usize::MAX >> 1, 1_000_000));
        let mut sizes = Vec::new();
        for i in 0..count {
            if let Some((batch, reason)) = b.push(rec(i as u64, 8), UtcMicros::ZERO) {
                prop_assert_eq!(reason, FlushReason::Records);
                sizes.push(batch.len());
            }
        }
        if let Some((batch, _)) = b.flush() {
            sizes.push(batch.len());
        }
        for &s in &sizes {
            prop_assert!(s <= max_records, "batch of {s} exceeds {max_records}");
        }
        prop_assert_eq!(sizes.iter().sum::<usize>(), count);
    }

    /// A non-empty batch never waits longer than the flush timeout between
    /// the oldest record's enqueue and a poll at/after the deadline.
    #[test]
    fn timeout_is_an_upper_bound(
        timeout_us in 1i64..100_000,
        enqueue_at in 0i64..1_000_000,
        late_by in 0i64..100_000,
    ) {
        let mut b = Batcher::new(cfg(1_000, usize::MAX >> 1, timeout_us as u64));
        let t0 = UtcMicros::from_micros(enqueue_at);
        b.push(rec(0, 8), t0);
        // Just before the deadline: nothing.
        if timeout_us > 1 {
            prop_assert!(b
                .poll_timeout(t0 + Duration::from_micros(timeout_us as u64 - 1))
                .is_none());
        }
        // At or after the deadline: flushed.
        let polled = b.poll_timeout(
            t0 + Duration::from_micros((timeout_us + late_by) as u64),
        );
        prop_assert!(polled.is_some());
    }
}
