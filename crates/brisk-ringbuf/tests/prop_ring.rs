//! Property-based tests for the SPSC ring and record rings.

use brisk_core::{EventTypeId, NodeId, SensorId, UtcMicros, Value};
use brisk_ringbuf::{ByteRing, RecordRing, RingSet};
use proptest::prelude::*;

proptest! {
    /// Sequential push/pop round-trips arbitrary frame sequences exactly,
    /// whatever the ring size, with drops only when genuinely full.
    #[test]
    fn spsc_sequential_round_trip(
        frames in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..100),
        capacity in 64usize..2_048,
    ) {
        let (mut p, mut c) = ByteRing::with_capacity(capacity);
        let mut expected = std::collections::VecDeque::new();
        let mut out = Vec::new();
        for f in &frames {
            if p.push(f) {
                expected.push_back(f.clone());
            }
            // Randomly interleave a pop half of the time (deterministic
            // on frame length parity for reproducibility).
            if f.len() % 2 == 0
                && c.pop(&mut out) {
                    let want = expected.pop_front().unwrap();
                    prop_assert_eq!(&out, &want);
                }
        }
        while c.pop(&mut out) {
            let want = expected.pop_front().unwrap();
            prop_assert_eq!(&out, &want);
        }
        prop_assert!(expected.is_empty());
        let stats = p.stats();
        prop_assert_eq!(stats.produced, stats.consumed);
        prop_assert_eq!(stats.produced + stats.dropped, frames.len() as u64);
    }

    /// The record ring preserves every field of every accepted record.
    #[test]
    fn record_ring_round_trip(
        values in proptest::collection::vec(any::<i64>(), 1..50),
    ) {
        let (mut port, mut cons) = RecordRing::create(NodeId(3), SensorId(1), 1 << 16);
        for (i, &v) in values.iter().enumerate() {
            let ok = port
                .emit(
                    EventTypeId(7),
                    UtcMicros::from_micros(i as i64),
                    vec![Value::I64(v), Value::Str(format!("v{v}"))],
                )
                .unwrap();
            prop_assert!(ok, "64 KiB ring must hold 50 small records");
        }
        let mut got = Vec::new();
        cons.drain_into(usize::MAX, &mut got).unwrap();
        prop_assert_eq!(got.len(), values.len());
        for (i, (r, &v)) in got.iter().zip(&values).enumerate() {
            prop_assert_eq!(r.seq, i as u64);
            prop_assert_eq!(&r.fields[0], &Value::I64(v));
        }
    }

    /// RingSet drains across any number of sensors without losing or
    /// duplicating records, and per-sensor order holds.
    #[test]
    fn ring_set_multi_sensor(
        per_sensor in proptest::collection::vec(1usize..30, 1..6),
    ) {
        let set = RingSet::new(NodeId(0), 1 << 16);
        let mut ports: Vec<_> = per_sensor.iter().map(|_| set.register()).collect();
        for (s, (&n, port)) in per_sensor.iter().zip(&mut ports).enumerate() {
            for i in 0..n {
                port.emit(
                    EventTypeId(s as u32),
                    UtcMicros::from_micros(i as i64),
                    vec![Value::U32(i as u32)],
                )
                .unwrap();
            }
        }
        let mut out = Vec::new();
        let drained = set.drain_into(usize::MAX, &mut out).unwrap();
        let total: usize = per_sensor.iter().sum();
        prop_assert_eq!(drained, total);
        prop_assert_eq!(out.len(), total);
        for (s, &n) in per_sensor.iter().enumerate() {
            let seqs: Vec<u64> = out
                .iter()
                .filter(|r| r.event_type == EventTypeId(s as u32))
                .map(|r| r.seq)
                .collect();
            prop_assert_eq!(seqs.len(), n);
            prop_assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        }
        prop_assert!(set.is_empty());
    }
}
