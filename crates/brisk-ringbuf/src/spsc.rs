//! Lock-free single-producer single-consumer byte ring.
//!
//! The ring carries *frames*: a 4-byte little-endian length prefix followed
//! by the payload. Indices are monotonically increasing `usize` counters
//! (they wrap modulo the power-of-two capacity only when addressing the
//! buffer), the classic Lamport queue formulation:
//!
//! * the producer owns `tail` and reads `head` with `Acquire`;
//! * the consumer owns `head` and reads `tail` with `Acquire`;
//! * each side publishes its counter with `Release` after touching the data,
//!   which is what makes the payload bytes visible to the other side.
//!
//! A full ring causes the frame to be **dropped**, never a block: BRISK
//! sensors must not change "the order and timing of critical events in the
//! target system" (§2). Drops are counted so consumers can report loss.

use crossbeam::utils::CachePadded;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Frame length prefix size.
const LEN_PREFIX: usize = 4;

/// Shared state of one SPSC byte ring.
///
/// # Safety discipline
///
/// The buffer is a slice of `UnsafeCell<u8>`. At any moment each byte is
/// accessed by at most one side: bytes in `[head, tail)` belong to the
/// consumer, bytes in `[tail, head + cap)` to the producer. The counters
/// only move forward, and each side moves only its own counter, after it has
/// finished touching the bytes the move hands over. `Release` on the store
/// and `Acquire` on the observing load give the happens-before edge.
pub struct ByteRing {
    buf: Box<[UnsafeCell<u8>]>,
    /// Capacity, always a power of two.
    cap: usize,
    /// Consumer position (monotonic).
    head: CachePadded<AtomicUsize>,
    /// Producer position (monotonic).
    tail: CachePadded<AtomicUsize>,
    /// Frames dropped because the ring was full.
    dropped: AtomicU64,
    /// Frames successfully published.
    produced: AtomicU64,
    /// Frames consumed.
    consumed: AtomicU64,
}

// SAFETY: the UnsafeCell buffer is protected by the head/tail ownership
// protocol documented above; RingProducer and RingConsumer are the only
// accessors and each exists exactly once.
unsafe impl Send for ByteRing {}
unsafe impl Sync for ByteRing {}

/// Counters describing ring traffic so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RingStats {
    /// Frames successfully written.
    pub produced: u64,
    /// Frames dropped because the ring was full.
    pub dropped: u64,
    /// Frames read out.
    pub consumed: u64,
}

impl ByteRing {
    /// Create a ring with at least `capacity` bytes (rounded up to a power
    /// of two, minimum 64) and split it into its producer and consumer
    /// halves.
    pub fn with_capacity(capacity: usize) -> (RingProducer, RingConsumer) {
        let cap = capacity.max(64).next_power_of_two();
        let buf = (0..cap).map(|_| UnsafeCell::new(0u8)).collect::<Vec<_>>();
        let ring = Arc::new(ByteRing {
            buf: buf.into_boxed_slice(),
            cap,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            dropped: AtomicU64::new(0),
            produced: AtomicU64::new(0),
            consumed: AtomicU64::new(0),
        });
        (
            RingProducer {
                ring: Arc::clone(&ring),
            },
            RingConsumer { ring },
        )
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    fn stats(&self) -> RingStats {
        RingStats {
            produced: self.produced.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            consumed: self.consumed.load(Ordering::Relaxed),
        }
    }

    #[inline]
    fn slot(&self, pos: usize) -> *mut u8 {
        self.buf[pos & (self.cap - 1)].get()
    }

    /// Copy `src` into the ring starting at monotonic position `pos`.
    /// Caller must own `[pos, pos + src.len())`.
    #[inline]
    unsafe fn write_bytes(&self, pos: usize, src: &[u8]) {
        for (i, &b) in src.iter().enumerate() {
            // SAFETY: caller owns this span per the head/tail protocol.
            unsafe { *self.slot(pos + i) = b };
        }
    }

    /// Copy from the ring at monotonic position `pos` into `dst`.
    /// Caller must own `[pos, pos + dst.len())`.
    #[inline]
    unsafe fn read_bytes(&self, pos: usize, dst: &mut [u8]) {
        for (i, b) in dst.iter_mut().enumerate() {
            // SAFETY: caller owns this span per the head/tail protocol.
            *b = unsafe { *self.slot(pos + i) };
        }
    }
}

/// The producing half of a [`ByteRing`]. Exactly one exists per ring.
pub struct RingProducer {
    ring: Arc<ByteRing>,
}

impl RingProducer {
    /// Try to publish one frame. Returns `false` (and bumps the drop
    /// counter) if the ring does not currently have room; never blocks.
    pub fn push(&mut self, payload: &[u8]) -> bool {
        let ring = &*self.ring;
        let need = LEN_PREFIX + payload.len();
        if need > ring.cap {
            // Frame can never fit; count as dropped rather than wedge.
            ring.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let tail = ring.tail.load(Ordering::Relaxed); // producer owns tail
        let head = ring.head.load(Ordering::Acquire);
        let free = ring.cap - (tail - head);
        if need > free {
            ring.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let len_bytes = (payload.len() as u32).to_le_bytes();
        // SAFETY: `[tail, tail+need)` is producer-owned: it is within
        // `cap - (tail - head)` free bytes checked above.
        unsafe {
            ring.write_bytes(tail, &len_bytes);
            ring.write_bytes(tail + LEN_PREFIX, payload);
        }
        ring.tail.store(tail + need, Ordering::Release);
        ring.produced.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Bytes currently available for writing.
    pub fn free_bytes(&self) -> usize {
        let tail = self.ring.tail.load(Ordering::Relaxed);
        let head = self.ring.head.load(Ordering::Acquire);
        self.ring.cap - (tail - head)
    }

    /// Bytes currently buffered (occupancy), from the producer side.
    ///
    /// Reads the producer-owned `tail` first, then `head`: the consumer
    /// can only advance `head` towards `tail`, so the difference is a
    /// conservative (never negative, at-most-stale-high) occupancy —
    /// safe to export as a gauge without racing the consumer.
    pub fn occupancy(&self) -> usize {
        let tail = self.ring.tail.load(Ordering::Relaxed); // owned, exact
        let head = self.ring.head.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }

    /// Traffic counters.
    pub fn stats(&self) -> RingStats {
        self.ring.stats()
    }
}

/// The consuming half of a [`ByteRing`]. Exactly one exists per ring.
pub struct RingConsumer {
    ring: Arc<ByteRing>,
}

impl RingConsumer {
    /// Pop one frame into `out` (which is cleared first). Returns `true` if
    /// a frame was read, `false` if the ring was empty.
    pub fn pop(&mut self, out: &mut Vec<u8>) -> bool {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed); // consumer owns head
        let tail = ring.tail.load(Ordering::Acquire);
        let avail = tail - head;
        if avail < LEN_PREFIX {
            debug_assert_eq!(avail, 0, "partial frame in ring");
            return false;
        }
        let mut len_bytes = [0u8; LEN_PREFIX];
        // SAFETY: `[head, tail)` is consumer-owned.
        unsafe { ring.read_bytes(head, &mut len_bytes) };
        let len = u32::from_le_bytes(len_bytes) as usize;
        debug_assert!(
            avail >= LEN_PREFIX + len,
            "frame published incompletely: avail={avail} len={len}"
        );
        out.clear();
        out.resize(len, 0);
        // SAFETY: same ownership; the producer published the whole frame
        // before releasing tail.
        unsafe { ring.read_bytes(head + LEN_PREFIX, out) };
        ring.head.store(head + LEN_PREFIX + len, Ordering::Release);
        ring.consumed.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Drain up to `max` frames, invoking `f` on each. Returns the number
    /// of frames consumed. The scratch buffer is reused across frames.
    pub fn drain(&mut self, max: usize, mut f: impl FnMut(&[u8])) -> usize {
        let mut scratch = Vec::new();
        let mut n = 0;
        while n < max && self.pop(&mut scratch) {
            f(&scratch);
            n += 1;
        }
        n
    }

    /// True if no complete frame is currently available.
    pub fn is_empty(&self) -> bool {
        let head = self.ring.head.load(Ordering::Relaxed);
        let tail = self.ring.tail.load(Ordering::Acquire);
        tail == head
    }

    /// Bytes currently buffered (occupancy), from the consumer side.
    ///
    /// Reads the consumer-owned `head` first, then `tail`: the producer
    /// can only grow `tail`, so the difference is exact-or-stale-low and
    /// never negative — the gauge cannot race its own drain loop.
    pub fn occupancy(&self) -> usize {
        let head = self.ring.head.load(Ordering::Relaxed); // owned, exact
        let tail = self.ring.tail.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// Traffic counters.
    pub fn stats(&self) -> RingStats {
        self.ring.stats()
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.ring.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (p, _c) = ByteRing::with_capacity(1000);
        assert_eq!(p.ring.capacity(), 1024);
        let (p, _c) = ByteRing::with_capacity(1);
        assert_eq!(p.ring.capacity(), 64);
    }

    #[test]
    fn push_pop_single_frame() {
        let (mut p, mut c) = ByteRing::with_capacity(256);
        assert!(p.push(b"hello"));
        let mut out = Vec::new();
        assert!(c.pop(&mut out));
        assert_eq!(out, b"hello");
        assert!(!c.pop(&mut out));
    }

    #[test]
    fn empty_frame_supported() {
        let (mut p, mut c) = ByteRing::with_capacity(64);
        assert!(p.push(b""));
        let mut out = vec![1, 2, 3];
        assert!(c.pop(&mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn fifo_order_preserved() {
        let (mut p, mut c) = ByteRing::with_capacity(4096);
        for i in 0..100u32 {
            assert!(p.push(&i.to_le_bytes()));
        }
        let mut out = Vec::new();
        for i in 0..100u32 {
            assert!(c.pop(&mut out));
            assert_eq!(u32::from_le_bytes(out[..].try_into().unwrap()), i);
        }
        assert!(c.is_empty());
    }

    #[test]
    fn full_ring_drops_and_counts() {
        let (mut p, mut c) = ByteRing::with_capacity(64);
        let frame = [0u8; 28]; // 32 bytes with prefix
        assert!(p.push(&frame));
        assert!(p.push(&frame));
        assert!(!p.push(&frame)); // full
        assert_eq!(p.stats().dropped, 1);
        assert_eq!(p.stats().produced, 2);
        let mut out = Vec::new();
        assert!(c.pop(&mut out));
        assert!(p.push(&frame)); // space reclaimed
        assert_eq!(c.stats().consumed, 1);
    }

    #[test]
    fn oversized_frame_rejected_without_wedging() {
        let (mut p, mut c) = ByteRing::with_capacity(64);
        assert!(!p.push(&[0u8; 100]));
        assert_eq!(p.stats().dropped, 1);
        assert!(p.push(b"ok"));
        let mut out = Vec::new();
        assert!(c.pop(&mut out));
        assert_eq!(out, b"ok");
    }

    #[test]
    fn wraparound_preserves_contents() {
        let (mut p, mut c) = ByteRing::with_capacity(64);
        let mut out = Vec::new();
        // Push/pop enough varied frames to wrap the 64-byte ring many times.
        for round in 0..200u32 {
            let len = (round % 23) as usize;
            let payload: Vec<u8> = (0..len)
                .map(|i| (round as u8).wrapping_add(i as u8))
                .collect();
            assert!(p.push(&payload), "round {round}");
            assert!(c.pop(&mut out));
            assert_eq!(out, payload, "round {round}");
        }
    }

    #[test]
    fn drain_respects_max_and_reuses_buffer() {
        let (mut p, mut c) = ByteRing::with_capacity(1024);
        for i in 0..10u8 {
            p.push(&[i]);
        }
        let mut seen = Vec::new();
        let n = c.drain(4, |frame| seen.push(frame[0]));
        assert_eq!(n, 4);
        assert_eq!(seen, vec![0, 1, 2, 3]);
        let n = c.drain(usize::MAX, |frame| seen.push(frame[0]));
        assert_eq!(n, 6);
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn free_bytes_reports_capacity_minus_used() {
        let (mut p, _c) = ByteRing::with_capacity(64);
        assert_eq!(p.free_bytes(), 64);
        p.push(b"abcd"); // 8 bytes with prefix
        assert_eq!(p.free_bytes(), 56);
    }

    #[test]
    fn occupancy_tracks_both_halves() {
        let (mut p, mut c) = ByteRing::with_capacity(64);
        assert_eq!(p.occupancy(), 0);
        assert_eq!(c.occupancy(), 0);
        p.push(b"abcd"); // 8 bytes with prefix
        assert_eq!(p.occupancy(), 8);
        assert_eq!(c.occupancy(), 8);
        let mut out = Vec::new();
        c.pop(&mut out);
        assert_eq!(p.occupancy(), 0);
        assert_eq!(c.occupancy(), 0);
        assert_eq!(p.capacity(), 64);
    }

    #[test]
    fn concurrent_producer_consumer_stress() {
        let (mut p, mut c) = ByteRing::with_capacity(1 << 12);
        const N: u64 = 200_000;
        let producer = thread::spawn(move || {
            let mut sent = 0u64;
            let mut i = 0u64;
            while i < N {
                let payload = i.to_le_bytes();
                if p.push(&payload) {
                    sent += 1;
                    i += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
            sent
        });
        let consumer = thread::spawn(move || {
            let mut out = Vec::new();
            let mut expected = 0u64;
            while expected < N {
                if c.pop(&mut out) {
                    let v = u64::from_le_bytes(out[..].try_into().unwrap());
                    assert_eq!(v, expected, "frames must arrive in order, intact");
                    expected += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
            expected
        });
        assert_eq!(producer.join().unwrap(), N);
        assert_eq!(consumer.join().unwrap(), N);
    }

    #[test]
    fn concurrent_stress_with_varied_sizes_and_drops() {
        let (mut p, mut c) = ByteRing::with_capacity(256);
        const N: u32 = 50_000;
        let producer = thread::spawn(move || {
            let mut accepted = Vec::new();
            for i in 0..N {
                let len = (i % 40) as usize;
                let mut payload = vec![0u8; 4 + len];
                payload[..4].copy_from_slice(&i.to_le_bytes());
                for (j, b) in payload[4..].iter_mut().enumerate() {
                    *b = (i as u8).wrapping_mul(31).wrapping_add(j as u8);
                }
                if p.push(&payload) {
                    accepted.push(i);
                }
            }
            (accepted, p.stats())
        });
        let consumer = thread::spawn(move || {
            let mut out = Vec::new();
            let mut got = Vec::new();
            let mut idle = 0;
            while idle < 10_000 {
                if c.pop(&mut out) {
                    idle = 0;
                    let i = u32::from_le_bytes(out[..4].try_into().unwrap());
                    for (j, &b) in out[4..].iter().enumerate() {
                        assert_eq!(b, (i as u8).wrapping_mul(31).wrapping_add(j as u8));
                    }
                    got.push(i);
                } else {
                    idle += 1;
                    std::thread::yield_now();
                }
            }
            got
        });
        let (accepted, stats) = producer.join().unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(
            accepted, got,
            "consumer sees exactly the accepted frames in order"
        );
        assert_eq!(stats.produced + stats.dropped, N as u64);
    }
}
